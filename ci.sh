#!/usr/bin/env sh
# Local mirror of .github/workflows/ci.yml — run before pushing.
#
# The workspace is hermetic (no crates.io dependencies), so every step
# works fully offline. Steps, in CI order:
#
#   1. cargo build --release            release build, locked deps
#   2. cargo test  --workspace -q       every crate's unit + integration tests
#   3. cargo fmt   --check              formatting gate
#   4. cargo clippy -- -D warnings      lint gate (all targets, all crates)
#   5. serve smoke test                 boot daemon, compile a GHZ, compile a
#                                       QFT on a movement-based dpqa: device,
#                                       check --list-devices and stats
#   6. serve chaos test                 fault injection, hostile frames,
#                                       degraded-device sweep
#   7. persist smoke test               fill cache, kill -9, restart warm,
#                                       byte-identical responses
#   8. shard smoke test                 router + 3 shards: suite through the
#                                       router, per-shard cache locality,
#                                       kill -9 one shard with zero failed
#                                       requests
#   9. portfolio smoke test             auto-strategy compile, tight-deadline
#                                       degradation to a verified
#                                       trivial/trivial result, forced --race,
#                                       portfolio stats counters
#  10. semantic-cache smoke test        offline --canonical-digest twins,
#                                       then compile + renamed/reordered
#                                       twin served as a canonical hit
#  11. fleet chaos test                 supervised 3-shard fleet under seeded
#                                       transport faults: two SIGKILLs and a
#                                       SIGSTOP under closed-loop load lose
#                                       zero requests, killed shards restart
#                                       warm from their WAL, zero-budget
#                                       requests are rejected up front, and
#                                       SIGTERM drains the fleet cleanly
#  12. benchmark regression gate        fresh bench_baseline run vs the
#                                       committed BENCH_*.json (mapper incl.
#                                       portfolio selector/race counters, sim
#                                       and dpqa movement sweeps): work
#                                       counters exact, wall times within
#                                       QCS_BENCH_WALL_BUDGET (default 4x,
#                                       0 disables)
#  13. serving regression gate          fresh bench_load run vs the committed
#                                       BENCH_serve.json: routing/cache,
#                                       resilience and semantic (canonical
#                                       vs exact keying) counters exact,
#                                       latency and rps within the same
#                                       wall budget
set -eu

echo "==> cargo build --release"
# --workspace matters: the repo root is itself a package, so a bare
# `cargo build` would skip member binaries (bench_baseline, bench_load,
# qcs-serve, qcs-router, qcs-client) that later steps execute.
cargo build --release --workspace --locked

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> serve smoke test"
./ci_serve_smoke.sh

echo "==> serve chaos test"
./ci_chaos.sh

echo "==> persist smoke test"
./ci_persist_smoke.sh

echo "==> shard smoke test"
./ci_shard_smoke.sh

echo "==> portfolio smoke test"
./ci_portfolio_smoke.sh

echo "==> semantic-cache smoke test"
./ci_semcache_smoke.sh

echo "==> fleet chaos test"
./ci_fleet_chaos.sh

echo "==> benchmark regression gate"
./target/release/bench_baseline --check

echo "==> serving regression gate"
./target/release/bench_load --check

echo "CI OK"
