#!/usr/bin/env sh
# Local mirror of .github/workflows/ci.yml — run before pushing.
#
# The workspace is hermetic (no crates.io dependencies), so every step
# works fully offline. Steps, in CI order:
#
#   1. cargo build --release            release build, locked deps
#   2. cargo test  --workspace -q       every crate's unit + integration tests
#   3. cargo fmt   --check              formatting gate
#   4. cargo clippy -- -D warnings      lint gate (all targets, all crates)
#   5. serve smoke test                 boot daemon, compile a GHZ, check stats
#   6. serve chaos test                 fault injection, hostile frames,
#                                       degraded-device sweep
#   7. persist smoke test               fill cache, kill -9, restart warm,
#                                       byte-identical responses
#   8. benchmark regression gate        fresh bench_baseline run vs the
#                                       committed BENCH_*.json: work
#                                       counters exact, wall times within
#                                       QCS_BENCH_WALL_BUDGET (default 4x,
#                                       0 disables)
set -eu

echo "==> cargo build --release"
cargo build --release --locked

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> serve smoke test"
./ci_serve_smoke.sh

echo "==> serve chaos test"
./ci_chaos.sh

echo "==> persist smoke test"
./ci_persist_smoke.sh

echo "==> benchmark regression gate"
./target/release/bench_baseline --check

echo "CI OK"
