#!/usr/bin/env sh
# Chaos test for the compilation daemon: boot it with deterministic
# fault injection armed (qcs-faults failpoints), fire hostile frames and
# panicking jobs at it, run a degraded-device sweep, and verify it never
# stops answering. Assumes `cargo build --release` already ran (CI runs
# it first); builds on demand otherwise.
set -eu

SMOKE_NAME="chaos"
SMOKE_TAG=chaos
. ./ci_lib.sh
smoke_build
smoke_init

# Panic the 2nd compiled job, delay every 5th routing pass by 20 ms:
# deterministic, so this script sees the same failures every run.
smoke_start_daemon daemon --workers 2 \
    --faults 'serve.worker.job=panic@nth:2;mapper.route=delay:20@nth:5'
ADDR=$SMOKE_ADDR
SERVE_PID=$SMOKE_PID
echo "$SMOKE_NAME: daemon on $ADDR with failpoints armed"

# 1. Hostile input: garbage bytes, a truncated frame and an oversized
#    length prefix must not take the daemon down.
"$CLIENT" --addr "$ADDR" probe ||
    smoke_fail "daemon did not survive hostile frames"

# 2. Panic injection: the 2nd job panics mid-compile. The client must
#    get a structured error frame (exit nonzero, no stack trace), and
#    the daemon must keep serving afterwards.
"$CLIENT" --addr "$ADDR" workload ghz:6 --json >/dev/null ||
    smoke_fail "pre-panic compile failed"
OUT=$("$CLIENT" --addr "$ADDR" workload qft:5 --json 2>&1) && {
    echo "$OUT" >&2
    smoke_fail "injected panic did not surface as an error"
}
echo "$OUT" | grep -q 'panicked' || {
    echo "$OUT" >&2
    smoke_fail "error frame does not mention the panic"
}
"$CLIENT" --addr "$ADDR" workload qft:5 --json >/dev/null ||
    smoke_fail "daemon dead after injected panic"

# 3. Degraded-device sweep: seeded outages (10% couplers, then qubits
#    too) must still compile, deterministically.
for DEV in 'degraded:0:0.1:11:surface17' 'degraded:0.1:0.1:7:surface97'; do
    for W in ghz:6 qft:5 wstate:5; do
        "$CLIENT" --addr "$ADDR" workload "$W" --device "$DEV" --json >/dev/null ||
            smoke_fail "degraded sweep failed for $W on $DEV"
    done
done

# 4. Stats must account for the injected panic.
STATS=$("$CLIENT" --addr "$ADDR" stats --json)
echo "$STATS" | grep -q '"jobs_panicked": 1' || {
    echo "$STATS" >&2
    smoke_fail "stats do not report the injected panic"
}

# 5. Clean shutdown despite everything.
"$CLIENT" --addr "$ADDR" shutdown >/dev/null
wait "$SERVE_PID" || smoke_fail "daemon exited nonzero"
smoke_pass
