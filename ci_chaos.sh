#!/usr/bin/env sh
# Chaos test for the compilation daemon: boot it with deterministic
# fault injection armed (qcs-faults failpoints), fire hostile frames and
# panicking jobs at it, run a degraded-device sweep, and verify it never
# stops answering. Assumes `cargo build --release` already ran (CI runs
# it first); builds on demand otherwise.
set -eu

SERVE=target/release/qcs-serve
CLIENT=target/release/qcs-client
[ -x "$SERVE" ] && [ -x "$CLIENT" ] || cargo build --release -p qcs-serve

PORT_FILE=$(mktemp)
rm -f "$PORT_FILE" # daemon recreates it once listening

# Panic the 2nd compiled job, delay every 5th routing pass by 20 ms:
# deterministic, so this script sees the same failures every run.
"$SERVE" --addr 127.0.0.1:0 --workers 2 --port-file "$PORT_FILE" \
    --faults 'serve.worker.job=panic@nth:2;mapper.route=delay:20@nth:5' \
    2>/dev/null &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true; rm -f "$PORT_FILE"' EXIT

tries=0
while [ ! -s "$PORT_FILE" ]; do
    tries=$((tries + 1))
    if [ "$tries" -gt 50 ]; then
        echo "chaos: daemon never published its port" >&2
        exit 1
    fi
    sleep 0.1
done
ADDR="127.0.0.1:$(cat "$PORT_FILE")"
echo "chaos: daemon on $ADDR with failpoints armed"

# 1. Hostile input: garbage bytes, a truncated frame and an oversized
#    length prefix must not take the daemon down.
"$CLIENT" --addr "$ADDR" probe || {
    echo "chaos: daemon did not survive hostile frames" >&2
    exit 1
}

# 2. Panic injection: the 2nd job panics mid-compile. The client must
#    get a structured error frame (exit nonzero, no stack trace), and
#    the daemon must keep serving afterwards.
"$CLIENT" --addr "$ADDR" workload ghz:6 --json >/dev/null || {
    echo "chaos: pre-panic compile failed" >&2
    exit 1
}
OUT=$("$CLIENT" --addr "$ADDR" workload qft:5 --json 2>&1) && {
    echo "chaos: injected panic did not surface as an error:" >&2
    echo "$OUT" >&2
    exit 1
}
echo "$OUT" | grep -q 'panicked' || {
    echo "chaos: error frame does not mention the panic:" >&2
    echo "$OUT" >&2
    exit 1
}
OUT=$("$CLIENT" --addr "$ADDR" workload qft:5 --json) || {
    echo "chaos: daemon dead after injected panic" >&2
    exit 1
}

# 3. Degraded-device sweep: seeded outages (10% couplers, then qubits
#    too) must still compile, deterministically.
for DEV in 'degraded:0:0.1:11:surface17' 'degraded:0.1:0.1:7:surface97'; do
    for W in ghz:6 qft:5 wstate:5; do
        "$CLIENT" --addr "$ADDR" workload "$W" --device "$DEV" --json >/dev/null || {
            echo "chaos: degraded sweep failed for $W on $DEV" >&2
            exit 1
        }
    done
done

# 4. Stats must account for the injected panic.
STATS=$("$CLIENT" --addr "$ADDR" stats --json)
echo "$STATS" | grep -q '"jobs_panicked": 1' || {
    echo "chaos: stats do not report the injected panic:" >&2
    echo "$STATS" >&2
    exit 1
}

# 5. Clean shutdown despite everything.
"$CLIENT" --addr "$ADDR" shutdown >/dev/null
wait "$SERVE_PID" || {
    echo "chaos: daemon exited nonzero" >&2
    exit 1
}
trap - EXIT
rm -f "$PORT_FILE"
echo "chaos: OK"
