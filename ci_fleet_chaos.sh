#!/usr/bin/env sh
# Fleet-level chaos gate: a *supervised* 3-shard fleet must survive a
# seeded schedule of transport faults, shard kills and stalls without
# losing a single request. Checks, in order:
#   1. qcs-supervisor boots 3 WAL-backed shards behind a router and
#      publishes the fleet state file;
#   2. under a closed-loop hammer (bench_load --chaos) with seeded
#      slow-read/partial-write faults armed on every shard, SIGKILLing
#      two shards and SIGSTOPping a third loses nothing: the hammer
#      exits zero (every request eventually answered) and p99 stays
#      under an env-tunable budget;
#   3. the supervisor restarts killed shards with backoff and re-warms
#      them from their WAL: the restarted shard reports recovered
#      records and serves the replayed keyspace without a single
#      post-restart miss;
#   4. a zero-budget request is refused up front with a structured
#      deadline_exceeded — before any forwarding or compilation;
#   5. SIGTERM drains the whole fleet gracefully (exit 0, no hard
#      kills), and the router itself never needed a restart.
# Assumes `cargo build --release` already ran (CI runs it first);
# builds on demand otherwise.
set -eu

SMOKE_NAME="fleet chaos"
SMOKE_TAG=fleet
. ./ci_lib.sh
smoke_build
smoke_init

ROOT="$SMOKE_SCRATCH/fleet"
STATE="$SMOKE_SCRATCH/state.json"
PORT="$SMOKE_SCRATCH/router.port"
CHILD_LOGS="$SMOKE_LOG_DIR/$SMOKE_TAG-children"
LOAD_JSON="$SMOKE_LOG_DIR/$SMOKE_TAG-load.json"
P99_BUDGET=${QCS_FLEET_P99_BUDGET_MICROS:-5000000}

# The supervisor owns children the smoke trap doesn't know about: drain
# it first (SIGTERM), then hard-kill whatever the state file still
# lists, then fall back to the stock cleanup.
fleet_cleanup() {
    if [ -n "${SUP_PID:-}" ] && kill -0 "$SUP_PID" 2>/dev/null; then
        kill -TERM "$SUP_PID" 2>/dev/null || true
        for _ in 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19 20; do
            kill -0 "$SUP_PID" 2>/dev/null || break
            sleep 0.2
        done
    fi
    if [ -s "$STATE" ]; then
        # Drained wards publish pid 0 — and `kill -9 0` would take out
        # this whole process group, so filter rigorously.
        for _p in $(grep -o '"pid": [0-9]*' "$STATE" | tr -dc '0-9\n'); do
            [ -n "$_p" ] && [ "$_p" -gt 1 ] && kill -9 "$_p" 2>/dev/null || true
        done
    fi
    smoke_kill_all
    rm -rf "$SMOKE_SCRATCH"
}
trap fleet_cleanup EXIT INT TERM

# Nth (1-based) numeric KEY in the state file. Field order is fixed by
# fleet_state_json: pid 1 = supervisor, 2 = router, 3.. = shards;
# restarts/addr 1 = router, 2.. = shards.
state_nth() {
    grep -o "\"$1\": [0-9]*" "$STATE" | sed -n "$2p" | tr -dc '0-9'
}
shard_pid() { state_nth pid $((3 + $1)); }
shard_restarts() { state_nth restarts $((2 + $1)); }
router_restarts() { state_nth restarts 1; }
shard_addr() {
    grep -o '"addr": "[^"]*"' "$STATE" | sed -n "$((2 + $1))p" | cut -d'"' -f4
}

# Waits until shard $1 has been restarted at least $2 times and answers
# stats again — the supervisor only readmits a shard that pings, and a
# WAL-backed shard only listens after replaying its log.
wait_respawned() {
    _tries=0
    while true; do
        _r=$(shard_restarts "$1")
        if [ -n "$_r" ] && [ "$_r" -ge "$2" ]; then
            _pid=$(shard_pid "$1")
            if [ -n "$_pid" ] && [ "$_pid" -gt 0 ] &&
                "$CLIENT" --addr "$(shard_addr "$1")" stats --json \
                    >/dev/null 2>&1; then
                return 0
            fi
        fi
        _tries=$((_tries + 1))
        [ "$_tries" -gt 150 ] && smoke_fail "shard $1 never came back"
        sleep 0.1
    done
}

# Seeded transport faults on every shard: sporadic 30 ms read stalls and
# 3-byte partial writes. Deterministic per shard, nasty in aggregate.
FAULTS='serve.transport.read=trigger:slow-read:30@prob:0.03:1701'
FAULTS="$FAULTS;serve.transport.write=trigger:partial-write:3@prob:0.05:1702"

rm -rf "$CHILD_LOGS" && mkdir -p "$CHILD_LOGS"
"$SUPERVISOR" --shards 3 --root "$ROOT" \
    --state-file "$STATE" --port-file "$PORT" --log-dir "$CHILD_LOGS" \
    --workers 2 --cache-mb 32 \
    --restart-backoff-ms 100 --restart-backoff-max-ms 500 \
    --shard-arg --faults --shard-arg "$FAULTS" \
    --router-arg --io-timeout-ms --router-arg 2000 \
    --router-arg --health-interval-ms --router-arg 150 \
    --router-arg --breaker-cooldown-ms --router-arg 100 \
    >"$SMOKE_LOG_DIR/$SMOKE_TAG-supervisor.log" 2>&1 &
SUP_PID=$!
smoke_wait_port "$PORT"
ROUTER_ADDR=$SMOKE_ADDR
smoke_wait_ready "$ROUTER_ADDR"
echo "$SMOKE_NAME: supervised fleet up, router on $ROUTER_ADDR"

# 2. Closed-loop hammer in the background while the kill/stall schedule
#    runs in the foreground. Exit 0 == zero lost requests.
"$BENCH_LOAD" --chaos "$ROUTER_ADDR" --seconds 14 --seed 7 \
    >"$LOAD_JSON" 2>"$SMOKE_LOG_DIR/$SMOKE_TAG-load.log" &
LOAD_PID=$!

sleep 2
VICTIM0_PID=$(shard_pid 0)
kill -9 "$VICTIM0_PID"
echo "$SMOKE_NAME: killed shard 0 (pid $VICTIM0_PID) under load"
wait_respawned 0 1
echo "$SMOKE_NAME: shard 0 restarted and warm"

sleep 1
STALL_PID=$(shard_pid 1)
kill -STOP "$STALL_PID"
echo "$SMOKE_NAME: stalled shard 1 (pid $STALL_PID)"
sleep 1
kill -CONT "$STALL_PID"

sleep 1
VICTIM2_PID=$(shard_pid 2)
kill -9 "$VICTIM2_PID"
echo "$SMOKE_NAME: killed shard 2 (pid $VICTIM2_PID) under load"
wait_respawned 2 1

wait "$LOAD_PID" || {
    cat "$LOAD_JSON" >&2 || true
    smoke_fail "chaos hammer lost requests (bench_load --chaos exited nonzero)"
}
P99=$(grep '"latency_p99_micros"' "$LOAD_JSON" | head -n 1 |
    sed 's/.*://' | tr -dc '0-9.')
awk "BEGIN{exit !($P99 <= $P99_BUDGET)}" || {
    cat "$LOAD_JSON" >&2
    smoke_fail "p99 ${P99}us exceeds budget ${P99_BUDGET}us"
}
echo "$SMOKE_NAME: zero lost requests through 2 kills + 1 stall (p99 ${P99}us)"

# 3. The restarted shard re-warmed from its WAL before readmission: it
#    recovered records at boot and the replayed keyspace comes back as
#    hits. Misses are NOT zero in general — while shard 2 was dead its
#    keys fell back here (and a hedge backup can land a foreign key
#    too), each compiling cold exactly once — but they are bounded by
#    the 16 distinct warm keys. A shard that lost its WAL would pay a
#    cold compile for its *own* keyspace on top and recover 0 records.
S0_STATS=$("$CLIENT" --addr "$(shard_addr 0)" stats --json)
echo "$S0_STATS" | grep -q '"records_recovered": 0' && {
    echo "$S0_STATS" >&2
    smoke_fail "restarted shard 0 recovered nothing from its WAL"
}
S0_MISSES=$(echo "$S0_STATS" | grep '"misses"' | head -n 1 | tr -dc '0-9')
S0_HITS=$(echo "$S0_STATS" | grep '"hits"' | head -n 1 | tr -dc '0-9')
[ "$S0_MISSES" -le 16 ] || {
    echo "$S0_STATS" >&2
    smoke_fail "restarted shard 0 compiled cold ($S0_MISSES misses): WAL warm-up failed"
}
[ "$S0_HITS" -gt "$S0_MISSES" ] ||
    smoke_fail "restarted shard 0 served mostly cold ($S0_HITS hits, $S0_MISSES misses)"
echo "$SMOKE_NAME: shard 0 restarted warm ($S0_HITS hits, $S0_MISSES foreign-key misses)"

# 4. A request whose budget is already gone is refused up front with the
#    machine-readable code — before forwarding, before compiling.
OUT=$("$CLIENT" --addr "$ROUTER_ADDR" workload ghz:15 --deadline-ms 0 --json 2>&1) && {
    echo "$OUT" >&2
    smoke_fail "zero-budget request was not rejected"
}
echo "$OUT" | grep -q 'deadline_exceeded' || {
    echo "$OUT" >&2
    smoke_fail "rejection lacks the deadline_exceeded code"
}
RSTATS=$("$CLIENT" --addr "$ROUTER_ADDR" stats --json)
echo "$RSTATS" | grep -q '"deadline_rejected": 0' && {
    echo "$RSTATS" >&2
    smoke_fail "router resilience counters did not record the deadline rejection"
}

# 5. Graceful drain: the router never crashed, and SIGTERM winds the
#    whole fleet down via protocol shutdowns — exit 0, no hard kills
#    (exit 2 would mean a child ignored the drain).
[ "$(router_restarts)" = 0 ] ||
    smoke_fail "router restarted $(router_restarts) times during the run"
[ "$(shard_restarts 0)" -ge 1 ] && [ "$(shard_restarts 2)" -ge 1 ] ||
    smoke_fail "state file lost the shard restart history"
kill -TERM "$SUP_PID"
RC=0
wait "$SUP_PID" || RC=$?
[ "$RC" = 0 ] || smoke_fail "supervisor drain was not clean (exit $RC)"
echo "$SMOKE_NAME: SIGTERM drained the fleet cleanly"

trap - EXIT INT TERM
smoke_kill_all
rm -rf "$SMOKE_SCRATCH" "$CHILD_LOGS"
rm -f "$SMOKE_LOG_DIR/$SMOKE_TAG"-*.log "$LOAD_JSON"
echo "$SMOKE_NAME: OK"
