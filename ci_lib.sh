# Shared plumbing for the serving-tier smoke tests. Source from a
# script that has already set SMOKE_NAME (log prefix, e.g. "serve
# smoke") and SMOKE_TAG (filesystem-safe, e.g. "serve"):
#
#     SMOKE_NAME="serve smoke"; SMOKE_TAG=serve
#     . ./ci_lib.sh
#     smoke_build && smoke_init
#
# What callers get:
#   - smoke_start_daemon NAME [args...] / smoke_start_router NAME args...
#     boot a server on an ephemeral port, wait for the port file, then
#     poll the stats endpoint until it answers — readiness is observed,
#     never slept for. Sets SMOKE_ADDR and SMOKE_PID.
#   - every booted process is registered and killed -9 by the EXIT trap,
#     so a failing assertion never leaks daemons into the CI host.
#   - server output lands in $SMOKE_LOG_DIR (default target/smoke-logs),
#     which survives failure for artifact upload; smoke_pass removes the
#     run's logs on success.
#   - smoke_fail MESSAGE prints "<SMOKE_NAME>: MESSAGE" to stderr and
#     exits 1 (the trap cleans up).

SERVE=target/release/qcs-serve
ROUTER=target/release/qcs-router
CLIENT=target/release/qcs-client
SUPERVISOR=target/release/qcs-supervisor
BENCH_LOAD=target/release/bench_load
SMOKE_LOG_DIR=${SMOKE_LOG_DIR:-target/smoke-logs}

smoke_build() {
    [ -x "$SERVE" ] && [ -x "$CLIENT" ] && [ -x "$ROUTER" ] &&
        [ -x "$SUPERVISOR" ] && [ -x "$BENCH_LOAD" ] ||
        cargo build --release -p qcs-serve -p qcs-supervisor
}

smoke_init() {
    SMOKE_SCRATCH=$(mktemp -d)
    SMOKE_PIDS=""
    mkdir -p "$SMOKE_LOG_DIR"
    rm -f "$SMOKE_LOG_DIR/$SMOKE_TAG"-*.log
    trap 'smoke_kill_all; rm -rf "$SMOKE_SCRATCH"' EXIT INT TERM
}

smoke_kill_all() {
    for _pid in $SMOKE_PIDS; do
        kill -9 "$_pid" 2>/dev/null || true
    done
}

smoke_fail() {
    echo "$SMOKE_NAME: $*" >&2
    exit 1
}

# Polls (up to ~10 s) for a port file, then sets SMOKE_ADDR.
smoke_wait_port() {
    _pf=$1
    _tries=0
    while [ ! -s "$_pf" ]; do
        _tries=$((_tries + 1))
        [ "$_tries" -gt 100 ] && smoke_fail "server never published its port"
        sleep 0.1
    done
    SMOKE_ADDR="127.0.0.1:$(cat "$_pf")"
}

# Polls (up to ~10 s) until the stats endpoint at $1 answers: the server
# is accepting connections and serving frames, not merely forked.
smoke_wait_ready() {
    _tries=0
    while ! "$CLIENT" --addr "$1" stats --json >/dev/null 2>&1; do
        _tries=$((_tries + 1))
        [ "$_tries" -gt 100 ] && smoke_fail "server at $1 never became ready"
        sleep 0.1
    done
}

# smoke_start_daemon NAME [extra qcs-serve args...]
# Boots a daemon, registers it for cleanup, waits until it serves stats.
smoke_start_daemon() {
    _name=$1
    shift
    _pf="$SMOKE_SCRATCH/$_name.port"
    rm -f "$_pf"
    "$SERVE" --addr 127.0.0.1:0 --port-file "$_pf" "$@" \
        >"$SMOKE_LOG_DIR/$SMOKE_TAG-$_name.log" 2>&1 &
    SMOKE_PID=$!
    SMOKE_PIDS="$SMOKE_PIDS $SMOKE_PID"
    smoke_wait_port "$_pf"
    smoke_wait_ready "$SMOKE_ADDR"
}

# smoke_start_router NAME [qcs-router args, typically --shard ...]
smoke_start_router() {
    _name=$1
    shift
    _pf="$SMOKE_SCRATCH/$_name.port"
    rm -f "$_pf"
    "$ROUTER" --addr 127.0.0.1:0 --port-file "$_pf" "$@" \
        >"$SMOKE_LOG_DIR/$SMOKE_TAG-$_name.log" 2>&1 &
    SMOKE_PID=$!
    SMOKE_PIDS="$SMOKE_PIDS $SMOKE_PID"
    smoke_wait_port "$_pf"
    smoke_wait_ready "$SMOKE_ADDR"
}

# Success epilogue: disarm the trap, stop everything, drop scratch and
# this run's logs (nothing to upload), announce.
smoke_pass() {
    trap - EXIT INT TERM
    smoke_kill_all
    rm -rf "$SMOKE_SCRATCH"
    rm -f "$SMOKE_LOG_DIR/$SMOKE_TAG"-*.log
    echo "$SMOKE_NAME: OK"
}
