#!/usr/bin/env sh
# Crash-recovery smoke test for the persistent result cache: boot the
# daemon with --persist-dir, fill the cache, kill -9 it, restart on the
# same directory, and require warm byte-identical answers. Assumes
# `cargo build --release` already ran (CI runs it first); builds on
# demand otherwise.
set -eu

SERVE=target/release/qcs-serve
CLIENT=target/release/qcs-client
[ -x "$SERVE" ] && [ -x "$CLIENT" ] || cargo build --release -p qcs-serve

WORKLOADS="ghz:8 qft:5 wstate:6"

SCRATCH=$(mktemp -d)
PERSIST_DIR="$SCRATCH/cache"
PORT_FILE="$SCRATCH/port"
SERVE_PID=""
trap 'kill -9 "$SERVE_PID" 2>/dev/null || true; rm -rf "$SCRATCH"' EXIT

# Boots the daemon and waits (up to ~10 s) for its port file.
start_daemon() {
    rm -f "$PORT_FILE"
    "$SERVE" --addr 127.0.0.1:0 --workers 2 \
        --persist-dir "$PERSIST_DIR" --port-file "$PORT_FILE" &
    SERVE_PID=$!
    tries=0
    while [ ! -s "$PORT_FILE" ]; do
        tries=$((tries + 1))
        if [ "$tries" -gt 100 ]; then
            echo "persist smoke: daemon never published its port" >&2
            exit 1
        fi
        sleep 0.1
    done
    ADDR="127.0.0.1:$(cat "$PORT_FILE")"
}

# Compiles every workload (fixed request ids, so responses are
# reproducible byte-for-byte across restarts) into $1/<workload>.json.
compile_sweep() {
    out_dir=$1
    mkdir -p "$out_dir"
    for w in $WORKLOADS; do
        file="$out_dir/$(echo "$w" | tr ':' '-').json"
        "$CLIENT" --addr "$ADDR" workload "$w" --device surface17 \
            --request-id "smoke-$w" --json >"$file"
        grep -q '"type": "result"' "$file" || {
            echo "persist smoke: $w did not compile:" >&2
            cat "$file" >&2
            exit 1
        }
    done
}

start_daemon
echo "persist smoke: daemon on $ADDR, persisting to $PERSIST_DIR"
compile_sweep "$SCRATCH/before"

# Crash: no shutdown protocol, no flush beyond the per-append fsync.
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
echo "persist smoke: daemon killed with SIGKILL"

# Restart on the same directory — the WAL replay must warm the cache.
start_daemon
echo "persist smoke: daemon restarted on $ADDR"

STATS=$("$CLIENT" --addr "$ADDR" stats --json)
echo "$STATS" | grep -q '"records_recovered": 3' || {
    echo "persist smoke: expected 3 recovered records:" >&2
    echo "$STATS" >&2
    exit 1
}

compile_sweep "$SCRATCH/after"
for w in $WORKLOADS; do
    name="$(echo "$w" | tr ':' '-').json"
    cmp -s "$SCRATCH/before/$name" "$SCRATCH/after/$name" || {
        echo "persist smoke: $w response diverged after crash recovery" >&2
        exit 1
    }
done

# Every post-restart compile must have been a warm hit.
STATS=$("$CLIENT" --addr "$ADDR" stats --json)
echo "$STATS" | grep -q '"hits": 3' || {
    echo "persist smoke: expected 3 warm cache hits:" >&2
    echo "$STATS" >&2
    exit 1
}
echo "$STATS" | grep -q '"misses": 0' || {
    echo "persist smoke: expected zero cache misses after recovery:" >&2
    echo "$STATS" >&2
    exit 1
}

"$CLIENT" --addr "$ADDR" shutdown >/dev/null
wait "$SERVE_PID"
trap - EXIT
rm -rf "$SCRATCH"
echo "persist smoke: OK"
