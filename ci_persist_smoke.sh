#!/usr/bin/env sh
# Crash-recovery smoke test for the persistent result cache: boot the
# daemon with --persist-dir, fill the cache, kill -9 it, restart on the
# same directory, and require warm byte-identical answers. Assumes
# `cargo build --release` already ran (CI runs it first); builds on
# demand otherwise.
set -eu

SMOKE_NAME="persist smoke"
SMOKE_TAG=persist
. ./ci_lib.sh
smoke_build
smoke_init

WORKLOADS="ghz:8 qft:5 wstate:6"
PERSIST_DIR="$SMOKE_SCRATCH/cache"

# Compiles every workload (fixed request ids, so responses are
# reproducible byte-for-byte across restarts) into $1/<workload>.json.
compile_sweep() {
    out_dir=$1
    mkdir -p "$out_dir"
    for w in $WORKLOADS; do
        file="$out_dir/$(echo "$w" | tr ':' '-').json"
        "$CLIENT" --addr "$ADDR" workload "$w" --device surface17 \
            --request-id "smoke-$w" --json >"$file"
        grep -q '"type": "result"' "$file" || {
            cat "$file" >&2
            smoke_fail "$w did not compile"
        }
    done
}

smoke_start_daemon first --workers 2 --persist-dir "$PERSIST_DIR"
ADDR=$SMOKE_ADDR
SERVE_PID=$SMOKE_PID
echo "$SMOKE_NAME: daemon on $ADDR, persisting to $PERSIST_DIR"
compile_sweep "$SMOKE_SCRATCH/before"

# Crash: no shutdown protocol, no flush beyond the per-append fsync.
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
echo "$SMOKE_NAME: daemon killed with SIGKILL"

# Restart on the same directory — the WAL replay must warm the cache.
smoke_start_daemon second --workers 2 --persist-dir "$PERSIST_DIR"
ADDR=$SMOKE_ADDR
SERVE_PID=$SMOKE_PID
echo "$SMOKE_NAME: daemon restarted on $ADDR"

STATS=$("$CLIENT" --addr "$ADDR" stats --json)
echo "$STATS" | grep -q '"records_recovered": 3' || {
    echo "$STATS" >&2
    smoke_fail "expected 3 recovered records"
}

compile_sweep "$SMOKE_SCRATCH/after"
for w in $WORKLOADS; do
    name="$(echo "$w" | tr ':' '-').json"
    cmp -s "$SMOKE_SCRATCH/before/$name" "$SMOKE_SCRATCH/after/$name" ||
        smoke_fail "$w response diverged after crash recovery"
done

# Every post-restart compile must have been a warm hit.
STATS=$("$CLIENT" --addr "$ADDR" stats --json)
echo "$STATS" | grep -q '"hits": 3' || {
    echo "$STATS" >&2
    smoke_fail "expected 3 warm cache hits"
}
echo "$STATS" | grep -q '"misses": 0' || {
    echo "$STATS" >&2
    smoke_fail "expected zero cache misses after recovery"
}

"$CLIENT" --addr "$ADDR" shutdown >/dev/null
wait "$SERVE_PID"
smoke_pass
