#!/usr/bin/env sh
# Smoke test for the mapper portfolio serving path: an auto-strategy
# compile returns a verified result, a deadline no cold compile can
# meet still returns a verified cheapest-lane (trivial/trivial) result
# instead of deadline_exceeded, an explicit --race request serves, and
# the stats portfolio counters account for all three. Assumes
# `cargo build --release` already ran (CI runs it first); builds on
# demand otherwise.
set -eu

SMOKE_NAME="portfolio smoke"
SMOKE_TAG=portfolio
. ./ci_lib.sh
smoke_build
smoke_init

smoke_start_daemon daemon --workers 2
ADDR=$SMOKE_ADDR
SERVE_PID=$SMOKE_PID
echo "$SMOKE_NAME: daemon on $ADDR"

# Metric-driven selection: an auto compile is served and verified.
AUTO_OUT=$("$CLIENT" --addr "$ADDR" workload qft:8 --strategy auto --json)
echo "$AUTO_OUT" | grep -q '"type": "result"' || {
    echo "$AUTO_OUT" >&2
    smoke_fail "auto compile did not return a result"
}
echo "$AUTO_OUT" | grep -q '"verified": true' || {
    echo "$AUTO_OUT" >&2
    smoke_fail "auto compile was not verified"
}

# The degradation guarantee: a 10 ms budget is far below the minimum
# race budget, so the portfolio must degrade to the cheapest lane and
# still answer with a verified trivial/trivial result — never
# deadline_exceeded for an auto job.
TIGHT_OUT=$("$CLIENT" --addr "$ADDR" workload wstate:9 --strategy auto --deadline-ms 10 --json)
echo "$TIGHT_OUT" | grep -q '"type": "result"' || {
    echo "$TIGHT_OUT" >&2
    smoke_fail "tight-deadline auto compile did not return a result"
}
echo "$TIGHT_OUT" | grep -q '"placer": "trivial"' || {
    echo "$TIGHT_OUT" >&2
    smoke_fail "tight-deadline compile was not served by the trivial placer"
}
echo "$TIGHT_OUT" | grep -q '"router": "trivial"' || {
    echo "$TIGHT_OUT" >&2
    smoke_fail "tight-deadline compile was not served by the trivial router"
}
echo "$TIGHT_OUT" | grep -q '"verified": true' || {
    echo "$TIGHT_OUT" >&2
    smoke_fail "tight-deadline compile was not verified"
}

# Forced racing: --race serves the best verified lane result.
RACE_OUT=$("$CLIENT" --addr "$ADDR" workload ghz:8 --race --json)
echo "$RACE_OUT" | grep -q '"type": "result"' || {
    echo "$RACE_OUT" >&2
    smoke_fail "raced compile did not return a result"
}
echo "$RACE_OUT" | grep -q '"verified": true' || {
    echo "$RACE_OUT" >&2
    smoke_fail "raced compile was not verified"
}

# The stats portfolio block accounts for all three portfolio jobs, and
# at least one run degraded to the cheapest lane.
STATS=$("$CLIENT" --addr "$ADDR" stats --json)
echo "$STATS" | grep -q '"portfolio"' || {
    echo "$STATS" >&2
    smoke_fail "stats carries no portfolio block"
}
echo "$STATS" | grep -q '"cheapest": 1' || {
    echo "$STATS" >&2
    smoke_fail "the tight-deadline run did not degrade to the cheapest lane"
}
echo "$STATS" | grep -q '"budget_limited": 1' || {
    echo "$STATS" >&2
    smoke_fail "the tight-deadline run was not counted as budget-limited"
}

# Clean protocol shutdown; the daemon process must exit on its own.
"$CLIENT" --addr "$ADDR" shutdown >/dev/null
wait "$SERVE_PID"
smoke_pass
