#!/usr/bin/env sh
# Semantic-cache smoke test: compile a circuit, resubmit a renamed +
# relabeled + reordered twin, and require the daemon to serve the twin
# from the canonical index (`canonical_hits: 1`) instead of recompiling.
# Also pins the offline `--canonical-digest` tool: the twins must share
# a canonical digest while their exact digests differ. Assumes `cargo
# build --release` already ran (CI runs it first); builds on demand
# otherwise.
set -eu

SMOKE_NAME="semcache smoke"
SMOKE_TAG=semcache
. ./ci_lib.sh
smoke_build
smoke_init

DEVICE=grid:3x4

# The subject circuit, and a hand-relabeled (0<->3, 1<->2) twin with two
# disjoint commuting gates swapped — textually different, semantically
# the same program.
cat >"$SMOKE_SCRATCH/original.qasm" <<'EOF'
OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
creg c[4];
h q[0];
cx q[0],q[1];
cx q[1],q[2];
cx q[2],q[3];
t q[1];
rz(0.5) q[3];
EOF
cat >"$SMOKE_SCRATCH/twin.qasm" <<'EOF'
OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
creg c[4];
h q[3];
cx q[3],q[2];
cx q[2],q[1];
cx q[1],q[0];
rz(0.5) q[0];
t q[2];
EOF

# Offline digest tool: canonical digests collapse, exact digests don't.
DIGESTS_A=$("$CLIENT" --canonical-digest "$SMOKE_SCRATCH/original.qasm")
DIGESTS_B=$("$CLIENT" --canonical-digest "$SMOKE_SCRATCH/twin.qasm")
CANON_A=$(echo "$DIGESTS_A" | awk '/^canonical/ {print $2}')
CANON_B=$(echo "$DIGESTS_B" | awk '/^canonical/ {print $2}')
EXACT_A=$(echo "$DIGESTS_A" | awk '/^exact/ {print $2}')
EXACT_B=$(echo "$DIGESTS_B" | awk '/^exact/ {print $2}')
[ -n "$CANON_A" ] || smoke_fail "--canonical-digest printed no canonical line"
[ "$CANON_A" = "$CANON_B" ] ||
    smoke_fail "twins must share a canonical digest ($CANON_A vs $CANON_B)"
[ "$EXACT_A" != "$EXACT_B" ] ||
    smoke_fail "twins must differ on the exact digest ($EXACT_A)"
echo "$SMOKE_NAME: twins share canonical digest $CANON_A, exact digests differ"

smoke_start_daemon daemon --workers 2
ADDR=$SMOKE_ADDR
SERVE_PID=$SMOKE_PID
echo "$SMOKE_NAME: daemon on $ADDR"

"$CLIENT" --addr "$ADDR" compile "$SMOKE_SCRATCH/original.qasm" \
    --device "$DEVICE" --json >"$SMOKE_SCRATCH/original.json"
grep -q '"type": "result"' "$SMOKE_SCRATCH/original.json" || {
    cat "$SMOKE_SCRATCH/original.json" >&2
    smoke_fail "original did not compile"
}

"$CLIENT" --addr "$ADDR" compile "$SMOKE_SCRATCH/twin.qasm" \
    --device "$DEVICE" --json >"$SMOKE_SCRATCH/twin.json"
grep -q '"type": "result"' "$SMOKE_SCRATCH/twin.json" || {
    cat "$SMOKE_SCRATCH/twin.json" >&2
    smoke_fail "twin did not compile"
}

STATS=$("$CLIENT" --addr "$ADDR" stats --json)
echo "$STATS" | grep -q '"canonical_hits": 1' || {
    echo "$STATS" >&2
    smoke_fail "the twin must be a canonical hit"
}
echo "$STATS" | grep -q '"canonical_rejected": 0' || {
    echo "$STATS" >&2
    smoke_fail "the verifier must not reject the canonical replay"
}
echo "$SMOKE_NAME: twin served from the canonical index"

"$CLIENT" --addr "$ADDR" shutdown >/dev/null
wait "$SERVE_PID"
smoke_pass
