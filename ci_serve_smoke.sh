#!/usr/bin/env sh
# Smoke test for the compilation daemon: boot it on an ephemeral port,
# compile one GHZ circuit through the client, check the stats endpoint,
# and shut down cleanly. Assumes `cargo build --release` already ran
# (CI runs it first); builds on demand otherwise.
set -eu

SERVE=target/release/qcs-serve
CLIENT=target/release/qcs-client
[ -x "$SERVE" ] && [ -x "$CLIENT" ] || cargo build --release -p qcs-serve

PORT_FILE=$(mktemp)
rm -f "$PORT_FILE" # daemon recreates it once listening
"$SERVE" --addr 127.0.0.1:0 --workers 2 --port-file "$PORT_FILE" &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true; rm -f "$PORT_FILE"' EXIT

# Wait (up to ~5 s) for the daemon to publish its port.
tries=0
while [ ! -s "$PORT_FILE" ]; do
    tries=$((tries + 1))
    if [ "$tries" -gt 50 ]; then
        echo "serve smoke: daemon never published its port" >&2
        exit 1
    fi
    sleep 0.1
done
ADDR="127.0.0.1:$(cat "$PORT_FILE")"
echo "serve smoke: daemon on $ADDR"

# One GHZ compile must produce a result frame with a report.
OUT=$("$CLIENT" --addr "$ADDR" workload ghz:8 --device surface17 --json)
echo "$OUT" | grep -q '"type": "result"' || {
    echo "serve smoke: compile did not return a result:" >&2
    echo "$OUT" >&2
    exit 1
}

# Stats must acknowledge the served job.
STATS=$("$CLIENT" --addr "$ADDR" stats --json)
echo "$STATS" | grep -q '"type": "stats"' || {
    echo "serve smoke: stats response malformed:" >&2
    echo "$STATS" >&2
    exit 1
}
echo "$STATS" | grep -q '"jobs": 1' || {
    echo "serve smoke: expected exactly one served job:" >&2
    echo "$STATS" >&2
    exit 1
}

# Clean protocol shutdown; the daemon process must exit on its own.
"$CLIENT" --addr "$ADDR" shutdown >/dev/null
wait "$SERVE_PID"
trap - EXIT
rm -f "$PORT_FILE"
echo "serve smoke: OK"
