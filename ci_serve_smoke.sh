#!/usr/bin/env sh
# Smoke test for the compilation daemon: boot it on an ephemeral port,
# compile one GHZ circuit through the client, check the stats endpoint,
# and shut down cleanly. Assumes `cargo build --release` already ran
# (CI runs it first); builds on demand otherwise.
set -eu

SMOKE_NAME="serve smoke"
SMOKE_TAG=serve
. ./ci_lib.sh
smoke_build
smoke_init

smoke_start_daemon daemon --workers 2
ADDR=$SMOKE_ADDR
SERVE_PID=$SMOKE_PID
echo "$SMOKE_NAME: daemon on $ADDR"

# One GHZ compile must produce a result frame with a report.
OUT=$("$CLIENT" --addr "$ADDR" workload ghz:8 --device surface17 --json)
echo "$OUT" | grep -q '"type": "result"' || {
    echo "$OUT" >&2
    smoke_fail "compile did not return a result"
}

# Stats must acknowledge the served job (readiness polling issues stats
# requests, which never count as jobs).
STATS=$("$CLIENT" --addr "$ADDR" stats --json)
echo "$STATS" | grep -q '"type": "stats"' || {
    echo "$STATS" >&2
    smoke_fail "stats response malformed"
}
echo "$STATS" | grep -q '"jobs": 1' || {
    echo "$STATS" >&2
    smoke_fail "expected exactly one served job"
}

# Clean protocol shutdown; the daemon process must exit on its own.
"$CLIENT" --addr "$ADDR" shutdown >/dev/null
wait "$SERVE_PID"
smoke_pass
