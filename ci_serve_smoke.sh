#!/usr/bin/env sh
# Smoke test for the compilation daemon: boot it on an ephemeral port,
# compile one GHZ circuit through the client, compile a QFT onto a
# movement-based dpqa: device, check the stats endpoint, and shut down
# cleanly. Assumes `cargo build --release` already ran (CI runs it
# first); builds on demand otherwise.
set -eu

SMOKE_NAME="serve smoke"
SMOKE_TAG=serve
. ./ci_lib.sh
smoke_build
smoke_init

smoke_start_daemon daemon --workers 2
ADDR=$SMOKE_ADDR
SERVE_PID=$SMOKE_PID
echo "$SMOKE_NAME: daemon on $ADDR"

# One GHZ compile must produce a result frame with a report.
OUT=$("$CLIENT" --addr "$ADDR" workload ghz:8 --device surface17 --json)
echo "$OUT" | grep -q '"type": "result"' || {
    echo "$OUT" >&2
    smoke_fail "compile did not return a result"
}

# A movement-backend compile must go through the same path: a dpqa:
# device spec resolves to the neutral-atom backend, serves a verified
# result, and reports the movement router.
DPQA_OUT=$("$CLIENT" --addr "$ADDR" workload qft:8 --device dpqa:3x4 --json)
echo "$DPQA_OUT" | grep -q '"type": "result"' || {
    echo "$DPQA_OUT" >&2
    smoke_fail "dpqa compile did not return a result"
}
echo "$DPQA_OUT" | grep -q '"router": "dpqa-move"' || {
    echo "$DPQA_OUT" >&2
    smoke_fail "dpqa compile did not use the movement router"
}
echo "$DPQA_OUT" | grep -q '"verified": true' || {
    echo "$DPQA_OUT" >&2
    smoke_fail "dpqa compile was not verified"
}

# The client must list the dpqa family among accepted device specs.
"$CLIENT" --list-devices | grep -q 'dpqa:RxC' || \
    smoke_fail "--list-devices does not mention dpqa:RxC"

# Stats must acknowledge both served jobs (readiness polling issues
# stats requests, which never count as jobs).
STATS=$("$CLIENT" --addr "$ADDR" stats --json)
echo "$STATS" | grep -q '"type": "stats"' || {
    echo "$STATS" >&2
    smoke_fail "stats response malformed"
}
echo "$STATS" | grep -q '"jobs": 2' || {
    echo "$STATS" >&2
    smoke_fail "expected exactly two served jobs"
}

# Clean protocol shutdown; the daemon process must exit on its own.
"$CLIENT" --addr "$ADDR" shutdown >/dev/null
wait "$SERVE_PID"
smoke_pass
