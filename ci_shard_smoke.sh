#!/usr/bin/env sh
# Shard-tier smoke test: three daemons behind one qcs-router. Checks,
# in order:
#   1. compiles and a whole benchmark suite flow through the router;
#   2. replaying the workload is served from shard-local caches — on
#      every shard, hits == misses (first pass missed, second pass hit,
#      on the same home shard), proving consistent-hash locality;
#   3. kill -9 of the busiest shard mid-stream loses nothing: every
#      remaining client request still succeeds via rerouting, and the
#      dead shard's forwarded count stays frozen.
# Assumes `cargo build --release` already ran (CI runs it first);
# builds on demand otherwise.
set -eu

SMOKE_NAME="shard smoke"
SMOKE_TAG=shard
. ./ci_lib.sh
smoke_build
smoke_init

WORKLOADS="ghz:4 ghz:5 ghz:6 ghz:7 ghz:8 ghz:9 ghz:10 ghz:11 ghz:12"

smoke_start_daemon shard1 --workers 2 --event-loops 1
S1_ADDR=$SMOKE_ADDR
S1_PID=$SMOKE_PID
smoke_start_daemon shard2 --workers 2 --event-loops 1
S2_ADDR=$SMOKE_ADDR
S2_PID=$SMOKE_PID
smoke_start_daemon shard3 --workers 2 --event-loops 1
S3_ADDR=$SMOKE_ADDR
S3_PID=$SMOKE_PID
smoke_start_router router \
    --shard "$S1_ADDR" --shard "$S2_ADDR" --shard "$S3_ADDR"
ROUTER_ADDR=$SMOKE_ADDR
echo "$SMOKE_NAME: router on $ROUTER_ADDR over $S1_ADDR $S2_ADDR $S3_ADDR"

# Per-shard "forwarded" counters from the router's stats, one per line,
# in --shard order.
forwarded_counts() {
    "$CLIENT" --addr "$ROUTER_ADDR" stats --json |
        grep '"forwarded"' | tr -dc '0-9\n'
}

# A shard-local cache counter ($2: hits or misses) read directly.
shard_cache() {
    "$CLIENT" --addr "$1" stats --json |
        grep "\"$2\"" | head -n 1 | tr -dc '0-9'
}

# 1. Every compile flows through the router.
for W in $WORKLOADS; do
    OUT=$("$CLIENT" --addr "$ROUTER_ADDR" workload "$W" --json)
    echo "$OUT" | grep -q '"type": "result"' || {
        echo "$OUT" >&2
        smoke_fail "compile of $W through the router failed"
    }
done

# 2. Replay: every workload again. Locality means each shard serves its
#    own first-pass misses as second-pass hits: hits == misses > 0 is
#    impossible unless identical requests landed on the same shard twice.
for W in $WORKLOADS; do
    "$CLIENT" --addr "$ROUTER_ADDR" workload "$W" --json >/dev/null ||
        smoke_fail "replay of $W through the router failed"
done
TOTAL_HITS=0
for S in "$S1_ADDR" "$S2_ADDR" "$S3_ADDR"; do
    HITS=$(shard_cache "$S" hits)
    MISSES=$(shard_cache "$S" misses)
    [ "$HITS" = "$MISSES" ] ||
        smoke_fail "shard $S hits ($HITS) != misses ($MISSES): requests migrated"
    TOTAL_HITS=$((TOTAL_HITS + HITS))
done
# 9 workloads, each hit exactly once on the replay.
[ "$TOTAL_HITS" = 9 ] ||
    smoke_fail "expected 9 shard-local replay hits, saw $TOTAL_HITS"
echo "$SMOKE_NAME: cache locality holds (9/9 replay hits shard-local)"

# A whole benchmark suite flows through the router too (after the
# locality check: its fan-out compiles land as misses on its home
# shard, which would skew the hits == misses accounting above).
OUT=$("$CLIENT" --addr "$ROUTER_ADDR" suite --count 6 --seed 7 --json)
echo "$OUT" | grep -q '"type": "suite_result"' || {
    echo "$OUT" >&2
    smoke_fail "suite through the router failed"
}

# 3. Kill the busiest shard mid-stream with SIGKILL, keep the client
#    stream going: zero requests may fail.
BUSIEST=$(forwarded_counts | cat -n | sort -k2 -rn | head -n 1 | awk '{print $1}')
case $BUSIEST in
1) VICTIM_PID=$S1_PID VICTIM_ADDR=$S1_ADDR ;;
2) VICTIM_PID=$S2_PID VICTIM_ADDR=$S2_ADDR ;;
3) VICTIM_PID=$S3_PID VICTIM_ADDR=$S3_ADDR ;;
*) smoke_fail "cannot identify busiest shard" ;;
esac
BEFORE_VICTIM=$(forwarded_counts | sed -n "${BUSIEST}p")

# First half of the stream with every shard alive...
HALF="ghz:4 ghz:5 ghz:6 ghz:7"
for W in $HALF; do
    "$CLIENT" --addr "$ROUTER_ADDR" workload "$W" --json >/dev/null ||
        smoke_fail "request $W failed before the kill"
done
kill -9 "$VICTIM_PID"
wait "$VICTIM_PID" 2>/dev/null || true
echo "$SMOKE_NAME: killed shard $BUSIEST ($VICTIM_ADDR) mid-stream"
# ...and the rest, plus a full replay, against the degraded tier.
for W in ghz:8 ghz:9 ghz:10 ghz:11 ghz:12 $WORKLOADS; do
    "$CLIENT" --addr "$ROUTER_ADDR" workload "$W" --json >/dev/null ||
        smoke_fail "request $W failed after the kill: reroute lost a request"
done

# The dead shard must not have absorbed any successful forward since.
AFTER_VICTIM=$(forwarded_counts | sed -n "${BUSIEST}p")
DELTA=$((AFTER_VICTIM - BEFORE_VICTIM))
# Pre-kill traffic may legitimately land on the victim; post-kill the
# counter freezes. Everything it could have taken pre-kill is <= 4.
[ "$DELTA" -le 4 ] ||
    smoke_fail "dead shard kept taking requests (forwarded grew by $DELTA)"
echo "$SMOKE_NAME: zero failed requests through the kill"

smoke_pass
