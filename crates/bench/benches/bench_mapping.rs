//! Microbenchmarks (in-tree harness): mapping throughput per router (backs the Fig. 3
//! and ablation experiments — how expensive each routing strategy is).

use qcs_bench::microbench::{BenchmarkId, Criterion};
use qcs_bench::{criterion_group, criterion_main};

use qcs_core::mapper::Mapper;
use qcs_core::place::{GraphSimilarityPlacer, TrivialPlacer};
use qcs_core::route::{BidirectionalRouter, LookaheadRouter, NoiseAwareRouter, TrivialRouter};
use qcs_topology::surface::surface17;

fn routing_benchmarks(c: &mut Criterion) {
    let device = surface17();
    let qft = qcs_workloads::qft::qft(12).expect("qft builds");
    let qaoa = qcs_workloads::qaoa::qaoa_maxcut_regular(12, 3, 2, 7).expect("qaoa builds");

    let mut group = c.benchmark_group("route");
    for (label, circuit) in [("qft12", &qft), ("qaoa12", &qaoa)] {
        let mappers: Vec<(&str, Mapper)> = vec![
            (
                "trivial",
                Mapper::new(Box::new(TrivialPlacer), Box::new(TrivialRouter)),
            ),
            (
                "bidirectional",
                Mapper::new(Box::new(TrivialPlacer), Box::new(BidirectionalRouter)),
            ),
            (
                "lookahead",
                Mapper::new(
                    Box::new(TrivialPlacer),
                    Box::new(LookaheadRouter::default()),
                ),
            ),
            (
                "noise-aware",
                Mapper::new(Box::new(TrivialPlacer), Box::new(NoiseAwareRouter)),
            ),
        ];
        for (name, mapper) in mappers {
            group.bench_with_input(BenchmarkId::new(name, label), circuit, |b, circuit| {
                b.iter(|| mapper.map(circuit, &device).expect("maps"));
            });
        }
    }
    group.finish();
}

fn placement_benchmarks(c: &mut Criterion) {
    use qcs_core::place::Placer;
    let device = qcs_topology::surface::surface_extended(5); // 49 qubits
    let qaoa = qcs_workloads::qaoa::qaoa_maxcut_regular(20, 3, 2, 3).expect("qaoa builds");

    let mut group = c.benchmark_group("place");
    group.bench_function("trivial/qaoa20", |b| {
        b.iter(|| TrivialPlacer.place(&qaoa, &device).expect("places"))
    });
    group.bench_function("graph-similarity/qaoa20", |b| {
        b.iter(|| GraphSimilarityPlacer.place(&qaoa, &device).expect("places"))
    });
    group.finish();
}

criterion_group!(benches, routing_benchmarks, placement_benchmarks);
criterion_main!(benches);
