//! Microbenchmarks (in-tree harness): interaction-graph extraction and Table-I metric
//! computation (the profiling cost behind Figs. 4/5 and Table I).

use qcs_bench::microbench::{BenchmarkId, Criterion};
use qcs_bench::{criterion_group, criterion_main};

use qcs_circuit::interaction::interaction_graph;
use qcs_core::profile::CircuitProfile;
use qcs_graph::metrics::GraphMetrics;
use qcs_graph::stats::correlation_matrix;

fn metric_benchmarks(c: &mut Criterion) {
    let mut group = c.benchmark_group("metrics");
    for n in [8usize, 16, 32] {
        let qft = qcs_workloads::qft::qft(n).expect("qft builds");
        group.bench_with_input(BenchmarkId::new("interaction_graph", n), &qft, |b, qft| {
            b.iter(|| interaction_graph(qft));
        });
        let ig = interaction_graph(&qft);
        group.bench_with_input(BenchmarkId::new("graph_metrics", n), &ig, |b, ig| {
            b.iter(|| GraphMetrics::compute(ig));
        });
        group.bench_with_input(BenchmarkId::new("full_profile", n), &qft, |b, qft| {
            b.iter(|| CircuitProfile::of(qft));
        });
    }
    group.finish();
}

fn correlation_benchmarks(c: &mut Criterion) {
    // Correlation matrix over 50 profiles (Section IV's pruning step).
    let profiles: Vec<Vec<f64>> = (0..50)
        .map(|i| {
            let qft = qcs_workloads::qft::qft(3 + i % 12).expect("qft builds");
            CircuitProfile::of(&qft).feature_vec()
        })
        .collect();
    c.bench_function("correlation_matrix/50x22", |b| {
        b.iter(|| correlation_matrix(&profiles));
    });
}

criterion_group!(benches, metric_benchmarks, correlation_benchmarks);
criterion_main!(benches);
