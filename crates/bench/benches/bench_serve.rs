//! Microbenchmarks (in-tree harness) for the compilation service's hot
//! path: the content digest that keys the result cache, a cache hit, and
//! — for scale — the cold compile a hit replaces.

use qcs_bench::microbench::{BenchmarkId, Criterion};
use qcs_bench::{criterion_group, criterion_main};

use qcs_core::config::MapperConfig;
use qcs_serve::cache::ResultCache;
use qcs_serve::compile::{job_digest, run_job, Job};
use qcs_serve::protocol::{CompileRequest, Source};

fn job_for(qubits: usize) -> Job {
    Job::resolve(&CompileRequest {
        source: Source::Workload(format!("qft:{qubits}")),
        device: "surface97".to_string(),
        config: MapperConfig::default(),
        deadline_ms: None,
        request_id: None,
        race: false,
    })
    .expect("benchmark job resolves")
}

fn digest_benchmarks(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_digest");
    for n in [8usize, 16, 32] {
        let job = job_for(n);
        group.bench_with_input(BenchmarkId::new("job_digest", n), &job, |b, job| {
            b.iter(|| job_digest(&job.circuit, job.backend.as_ref(), &job.config));
        });
    }
    group.finish();
}

fn cache_benchmarks(c: &mut Criterion) {
    // One warm entry, hit over and over — the path a repeated request
    // takes instead of run_job.
    let job = job_for(16);
    let output = run_job(&job).expect("benchmark job compiles");
    let full_key = job.full_key();
    let mut cache = ResultCache::new(64 << 20);
    cache.insert(output.digest, full_key.clone(), output.payload.clone());

    c.bench_function("serve_cache/hit_qft16", |b| {
        b.iter(|| {
            cache
                .get(output.digest, &full_key)
                .expect("entry stays cached")
        });
    });
    c.bench_function("serve_cache/cold_compile_qft16", |b| {
        b.iter(|| run_job(&job).expect("benchmark job compiles"));
    });
}

criterion_group!(benches, digest_benchmarks, cache_benchmarks);
criterion_main!(benches);
