//! Microbenchmarks (in-tree harness): state-vector simulation (the verification
//! substrate's cost, bounding how large mapped circuits can be checked).

use qcs_bench::microbench::{BenchmarkId, Criterion};
use qcs_bench::{criterion_group, criterion_main};

use qcs_sim::exec::run_unitary;
use qcs_sim::StateVector;

fn simulation_benchmarks(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim");
    for n in [8usize, 12, 16] {
        let ghz = qcs_workloads::ghz::ghz_chain(n).expect("ghz builds");
        group.bench_with_input(BenchmarkId::new("ghz", n), &ghz, |b, ghz| {
            b.iter(|| run_unitary(ghz, StateVector::zero(n)));
        });
        let qft = qcs_workloads::qft::qft(n).expect("qft builds");
        group.bench_with_input(BenchmarkId::new("qft", n), &qft, |b, qft| {
            b.iter(|| run_unitary(qft, StateVector::zero(n)));
        });
    }
    group.finish();
}

fn equivalence_benchmarks(c: &mut Criterion) {
    use qcs_core::mapper::Mapper;
    use qcs_rng::SeedableRng;
    use qcs_topology::lattice::line_device;

    let device = line_device(8);
    let qft = qcs_workloads::qft::qft(6).expect("qft builds");
    let outcome = Mapper::trivial().map(&qft, &device).expect("maps");
    c.bench_function("mapped_equivalent/qft6_on_line8", |b| {
        b.iter(|| {
            let mut rng = qcs_rng::ChaCha8Rng::seed_from_u64(1);
            qcs_sim::equiv::mapped_equivalent(
                &outcome.decomposed,
                &outcome.routed.circuit,
                8,
                outcome.routed.initial.as_assignment(),
                outcome.routed.final_layout.as_assignment(),
                1,
                &mut rng,
            )
            .expect("equivalent")
        });
    });
}

criterion_group!(benches, simulation_benchmarks, equivalence_benchmarks);
criterion_main!(benches);
