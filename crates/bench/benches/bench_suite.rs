//! Microbenchmarks (in-tree harness): benchmark-suite generation and full-suite
//! mapping (the end-to-end cost of regenerating Fig. 3 / Fig. 5 data).

use qcs_bench::microbench::Criterion;
use qcs_bench::{criterion_group, criterion_main};

use qcs_bench::{fig3_device, map_suite, suite};
use qcs_core::mapper::Mapper;
use qcs_workloads::suite::SuiteConfig;

fn suite_generation(c: &mut Criterion) {
    let config = SuiteConfig {
        count: 22,
        max_qubits: 20,
        max_gates: 500,
        ..SuiteConfig::default()
    };
    c.bench_function("suite/generate22", |b| {
        b.iter(|| suite(&config));
    });
}

fn suite_mapping(c: &mut Criterion) {
    let config = SuiteConfig {
        count: 11,
        max_qubits: 16,
        max_gates: 300,
        ..SuiteConfig::default()
    };
    let benchmarks = suite(&config);
    let device = fig3_device();
    let mapper = Mapper::trivial();
    c.bench_function("suite/map11_trivial_surface97", |b| {
        b.iter(|| map_suite(&benchmarks, &device, &mapper));
    });
}

criterion_group!(benches, suite_generation, suite_mapping);
criterion_main!(benches);
