//! Experiment E8 (extension): placer/router ablation.
//!
//! The paper's Section III lists the design space of mapping approaches
//! (\[35\]–\[42\]); this harness quantifies it on our suite: every placer ×
//! router combination runs over the same benchmarks on Surface-17-style
//! hardware, once with uniform calibration and once with per-element
//! variability (where noise-aware routing should pull ahead in
//! fidelity).

use qcs_rng::ChaCha8Rng;
use qcs_rng::SeedableRng;

use qcs_bench::{map_suite, print_header, row, small_suite_config, suite};
use qcs_core::mapper::Mapper;
use qcs_core::place::{GraphSimilarityPlacer, TrivialPlacer};
use qcs_core::place_sabre::SabrePlacer;
use qcs_core::place_subgraph::SubgraphPlacer;
use qcs_core::report::{MappingRecord, SeriesSummary};
use qcs_core::route::{BidirectionalRouter, LookaheadRouter, NoiseAwareRouter, TrivialRouter};
use qcs_topology::device::Device;
use qcs_topology::error::{Calibration, GateFidelities};
use qcs_topology::surface::surface_extended;

fn mappers() -> Vec<Mapper> {
    vec![
        Mapper::new(Box::new(TrivialPlacer), Box::new(TrivialRouter)),
        Mapper::new(Box::new(TrivialPlacer), Box::new(BidirectionalRouter)),
        Mapper::new(
            Box::new(TrivialPlacer),
            Box::new(LookaheadRouter::default()),
        ),
        Mapper::new(Box::new(GraphSimilarityPlacer), Box::new(TrivialRouter)),
        Mapper::new(
            Box::new(GraphSimilarityPlacer),
            Box::new(LookaheadRouter::default()),
        ),
        Mapper::new(Box::new(GraphSimilarityPlacer), Box::new(NoiseAwareRouter)),
        Mapper::new(
            Box::new(SubgraphPlacer::default()),
            Box::new(LookaheadRouter::default()),
        ),
        Mapper::new(
            Box::new(SabrePlacer::default()),
            Box::new(LookaheadRouter::default()),
        ),
    ]
}

fn mean_depth_overhead(records: &[MappingRecord]) -> f64 {
    if records.is_empty() {
        return 0.0;
    }
    records
        .iter()
        .map(|r| r.report.depth_overhead_pct)
        .sum::<f64>()
        / records.len() as f64
}

fn mean_fidelity(records: &[MappingRecord]) -> f64 {
    if records.is_empty() {
        return 0.0;
    }
    records.iter().map(|r| r.report.fidelity_after).sum::<f64>() / records.len() as f64
}

fn run_on(device: &Device, label: &str) {
    let config = small_suite_config();
    let benchmarks = suite(&config);
    println!(
        "\n=== {label}: {} circuits on {} ===",
        config.count,
        device.name()
    );
    let widths = [18usize, 14, 8, 11, 11, 11, 11];
    print_header(
        &[
            "placer",
            "router",
            "n",
            "overhead%",
            "depth-ov%",
            "swaps",
            "fidelity",
        ],
        &widths,
    );
    for mapper in mappers() {
        let records = map_suite(&benchmarks, device, &mapper);
        let refs: Vec<&MappingRecord> = records.iter().collect();
        let s = SeriesSummary::of(&refs);
        println!(
            "{}",
            row(
                &[
                    mapper.placer_name().to_string(),
                    mapper.router_name().to_string(),
                    s.count.to_string(),
                    format!("{:.1}", s.mean_gate_overhead_pct),
                    format!("{:.1}", mean_depth_overhead(&records)),
                    format!("{:.1}", s.mean_swaps),
                    format!("{:.4}", mean_fidelity(&records)),
                ],
                &widths
            )
        );
    }
}

fn main() {
    // Uniform calibration: algorithm-driven placement should reduce
    // swaps/overhead relative to the trivial mapper.
    let uniform = surface_extended(4); // 31 qubits, enough for the small suite
    run_on(&uniform, "uniform calibration");

    // Calibration variability: noise-aware routing should win on
    // fidelity even when its swap count is no better.
    let coupling = uniform.coupling().clone();
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let cal = Calibration::with_variability(
        &coupling,
        GateFidelities::surface_code_defaults(),
        0.9,
        &mut rng,
    );
    let noisy = Device::with_calibration(
        "surface-31-variable",
        coupling,
        uniform.gate_set().clone(),
        cal,
    )
    .expect("valid device");
    run_on(&noisy, "calibration with 90% error-spread variability");

    println!("\n[expected shapes: lookahead < trivial in swaps; graph-similarity placement");
    println!(" reduces overhead on sparse circuits; noise-aware routing gains fidelity");
    println!(" under calibration spread; bidirectional matches trivial swaps at lower depth]");
}
