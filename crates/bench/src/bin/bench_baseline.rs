//! Benchmark baseline capture and regression gate.
//!
//! Runs the canonical 200-circuit suite through the three headline
//! mapping strategies, the movement-based DPQA backend, and the
//! statevector kernels the verifier leans on, and records two kinds of
//! numbers per workload:
//!
//! - **Deterministic work counters** — candidate-SWAP score evaluations,
//!   SWAPs inserted, AOD moves and move stages, routed gate counts,
//!   suite-JSON digests, verification outcomes, amplitude slots touched
//!   by the sim kernels. These are pure functions of the code and must
//!   match the committed baseline *exactly*; any drift means the
//!   compiler's output or work profile changed.
//! - **Wall-clock times** — compared against a generous relative budget
//!   (`QCS_BENCH_WALL_BUDGET`, default 4.0× the recorded time, `0`
//!   disables), so a pathological slowdown fails CI without flaking on
//!   machine-to-machine variance.
//!
//! Modes:
//!
//! ```text
//! bench_baseline            # re-record BENCH_mapper.json + BENCH_sim.json
//!                           #   + BENCH_dpqa.json in CWD
//! bench_baseline --check    # fresh run, compare against the committed files
//! ```

use std::process::ExitCode;
use std::time::Instant;

use qcs_bench::{fig3_device, suite};
use qcs_circuit::circuit::Circuit;
use qcs_circuit::gate::Gate;
use qcs_circuit::hash::Fnv64;
use qcs_core::backend::Backend as _;
use qcs_core::config::MapperConfig;
use qcs_core::mapper::{Mapper, StageTiming};
use qcs_core::profile::CircuitProfile;
use qcs_core::report::MappingRecord;
use qcs_core::verify::{verify_outcome, VerifyConfig};
use qcs_dpqa::DpqaBackend;
use qcs_json::Json;
use qcs_topology::lattice::grid_device;
use qcs_workloads::suite::SuiteConfig;

const MAPPER_FILE: &str = "BENCH_mapper.json";
const SIM_FILE: &str = "BENCH_sim.json";
const DPQA_FILE: &str = "BENCH_dpqa.json";
const SCHEMA: &str = "qcs-bench-baseline/1";

/// One mapping strategy's suite-level measurement.
struct MapperRow {
    name: &'static str,
    records: usize,
    digest: String,
    swaps_inserted: u64,
    score_evals: u64,
    routed_gates: u64,
    wall_ms: f64,
}

/// Deterministic portfolio counters over the same suite: what the
/// metric-driven selector picks per lane, how often it matches the
/// cheapest-adequate oracle, and which lane a *complete* race would
/// serve. Pure functions of the code (no wall-clock anywhere), gated
/// exactly — drift means the selector or the keep-best rule changed.
struct PortfolioRow {
    records: usize,
    confident: usize,
    selector_matches: usize,
    adequate_picks: usize,
    selected: Vec<usize>,
    race_wins: Vec<usize>,
}

/// One sim kernel's measurement.
struct SimRow {
    name: &'static str,
    amps_touched: u64,
    wall_ms: f64,
}

/// The DPQA movement sweep's suite-level measurement.
struct DpqaRow {
    name: String,
    records: usize,
    digest: String,
    moves_inserted: u64,
    move_stages: u64,
    swaps_inserted: u64,
    movement_served: u64,
    verified: u64,
    wall_ms: f64,
}

fn main() -> ExitCode {
    let check = std::env::args().any(|a| a == "--check");
    let (mapper_rows, portfolio_row) = run_mapper_suite();
    let sim_rows = run_sim_kernels();
    let dpqa_row = run_dpqa_suite();
    let mapper_json = mapper_doc(&mapper_rows, &portfolio_row);
    let sim_json = sim_doc(&sim_rows);
    let dpqa_json = dpqa_doc(&dpqa_row);

    if check {
        let budget = wall_budget();
        let mut ok = true;
        ok &= check_file(MAPPER_FILE, &mapper_json, budget);
        ok &= check_file(SIM_FILE, &sim_json, budget);
        ok &= check_file(DPQA_FILE, &dpqa_json, budget);
        if ok {
            println!("bench gate OK ({MAPPER_FILE}, {SIM_FILE}, {DPQA_FILE})");
            ExitCode::SUCCESS
        } else {
            eprintln!("bench gate FAILED");
            ExitCode::FAILURE
        }
    } else {
        std::fs::write(MAPPER_FILE, mapper_json.to_string_pretty() + "\n").expect("write mapper");
        std::fs::write(SIM_FILE, sim_json.to_string_pretty() + "\n").expect("write sim");
        std::fs::write(DPQA_FILE, dpqa_json.to_string_pretty() + "\n").expect("write dpqa");
        println!("wrote {MAPPER_FILE}, {SIM_FILE} and {DPQA_FILE}");
        ExitCode::SUCCESS
    }
}

fn wall_budget() -> f64 {
    std::env::var("QCS_BENCH_WALL_BUDGET")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(4.0)
}

// ---------------------------------------------------------------------
// Mapper suite
// ---------------------------------------------------------------------

fn run_mapper_suite() -> (Vec<MapperRow>, PortfolioRow) {
    let device = fig3_device();
    let benches = suite(&SuiteConfig::default());
    // Per strategy, the per-circuit (swaps, routed_gates) pairs — the
    // three strategies below are exactly the portfolio's lane
    // pipelines (see `qcs_core::portfolio::lane_config`), so the
    // portfolio counters reuse these runs instead of re-mapping.
    let mut per_lane: Vec<Vec<(usize, usize)>> = Vec::new();
    let rows = ["trivial", "lookahead", "sabre"]
        .into_iter()
        .map(|name| {
            let mapper = match name {
                "trivial" => Mapper::trivial(),
                "lookahead" => Mapper::lookahead(),
                _ => Mapper::sabre(),
            };
            let mut records = Vec::with_capacity(benches.len());
            let mut lane_counters = Vec::with_capacity(benches.len());
            let mut swaps = 0u64;
            let mut evals = 0u64;
            let mut gates = 0u64;
            let start = Instant::now();
            for b in &benches {
                match mapper.map(&b.circuit, &device) {
                    Ok(outcome) => {
                        swaps += outcome.report.swaps_inserted as u64;
                        evals += outcome.routed.score_evals as u64;
                        gates += outcome.report.routed_gates as u64;
                        lane_counters
                            .push((outcome.report.swaps_inserted, outcome.report.routed_gates));
                        let mut report = outcome.report;
                        // Timing is measurement, not content: zero it so
                        // the digest is reproducible (same convention as
                        // the parallel suite engine).
                        report.timing = StageTiming::ZERO;
                        records.push(MappingRecord {
                            name: b.name.clone(),
                            family: b.family.to_string(),
                            synthetic: b.is_synthetic(),
                            profile: CircuitProfile::of(&b.circuit),
                            report,
                        });
                    }
                    Err(e) => {
                        // Keep the per-circuit rows aligned across
                        // lanes: a failed lane can never win or be
                        // adequate.
                        lane_counters.push((usize::MAX, usize::MAX));
                        eprintln!("skipping {}: {e}", b.name);
                    }
                }
            }
            let wall_ms = start.elapsed().as_secs_f64() * 1e3;
            let mut h = Fnv64::new();
            h.write_str(&MappingRecord::batch_to_json(&records));
            per_lane.push(lane_counters);
            MapperRow {
                name,
                records: records.len(),
                digest: format!("{:016x}", h.finish()),
                swaps_inserted: swaps,
                score_evals: evals,
                routed_gates: gates,
                wall_ms,
            }
        })
        .collect();
    (rows, portfolio_counters(&benches, &per_lane))
}

/// Replays the metric-driven selector and the racing engine's
/// keep-best rule over the recorded per-lane counters — the same
/// definitions `portfolio_calibrate` reports, so these numbers must
/// agree with the committed CALIBRATION_portfolio.json.
fn portfolio_counters(
    benches: &[qcs_workloads::suite::Benchmark],
    per_lane: &[Vec<(usize, usize)>],
) -> PortfolioRow {
    use qcs_core::portfolio::{adequate, lane_index, oracle_lane, Selector, LANES};
    let selector = Selector::default();
    let mut row = PortfolioRow {
        records: benches.len(),
        confident: 0,
        selector_matches: 0,
        adequate_picks: 0,
        selected: vec![0; LANES.len()],
        race_wins: vec![0; LANES.len()],
    };
    for (i, b) in benches.iter().enumerate() {
        let selection = selector
            .select(&b.circuit)
            .expect("selection is total without faults");
        let swaps: Vec<usize> = per_lane.iter().map(|lane| lane[i].0).collect();
        let pick = lane_index(selection.lane).expect("known lane");
        let best = swaps.iter().copied().min().unwrap_or(0);
        let winner = (0..LANES.len())
            .min_by_key(|&l| (per_lane[l][i].0, per_lane[l][i].1, l))
            .expect("at least one lane");
        row.confident += usize::from(selection.confident);
        row.selector_matches += usize::from(selection.lane == oracle_lane(&swaps));
        row.adequate_picks += usize::from(adequate(swaps[pick], best));
        row.selected[pick] += 1;
        row.race_wins[winner] += 1;
    }
    row
}

fn mapper_doc(rows: &[MapperRow], portfolio: &PortfolioRow) -> Json {
    let lane_counts = |counts: &[usize]| {
        Json::object(
            qcs_core::portfolio::LANES
                .iter()
                .zip(counts)
                .map(|(lane, &n)| (*lane, Json::from(n)))
                .collect::<Vec<_>>(),
        )
    };
    Json::object([
        ("schema", Json::from(SCHEMA)),
        (
            "strategies",
            Json::Array(
                rows.iter()
                    .map(|r| {
                        Json::object([
                            ("name", Json::from(r.name)),
                            ("records", Json::from(r.records)),
                            ("digest", Json::from(r.digest.clone())),
                            ("swaps_inserted", Json::from(r.swaps_inserted)),
                            ("score_evals", Json::from(r.score_evals)),
                            ("routed_gates", Json::from(r.routed_gates)),
                            ("wall_ms", Json::Number(round3(r.wall_ms))),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "portfolio",
            Json::object([
                ("records", Json::from(portfolio.records)),
                ("confident", Json::from(portfolio.confident)),
                ("selector_matches", Json::from(portfolio.selector_matches)),
                ("adequate_picks", Json::from(portfolio.adequate_picks)),
                ("selected", lane_counts(&portfolio.selected)),
                ("race_wins", lane_counts(&portfolio.race_wins)),
            ]),
        ),
    ])
}

// ---------------------------------------------------------------------
// DPQA movement sweep
// ---------------------------------------------------------------------

/// Runs the full canonical suite through the movement-based DPQA
/// backend on a 9×9 site array (81 sites comfortably hold the suite's
/// 54-qubit ceiling) and aggregates its work counters. Every circuit
/// must compile *and* verify — an unverified or failed compile is a
/// hard error here, not a skipped row, because the serving tier's
/// contract is zero unverified responses.
fn run_dpqa_suite() -> DpqaRow {
    let backend = DpqaBackend::new(9, 9).expect("9x9 array");
    let config = MapperConfig::default();
    let benches = suite(&SuiteConfig::default());
    let mut records = Vec::with_capacity(benches.len());
    let mut moves = 0u64;
    let mut stages = 0u64;
    let mut swaps = 0u64;
    let mut movement_served = 0u64;
    let mut verified = 0u64;
    let start = Instant::now();
    for b in &benches {
        let (outcome, schedule) = backend
            .compile_with_schedule(&b.circuit, &config)
            .unwrap_or_else(|e| panic!("dpqa compile of {} failed: {e}", b.name));
        assert!(outcome.report.verified, "{} served unverified", b.name);
        moves += outcome.report.moves_inserted as u64;
        stages += outcome.report.move_stages as u64;
        swaps += outcome.report.swaps_inserted as u64;
        movement_served += u64::from(schedule.is_some());
        verified += u64::from(outcome.report.verified);
        let mut report = outcome.report;
        report.timing = StageTiming::ZERO;
        records.push(MappingRecord {
            name: b.name.clone(),
            family: b.family.to_string(),
            synthetic: b.is_synthetic(),
            profile: CircuitProfile::of(&b.circuit),
            report,
        });
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let mut h = Fnv64::new();
    h.write_str(&MappingRecord::batch_to_json(&records));
    DpqaRow {
        name: backend.id().to_string(),
        records: records.len(),
        digest: format!("{:016x}", h.finish()),
        moves_inserted: moves,
        move_stages: stages,
        swaps_inserted: swaps,
        movement_served,
        verified,
        wall_ms,
    }
}

fn dpqa_doc(row: &DpqaRow) -> Json {
    Json::object([
        ("schema", Json::from(SCHEMA)),
        (
            "dpqa",
            Json::Array(vec![Json::object([
                ("name", Json::from(row.name.clone())),
                ("records", Json::from(row.records)),
                ("digest", Json::from(row.digest.clone())),
                ("moves_inserted", Json::from(row.moves_inserted)),
                ("move_stages", Json::from(row.move_stages)),
                ("swaps_inserted", Json::from(row.swaps_inserted)),
                ("movement_served", Json::from(row.movement_served)),
                ("verified", Json::from(row.verified)),
                ("wall_ms", Json::Number(round3(row.wall_ms))),
            ])]),
        ),
    ])
}

// ---------------------------------------------------------------------
// Sim kernels
// ---------------------------------------------------------------------

/// Amplitude slots read or written when `circuit` runs on an `n`-qubit
/// state, mirroring the stride-blocked kernel access patterns: full-matrix
/// single-qubit gates visit every amplitude, diagonal/controlled gates
/// only the halves or quarters they act on. Purely a function of the gate
/// list — the regression gate compares it exactly.
fn amps_touched(circuit: &Circuit, n: usize) -> u64 {
    let len = 1u64 << n;
    circuit
        .iter()
        .map(|g| match *g {
            Gate::I(_) | Gate::Measure(_) | Gate::Barrier(_) => 0,
            Gate::Z(_)
            | Gate::S(_)
            | Gate::Sdg(_)
            | Gate::T(_)
            | Gate::Tdg(_)
            | Gate::Rz(..)
            | Gate::Cnot(..)
            | Gate::Swap(..) => len / 2,
            Gate::Cz(..) | Gate::Cphase(..) | Gate::Toffoli(..) => len / 4,
            _ => len,
        })
        .sum()
}

fn run_sim_kernels() -> Vec<SimRow> {
    let mut rows = Vec::new();

    // Raw statevector evolution: QFT-12, the verifier's widest default.
    let qft12 = qcs_workloads::qft::qft(12).expect("qft12");
    let mut state = qcs_sim::StateVector::zero(12);
    qcs_sim::exec::run_unitary_mut(&qft12, &mut state); // warm
    let iters = 20;
    let start = Instant::now();
    for _ in 0..iters {
        state.reset_zero();
        qcs_sim::exec::run_unitary_mut(&qft12, &mut state);
        std::hint::black_box(state.amplitude(0));
    }
    rows.push(SimRow {
        name: "run_unitary_qft12",
        amps_touched: amps_touched(&qft12, 12),
        wall_ms: start.elapsed().as_secs_f64() * 1e3 / f64::from(iters),
    });

    // End-to-end verification: map QFT-12 onto a 3x4 grid and replay the
    // equivalence check the compilation service runs per job.
    let dev = grid_device(3, 4);
    let outcome = Mapper::lookahead().map(&qft12, &dev).expect("map qft12");
    let cfg = VerifyConfig::default();
    verify_outcome(&qft12, &outcome, &dev, &cfg).expect("verify"); // warm
    let iters = 10;
    let start = Instant::now();
    for _ in 0..iters {
        let r = verify_outcome(&qft12, &outcome, &dev, &cfg).expect("verify");
        std::hint::black_box(r.equivalence_checked);
    }
    let width = dev.qubit_count();
    rows.push(SimRow {
        name: "verify_qft12_grid3x4",
        // Two state evolutions (reference + mapped) per equivalence trial.
        amps_touched: cfg.equiv_trials as u64
            * (amps_touched(&qft12, width) + amps_touched(&outcome.native, width)),
        wall_ms: start.elapsed().as_secs_f64() * 1e3 / f64::from(iters),
    });

    rows
}

fn sim_doc(rows: &[SimRow]) -> Json {
    Json::object([
        ("schema", Json::from(SCHEMA)),
        (
            "kernels",
            Json::Array(
                rows.iter()
                    .map(|r| {
                        Json::object([
                            ("name", Json::from(r.name)),
                            ("amps_touched", Json::from(r.amps_touched)),
                            ("wall_ms", Json::Number(round3(r.wall_ms))),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn round3(ms: f64) -> f64 {
    (ms * 1e3).round() / 1e3
}

// ---------------------------------------------------------------------
// Regression check
// ---------------------------------------------------------------------

/// Compares a fresh measurement document against the committed baseline
/// file: every member except `wall_ms` must match exactly; `wall_ms` may
/// grow up to `budget`× the recorded value. Returns `false` (and prints
/// each violation) on regression.
fn check_file(path: &str, fresh: &Json, budget: f64) -> bool {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{path}: cannot read baseline: {e} (run bench_baseline to record it)");
            return false;
        }
    };
    let baseline = match qcs_json::parse(&text) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("{path}: malformed baseline: {e}");
            return false;
        }
    };
    let mut ok = true;
    compare(path, &baseline, fresh, budget, &mut ok);
    ok
}

/// Recursive structural comparison; `path` tracks the JSON location for
/// error messages.
fn compare(path: &str, baseline: &Json, fresh: &Json, budget: f64, ok: &mut bool) {
    match (baseline, fresh) {
        (Json::Object(b), Json::Object(f)) => {
            if b.len() != f.len() || b.iter().zip(f).any(|((bk, _), (fk, _))| bk != fk) {
                eprintln!("{path}: object shape changed");
                *ok = false;
                return;
            }
            for ((key, bv), (_, fv)) in b.iter().zip(f) {
                compare(&format!("{path}.{key}"), bv, fv, budget, ok);
            }
        }
        (Json::Array(b), Json::Array(f)) => {
            if b.len() != f.len() {
                eprintln!("{path}: array length {} -> {}", b.len(), f.len());
                *ok = false;
                return;
            }
            for (i, (bv, fv)) in b.iter().zip(f).enumerate() {
                compare(&format!("{path}[{i}]"), bv, fv, budget, ok);
            }
        }
        (Json::Number(b), Json::Number(f)) if path.ends_with(".wall_ms") => {
            if budget > 0.0 && *f > *b * budget {
                eprintln!("{path}: wall time regressed {b:.3} ms -> {f:.3} ms (budget {budget}x)");
                *ok = false;
            }
        }
        _ => {
            if baseline != fresh {
                eprintln!("{path}: counter drift {baseline:?} -> {fresh:?}");
                *ok = false;
            }
        }
    }
}
