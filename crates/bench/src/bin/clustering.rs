//! Experiment E7 (Section IV): clustering algorithms by their profiles.
//!
//! "Using this new metrics and the common circuit parameters, algorithms
//! can be clustered based on their similarities. Ideally, quantum
//! algorithms with similar properties are ought to show similar
//! performance when run on specific chips using a given mapping
//! strategy." The harness clusters the suite on the pruned Table-I
//! metric subset and then checks the hypothesis: it reports the mapping
//! overhead spread within each cluster versus across the whole suite.

use qcs_rng::ChaCha8Rng;
use qcs_rng::SeedableRng;

use qcs_bench::{default_suite_config, fig3_device, map_suite, small_suite_config, suite};
use qcs_core::mapper::Mapper;
use qcs_core::profile::{cluster_profiles_selected, CircuitProfile};
use qcs_graph::stats::{mean, std_dev};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let config = if quick {
        small_suite_config()
    } else {
        default_suite_config()
    };
    let device = fig3_device();
    println!(
        "profiling and mapping {} circuits on {}…\n",
        config.count,
        device.name()
    );
    let benchmarks = suite(&config);
    let records = map_suite(&benchmarks, &device, &Mapper::trivial());
    let profiles: Vec<CircuitProfile> = records.iter().map(|r| r.profile.clone()).collect();

    let k = 4;
    let mut rng = ChaCha8Rng::seed_from_u64(2022);
    let clustering = cluster_profiles_selected(&profiles, k, &mut rng);
    println!(
        "k-means (k = {k}) on {:?}; inertia {:.1}, {} iterations\n",
        qcs_graph::metrics::GraphMetrics::selected_names(),
        clustering.inertia,
        clustering.iterations
    );

    let overheads: Vec<f64> = records.iter().map(|r| r.report.gate_overhead_pct).collect();
    println!(
        "whole suite: mean overhead {:>7.1}%, std {:>7.1}",
        mean(&overheads),
        std_dev(&overheads)
    );

    let mut within_stds = Vec::new();
    for c in 0..k {
        let members: Vec<usize> = (0..records.len())
            .filter(|&i| clustering.assignments[i] == c)
            .collect();
        if members.is_empty() {
            continue;
        }
        let ov: Vec<f64> = members.iter().map(|&i| overheads[i]).collect();
        // Family composition.
        let mut fams: std::collections::BTreeMap<&str, usize> = Default::default();
        for &i in &members {
            *fams.entry(records[i].family.as_str()).or_insert(0) += 1;
        }
        println!(
            "\ncluster {c}: {} circuits, mean overhead {:>7.1}%, std {:>7.1}",
            members.len(),
            mean(&ov),
            std_dev(&ov)
        );
        let comp: Vec<String> = fams.iter().map(|(f, n)| format!("{f}×{n}")).collect();
        println!("  families: {}", comp.join(", "));
        if ov.len() > 1 {
            within_stds.push(std_dev(&ov));
        }
    }

    let avg_within = mean(&within_stds);
    println!(
        "\nmean within-cluster overhead std: {avg_within:.1} vs suite-wide std {:.1}",
        std_dev(&overheads)
    );
    println!("[paper's hypothesis: similar profiles -> similar mapping performance,");
    println!(" i.e. within-cluster spread below the suite-wide spread]");
}
