//! Experiment E5 (Section IV): Pearson correlation matrix over the
//! metric set and pruning of codependent metrics.
//!
//! "What can be noticed is that large number of handpicked,
//! mapping-related metrics is codependent … In order to reduce the
//! parameter space and select only features that are necessary, a
//! Pearson correlation matrix was created."

use qcs_bench::{default_suite_config, small_suite_config, suite};
use qcs_core::profile::{profile_correlation, prune_codependent_metrics, CircuitProfile};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let config = if quick {
        small_suite_config()
    } else {
        default_suite_config()
    };
    println!(
        "profiling {} benchmark circuits for the metric correlation matrix…\n",
        config.count
    );
    let benchmarks = suite(&config);
    let profiles: Vec<CircuitProfile> = benchmarks
        .iter()
        .map(|b| CircuitProfile::of(&b.circuit))
        .collect();

    let names = CircuitProfile::feature_names();
    let corr = profile_correlation(&profiles);

    // Print the matrix restricted to the graph-metric block (the full
    // 22×22 matrix is written row-wise below it).
    println!("=== Pearson correlation (|r| ≥ 0.90 marked with *) ===");
    print!("{:<24}", "");
    for n in &names {
        print!("{:>7.6}", &n[..n.len().min(6)]);
    }
    println!();
    for (i, row) in corr.iter().enumerate() {
        print!("{:<24}", names[i]);
        for &v in row {
            let mark = if v.abs() >= 0.90 { '*' } else { ' ' };
            print!("{v:>6.2}{mark}");
        }
        println!();
    }

    println!("\nhighly codependent pairs (|r| ≥ 0.90):");
    for i in 0..names.len() {
        for j in (i + 1)..names.len() {
            if corr[i][j].abs() >= 0.90 {
                println!(
                    "  {:<24} ~ {:<24} r = {:+.3}",
                    names[i], names[j], corr[i][j]
                );
            }
        }
    }

    for threshold in [0.95, 0.90, 0.80] {
        let kept = prune_codependent_metrics(&profiles, threshold);
        println!("\nretained features at |r| < {threshold}: {kept:?}");
    }
    println!(
        "\npaper's retained set: avg shortest path (hopcount/closeness), max & min degree, adjacency matrix std dev"
    );
}
