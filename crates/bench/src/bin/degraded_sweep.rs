//! Degraded-operation experiment: mapping overhead vs the fraction of
//! disabled couplers on the 97-qubit extended surface device.
//!
//! For each outage fraction the device is degraded with seeded random
//! coupler outages (`DeviceHealth::random`, qubits untouched) and the
//! benchmark suite is mapped with the trivial and look-ahead mappers.
//! Reported per sweep point: mean gate overhead, mean SWAP count, mean
//! estimated fidelity, how many circuits became unsatisfiable, and the
//! wall-clock mapping time. Pass `--quick` for the 44-circuit suite.

use std::time::Instant;

use qcs_bench::{default_suite_config, fig3_device, print_header, row, small_suite_config, suite};
use qcs_core::mapper::{MapError, Mapper};
use qcs_topology::device::Device;
use qcs_topology::DeviceHealth;
use qcs_workloads::suite::Benchmark;

const FRACTIONS: [f64; 5] = [0.0, 0.05, 0.10, 0.15, 0.20];
const SEEDS: [u64; 3] = [11, 23, 47];

#[derive(Default)]
struct SweepPoint {
    mapped: usize,
    unsatisfiable: usize,
    overhead_sum: f64,
    swaps_sum: f64,
    fidelity_sum: f64,
    wall_ms: f64,
}

impl SweepPoint {
    fn mean(&self, sum: f64) -> f64 {
        if self.mapped == 0 {
            0.0
        } else {
            sum / self.mapped as f64
        }
    }
}

fn map_point(benchmarks: &[Benchmark], device: &Device, mapper: &Mapper) -> SweepPoint {
    let mut point = SweepPoint::default();
    let start = Instant::now();
    for benchmark in benchmarks {
        match mapper.map(&benchmark.circuit, device) {
            Ok(outcome) => {
                point.mapped += 1;
                point.overhead_sum += outcome.report.gate_overhead_pct;
                point.swaps_sum += outcome.report.swaps_inserted as f64;
                point.fidelity_sum += outcome.report.fidelity_after;
            }
            Err(MapError::Unsatisfiable(_)) => point.unsatisfiable += 1,
            Err(e) => panic!("{} failed non-structurally: {e}", benchmark.name),
        }
    }
    point.wall_ms = start.elapsed().as_secs_f64() * 1e3;
    point
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let config = if quick {
        small_suite_config()
    } else {
        default_suite_config()
    };
    let pristine = fig3_device();
    let benchmarks = suite(&config);
    println!(
        "sweeping coupler outages on {} ({} qubits, {} couplers), {} circuits, seeds {SEEDS:?}",
        pristine.name(),
        pristine.qubit_count(),
        pristine.coupler_count(),
        benchmarks.len()
    );

    for (label, mapper) in [
        ("trivial", Mapper::trivial()),
        ("lookahead", Mapper::lookahead()),
    ] {
        println!("\n=== {label} mapper ===");
        let widths = [10usize, 9, 10, 8, 9, 12, 9];
        print_header(
            &[
                "disabled%",
                "couplers",
                "overhead%",
                "swaps",
                "fidelity",
                "unsat/total",
                "wall ms",
            ],
            &widths,
        );
        for frac in FRACTIONS {
            // Aggregate over the outage seeds so one unlucky cut does not
            // dominate the trend; fraction 0 is the pristine baseline.
            let mut total = SweepPoint::default();
            let mut disabled = 0usize;
            let seeds: &[u64] = if frac == 0.0 { &SEEDS[..1] } else { &SEEDS };
            for &seed in seeds {
                let device = if frac == 0.0 {
                    pristine.clone()
                } else {
                    let health = DeviceHealth::random(pristine.coupling(), 0.0, frac, seed);
                    disabled += health.disabled_coupler_count();
                    pristine
                        .degrade(&health)
                        .expect("coupler-only outage leaves qubits")
                };
                let point = map_point(&benchmarks, &device, &mapper);
                total.mapped += point.mapped;
                total.unsatisfiable += point.unsatisfiable;
                total.overhead_sum += point.overhead_sum;
                total.swaps_sum += point.swaps_sum;
                total.fidelity_sum += point.fidelity_sum;
                total.wall_ms += point.wall_ms;
            }
            let runs = seeds.len();
            println!(
                "{}",
                row(
                    &[
                        format!("{:.0}", frac * 100.0),
                        format!("{:.1}", disabled as f64 / runs as f64),
                        format!("{:.1}", total.mean(total.overhead_sum)),
                        format!("{:.1}", total.mean(total.swaps_sum)),
                        format!("{:.4}", total.mean(total.fidelity_sum)),
                        format!("{}/{}", total.unsatisfiable, runs * benchmarks.len()),
                        format!("{:.0}", total.wall_ms / runs as f64),
                    ],
                    &widths
                )
            );
        }
    }
    println!(
        "\n[expectation: overhead and SWAPs climb as couplers disappear — longer detours on a \
         sparser graph. Any circuit that cannot be mapped must land in the unsat column \
         (structured MapError::Unsatisfiable), never panic]"
    );
}
