//! DPQA movement-vs-SWAP study (EXPERIMENTS.md E14).
//!
//! Compiles the benchmark suite twice onto the *same* 9×9
//! interaction-radius topology: once with SWAP routing over the radius
//! graph (the fixed-coupler physics, look-ahead and SABRE routers) and
//! once through the movement-based DPQA backend (atoms relocated by
//! AOD shuttles, connectivity satisfied by moves instead of SWAPs).
//! Reported per mode: circuits served, total connectivity operations
//! (SWAPs or moves), routed gates, mean depth, mean estimated
//! fidelity, and wall-clock compile time. Pass `--quick` for the
//! 44-circuit suite.

use std::time::Instant;

use qcs_bench::{default_suite_config, print_header, row, small_suite_config, suite};
use qcs_core::backend::Backend as _;
use qcs_core::config::MapperConfig;
use qcs_core::mapper::{MapOutcome, Mapper};
use qcs_dpqa::DpqaBackend;
use qcs_workloads::suite::Benchmark;

#[derive(Default)]
struct Totals {
    served: usize,
    conn_ops: u64,
    routed_gates: u64,
    depth_sum: f64,
    fidelity_sum: f64,
    wall_ms: f64,
}

impl Totals {
    fn add(&mut self, outcome: &MapOutcome, conn_ops: u64) {
        self.served += 1;
        self.conn_ops += conn_ops;
        self.routed_gates += outcome.report.routed_gates as u64;
        self.depth_sum += outcome.report.depth_after as f64;
        self.fidelity_sum += outcome.report.fidelity_after;
    }

    fn mean(&self, sum: f64) -> f64 {
        if self.served == 0 {
            0.0
        } else {
            sum / self.served as f64
        }
    }
}

fn print_totals(label: &str, t: &Totals, total: usize, widths: &[usize]) {
    println!(
        "{}",
        row(
            &[
                label.to_string(),
                format!("{}/{total}", t.served),
                format!("{}", t.conn_ops),
                format!("{:.1}", t.conn_ops as f64 / t.served.max(1) as f64),
                format!("{}", t.routed_gates),
                format!("{:.1}", t.mean(t.depth_sum)),
                format!("{:.4}", t.mean(t.fidelity_sum)),
                format!("{:.0}", t.wall_ms),
            ],
            widths
        )
    );
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let config = if quick {
        small_suite_config()
    } else {
        default_suite_config()
    };
    let benchmarks: Vec<Benchmark> = suite(&config);
    let backend = DpqaBackend::new(9, 9).expect("9x9 array");
    let device = backend.device().clone();
    println!(
        "movement vs SWAP on {} ({} sites, {} radius edges), {} circuits",
        backend.id(),
        device.qubit_count(),
        device.coupler_count(),
        benchmarks.len()
    );

    let widths = [16usize, 8, 9, 9, 12, 8, 9, 9];
    print_header(
        &[
            "mode", "served", "conn-ops", "ops/circ", "routed", "depth", "fidelity", "wall ms",
        ],
        &widths,
    );

    // Fixed-coupler physics: SWAP chains over the radius graph.
    for (label, mapper) in [
        ("swap/lookahead", Mapper::lookahead()),
        ("swap/sabre", Mapper::sabre()),
    ] {
        let mut totals = Totals::default();
        let start = Instant::now();
        for b in &benchmarks {
            match mapper.map(&b.circuit, &device) {
                Ok(outcome) => {
                    let swaps = outcome.report.swaps_inserted as u64;
                    totals.add(&outcome, swaps);
                }
                Err(e) => panic!("{} failed under SWAP routing: {e}", b.name),
            }
        }
        totals.wall_ms = start.elapsed().as_secs_f64() * 1e3;
        print_totals(label, &totals, benchmarks.len(), &widths);
    }

    // Movement physics: the same topology, connectivity satisfied by
    // AOD relocations (each charged one stand-in in the routed count).
    let mapper_config = MapperConfig::default();
    let mut totals = Totals::default();
    let mut movement_served = 0usize;
    let start = Instant::now();
    for b in &benchmarks {
        match backend.compile_with_schedule(&b.circuit, &mapper_config) {
            Ok((outcome, schedule)) => {
                movement_served += usize::from(schedule.is_some());
                let moves = outcome.report.moves_inserted as u64;
                totals.add(&outcome, moves);
            }
            Err(e) => panic!("{} failed under movement compilation: {e}", b.name),
        }
    }
    totals.wall_ms = start.elapsed().as_secs_f64() * 1e3;
    print_totals("movement", &totals, benchmarks.len(), &widths);
    println!(
        "\nmovement rung served {movement_served}/{} (rest demoted to SWAP routing)",
        benchmarks.len()
    );
    println!(
        "[expectation: each move is ONE relocation where a SWAP costs three entangling \
         gates, so movement's routed gate count and depth land well below both SWAP \
         routers even when raw move counts are comparable. Same topology, same suite, \
         every response verified]"
    );
}
