//! Exports the benchmark suite as OpenQASM files — the same artifact
//! shape as the qbench suite \[34\] the paper used (a directory of .qasm
//! circuits), so external toolchains (Qiskit, tket, …) can consume the
//! exact benchmark instances behind Figs. 3 and 5.
//!
//! Usage: `cargo run -p qcs-bench --release --bin export_suite [dir]`
//! (default output directory: `target/experiments/suite`).

use std::io::Write as _;
use std::path::PathBuf;

use qcs_bench::default_suite_config;
use qcs_circuit::qasm;
use qcs_workloads::suite::generate_suite;

fn main() -> std::io::Result<()> {
    let dir: PathBuf = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/experiments/suite"));
    std::fs::create_dir_all(&dir)?;

    let config = default_suite_config();
    let suite = generate_suite(&config);
    let mut manifest = String::from("name,family,synthetic,qubits,gates,two_qubit_pct,depth\n");
    for b in &suite {
        let path = dir.join(format!("{}.qasm", b.name));
        let mut f = std::fs::File::create(&path)?;
        f.write_all(qasm::print(&b.circuit).as_bytes())?;
        let s = b.stats();
        manifest.push_str(&format!(
            "{},{},{},{},{},{:.1},{}\n",
            b.name,
            b.family,
            b.is_synthetic(),
            s.qubits,
            s.gates,
            s.two_qubit_fraction * 100.0,
            s.depth
        ));
    }
    std::fs::write(dir.join("manifest.csv"), manifest)?;
    println!(
        "wrote {} circuits + manifest.csv to {}",
        suite.len(),
        dir.display()
    );
    Ok(())
}
