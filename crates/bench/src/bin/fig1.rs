//! Fig. 1: software and hardware functional elements of the quantum
//! computing full-stack, with the co-design information flows.
//!
//! Fig. 1 is an architecture diagram rather than a data plot; this
//! harness renders the stack and then pushes one program through it,
//! printing what each layer receives, produces, and — the grey arrows —
//! which information crossed layer boundaries in each direction.

use qcs_stack::codesign::{AlgorithmInfo, HardwareInfo};
use qcs_stack::pipeline::FullStack;
use qcs_topology::surface::surface17;

fn main() {
    println!("=== Fig. 1: the quantum computing full-stack ===\n");
    println!("   ┌────────────────────────────────────┐");
    println!("   │        quantum application         │   qcs-workloads");
    println!("   ├────────────────────────────────────┤");
    println!("   │  high-level language & front-end   │   qcs-circuit / qcs-stack::frontend");
    println!("   ├────────────────────────────────────┤ ◄── algorithm info (profile) ──┐");
    println!("   │        compiler / mapper           │   qcs-core                     │ co-");
    println!("   ├────────────────────────────────────┤ ◄── hardware info (calib.) ──┐ │ design");
    println!("   │     quantum ISA (eQASM-like)       │   qcs-stack::isa             │ │");
    println!("   ├────────────────────────────────────┤                              │ │");
    println!("   │        control electronics         │   qcs-stack::control         │ │");
    println!("   ├────────────────────────────────────┤ ─────────────────────────────┘ │");
    println!("   │          quantum device            │   qcs-topology ────────────────┘");
    println!("   └────────────────────────────────────┘\n");

    let device = surface17();
    let circuit = qcs_workloads::qaoa::qaoa_maxcut_ring(8, 2, 1).expect("qaoa builds");

    // The two co-design information packets (the grey arrows).
    let hw = HardwareInfo::of(&device);
    let algo = AlgorithmInfo::of(&circuit);
    println!("information flowing UP from the device layer:");
    println!(
        "  qubits = {}, avg distance = {:.2}, diameter = {}, 2q-fidelity spread = {:.4}",
        hw.qubits, hw.average_distance, hw.diameter, hw.two_qubit_fidelity_spread
    );
    println!("information flowing DOWN from the application layer:");
    println!(
        "  {}: density = {:.2}, max degree = {}, avg shortest path = {:.2} (sparse: {})",
        algo.profile.name,
        algo.profile.metrics.density,
        algo.profile.metrics.max_degree,
        algo.profile.metrics.avg_shortest_path,
        algo.is_sparse()
    );

    let stack = FullStack::new(device);
    let run = stack.run_circuit(&circuit).expect("stack runs");
    println!(
        "\nco-design decision at the compiler layer: {:?}",
        run.mapper_choice
    );
    println!("\nper-layer artifact sizes for this program:");
    println!(
        "  application  : {} gates over {} qubits",
        circuit.gate_count(),
        circuit.qubit_count()
    );
    println!(
        "  front-end    : {} gates after optimization",
        run.prepared.circuit.gate_count()
    );
    println!(
        "  compiler     : {} native gates, {} SWAPs, fidelity {:.4}",
        run.outcome.report.routed_gates,
        run.outcome.report.swaps_inserted,
        run.outcome.report.fidelity_after
    );
    println!(
        "  ISA          : {} instructions over {} cycles",
        run.isa.instructions.len(),
        run.isa.total_cycles
    );
    println!(
        "  control      : {} events on {} analog channels",
        run.control.event_count(),
        run.control.channel_count()
    );
}
