//! Experiment E1 (Fig. 2): running a quantum circuit on the Surface-7
//! quantum processor.
//!
//! Reproduces the paper's walkthrough: the 4-qubit, 5-CNOT circuit, its
//! weighted interaction graph, the Surface-7 coupling graph, and the
//! mapped circuit where "an extra SWAP gate is required for being able
//! to perform all CNOT gates". The mapped circuit is verified against
//! the state-vector simulator.

use qcs_rng::ChaCha8Rng;
use qcs_rng::SeedableRng;

use qcs_circuit::circuit::Circuit;
use qcs_circuit::interaction::interaction_graph;
use qcs_core::mapper::Mapper;
use qcs_topology::surface::surface7;

fn fig2_circuit() -> Circuit {
    let mut c = Circuit::with_name(4, "fig2");
    c.cnot(1, 0)
        .and_then(|c| c.cnot(1, 2))
        .and_then(|c| c.cnot(2, 3))
        .and_then(|c| c.cnot(2, 0))
        .and_then(|c| c.cnot(1, 2))
        .expect("fig2 circuit is valid");
    c
}

fn main() {
    let circuit = fig2_circuit();
    let device = surface7();

    println!("=== Fig. 2: running a quantum circuit on Surface-7 ===\n");
    println!("Circuit (virtual qubits q0..q3):");
    print!("{}", qcs_circuit::draw::draw(&circuit));

    println!("\nInteraction graph (edge weight = number of CNOTs):");
    print!("{}", interaction_graph(&circuit));

    println!("\nSurface-7 coupling graph (physical qubits Q0..Q6):");
    print!("{}", device.coupling());

    for mapper in [Mapper::trivial(), Mapper::lookahead()] {
        let outcome = mapper
            .map(&circuit, &device)
            .expect("fig2 circuit maps onto surface-7");
        println!(
            "\n--- mapper: {} placement + {} routing ---",
            outcome.report.placer, outcome.report.router
        );
        println!(
            "initial layout (virtual -> physical): {:?}",
            outcome.routed.initial.as_assignment()
        );
        println!(
            "final   layout (virtual -> physical): {:?}",
            outcome.routed.final_layout.as_assignment()
        );
        println!("SWAPs inserted: {}", outcome.report.swaps_inserted);
        println!(
            "gates: {} -> {} native ({:+.1}% overhead)",
            outcome.report.decomposed_gates,
            outcome.report.routed_gates,
            outcome.report.gate_overhead_pct
        );
        println!(
            "estimated fidelity: {:.4} -> {:.4} ({:.1}% decrease)",
            outcome.report.fidelity_before,
            outcome.report.fidelity_after,
            outcome.report.fidelity_decrease_pct
        );
        println!("\nMapped circuit (physical qubits):");
        print!("{}", qcs_circuit::draw::draw(&outcome.routed.circuit));

        // Verify the mapped circuit implements the original.
        let mut rng = ChaCha8Rng::seed_from_u64(2022);
        qcs_sim::equiv::mapped_equivalent(
            &circuit,
            &outcome.routed.circuit,
            device.qubit_count(),
            outcome.routed.initial.as_assignment(),
            outcome.routed.final_layout.as_assignment(),
            3,
            &mut rng,
        )
        .expect("mapped circuit must be equivalent to the original");
        println!("simulator verification: mapped circuit is equivalent (3 random states)");
    }
}
