//! Experiment E2 (Fig. 3): impact of the circuit mapping process.
//!
//! Maps the 200-circuit benchmark suite onto the extended Surface-17
//! device (97 qubits) with the trivial mapper, then prints the three
//! panels:
//!
//! * (a) gate number vs circuit fidelity (circuits with < 400 gates);
//! * (b) two-qubit gate percentage vs gate overhead (%);
//! * (c) gate overhead (%) vs fidelity decrease (%) (< 400 gates).
//!
//! Synthetic (random) circuits correspond to the paper's blue squares,
//! real algorithms to the orange circles. Pass `--panel a|b|c` to print
//! one panel, `--quick` for a reduced suite.

use qcs_bench::{
    binned_means, default_suite_config, experiments_dir, fig3_device, map_suite, print_header, row,
    small_suite_config, suite, write_records,
};
use qcs_core::mapper::Mapper;
use qcs_core::report::{MappingRecord, SeriesSummary};
use qcs_graph::stats::pearson;

fn panel_a(records: &[MappingRecord]) {
    println!("\n=== Fig. 3(a): gate number vs circuit fidelity (< 400 gates) ===");
    let widths = [24usize, 10, 6, 12, 10];
    print_header(
        &["circuit", "gates", "type", "fidelity", "overhead%"],
        &widths,
    );
    let mut rows: Vec<&MappingRecord> = records
        .iter()
        .filter(|r| r.report.input_gates < 400)
        .collect();
    rows.sort_by_key(|r| r.report.input_gates);
    for r in &rows {
        println!(
            "{}",
            row(
                &[
                    r.name.clone(),
                    r.report.input_gates.to_string(),
                    if r.synthetic { "synth" } else { "real" }.to_string(),
                    format!("{:.4}", r.report.fidelity_after),
                    format!("{:.1}", r.report.gate_overhead_pct),
                ],
                &widths
            )
        );
    }
    let pts: Vec<(f64, f64)> = rows
        .iter()
        .map(|r| (r.report.input_gates as f64, r.report.fidelity_after))
        .collect();
    println!("\nbinned trend (gate count -> mean fidelity):");
    for (x, y, n) in binned_means(&pts, 8) {
        println!("  ~{x:>6.0} gates: {y:.4}  (n={n})");
    }
    let r = pearson(
        &pts.iter().map(|p| p.0).collect::<Vec<_>>(),
        &pts.iter().map(|p| p.1.ln()).collect::<Vec<_>>(),
    );
    println!(
        "Pearson r (gates vs ln fidelity): {r:.3}  [paper: strong negative — exponential decay]"
    );
}

fn panel_b(records: &[MappingRecord]) {
    println!("\n=== Fig. 3(b): two-qubit gate % vs gate overhead (%) ===");
    let split = |synthetic: bool| -> Vec<(f64, f64)> {
        records
            .iter()
            .filter(|r| r.synthetic == synthetic)
            .map(|r| {
                (
                    r.profile.stats.two_qubit_fraction * 100.0,
                    r.report.gate_overhead_pct,
                )
            })
            .collect()
    };
    for (label, pts) in [
        ("synthetic (squares)", split(true)),
        ("real (circles)", split(false)),
    ] {
        println!("\n{label}: {} circuits", pts.len());
        for (x, y, n) in binned_means(&pts, 8) {
            println!("  ~{x:>5.1}% 2q gates: mean overhead {y:>7.1}%  (n={n})");
        }
        if pts.len() > 2 {
            let r = pearson(
                &pts.iter().map(|p| p.0).collect::<Vec<_>>(),
                &pts.iter().map(|p| p.1).collect::<Vec<_>>(),
            );
            println!("  Pearson r: {r:.3}  [paper: positive — more 2q gates, more routing]");
        }
    }
}

fn panel_c(records: &[MappingRecord]) {
    println!("\n=== Fig. 3(c): gate overhead (%) vs fidelity decrease (%) (< 400 gates) ===");
    let rows: Vec<&MappingRecord> = records
        .iter()
        .filter(|r| r.report.input_gates < 400)
        .collect();
    for (label, synth) in [("synthetic (squares)", true), ("real (circles)", false)] {
        let pts: Vec<(f64, f64)> = rows
            .iter()
            .filter(|r| r.synthetic == synth)
            .map(|r| (r.report.gate_overhead_pct, r.report.fidelity_decrease_pct))
            .collect();
        println!("\n{label}: {} circuits", pts.len());
        for (x, y, n) in binned_means(&pts, 6) {
            println!("  ~{x:>7.1}% overhead: mean fidelity decrease {y:>6.1}%  (n={n})");
        }
    }
    let synth: Vec<&&MappingRecord> = rows.iter().filter(|r| r.synthetic).collect();
    let real: Vec<&&MappingRecord> = rows.iter().filter(|r| !r.synthetic).collect();
    let mean = |v: &[&&MappingRecord]| -> (f64, f64) {
        if v.is_empty() {
            return (0.0, 0.0);
        }
        (
            v.iter().map(|r| r.report.gate_overhead_pct).sum::<f64>() / v.len() as f64,
            v.iter()
                .map(|r| r.report.fidelity_decrease_pct)
                .sum::<f64>()
                / v.len() as f64,
        )
    };
    let (so, sf) = mean(&synth);
    let (ro, rf) = mean(&real);
    println!("\nmeans: synthetic overhead {so:.1}% / fidelity drop {sf:.1}%");
    println!("       real      overhead {ro:.1}% / fidelity drop {rf:.1}%");
    println!("[paper: overhead and fidelity decrease higher on average for synthetic circuits]");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let panel = args
        .iter()
        .position(|a| a == "--panel")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let config = if quick {
        small_suite_config()
    } else {
        default_suite_config()
    };
    let device = fig3_device();
    println!(
        "mapping {} benchmark circuits onto {} ({} qubits) with the trivial mapper…",
        config.count,
        device.name(),
        device.qubit_count()
    );
    let benchmarks = suite(&config);
    let records = map_suite(&benchmarks, &device, &Mapper::trivial());
    println!("mapped {} circuits", records.len());

    let refs: Vec<&MappingRecord> = records.iter().collect();
    let summary = SeriesSummary::of(&refs);
    println!(
        "suite means: overhead {:.1}%, fidelity decrease {:.1}%, swaps {:.1}",
        summary.mean_gate_overhead_pct, summary.mean_fidelity_decrease_pct, summary.mean_swaps
    );

    match panel.as_deref() {
        Some("a") => panel_a(&records),
        Some("b") => panel_b(&records),
        Some("c") => panel_c(&records),
        _ => {
            panel_a(&records);
            panel_b(&records);
            panel_c(&records);
        }
    }

    match write_records(&experiments_dir(), "fig3", &records) {
        Ok(path) => println!("\nraw records written to {}", path.display()),
        Err(e) => eprintln!("could not write records: {e}"),
    }
}
