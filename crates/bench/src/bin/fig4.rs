//! Experiment E3 (Fig. 4): interaction graphs of two circuits with the
//! same size parameters.
//!
//! "Fig. 4 shows the interaction graphs of two quantum algorithms, a
//! real one (QAOA, on the left) and a randomly generated circuit (on the
//! right), with the same properties when only characterized in terms of
//! the three common algorithm parameters" (qubits = 6, gates = 456,
//! two-qubit % = 0.135).

use qcs_circuit::interaction::interaction_graph;
use qcs_core::mapper::Mapper;
use qcs_core::profile::CircuitProfile;
use qcs_graph::metrics::GraphMetrics;
use qcs_topology::surface::surface17;

fn main() {
    let qaoa = qcs_workloads::qaoa::fig4_qaoa(4).expect("fig4 qaoa builds");
    let s = qaoa.stats();
    let random = qcs_workloads::random::random_like(s.qubits, s.gates, s.two_qubit_fraction, 99)
        .expect("matched random circuit builds");

    println!("=== Fig. 4: same size parameters, different interaction graphs ===\n");
    for (label, c) in [("QAOA (real)", &qaoa), ("random (synthetic)", &random)] {
        let st = c.stats();
        println!(
            "{label}: qubits = {}, gates = {}, two-qubit fraction = {:.3}",
            st.qubits, st.gates, st.two_qubit_fraction
        );
    }

    println!("\nInteraction graph, QAOA:");
    print!("{}", interaction_graph(&qaoa));
    println!("\nInteraction graph, random:");
    print!("{}", interaction_graph(&random));

    println!("\nTable-I metric comparison:");
    let mq = GraphMetrics::compute(&interaction_graph(&qaoa));
    let mr = GraphMetrics::compute(&interaction_graph(&random));
    println!("{:<26} {:>12} {:>12}", "metric", "QAOA", "random");
    println!("{}", "-".repeat(52));
    for ((name, a), b) in GraphMetrics::names()
        .iter()
        .zip(mq.to_vec())
        .zip(mr.to_vec())
    {
        println!("{name:<26} {a:>12.3} {b:>12.3}");
    }

    // The downstream consequence the paper draws: the denser random graph
    // routes worse on real hardware.
    let device = surface17();
    let mapper = Mapper::trivial();
    let oq = mapper.map(&qaoa, &device).expect("qaoa maps");
    let orr = mapper.map(&random, &device).expect("random maps");
    println!(
        "\nMapping both onto {} with the trivial mapper:",
        device.name()
    );
    println!(
        "  QAOA:   {} SWAPs, {:+.1}% gate overhead, fidelity decrease {:.1}%",
        oq.report.swaps_inserted, oq.report.gate_overhead_pct, oq.report.fidelity_decrease_pct
    );
    println!(
        "  random: {} SWAPs, {:+.1}% gate overhead, fidelity decrease {:.1}%",
        orr.report.swaps_inserted, orr.report.gate_overhead_pct, orr.report.fidelity_decrease_pct
    );
    println!("[paper: the random circuit's full-connectivity graph causes more routing]");

    // Sanity assertions mirroring the paper's claims.
    let pq = CircuitProfile::of(&qaoa);
    let pr = CircuitProfile::of(&random);
    assert!(pr.metrics.density > pq.metrics.density);
    assert!(pr.metrics.max_degree > pq.metrics.max_degree);
    println!("\nassertions hold: random graph denser and higher-degree than QAOA's");
}
