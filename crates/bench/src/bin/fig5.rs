//! Experiment E6 (Fig. 5): gate overhead (%) vs interaction-graph
//! parameters.
//!
//! "Fig. 5 shows that all circuits with high gate overhead had on
//! average low variation in edge weight distribution, low average
//! shortest path between qubits and higher max. degree, which are
//! expected values from Tab. I."
//!
//! Each benchmark is mapped with the trivial mapper on the extended
//! Surface-17 device; for each retained graph metric the harness prints
//! the scatter as binned means plus the Pearson correlation with gate
//! overhead, split into synthetic (squares) and real (circles) circuits.

use qcs_bench::{
    binned_means, default_suite_config, experiments_dir, fig3_device, map_suite,
    small_suite_config, suite, write_records,
};
use qcs_core::mapper::Mapper;
use qcs_core::report::MappingRecord;
use qcs_graph::stats::pearson;

fn metric_of(r: &MappingRecord, name: &str) -> f64 {
    match name {
        "weight_std" => r.profile.metrics.weight_std,
        "adjacency_std" => r.profile.metrics.adjacency_std,
        "avg_shortest_path" => r.profile.metrics.avg_shortest_path,
        "max_degree" => r.profile.metrics.max_degree,
        "min_degree" => r.profile.metrics.min_degree,
        other => unreachable!("unknown metric {other}"),
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let config = if quick {
        small_suite_config()
    } else {
        default_suite_config()
    };
    let device = fig3_device();
    println!(
        "mapping {} circuits onto {} with the trivial mapper…",
        config.count,
        device.name()
    );
    let benchmarks = suite(&config);
    let records = map_suite(&benchmarks, &device, &Mapper::trivial());
    println!("mapped {} circuits\n", records.len());

    let panels = [
        ("weight_std", "edge-weight distribution std dev"),
        ("adjacency_std", "adjacency matrix std dev"),
        ("avg_shortest_path", "average shortest path (hopcount)"),
        ("max_degree", "maximal degree"),
    ];

    for (key, label) in panels {
        println!("=== Fig. 5 panel: gate overhead (%) vs {label} ===");
        for (series, synth) in [("synthetic (squares)", true), ("real (circles)", false)] {
            let pts: Vec<(f64, f64)> = records
                .iter()
                .filter(|r| r.synthetic == synth)
                .map(|r| (metric_of(r, key), r.report.gate_overhead_pct))
                .collect();
            if pts.len() < 3 {
                continue;
            }
            let xs: Vec<f64> = pts.iter().map(|p| p.0).collect();
            let ys: Vec<f64> = pts.iter().map(|p| p.1).collect();
            println!(
                "  {series}: n = {}, Pearson r = {:+.3}",
                pts.len(),
                pearson(&xs, &ys)
            );
            for (x, y, n) in binned_means(&pts, 6) {
                println!("    {key} ~{x:>8.2}: mean overhead {y:>8.1}%  (n={n})");
            }
        }
        // Combined correlation (the paper plots all points together).
        let xs: Vec<f64> = records.iter().map(|r| metric_of(r, key)).collect();
        let ys: Vec<f64> = records.iter().map(|r| r.report.gate_overhead_pct).collect();
        println!("  all circuits: Pearson r = {:+.3}\n", pearson(&xs, &ys));
    }

    println!("expected signs (Table I): weight_std −, adjacency_std −/mixed, avg_shortest_path −, max_degree +");

    match write_records(&experiments_dir(), "fig5", &records) {
        Ok(path) => println!("\nraw records written to {}", path.display()),
        Err(e) => eprintln!("could not write records: {e}"),
    }
}
