//! Offline calibration sweep for the mapper portfolio selector.
//!
//! Runs the canonical 200-circuit suite through every portfolio lane
//! on the Fig. 3 device, derives the *oracle* label per circuit (the
//! cheapest lane whose swap count is adequate — see
//! `qcs_core::portfolio::oracle_lane`), then grid-searches the
//! decision-list thresholds over quantile candidates of the retained
//! Section IV metrics. Everything is a pure function of the code and
//! the suite, so the output is exactly reproducible.
//!
//! ```text
//! portfolio_calibrate            # re-record CALIBRATION_portfolio.json in CWD
//! portfolio_calibrate --check    # fresh sweep, compare against the committed file
//! ```
//!
//! The winning thresholds are baked into
//! `qcs_core::portfolio::SelectorThresholds::default()`; a repo-level
//! test asserts the committed file and the defaults agree, and the
//! selector-accuracy counters are additionally gated (exactly) through
//! the portfolio section of BENCH_mapper.json.

use std::process::ExitCode;
use std::time::Instant;

use qcs_bench::{fig3_device, suite};
use qcs_core::portfolio::{
    adequate, lane_config, oracle_lane, Selector, SelectorThresholds, ADEQUACY_FACTOR,
    ADEQUACY_SLACK, LANES,
};
use qcs_core::profile::CircuitProfile;
use qcs_graph::metrics::GraphMetrics;
use qcs_json::Json;
use qcs_workloads::suite::SuiteConfig;

const FILE: &str = "CALIBRATION_portfolio.json";
const SCHEMA: &str = "qcs-portfolio-calibration/1";

/// One suite circuit's training row: metric vector plus per-lane
/// deterministic outcomes.
struct TrainingRow {
    metrics: GraphMetrics,
    /// Per-lane swap counts, aligned with `LANES`.
    swaps: Vec<usize>,
    /// Per-lane routed gate counts (race tie-break), aligned with `LANES`.
    routed_gates: Vec<usize>,
    /// Per-lane wall micros for this circuit (reporting only).
    wall_micros: Vec<u64>,
}

fn main() -> ExitCode {
    let check = std::env::args().any(|a| a == "--check");
    let rows = sweep();
    if std::env::args().any(|a| a == "--dump") {
        println!("asp,max_degree,min_degree,adjacency_std,swaps_trivial,swaps_lookahead,swaps_sabre,oracle");
        for r in &rows {
            println!(
                "{},{},{},{},{},{},{},{}",
                r.metrics.avg_shortest_path,
                r.metrics.max_degree,
                r.metrics.min_degree,
                r.metrics.adjacency_std,
                r.swaps[0],
                r.swaps[1],
                r.swaps[2],
                oracle_lane(&r.swaps)
            );
        }
        return ExitCode::SUCCESS;
    }
    let thresholds = grid_search(&rows);
    let doc = calibration_doc(&rows, &thresholds);
    print_report(&rows, &thresholds);

    if check {
        match std::fs::read_to_string(FILE) {
            Ok(text) => {
                let committed = qcs_json::parse(&text).expect("committed calibration parses");
                if committed == doc {
                    println!("calibration gate OK ({FILE})");
                    ExitCode::SUCCESS
                } else {
                    eprintln!("{FILE}: committed calibration drifted from a fresh sweep");
                    eprintln!("fresh: {}", doc.to_string_pretty());
                    ExitCode::FAILURE
                }
            }
            Err(e) => {
                eprintln!("{FILE}: cannot read: {e} (run portfolio_calibrate to record it)");
                ExitCode::FAILURE
            }
        }
    } else {
        std::fs::write(FILE, doc.to_string_pretty() + "\n").expect("write calibration");
        println!("wrote {FILE}");
        ExitCode::SUCCESS
    }
}

/// Maps every suite circuit through every lane (the exact serving
/// pipelines, verification off here — adequacy is defined on the
/// deterministic swap counters, and the ladder verifies at serve time).
fn sweep() -> Vec<TrainingRow> {
    let device = fig3_device();
    let benches = suite(&SuiteConfig::default());
    let mappers: Vec<_> = LANES
        .iter()
        .map(|lane| {
            lane_config(lane)
                .expect("portfolio lanes are known")
                .build()
                .expect("portfolio lanes build")
        })
        .collect();
    benches
        .iter()
        .map(|b| {
            let metrics = CircuitProfile::of(&b.circuit).metrics;
            let mut swaps = Vec::with_capacity(LANES.len());
            let mut routed_gates = Vec::with_capacity(LANES.len());
            let mut wall_micros = Vec::with_capacity(LANES.len());
            for mapper in &mappers {
                let start = Instant::now();
                let outcome = mapper
                    .map(&b.circuit, &device)
                    .unwrap_or_else(|e| panic!("{} failed on {}: {e}", b.name, device.name()));
                wall_micros.push(start.elapsed().as_micros() as u64);
                swaps.push(outcome.report.swaps_inserted);
                routed_gates.push(outcome.report.routed_gates);
            }
            TrainingRow {
                metrics,
                swaps,
                routed_gates,
                wall_micros,
            }
        })
        .collect()
}

/// Quantile candidate cut points over one metric's training values
/// (16 evenly spaced quantiles of the distinct values, or all of them
/// when there are few).
fn candidates(mut values: Vec<f64>) -> Vec<f64> {
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite metrics"));
    values.dedup();
    const N: usize = 15;
    if values.len() <= N {
        return values;
    }
    (0..=N)
        .map(|q| values[(q * (values.len() - 1)) / N])
        .collect()
}

/// Scores one threshold set over the training rows:
/// `(oracle matches, adequate picks, confident matches − confident misses)`,
/// maximised lexicographically.
fn score(rows: &[TrainingRow], thresholds: &SelectorThresholds) -> (usize, usize, i64) {
    let selector = Selector::new(thresholds.clone());
    let mut matches = 0usize;
    let mut adequates = 0usize;
    let mut confident_balance = 0i64;
    for row in rows {
        let selection = selector.select_metrics(&row.metrics);
        let pick = qcs_core::portfolio::lane_index(selection.lane).expect("known lane");
        let best = row.swaps.iter().copied().min().unwrap_or(0);
        let oracle = oracle_lane(&row.swaps);
        let matched = selection.lane == oracle;
        matches += usize::from(matched);
        adequates += usize::from(adequate(row.swaps[pick], best));
        if selection.confident {
            confident_balance += if matched { 1 } else { -1 };
        }
    }
    (matches, adequates, confident_balance)
}

/// Exhaustive grid search over quantile candidates of the retained
/// metrics (plus a small margin grid). Deterministic: ties keep the
/// first combination in iteration order.
fn grid_search(rows: &[TrainingRow]) -> SelectorThresholds {
    let asp: Vec<f64> = rows.iter().map(|r| r.metrics.avg_shortest_path).collect();
    let max_degree: Vec<f64> = rows.iter().map(|r| r.metrics.max_degree).collect();
    let min_degree: Vec<f64> = rows.iter().map(|r| r.metrics.min_degree).collect();
    let asp_cuts = candidates(asp);
    let max_degree_cuts = candidates(max_degree);
    let min_degree_cuts = candidates(min_degree);
    let margins = [0.05, 0.10, 0.15, 0.20];

    let mut best: Option<(SelectorThresholds, (usize, usize, i64))> = None;
    for &trivial_min_path in &asp_cuts {
        for &trivial_max_degree in &max_degree_cuts {
            for &lookahead_max_path in &asp_cuts {
                for &lookahead_min_degree in &min_degree_cuts {
                    for &margin in &margins {
                        let t = SelectorThresholds {
                            trivial_min_path,
                            trivial_max_degree,
                            lookahead_max_path,
                            lookahead_min_degree,
                            margin,
                        };
                        let s = score(rows, &t);
                        if best.as_ref().is_none_or(|(_, b)| s > *b) {
                            best = Some((t, s));
                        }
                    }
                }
            }
        }
    }
    best.expect("non-empty grid").0
}

/// Per-lane race winner for one row: minimum of
/// `(swaps, routed_gates, lane cost order)` — the exact keep-best rule
/// of the racing engine, so the reported win-rates describe what a
/// complete race would serve.
fn race_winner(row: &TrainingRow) -> usize {
    (0..LANES.len())
        .min_by_key(|&i| (row.swaps[i], row.routed_gates[i], i))
        .expect("at least one lane")
}

fn lane_counts_json(counts: &[usize]) -> Json {
    Json::object(
        LANES
            .iter()
            .zip(counts)
            .map(|(lane, &n)| (*lane, Json::from(n)))
            .collect::<Vec<_>>(),
    )
}

fn calibration_doc(rows: &[TrainingRow], thresholds: &SelectorThresholds) -> Json {
    let selector = Selector::new(thresholds.clone());
    let mut picks = vec![0usize; LANES.len()];
    let mut oracles = vec![0usize; LANES.len()];
    let mut wins = vec![0usize; LANES.len()];
    let mut matches = 0usize;
    let mut adequates = 0usize;
    let mut confident = 0usize;
    let mut confident_matches = 0usize;
    for row in rows {
        let selection = selector.select_metrics(&row.metrics);
        let pick = qcs_core::portfolio::lane_index(selection.lane).expect("known lane");
        let oracle = oracle_lane(&row.swaps);
        let oracle_idx = qcs_core::portfolio::lane_index(oracle).expect("known lane");
        picks[pick] += 1;
        oracles[oracle_idx] += 1;
        wins[race_winner(row)] += 1;
        let best = row.swaps.iter().copied().min().unwrap_or(0);
        let matched = selection.lane == oracle;
        matches += usize::from(matched);
        adequates += usize::from(adequate(row.swaps[pick], best));
        if selection.confident {
            confident += 1;
            confident_matches += usize::from(matched);
        }
    }
    Json::object([
        ("schema", Json::from(SCHEMA)),
        ("device", Json::from(fig3_device().name().to_string())),
        ("records", Json::from(rows.len())),
        (
            "adequacy",
            Json::object([
                ("factor", Json::Number(ADEQUACY_FACTOR)),
                ("slack", Json::from(ADEQUACY_SLACK)),
            ]),
        ),
        (
            "thresholds",
            Json::object([
                (
                    "trivial_min_path",
                    Json::Number(thresholds.trivial_min_path),
                ),
                (
                    "trivial_max_degree",
                    Json::Number(thresholds.trivial_max_degree),
                ),
                (
                    "lookahead_max_path",
                    Json::Number(thresholds.lookahead_max_path),
                ),
                (
                    "lookahead_min_degree",
                    Json::Number(thresholds.lookahead_min_degree),
                ),
                ("margin", Json::Number(thresholds.margin)),
            ]),
        ),
        ("oracle", lane_counts_json(&oracles)),
        ("picks", lane_counts_json(&picks)),
        (
            "selector",
            Json::object([
                ("matches", Json::from(matches)),
                (
                    "accuracy_pct",
                    Json::Number((matches as f64 * 1e5 / rows.len() as f64).round() / 1e3),
                ),
                ("adequate_picks", Json::from(adequates)),
                ("confident", Json::from(confident)),
                ("confident_matches", Json::from(confident_matches)),
            ]),
        ),
        ("race", Json::object([("wins", lane_counts_json(&wins))])),
    ])
}

/// Prints the EXPERIMENTS.md E15 tables.
fn print_report(rows: &[TrainingRow], thresholds: &SelectorThresholds) {
    let selector = Selector::new(thresholds.clone());
    println!("== portfolio calibration ({} circuits) ==", rows.len());
    println!(
        "thresholds: trivial_min_path={} trivial_max_degree={} lookahead_max_path={} lookahead_min_degree={} margin={}",
        thresholds.trivial_min_path,
        thresholds.trivial_max_degree,
        thresholds.lookahead_max_path,
        thresholds.lookahead_min_degree,
        thresholds.margin,
    );
    println!("lane        oracle  picks  race-wins  mean-wall-us");
    for (i, lane) in LANES.iter().enumerate() {
        let oracle = rows
            .iter()
            .filter(|r| oracle_lane(&r.swaps) == *lane)
            .count();
        let picks = rows
            .iter()
            .filter(|r| selector.select_metrics(&r.metrics).lane == *lane)
            .count();
        let wins = rows.iter().filter(|r| race_winner(r) == i).count();
        let mean_wall: u64 = rows.iter().map(|r| r.wall_micros[i]).sum::<u64>() / rows.len() as u64;
        println!("{lane:<10}  {oracle:>6}  {picks:>5}  {wins:>9}  {mean_wall:>12}");
    }
    let matches = rows
        .iter()
        .filter(|r| selector.select_metrics(&r.metrics).lane == oracle_lane(&r.swaps))
        .count();
    let confident: Vec<_> = rows
        .iter()
        .filter(|r| selector.select_metrics(&r.metrics).confident)
        .collect();
    let confident_matches = confident
        .iter()
        .filter(|r| selector.select_metrics(&r.metrics).lane == oracle_lane(&r.swaps))
        .count();
    println!(
        "accuracy vs oracle: {matches}/{} ({:.1}%); confident {}/{} ({} match oracle)",
        rows.len(),
        matches as f64 * 100.0 / rows.len() as f64,
        confident.len(),
        rows.len(),
        confident_matches,
    );
}
