//! Experiment E9 (extension): scheduling and the control-electronics
//! constraint.
//!
//! Mapping step 2 (Section III) schedules operations "to leverage
//! parallelism and therefore shorten execution time", but "classical
//! control constraints that come from the use of shared control
//! electronics … limit the operations' parallelization". This harness
//! quantifies both statements over the benchmark suite:
//!
//! * ASAP vs ALAP makespans (identical) and idle-time profiles;
//! * makespan inflation as shared-control multiplexing tightens;
//! * microarchitecture issue-width sweep: stall cycles and utilization.

use qcs_bench::{print_header, row, small_suite_config, suite};
use qcs_core::mapper::Mapper;
use qcs_core::schedule::{schedule_alap, schedule_asap, ControlGroups};
use qcs_graph::stats::mean;
use qcs_stack::isa::{IsaProgram, DEFAULT_CYCLE_NS};
use qcs_stack::microarch::Microarchitecture;
use qcs_topology::surface::surface_extended;

fn main() {
    let config = small_suite_config();
    let device = surface_extended(4);
    let benchmarks = suite(&config);
    println!(
        "scheduling study over {} circuits mapped on {}\n",
        config.count,
        device.name()
    );
    // Map everything once with the trivial mapper; reschedule the native
    // circuits under different constraints.
    let mapper = Mapper::trivial();
    let natives: Vec<_> = benchmarks
        .iter()
        .filter_map(|b| mapper.map(&b.circuit, &device).ok().map(|o| o.native))
        .collect();
    println!("mapped {} circuits\n", natives.len());
    let durations = device.calibration().durations;

    // --- ASAP vs ALAP ---------------------------------------------------
    let mut asap_makespans = Vec::new();
    let mut asap_idle = Vec::new();
    let mut alap_idle = Vec::new();
    for c in &natives {
        let asap = schedule_asap(c, &durations, &ControlGroups::unconstrained());
        let alap = schedule_alap(c, &durations, &ControlGroups::unconstrained());
        assert_eq!(asap.makespan_ns, alap.makespan_ns);
        asap_makespans.push(asap.makespan_ns);
        asap_idle.push(asap.total_idle_ns(c.qubit_count()));
        alap_idle.push(alap.total_idle_ns(c.qubit_count()));
    }
    println!("=== ASAP vs ALAP (unconstrained) ===");
    println!(
        "mean makespan: {:.0} ns (identical by construction)",
        mean(&asap_makespans)
    );
    println!(
        "mean summed idle time: ASAP {:.0} ns, ALAP {:.0} ns",
        mean(&asap_idle),
        mean(&alap_idle)
    );

    // --- shared-control multiplexing sweep --------------------------------
    println!("\n=== shared-control multiplexing (qubits per control group) ===");
    let widths = [12usize, 16, 14];
    print_header(&["groups", "mean makespan", "inflation %"], &widths);
    let base = mean(&asap_makespans);
    for stride in [0usize, 8, 4, 2, 1] {
        let groups = if stride == 0 {
            ControlGroups::unconstrained()
        } else {
            ControlGroups::multiplexed(device.qubit_count(), stride)
        };
        let label = if stride == 0 {
            "none".to_string()
        } else {
            format!("{stride} lines")
        };
        let m: Vec<f64> = natives
            .iter()
            .map(|c| schedule_asap(c, &durations, &groups).makespan_ns)
            .collect();
        let mk = mean(&m);
        println!(
            "{}",
            row(
                &[
                    label,
                    format!("{mk:.0} ns"),
                    format!("{:+.1}", (mk - base) / base * 100.0),
                ],
                &widths
            )
        );
    }
    println!("[fewer drive lines -> more serialization -> longer programs]");

    // --- microarchitecture issue width -----------------------------------
    println!("\n=== microarchitecture issue-width sweep ===");
    let widths = [12usize, 14, 14, 13];
    print_header(
        &["issue width", "mean stalls", "mean cycles", "utilization"],
        &widths,
    );
    for w in [1usize, 2, 4, 8, 16] {
        let engine = Microarchitecture::new(w);
        let mut stalls = Vec::new();
        let mut cycles = Vec::new();
        let mut util = Vec::new();
        for c in &natives {
            let sched = schedule_asap(c, &durations, &ControlGroups::unconstrained());
            let isa = IsaProgram::lower(&sched, DEFAULT_CYCLE_NS);
            let t = engine.execute(&isa);
            stalls.push(t.stall_cycles as f64);
            cycles.push(t.cycles as f64);
            util.push(t.utilization);
        }
        println!(
            "{}",
            row(
                &[
                    w.to_string(),
                    format!("{:.1}", mean(&stalls)),
                    format!("{:.1}", mean(&cycles)),
                    format!("{:.3}", mean(&util)),
                ],
                &widths
            )
        );
    }
    println!("[narrow issue engines stall on parallel layers — the microarchitectural");
    println!(" face of the paper's control-electronics constraint]");
}
