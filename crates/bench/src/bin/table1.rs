//! Experiment E4 (Table I): metrics for characterizing interaction
//! graphs and their relation to mapping.
//!
//! Prints each Table I metric, its description, and a live demonstration
//! of the claimed relation to mapping on contrast pairs of workloads
//! (sparse-vs-dense, concentrated-vs-uniform weights) mapped with the
//! trivial mapper on Surface-17.

use qcs_circuit::circuit::Circuit;
use qcs_circuit::interaction::interaction_graph;
use qcs_core::mapper::Mapper;
use qcs_graph::metrics::GraphMetrics;
use qcs_topology::surface::surface17;

struct TableRow {
    metric: &'static str,
    description: &'static str,
    relation: &'static str,
}

const TABLE: &[TableRow] = &[
    TableRow {
        metric: "hopcount / closeness",
        description: "#links in shortest path between 2 nodes / avg hopcount between nodes",
        relation: "large avg hopcount -> less connected graph -> simpler to map",
    },
    TableRow {
        metric: "degree / degree distribution",
        description: "#nodes to which some node is connected",
        relation: "(see max/min degree)",
    },
    TableRow {
        metric: "maximal / minimal degree",
        description: "max and min value of degree",
        relation: "lower min/max degree -> qubits interact less -> simpler to map",
    },
    TableRow {
        metric: "adjacency matrix stats",
        description: "max/min/mean/std-dev/variance of adjacency matrix & weights",
        relation: "bigger variance -> few pairs dominate -> less movement, less parallelism",
    },
];

fn overhead(c: &Circuit) -> f64 {
    Mapper::trivial()
        .map(c, &surface17())
        .expect("benchmark maps")
        .report
        .gate_overhead_pct
}

/// SWAPs per two-qubit gate under the algorithm-driven mapper — the
/// "how hard is this graph to embed" figure Table I reasons about
/// (a graph is *simpler to map* when a good placement can avoid routing).
fn swaps_per_two_qubit(c: &Circuit) -> f64 {
    let report = Mapper::algorithm_driven()
        .map(c, &surface17())
        .expect("benchmark maps")
        .report;
    report.swaps_inserted as f64 / report.original_two_qubit_gates.max(1) as f64
}

fn main() {
    println!("=== Table I: metrics for characterizing interaction graphs ===\n");
    for r in TABLE {
        println!("{:<28} | {}", r.metric, r.description);
        println!("{:<28} |   -> {}", "", r.relation);
        println!();
    }

    // Demonstration 1: hopcount. GHZ chain (large avg hopcount) vs QFT
    // (hopcount 1 everywhere) at the same width.
    let chain = qcs_workloads::ghz::ghz_chain(10).expect("ghz builds");
    let qft = qcs_workloads::qft::qft(10).expect("qft builds");
    let m_chain = GraphMetrics::compute(&interaction_graph(&chain));
    let m_qft = GraphMetrics::compute(&interaction_graph(&qft));
    println!("--- demonstration: hopcount & degree (10-qubit GHZ chain vs QFT) ---");
    println!("(algorithm-driven mapper; SWAPs per two-qubit gate = embedding difficulty)");
    println!(
        "ghz-chain: avg shortest path {:.2}, max degree {:>2}, swaps/2q-gate {:>5.2}",
        m_chain.avg_shortest_path,
        m_chain.max_degree,
        swaps_per_two_qubit(&chain)
    );
    println!(
        "qft:       avg shortest path {:.2}, max degree {:>2}, swaps/2q-gate {:>5.2}",
        m_qft.avg_shortest_path,
        m_qft.max_degree,
        swaps_per_two_qubit(&qft)
    );
    println!(
        "[Table I: larger hopcount / lower degree -> simpler to map (fewer SWAPs per gate)]\n"
    );

    // Demonstration 2: weight variance. Two circuits with the same
    // interaction-graph skeleton (a ring) but different weight spread:
    // uniform weights vs one dominant pair.
    let n = 8;
    let mut uniform = Circuit::with_name(n, "ring-uniform");
    let mut skewed = Circuit::with_name(n, "ring-skewed");
    for round in 0..8 {
        for q in 0..n {
            let (a, b) = (q, (q + 1) % n);
            uniform.cnot(a, b).expect("valid");
            // Skewed: the (0,1) pair gets 8× the traffic, others 1×.
            if q == 0 || round == 0 {
                skewed.cnot(a, b).expect("valid");
            }
        }
    }
    let mu = GraphMetrics::compute(&interaction_graph(&uniform));
    let ms = GraphMetrics::compute(&interaction_graph(&skewed));
    println!("--- demonstration: weight distribution (8-qubit ring workloads) ---");
    println!(
        "uniform weights: weight std {:.2}, gates {}, overhead {:>6.1}%",
        mu.weight_std,
        uniform.gate_count(),
        overhead(&uniform)
    );
    println!(
        "skewed weights:  weight std {:.2}, gates {}, overhead {:>6.1}%",
        ms.weight_std,
        skewed.gate_count(),
        overhead(&skewed)
    );
    println!("[Table I trade-off: concentrated weights need less qubit movement per gate]\n");

    println!("retained metric subset after correlation pruning (Section IV):");
    println!("  {:?}", GraphMetrics::selected_names());
}
