//! E11 experiment: the latency cost of always-on independent
//! verification in the fallback ladder.
//!
//! Every suite circuit is mapped twice — once with the bare `Mapper`
//! (no verification, no ladder bookkeeping) and once through
//! `FallbackLadder::standard` with verification enabled, the daemon's
//! serving configuration. Reported: per-circuit latency percentiles for
//! both paths and the relative overhead, split into circuits small
//! enough for the statevector equivalence check (≤ 12 qubits) and
//! larger circuits where verification is structural only. The paper's
//! acceptance bar is < 10% added p50 latency. Pass `--quick` for the
//! 44-circuit suite.

use std::time::Instant;

use qcs_bench::{default_suite_config, fig3_device, print_header, row, small_suite_config, suite};
use qcs_core::config::MapperConfig;
use qcs_core::ladder::FallbackLadder;
use qcs_core::verify::VerifyConfig;
use qcs_workloads::suite::Benchmark;

/// Qubit count above which the ladder skips the statevector
/// equivalence check (mirrors `VerifyConfig::default`).
fn equiv_max_qubits() -> usize {
    VerifyConfig::default().equiv_max_qubits
}

fn percentile(sorted_micros: &[f64], p: f64) -> f64 {
    if sorted_micros.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0 * (sorted_micros.len() - 1) as f64).round() as usize;
    sorted_micros[rank]
}

struct Sample {
    qubits: usize,
    baseline_us: f64,
    verified_us: f64,
}

fn measure(benchmarks: &[Benchmark]) -> Vec<Sample> {
    let device = fig3_device();
    let config = MapperConfig::default();
    let mapper = config.build().expect("default pipeline builds");
    let ladder = FallbackLadder::standard(config);

    // One warmup pass keeps allocator and cache effects out of the
    // measured loop.
    for benchmark in benchmarks.iter().take(8) {
        let _ = mapper.map(&benchmark.circuit, &device);
        let _ = ladder.map(&benchmark.circuit, &device);
    }

    // Best-of-N per path: the minimum is robust against scheduler and
    // allocator noise, which otherwise dwarfs the verification cost.
    const REPS: usize = 5;
    benchmarks
        .iter()
        .map(|benchmark| {
            let mut baseline_us = f64::INFINITY;
            let mut verified_us = f64::INFINITY;
            for _ in 0..REPS {
                let start = Instant::now();
                mapper
                    .map(&benchmark.circuit, &device)
                    .unwrap_or_else(|e| panic!("{}: baseline map failed: {e}", benchmark.name));
                baseline_us = baseline_us.min(start.elapsed().as_secs_f64() * 1e6);

                let start = Instant::now();
                let outcome = ladder
                    .map(&benchmark.circuit, &device)
                    .unwrap_or_else(|e| panic!("{}: ladder map failed: {e}", benchmark.name));
                verified_us = verified_us.min(start.elapsed().as_secs_f64() * 1e6);

                assert!(outcome.report.verified, "{}", benchmark.name);
                assert_eq!(outcome.report.fallback_rung, 0, "{}", benchmark.name);
            }
            Sample {
                qubits: benchmark.circuit.qubit_count(),
                baseline_us,
                verified_us,
            }
        })
        .collect()
}

fn report(label: &str, samples: &[Sample]) -> f64 {
    let mut baseline: Vec<f64> = samples.iter().map(|s| s.baseline_us).collect();
    let mut verified: Vec<f64> = samples.iter().map(|s| s.verified_us).collect();
    baseline.sort_by(f64::total_cmp);
    verified.sort_by(f64::total_cmp);
    let widths = [22usize, 8, 12, 12, 10];
    let overhead =
        |p: f64| (percentile(&verified, p) / percentile(&baseline, p).max(1e-9) - 1.0) * 100.0;
    for p in [50.0, 95.0] {
        println!(
            "{}",
            row(
                &[
                    label.to_string(),
                    format!("p{p:.0}"),
                    format!("{:.0}", percentile(&baseline, p)),
                    format!("{:.0}", percentile(&verified, p)),
                    format!("{:+.1}%", overhead(p)),
                ],
                &widths
            )
        );
    }
    overhead(50.0)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let config = if quick {
        small_suite_config()
    } else {
        default_suite_config()
    };
    let benchmarks = suite(&config);
    let device = fig3_device();
    println!(
        "verification overhead on {} ({} qubits), {} circuits, equivalence check ≤ {} qubits",
        device.name(),
        device.qubit_count(),
        benchmarks.len(),
        equiv_max_qubits(),
    );

    let samples = measure(&benchmarks);
    let (small, large): (Vec<Sample>, Vec<Sample>) = samples
        .into_iter()
        .partition(|s| s.qubits <= equiv_max_qubits());

    let widths = [22usize, 8, 12, 12, 10];
    print_header(
        &["circuits", "pctl", "mapper us", "ladder us", "overhead"],
        &widths,
    );
    let mut worst_p50 = 0.0f64;
    if !small.is_empty() {
        let label = format!("≤{}q + equivalence", equiv_max_qubits());
        worst_p50 = worst_p50.max(report(&label, &small));
    }
    if !large.is_empty() {
        let label = format!(">{}q structural", equiv_max_qubits());
        worst_p50 = worst_p50.max(report(&label, &large));
    }

    println!(
        "\n[expectation: always-on verification stays under the 10% p50 budget — the \
         structural checks are linear passes over the routed circuit, and the statevector \
         equivalence check only runs where 2^n is small. Worst p50 overhead this run: {worst_p50:+.1}%]"
    );
    if worst_p50 >= 10.0 {
        eprintln!("verify_overhead: p50 overhead {worst_p50:+.1}% exceeds the 10% budget");
        std::process::exit(1);
    }
}
