//! Shared experiment harness for the figure/table regeneration binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md's per-experiment index); this library holds the
//! common machinery: the Fig. 3 device, the benchmark suite, the
//! suite-mapping loop producing [`MappingRecord`]s, and small text-table
//! helpers for printing series the way the paper reports them.

pub mod microbench;
pub mod parallel;

pub use parallel::{default_workers, map_suite_serial, map_suite_with_workers, run_claimed};

use std::io::Write as _;
use std::path::Path;

use qcs_core::mapper::Mapper;
use qcs_core::report::MappingRecord;
use qcs_topology::device::Device;
use qcs_topology::surface::surface_extended;
use qcs_workloads::suite::{generate_suite, Benchmark, SuiteConfig};

/// The device of Figs. 3 and 5: the extended Surface-17 lattice closest
/// to the paper's 100 qubits (distance-7, 97 qubits).
pub fn fig3_device() -> Device {
    surface_extended(7)
}

/// The default 200-circuit suite configuration used by the experiments.
pub fn default_suite_config() -> SuiteConfig {
    SuiteConfig::default()
}

/// A smaller suite for quick runs and ablations.
pub fn small_suite_config() -> SuiteConfig {
    SuiteConfig {
        count: 44,
        max_qubits: 20,
        max_gates: 800,
        ..SuiteConfig::default()
    }
}

/// Generates the suite for `config`.
pub fn suite(config: &SuiteConfig) -> Vec<Benchmark> {
    generate_suite(config)
}

/// Maps every benchmark with `mapper` onto `device`, producing one record
/// per successfully-mapped circuit in input order. Failures (e.g. a
/// benchmark wider than the device) are reported on stderr and skipped.
///
/// Runs on the parallel engine with [`default_workers`] threads; the
/// result is byte-identical to [`map_suite_serial`].
pub fn map_suite(benchmarks: &[Benchmark], device: &Device, mapper: &Mapper) -> Vec<MappingRecord> {
    map_suite_with_workers(benchmarks, device, mapper, default_workers())
}

/// Writes records as JSON under `dir/name.json`, creating the directory.
///
/// # Errors
///
/// Propagates I/O and serialization errors.
pub fn write_records(
    dir: &Path,
    name: &str,
    records: &[MappingRecord],
) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    let json = MappingRecord::batch_to_json(records);
    let mut f = std::fs::File::create(&path)?;
    f.write_all(json.as_bytes())?;
    Ok(path)
}

/// The default output directory for experiment data
/// (`target/experiments`).
pub fn experiments_dir() -> std::path::PathBuf {
    std::path::PathBuf::from("target/experiments")
}

/// Formats one row of a fixed-width text table.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

/// Prints a header + underline for a fixed-width text table.
pub fn print_header(titles: &[&str], widths: &[usize]) {
    let cells: Vec<String> = titles.iter().map(|t| t.to_string()).collect();
    println!("{}", row(&cells, widths));
    let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
    println!("{}", "-".repeat(total));
}

/// Bins `(x, y)` points into `bins` equal-width x-bins and returns
/// `(bin_centre, mean_y, count)` for the non-empty bins — the binned
/// trend line behind the paper's scatter plots.
pub fn binned_means(points: &[(f64, f64)], bins: usize) -> Vec<(f64, f64, usize)> {
    if points.is_empty() || bins == 0 {
        return Vec::new();
    }
    let xmin = points.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
    let xmax = points.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max);
    let width = ((xmax - xmin) / bins as f64).max(f64::MIN_POSITIVE);
    let mut sums = vec![0.0; bins];
    let mut counts = vec![0usize; bins];
    for &(x, y) in points {
        let b = (((x - xmin) / width) as usize).min(bins - 1);
        sums[b] += y;
        counts[b] += 1;
    }
    (0..bins)
        .filter(|&b| counts[b] > 0)
        .map(|b| {
            (
                xmin + (b as f64 + 0.5) * width,
                sums[b] / counts[b] as f64,
                counts[b],
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_device_is_97_qubit_surface() {
        let dev = fig3_device();
        assert_eq!(dev.qubit_count(), 97);
        assert_eq!(dev.name(), "surface-97");
    }

    #[test]
    fn small_suite_maps_cleanly() {
        let suite = suite(&SuiteConfig {
            count: 11,
            max_qubits: 10,
            max_gates: 200,
            ..SuiteConfig::default()
        });
        let records = map_suite(&suite, &fig3_device(), &Mapper::trivial());
        assert_eq!(records.len(), 11);
        for r in &records {
            assert!(r.report.gate_overhead_pct >= 0.0, "{}", r.name);
            assert!(r.report.fidelity_after <= r.report.fidelity_before + 1e-12);
        }
    }

    #[test]
    fn binning_means() {
        let pts = vec![(0.0, 1.0), (0.1, 3.0), (10.0, 5.0)];
        let bins = binned_means(&pts, 2);
        assert_eq!(bins.len(), 2);
        assert_eq!(bins[0].1, 2.0);
        assert_eq!(bins[0].2, 2);
        assert_eq!(bins[1].1, 5.0);
        assert!(binned_means(&[], 3).is_empty());
    }

    #[test]
    fn table_rows_align() {
        let r = row(&["a".into(), "bb".into()], &[3, 4]);
        assert_eq!(r, "  a    bb");
    }
}
