//! Minimal in-tree microbenchmark harness.
//!
//! Replaces the external `criterion` dependency with the small API
//! surface the bench files use: [`Criterion`], [`BenchmarkId`],
//! benchmark groups, [`Bencher::iter`], and the
//! [`criterion_group!`](crate::criterion_group) /
//! [`criterion_main!`](crate::criterion_main) macros. Each benchmark is
//! warmed up, then timed in batches until a measurement budget is spent;
//! mean, minimum and maximum per-iteration times are printed.
//!
//! Budgets are tunable via environment variables (milliseconds):
//! `QCS_BENCH_WARMUP_MS` (default 50) and `QCS_BENCH_MEASURE_MS`
//! (default 300). CI sets them low — these benches gate compilation and
//! regression *visibility*, not statistical rigor.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export for convenient use in benchmark bodies.
pub use std::hint::black_box;

fn env_ms(key: &str, default_ms: u64) -> Duration {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map_or(Duration::from_millis(default_ms), Duration::from_millis)
}

/// Identifier of one benchmark within a group: `function/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", function.into()),
        }
    }
}

/// Per-iteration timing statistics of one benchmark.
#[derive(Debug, Clone, Copy)]
pub struct Sample {
    /// Total measured iterations.
    pub iterations: u64,
    /// Mean time per iteration.
    pub mean: Duration,
    /// Fastest batch's per-iteration time.
    pub min: Duration,
    /// Slowest batch's per-iteration time.
    pub max: Duration,
}

/// Runs one routine: warmup to size the batches, then timed batches until
/// the measurement budget is exhausted.
fn measure<O>(mut routine: impl FnMut() -> O) -> Sample {
    let warmup_budget = env_ms("QCS_BENCH_WARMUP_MS", 50);
    let measure_budget = env_ms("QCS_BENCH_MEASURE_MS", 300);

    // Warmup: run until the budget is spent, tracking the iteration rate.
    let warmup_start = Instant::now();
    let mut warmup_iters: u64 = 0;
    while warmup_start.elapsed() < warmup_budget || warmup_iters == 0 {
        black_box(routine());
        warmup_iters += 1;
    }
    let per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters as f64;

    // Aim for ~10 batches over the measurement budget.
    let batch_iters = ((measure_budget.as_secs_f64() / 10.0 / per_iter).ceil() as u64).max(1);

    let mut iterations: u64 = 0;
    let mut total = Duration::ZERO;
    let mut min = Duration::MAX;
    let mut max = Duration::ZERO;
    while total < measure_budget {
        let start = Instant::now();
        for _ in 0..batch_iters {
            black_box(routine());
        }
        let elapsed = start.elapsed();
        let per = elapsed / u32::try_from(batch_iters).unwrap_or(u32::MAX);
        min = min.min(per);
        max = max.max(per);
        total += elapsed;
        iterations += batch_iters;
    }
    Sample {
        iterations,
        mean: total / u32::try_from(iterations).unwrap_or(u32::MAX),
        min,
        max,
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Collects timing routines inside a `Bencher::iter` call.
pub struct Bencher {
    sample: Option<Sample>,
}

impl Bencher {
    /// Times `routine` under the harness budgets.
    pub fn iter<O>(&mut self, routine: impl FnMut() -> O) {
        self.sample = Some(measure(routine));
    }
}

/// The harness entry point: runs benchmarks and prints a report line per
/// benchmark.
#[derive(Default)]
pub struct Criterion {
    results: Vec<(String, Sample)>,
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        self.run(name.to_string(), f);
        self
    }

    /// Opens a named group; benchmarks within it are reported as
    /// `group/benchmark`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    fn run(&mut self, label: String, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher { sample: None };
        f(&mut b);
        let sample = b.sample.expect("benchmark must call Bencher::iter");
        println!(
            "bench {label:<44} mean {:>10}  min {:>10}  max {:>10}  ({} iters)",
            format_duration(sample.mean),
            format_duration(sample.min),
            format_duration(sample.max),
            sample.iterations,
        );
        self.results.push((label, sample));
    }

    /// Prints the closing summary (count only; lines are live-printed).
    pub fn final_summary(&self) {
        println!("ran {} benchmarks", self.results.len());
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark labelled `group/name`.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        let label = format!("{}/{name}", self.name);
        self.criterion.run(label, f);
        self
    }

    /// Runs a benchmark labelled `group/id` with an explicit input (the
    /// `criterion` signature kept so bench bodies read the same).
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.id);
        self.criterion.run(label, |b| f(b, input));
        self
    }

    /// Ends the group (kept for criterion API compatibility).
    pub fn finish(self) {}
}

/// Bundles benchmark functions under one runner function, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::microbench::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generates `main` for a bench binary (`harness = false`), mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            let mut c = $crate::microbench::Criterion::default();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_counts_iterations() {
        std::env::set_var("QCS_BENCH_WARMUP_MS", "1");
        std::env::set_var("QCS_BENCH_MEASURE_MS", "5");
        let sample = measure(|| std::hint::black_box(3u64.wrapping_mul(7)));
        assert!(sample.iterations > 0);
        assert!(sample.min <= sample.mean && sample.mean <= sample.max);
        std::env::remove_var("QCS_BENCH_WARMUP_MS");
        std::env::remove_var("QCS_BENCH_MEASURE_MS");
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("route", "qft12");
        assert_eq!(id.id, "route/qft12");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(format_duration(Duration::from_micros(1500)), "1.50 ms");
    }
}
