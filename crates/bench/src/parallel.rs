//! Parallel suite-mapping engine.
//!
//! Maps a benchmark suite across a `std::thread::scope` worker pool while
//! guaranteeing output *byte-identical* to the serial loop:
//!
//! * Work distribution is an atomic next-index counter, so threads steal
//!   benchmarks dynamically (circuits vary wildly in mapping cost).
//! * Every benchmark writes into its own pre-allocated slot, indexed by
//!   input position; the final record sequence is the slot order, which
//!   equals serial input order regardless of completion order.
//! * The expensive shared state — the device's all-pairs distance matrix
//!   and next-hop path reconstruction — is precomputed once inside
//!   [`Device`](qcs_topology::device::Device) and borrowed read-only by
//!   every worker through the scope, so no worker ever re-runs BFS or
//!   re-derives distances.
//! * Mapping itself is deterministic (no wall-clock, no thread-dependent
//!   RNG), so each slot's record is a pure function of its benchmark.
//!
//! `Mapper` is shareable across threads because `Placer` and `Router`
//! have `Send + Sync` supertraits.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use qcs_core::mapper::{Mapper, StageTiming};
use qcs_core::profile::CircuitProfile;
use qcs_core::report::MappingRecord;
use qcs_topology::device::Device;
use qcs_workloads::suite::Benchmark;

/// Default worker count: the machine's available parallelism (1 when it
/// cannot be determined).
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs `f` over every item of `items` on `workers` scoped threads,
/// returning the results in input order — the claim-by-atomic engine
/// behind [`map_suite_with_workers`], exposed for other consumers (the
/// compilation service dispatches batch jobs through it).
///
/// Work distribution is a shared atomic next-index counter, so threads
/// claim items dynamically (items vary wildly in cost); each result is
/// written into its own pre-allocated slot, making the output order (and
/// for deterministic `f`, the output itself) independent of thread
/// interleaving.
///
/// # Panics
///
/// Panics if `workers` is zero or a worker thread panics.
pub fn run_claimed<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    assert!(workers > 0, "worker count must be at least 1");
    let workers = workers.min(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    // One slot per item, claimed via the shared counter. Each slot is
    // locked exactly once (by the claiming worker), so the mutexes are
    // uncontended — they exist to make the slot writes safe and clippy-
    // and miri-visible rather than to arbitrate access.
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else {
                    break;
                };
                let result = f(i, item);
                *slots[i].lock().expect("slot lock never poisoned") = Some(result);
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot lock never poisoned")
                .expect("every slot below the counter was filled")
        })
        .collect()
}

fn map_one(benchmark: &Benchmark, device: &Device, mapper: &Mapper) -> Option<MappingRecord> {
    match mapper.map(&benchmark.circuit, device) {
        Ok(outcome) => {
            let mut report = outcome.report;
            // Wall-clock stage timing is measurement, not content: zero it
            // so records stay byte-identical across runs and worker counts.
            report.timing = StageTiming::ZERO;
            Some(MappingRecord {
                name: benchmark.name.clone(),
                family: benchmark.family.to_string(),
                synthetic: benchmark.is_synthetic(),
                profile: CircuitProfile::of(&benchmark.circuit),
                report,
            })
        }
        Err(e) => {
            eprintln!("skipping {}: {e}", benchmark.name);
            None
        }
    }
}

/// The serial reference implementation: one record per mapped benchmark,
/// in input order; failures are reported on stderr and skipped.
pub fn map_suite_serial(
    benchmarks: &[Benchmark],
    device: &Device,
    mapper: &Mapper,
) -> Vec<MappingRecord> {
    benchmarks
        .iter()
        .filter_map(|b| map_one(b, device, mapper))
        .collect()
}

/// Maps the suite over `workers` threads; the result is byte-identical to
/// [`map_suite_serial`] for any worker count.
///
/// # Panics
///
/// Panics if `workers` is zero or a worker thread panics.
pub fn map_suite_with_workers(
    benchmarks: &[Benchmark],
    device: &Device,
    mapper: &Mapper,
    workers: usize,
) -> Vec<MappingRecord> {
    run_claimed(benchmarks, workers, |_, b| map_one(b, device, mapper))
        .into_iter()
        .flatten()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcs_workloads::suite::SuiteConfig;

    fn tiny_suite() -> Vec<Benchmark> {
        qcs_workloads::suite::generate_suite(&SuiteConfig {
            count: 12,
            max_qubits: 8,
            max_gates: 120,
            ..SuiteConfig::default()
        })
    }

    #[test]
    fn parallel_matches_serial() {
        let benchmarks = tiny_suite();
        let device = qcs_topology::surface::surface17();
        let mapper = Mapper::trivial();
        let serial = map_suite_serial(&benchmarks, &device, &mapper);
        for workers in [1, 2, 3, 8] {
            let parallel = map_suite_with_workers(&benchmarks, &device, &mapper, workers);
            assert_eq!(parallel, serial, "workers = {workers}");
        }
    }

    #[test]
    fn worker_count_above_suite_size_is_fine() {
        let benchmarks = tiny_suite();
        let device = qcs_topology::surface::surface17();
        let mapper = Mapper::trivial();
        let records = map_suite_with_workers(&benchmarks, &device, &mapper, 64);
        assert_eq!(records.len(), benchmarks.len());
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_workers_rejected() {
        let device = qcs_topology::surface::surface17();
        map_suite_with_workers(&[], &device, &Mapper::trivial(), 0);
    }

    #[test]
    fn default_workers_positive() {
        assert!(default_workers() >= 1);
    }

    #[test]
    fn run_claimed_preserves_input_order() {
        let items: Vec<usize> = (0..100).collect();
        for workers in [1, 3, 16] {
            let out = run_claimed(&items, workers, |i, &x| {
                assert_eq!(i, x);
                x * 2
            });
            assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn run_claimed_empty_input() {
        let out: Vec<u8> = run_claimed(&[] as &[u8], 4, |_, &x| x);
        assert!(out.is_empty());
    }
}
