//! Determinism regression: the parallel suite-mapping engine must
//! produce record sequences byte-identical to the serial loop for any
//! worker count, and suite generation must be a pure function of its
//! seed.

use qcs_bench::{fig3_device, map_suite_serial, map_suite_with_workers, suite};
use qcs_core::mapper::Mapper;
use qcs_core::report::MappingRecord;
use qcs_workloads::suite::SuiteConfig;

fn test_config() -> SuiteConfig {
    // Small enough for CI, large enough to exercise every family and
    // both mapping outcomes (some members exceed smaller devices).
    SuiteConfig {
        count: 24,
        max_qubits: 12,
        max_gates: 300,
        ..SuiteConfig::default()
    }
}

#[test]
fn suite_generation_is_seed_deterministic() {
    let a = suite(&test_config());
    let b = suite(&test_config());
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.name, y.name);
        assert_eq!(x.circuit, y.circuit);
    }
}

#[test]
fn record_sequences_identical_across_worker_counts() {
    let benchmarks = suite(&test_config());
    let device = fig3_device();
    let mapper = Mapper::trivial();

    let serial = map_suite_serial(&benchmarks, &device, &mapper);
    let serial_json = MappingRecord::batch_to_json(&serial);
    assert!(!serial.is_empty());

    for workers in [1usize, 2, 8] {
        let parallel = map_suite_with_workers(&benchmarks, &device, &mapper, workers);
        assert_eq!(
            parallel, serial,
            "record sequence diverged at {workers} workers"
        );
        // Byte-identical serialization, not just structural equality.
        assert_eq!(
            MappingRecord::batch_to_json(&parallel),
            serial_json,
            "JSON bytes diverged at {workers} workers"
        );
    }
}

#[test]
fn lookahead_mapper_is_deterministic_in_parallel() {
    // The lookahead router keeps mutable per-call state (front layer,
    // anti-oscillation memory); two parallel runs must still agree.
    let benchmarks = suite(&SuiteConfig {
        count: 10,
        max_qubits: 10,
        max_gates: 150,
        ..SuiteConfig::default()
    });
    let device = fig3_device();
    let mapper = Mapper::lookahead();
    let a = map_suite_with_workers(&benchmarks, &device, &mapper, 8);
    let b = map_suite_with_workers(&benchmarks, &device, &mapper, 8);
    assert_eq!(a, b);
    assert_eq!(a, map_suite_serial(&benchmarks, &device, &mapper));
}

/// FNV-1a digest of a record batch's canonical JSON.
fn suite_digest(records: &[MappingRecord]) -> String {
    let mut h = qcs_circuit::hash::Fnv64::new();
    h.write_str(&MappingRecord::batch_to_json(records));
    format!("{:016x}", h.finish())
}

#[test]
fn full_suite_digests_match_golden() {
    // The full 200-circuit suite, all three headline strategies: the
    // canonical MapReport JSON must be byte-identical across worker
    // counts AND match the committed golden digests (the same values
    // recorded in BENCH_mapper.json). A digest change here means the
    // compiler's output changed — bump the goldens only with a
    // deliberate, explained behaviour change.
    let benchmarks = suite(&SuiteConfig::default());
    let device = fig3_device();
    // Goldens last bumped when MapReport grew the movement counters
    // (`moves_inserted`/`move_stages`) alongside the DPQA backend: the
    // canonical JSON gained two members, so every digest moved.
    for (name, mapper, golden) in [
        ("trivial", Mapper::trivial(), "17c857fdf661943c"),
        ("lookahead", Mapper::lookahead(), "882bc7bda4510f9d"),
        ("sabre", Mapper::sabre(), "634512840a63008c"),
    ] {
        let serial = map_suite_with_workers(&benchmarks, &device, &mapper, 1);
        assert_eq!(serial.len(), 200, "{name}: unexpected record count");
        let digest = suite_digest(&serial);
        assert_eq!(digest, golden, "{name}: canonical suite output drifted");
        let parallel = map_suite_with_workers(&benchmarks, &device, &mapper, 8);
        assert_eq!(
            suite_digest(&parallel),
            digest,
            "{name}: 8-worker output diverged from serial"
        );
    }
}
