//! Wall-clock comparison of the serial vs parallel suite-mapping engine,
//! for EXPERIMENTS.md. Ignored by default: run explicitly with
//! `cargo test -p qcs-bench --release --test timing -- --ignored --nocapture`.

use std::time::Instant;

use qcs_bench::{fig3_device, map_suite_serial, map_suite_with_workers, suite};
use qcs_core::mapper::Mapper;
use qcs_workloads::suite::SuiteConfig;

#[test]
#[ignore = "timing run, not a correctness test"]
fn time_serial_vs_parallel() {
    let benchmarks = suite(&SuiteConfig::default()); // the full 200-circuit suite
    let device = fig3_device();
    let mapper = Mapper::trivial();

    let t = Instant::now();
    let serial = map_suite_serial(&benchmarks, &device, &mapper);
    let serial_time = t.elapsed();
    println!(
        "serial:              {serial_time:?} ({} records)",
        serial.len()
    );

    for workers in [1, 2, 4, 8] {
        let t = Instant::now();
        let parallel = map_suite_with_workers(&benchmarks, &device, &mapper, workers);
        println!("{workers} worker(s):         {:?}", t.elapsed());
        assert_eq!(parallel, serial);
    }
}

#[test]
#[ignore = "timing run, not a correctness test"]
fn time_bfs_vs_cached_shortest_path() {
    // The routers used to BFS the coupling graph per blocked gate; they now
    // reconstruct the path from the device's precomputed distance matrix.
    // Compare both on every qubit pair of the fig3 device, repeated.
    let device = fig3_device();
    let n = device.qubit_count();
    const REPS: usize = 200;

    let t = Instant::now();
    let mut bfs_hops = 0usize;
    for _ in 0..REPS {
        for u in 0..n {
            for v in 0..n {
                bfs_hops += qcs_graph::paths::shortest_path(device.coupling(), u, v)
                    .expect("connected")
                    .len();
            }
        }
    }
    let bfs_time = t.elapsed();

    let t = Instant::now();
    let mut cached_hops = 0usize;
    for _ in 0..REPS {
        for u in 0..n {
            for v in 0..n {
                cached_hops += device.shortest_path(u, v).len();
            }
        }
    }
    let cached_time = t.elapsed();

    assert_eq!(bfs_hops, cached_hops); // both are shortest, so equal lengths
    println!("per-call BFS:        {bfs_time:?}  ({REPS}x all {n}x{n} pairs)");
    println!("cached next-hop:     {cached_time:?}");
    println!(
        "speedup:             {:.1}x",
        bfs_time.as_secs_f64() / cached_time.as_secs_f64()
    );
}
