//! Lightweight property-based testing for the workspace.
//!
//! Replaces the external `proptest` dependency with the two things the
//! test suites actually need: a seeded value generator ([`Gen`]) and a
//! case runner ([`check`]) that reruns a property over many derived
//! seeds and, on failure, reports the exact case seed so the failure can
//! be replayed with [`check_one`].
//!
//! Shrinking is deliberately omitted: every generator is driven by a
//! single `u64` case seed, so a failing case is already minimal to
//! reproduce (`check_one(name, seed, property)`).
//!
//! # Examples
//!
//! ```
//! use qcs_check::{check, Gen};
//!
//! check("sort is idempotent", 64, |g| {
//!     let mut xs = g.vec(0..20, |g| g.i64_in(-100..=100));
//!     xs.sort_unstable();
//!     let once = xs.clone();
//!     xs.sort_unstable();
//!     assert_eq!(once, xs);
//! });
//! ```

use std::ops::{Range, RangeInclusive};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use qcs_rng::{ChaCha8Rng, Rng, SeedableRng};

/// A seeded source of arbitrary test values.
///
/// Each test case gets its own `Gen` derived from `(suite seed, case
/// index)`, so cases are independent and individually replayable.
#[derive(Debug)]
pub struct Gen {
    rng: ChaCha8Rng,
    seed: u64,
}

impl Gen {
    /// A generator for an explicit case seed.
    pub fn from_seed(seed: u64) -> Self {
        Gen {
            rng: ChaCha8Rng::seed_from_u64(seed),
            seed,
        }
    }

    /// The case seed this generator was built from (for failure
    /// messages).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Uniform `usize` in a half-open range.
    pub fn usize_in(&mut self, range: Range<usize>) -> usize {
        self.rng.gen_range(range)
    }

    /// Uniform `usize` in an inclusive range.
    pub fn usize_in_incl(&mut self, range: RangeInclusive<usize>) -> usize {
        self.rng.gen_range(range)
    }

    /// Uniform `u64` over the full width.
    pub fn u64(&mut self) -> u64 {
        self.rng.gen()
    }

    /// Uniform `i64` in an inclusive range.
    pub fn i64_in(&mut self, range: RangeInclusive<i64>) -> i64 {
        self.rng.gen_range(range)
    }

    /// Uniform `f64` in a half-open range.
    pub fn f64_in(&mut self, range: Range<f64>) -> f64 {
        self.rng.gen_range(range)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64_unit(&mut self) -> f64 {
        self.rng.gen()
    }

    /// Bernoulli draw.
    pub fn bool(&mut self, p: f64) -> bool {
        self.rng.gen_bool(p)
    }

    /// A vector whose length is drawn from `len` and whose elements come
    /// from `element`.
    pub fn vec<T>(&mut self, len: Range<usize>, mut element: impl FnMut(&mut Gen) -> T) -> Vec<T> {
        let n = self.usize_in(len);
        (0..n).map(|_| element(self)).collect()
    }

    /// One item of a slice, uniformly.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose: empty slice");
        &items[self.usize_in(0..items.len())]
    }

    /// A uniformly random permutation of `0..n` (Fisher–Yates).
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut p: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = self.usize_in_incl(0..=i);
            p.swap(i, j);
        }
        p
    }

    /// Direct access to the underlying RNG for call sites that need the
    /// `qcs_rng` traits (e.g. simulator helpers taking `impl Rng`).
    pub fn rng(&mut self) -> &mut ChaCha8Rng {
        &mut self.rng
    }
}

/// Derives the per-case seed from the property name and case index, so
/// distinct properties explore distinct streams even at case 0.
fn case_seed(name: &str, case: u64) -> u64 {
    // FNV-1a over the name, mixed with the case index.
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Runs `property` over `cases` independent generators; panics with the
/// failing case seed attached on the first failure.
///
/// # Panics
///
/// Re-raises the property's panic after printing the case seed needed to
/// replay it via [`check_one`].
pub fn check(name: &str, cases: u64, mut property: impl FnMut(&mut Gen)) {
    for case in 0..cases {
        let seed = case_seed(name, case);
        run_case(name, seed, &mut property);
    }
}

/// Replays a single case of `property` with an explicit seed (taken from
/// a previous failure report).
///
/// # Panics
///
/// Propagates the property's panic.
pub fn check_one(name: &str, seed: u64, mut property: impl FnMut(&mut Gen)) {
    run_case(name, seed, &mut property);
}

fn run_case(name: &str, seed: u64, property: &mut impl FnMut(&mut Gen)) {
    let mut g = Gen::from_seed(seed);
    let result = catch_unwind(AssertUnwindSafe(|| property(&mut g)));
    if let Err(panic) = result {
        eprintln!(
            "property '{name}' failed; replay with qcs_check::check_one(\"{name}\", {seed}, ...)"
        );
        resume_unwind(panic);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic() {
        let mut first = Vec::new();
        check("det", 5, |g| first.push(g.u64()));
        let mut second = Vec::new();
        check("det", 5, |g| second.push(g.u64()));
        assert_eq!(first, second);
        assert_eq!(first.len(), 5);
    }

    #[test]
    fn distinct_properties_get_distinct_streams() {
        let mut a = Vec::new();
        check("alpha", 3, |g| a.push(g.u64()));
        let mut b = Vec::new();
        check("beta", 3, |g| b.push(g.u64()));
        assert_ne!(a, b);
    }

    #[test]
    fn failure_reports_replayable_seed() {
        let caught = std::panic::catch_unwind(|| {
            check("always-fails", 1, |_| panic!("boom"));
        });
        assert!(caught.is_err());
        // The failing seed equals case_seed("always-fails", 0); replaying
        // must reproduce the failure.
        let seed = case_seed("always-fails", 0);
        let replay = std::panic::catch_unwind(|| {
            check_one("always-fails", seed, |_| panic!("boom"));
        });
        assert!(replay.is_err());
    }

    #[test]
    fn vec_respects_length_range() {
        check("vec-len", 32, |g| {
            let xs = g.vec(2..7, |g| g.f64_unit());
            assert!((2..7).contains(&xs.len()));
        });
    }

    #[test]
    fn permutation_is_a_permutation() {
        check("perm", 32, |g| {
            let n = g.usize_in(1..12);
            let mut p = g.permutation(n);
            p.sort_unstable();
            assert_eq!(p, (0..n).collect::<Vec<_>>());
        });
    }

    #[test]
    fn choose_stays_in_bounds() {
        check("choose", 32, |g| {
            let item = *g.choose(&[1, 2, 3]);
            assert!((1..=3).contains(&item));
        });
    }
}
