//! Canonical form for circuits: the semantic-cache key.
//!
//! Two users submitting "the same" circuit rarely submit the same
//! bytes: qubits get renamed, commuting gates get emitted in a
//! different order, and the circuit name is whatever their tool chose.
//! [`canonicalize`] collapses those presentation differences into one
//! representative so every cache in the serving stack (LRU, WAL,
//! router placement) can key on structure instead of spelling:
//!
//! 1. **Deterministic qubit relabeling.** Per-qubit signatures are
//!    built from the multiset of gates touching the line (kind, angle
//!    bits, operand role), refined Weisfeiler–Lehman-style through the
//!    neighbouring operands, then finalized by a weight-ordered BFS
//!    over the interaction graph ([`crate::interaction`]) with stable
//!    tie-breaking. The signatures are multisets, so the relabeling is
//!    invariant under both qubit permutation and gate reordering.
//! 2. **Commutation normal form.** Equivalence under adjacent swaps of
//!    commuting gates ([`crate::commute::gates_commute`]) is a trace
//!    monoid: every equivalent ordering shares one dependency DAG
//!    (edges between non-commuting pairs in program order). The normal
//!    form is the *greedy minimal linear extension* of that DAG —
//!    repeatedly emit the ready gate with the smallest content key.
//!    (A naive bubble-sort to fixed point is **not** canonical: with
//!    `a‖b`, `b‖c` commuting but `a∦c`, both `bca` and `cab` are
//!    fixed points of adjacent-swap sorting yet equivalent.)
//! 3. **Optional angle bucketing.** Off by default — the default path
//!    stays bit-exact. When enabled, rotation angles are snapped to a
//!    grid of [`CanonConfig::angle_buckets`] steps per turn before
//!    hashing, trading exactness for hit rate (opt-in, documented).
//!
//! The canonical digest deliberately **excludes the circuit name**
//! (unlike [`crate::hash::circuit_digest`]): a rename must not miss.
//!
//! Canonicalization can only produce *false misses*, never false hits:
//! the serving layer still compares full canonical keys byte-for-byte
//! and replays + re-verifies cached mappings before serving them, so
//! an imperfect tie-break costs a cold compile, not correctness.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

use crate::circuit::Circuit;
use crate::commute::gates_commute;
use crate::gate::Gate;
use crate::hash::{write_gate, Fnv64};
use crate::interaction::interaction_graph;

/// Gate-count ceiling for the commutation normal form. Part of the
/// canonical-form *definition* (every component of the stack must agree
/// on when normalization is skipped), not a tunable.
pub const CANON_MAX_GATES: usize = 4096;

/// Ceiling on same-line gate-pair commutation checks during DAG
/// construction; beyond it normalization is skipped (relabeling still
/// applies). Also part of the canonical-form definition.
pub const CANON_MAX_PAIR_CHECKS: usize = 1 << 20;

/// Rounds of signature refinement. Enough to separate lines by their
/// radius-8 neighbourhood; more rounds only matter for pathological
/// near-regular circuits where a miss is acceptable.
const REFINE_ROUNDS: usize = 8;

/// Canonicalization options.
#[derive(Debug, Clone, PartialEq)]
pub struct CanonConfig {
    /// Snap rotation angles to a bucket grid before hashing. **Off by
    /// default**: with bucketing on, circuits differing by less than
    /// half a bucket share a cache entry, so served results are exact
    /// for the cached twin, approximate for the request.
    pub bucket_angles: bool,
    /// Buckets per full turn (2π) when `bucket_angles` is set.
    pub angle_buckets: u32,
}

impl Default for CanonConfig {
    fn default() -> Self {
        CanonConfig {
            bucket_angles: false,
            angle_buckets: 4096,
        }
    }
}

/// A circuit reduced to canonical form.
#[derive(Debug, Clone)]
pub struct CanonicalForm {
    /// The canonical circuit: relabeled, normal-ordered, name cleared.
    pub circuit: Circuit,
    /// The relabeling that was applied: `relabel[original] = canonical`.
    pub relabel: Vec<usize>,
    /// False when the size caps skipped the commutation normal form
    /// (the relabeling still applied).
    pub normalized: bool,
    /// Wall-clock cost of the relabeling stage.
    pub relabel_micros: u64,
    /// Wall-clock cost of the normal-form stage.
    pub normalize_micros: u64,
}

/// Reduces a circuit to canonical form. Deterministic: a pure function
/// of the circuit content and `config`.
pub fn canonicalize(circuit: &Circuit, config: &CanonConfig) -> CanonicalForm {
    let bucketed;
    let subject = if config.bucket_angles {
        bucketed = bucket_angles(circuit, config.angle_buckets);
        &bucketed
    } else {
        circuit
    };

    let start = Instant::now();
    let relabel = canonical_relabeling(subject);
    let mut relabeled = permute_qubits(subject, &relabel);
    relabeled.set_name("");
    let relabel_micros = micros_since(start);

    let start = Instant::now();
    let (circuit, normalized) = match normal_order(&relabeled) {
        Some(ordered) => (ordered, true),
        None => (relabeled, false),
    };
    let normalize_micros = micros_since(start);

    CanonicalForm {
        circuit,
        relabel,
        normalized,
        relabel_micros,
        normalize_micros,
    }
}

/// Digest of a canonical circuit's content — exactly
/// [`crate::hash::circuit_digest`] minus the circuit name, under a
/// distinct domain tag so exact and canonical digests never collide by
/// construction.
pub fn canonical_digest(circuit: &Circuit) -> u64 {
    let mut h = Fnv64::new();
    h.write_str("canon/1");
    h.write_usize(circuit.qubit_count());
    h.write_usize(circuit.len());
    for gate in circuit.iter() {
        write_gate(&mut h, gate);
    }
    h.finish()
}

/// Applies a qubit relabeling (`relabel[old] = new`) gate by gate,
/// preserving gate order, width and name.
///
/// # Panics
///
/// Panics if `relabel` is not a permutation of `0..qubit_count` (the
/// callers construct it as one; a violation is a canonicalization bug).
pub fn permute_qubits(circuit: &Circuit, relabel: &[usize]) -> Circuit {
    assert_eq!(relabel.len(), circuit.qubit_count(), "relabel width");
    let mut seen = vec![false; relabel.len()];
    for &v in relabel {
        assert!(
            v < relabel.len() && !seen[v],
            "relabel must be a permutation"
        );
        seen[v] = true;
    }
    let mut out = Circuit::with_name(circuit.qubit_count(), circuit.name());
    for gate in circuit.iter() {
        out.push(gate.map_qubits(|q| relabel[q]))
            .expect("permutation keeps operands in range");
    }
    out
}

/// Seeded random adjacent swaps of commuting gates: produces a circuit
/// equivalent to the input with a scrambled (but legal) gate order.
/// Test/bench helper for exercising the normal form.
pub fn commuting_shuffle(circuit: &Circuit, seed: u64, attempts: usize) -> Circuit {
    let mut gates: Vec<Gate> = circuit.gates().to_vec();
    if gates.len() >= 2 {
        let mut state = seed | 1;
        for _ in 0..attempts {
            // xorshift64* — self-contained so qcs-circuit needs no rng dep.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let i = (state.wrapping_mul(0x2545_f491_4f6c_dd1d) % (gates.len() as u64 - 1)) as usize;
            if gates_commute(&gates[i], &gates[i + 1]) {
                gates.swap(i, i + 1);
            }
        }
    }
    let mut out = Circuit::with_name(circuit.qubit_count(), circuit.name());
    for gate in gates {
        out.push(gate).expect("same operands, same width");
    }
    out
}

fn micros_since(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Rebuilds the circuit with every rotation angle snapped to the
/// nearest of `buckets` grid points per turn.
fn bucket_angles(circuit: &Circuit, buckets: u32) -> Circuit {
    let step = std::f64::consts::TAU / f64::from(buckets.max(1));
    let snap = |a: f64| (a / step).round() * step;
    let mut out = Circuit::with_name(circuit.qubit_count(), circuit.name());
    for gate in circuit.iter() {
        let snapped = match *gate {
            Gate::Rx(q, a) => Gate::Rx(q, snap(a)),
            Gate::Ry(q, a) => Gate::Ry(q, snap(a)),
            Gate::Rz(q, a) => Gate::Rz(q, snap(a)),
            Gate::Cphase(c, t, a) => Gate::Cphase(c, t, snap(a)),
            g => g,
        };
        out.push(snapped).expect("same operands, same width");
    }
    out
}

/// One gate's contribution to the signature of the line `q`, including
/// which operand slot the line occupies (control vs target matters).
fn gate_role_hash(gate: &Gate, role: usize) -> u64 {
    let mut h = Fnv64::new();
    h.write_str(gate.name());
    h.write_usize(role);
    match gate.angle() {
        Some(a) => h.write_u64(1).write_f64(a),
        None => h.write_u64(0),
    };
    h.finish()
}

/// Folds a sorted multiset of hashes into one hash.
fn fold_sorted(mut items: Vec<u64>, salt: u64) -> u64 {
    items.sort_unstable();
    let mut h = Fnv64::new();
    h.write_u64(salt);
    h.write_usize(items.len());
    for item in items {
        h.write_u64(item);
    }
    h.finish()
}

/// The deterministic relabeling: `relabel[original] = canonical`.
///
/// Invariant under qubit permutation and gate reordering by
/// construction — every input is a multiset or a weight — except for
/// the final original-index tie-break, which only fires between lines
/// the refined signatures cannot separate (in practice: automorphic
/// lines, where any choice yields the same canonical circuit).
fn canonical_relabeling(circuit: &Circuit) -> Vec<usize> {
    let n = circuit.qubit_count();
    if n == 0 {
        return Vec::new();
    }

    // Initial colors: the multiset of (gate kind, angle, operand role)
    // over every gate touching the line.
    let mut per_line: Vec<Vec<u64>> = vec![Vec::new(); n];
    for gate in circuit.iter() {
        for (role, q) in gate.qubits().into_iter().enumerate() {
            per_line[q].push(gate_role_hash(gate, role));
        }
    }
    let mut colors: Vec<u64> = per_line
        .into_iter()
        .map(|items| fold_sorted(items, 0x11))
        .collect();

    // WL refinement through operand neighbourhoods: a line's new color
    // folds, per touching gate, the (role, color) of the *other*
    // operands. Stop when the partition stops splitting.
    let mut distinct = distinct_count(&colors);
    for _ in 0..REFINE_ROUNDS.min(n) {
        let mut next_items: Vec<Vec<u64>> = vec![Vec::new(); n];
        for gate in circuit.iter() {
            let qs = gate.qubits();
            for (role, &q) in qs.iter().enumerate() {
                let mut h = Fnv64::new();
                h.write_u64(gate_role_hash(gate, role));
                for (other_role, &other) in qs.iter().enumerate() {
                    if other_role != role {
                        h.write_usize(other_role).write_u64(colors[other]);
                    }
                }
                next_items[q].push(h.finish());
            }
        }
        let next: Vec<u64> = next_items
            .into_iter()
            .zip(&colors)
            .map(|(items, &old)| fold_sorted(items, old))
            .collect();
        colors = next;
        let now = distinct_count(&colors);
        if now == distinct {
            break;
        }
        distinct = now;
    }

    // Weight-ordered BFS over the interaction graph: seed each
    // component at its best-colored line, then repeatedly visit the
    // frontier qubit with the strongest connection to the visited set
    // (total edge weight desc, color asc, original index last).
    let graph = interaction_graph(circuit);
    let mut visited = vec![false; n];
    let mut weight_to_visited = vec![0.0f64; n];
    let mut order = Vec::with_capacity(n);
    while order.len() < n {
        let next = (0..n)
            .filter(|&q| !visited[q])
            .min_by(|&a, &b| {
                weight_to_visited[b]
                    .total_cmp(&weight_to_visited[a])
                    .then(colors[a].cmp(&colors[b]))
                    .then(a.cmp(&b))
            })
            .expect("an unvisited qubit exists");
        visited[next] = true;
        order.push(next);
        for &nb in graph.neighbors(next) {
            if !visited[nb] {
                weight_to_visited[nb] += graph.weight(next, nb).unwrap_or(0.0);
            }
        }
    }

    let mut relabel = vec![0usize; n];
    for (new, &old) in order.iter().enumerate() {
        relabel[old] = new;
    }
    relabel
}

fn distinct_count(colors: &[u64]) -> usize {
    let mut sorted = colors.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    sorted.len()
}

/// Content key for the greedy linear extension: orders ready gates by
/// kind name, operands, then angle bits. The original index is a final
/// tie-break between *identical* gates (either emission order yields
/// the same sequence).
type GateKey = (&'static str, Vec<usize>, u64, usize);

fn gate_key(gate: &Gate, index: usize) -> GateKey {
    let angle_bits = gate.angle().map_or(0, f64::to_bits);
    (gate.name(), gate.qubits(), angle_bits, index)
}

/// Commutation normal form: the greedy minimal linear extension of the
/// non-commutation dependency DAG. Returns `None` when the size caps
/// apply (the caller keeps the input order).
fn normal_order(circuit: &Circuit) -> Option<Circuit> {
    let gates = circuit.gates();
    let n = gates.len();
    if n > CANON_MAX_GATES {
        return None;
    }

    // Only gates sharing a line can fail to commute, so candidate pairs
    // are prior gates on any of this gate's lines. Cap the total pair
    // work so a pathological single-line circuit cannot stall serving.
    let mut lines: Vec<Vec<usize>> = vec![Vec::new(); circuit.qubit_count()];
    let mut pair_budget = CANON_MAX_PAIR_CHECKS;
    let mut successors: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut indegree = vec![0usize; n];
    let mut candidates = Vec::new();
    for (j, gate) in gates.iter().enumerate() {
        candidates.clear();
        for &q in &gate.qubits() {
            candidates.extend_from_slice(&lines[q]);
        }
        candidates.sort_unstable();
        candidates.dedup();
        if candidates.len() > pair_budget {
            return None;
        }
        pair_budget -= candidates.len();
        for &i in &candidates {
            if !gates_commute(&gates[i], gate) {
                successors[i].push(j);
                indegree[j] += 1;
            }
        }
        for q in gate.qubits() {
            lines[q].push(j);
        }
    }

    let mut ready: BinaryHeap<Reverse<GateKey>> = (0..n)
        .filter(|&j| indegree[j] == 0)
        .map(|j| Reverse(gate_key(&gates[j], j)))
        .collect();
    let mut out = Circuit::with_name(circuit.qubit_count(), circuit.name());
    while let Some(Reverse((_, _, _, j))) = ready.pop() {
        out.push(gates[j]).expect("same operands, same width");
        for &s in &successors[j] {
            indegree[s] -= 1;
            if indegree[s] == 0 {
                ready.push(Reverse(gate_key(&gates[s], s)));
            }
        }
    }
    debug_assert_eq!(out.len(), n, "DAG emission must cover every gate");
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qasm;

    fn digest_of(c: &Circuit, config: &CanonConfig) -> u64 {
        canonical_digest(&canonicalize(c, config).circuit)
    }

    fn sample_circuit() -> Circuit {
        // Asymmetric enough that every line has a distinct signature.
        let mut c = Circuit::with_name(5, "sample");
        c.h(0).unwrap();
        c.cnot(0, 1).unwrap();
        c.cnot(1, 2).unwrap();
        c.rz(2, 0.25).unwrap();
        c.cphase(2, 3, 0.5).unwrap();
        c.cnot(3, 4).unwrap();
        c.rx(4, 1.5).unwrap();
        c.measure_all();
        c
    }

    fn seeded_permutation(n: usize, seed: u64) -> Vec<usize> {
        let mut perm: Vec<usize> = (0..n).collect();
        let mut state = seed | 1;
        for i in (1..n).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let j = (state.wrapping_mul(0x2545_f491_4f6c_dd1d) % (i as u64 + 1)) as usize;
            perm.swap(i, j);
        }
        perm
    }

    #[test]
    fn relabel_is_a_permutation() {
        let form = canonicalize(&sample_circuit(), &CanonConfig::default());
        let mut seen = vec![false; form.relabel.len()];
        for &v in &form.relabel {
            assert!(!seen[v]);
            seen[v] = true;
        }
        assert_eq!(form.circuit.len(), sample_circuit().len());
    }

    #[test]
    fn digest_invariant_under_qubit_permutation() {
        let base = sample_circuit();
        let config = CanonConfig::default();
        let want = digest_of(&base, &config);
        for seed in 1..20u64 {
            let perm = seeded_permutation(base.qubit_count(), seed);
            let renamed = permute_qubits(&base, &perm);
            assert_eq!(
                digest_of(&renamed, &config),
                want,
                "permutation seed {seed} changed the canonical digest"
            );
        }
    }

    #[test]
    fn digest_invariant_under_commuting_shuffle() {
        let base = sample_circuit();
        let config = CanonConfig::default();
        let want = digest_of(&base, &config);
        for seed in 1..20u64 {
            let shuffled = commuting_shuffle(&base, seed, 200);
            assert_eq!(
                digest_of(&shuffled, &config),
                want,
                "shuffle seed {seed} changed the canonical digest"
            );
        }
    }

    #[test]
    fn digest_invariant_under_both_at_once() {
        let base = sample_circuit();
        let config = CanonConfig::default();
        let want = digest_of(&base, &config);
        for seed in 1..20u64 {
            let perm = seeded_permutation(base.qubit_count(), seed.wrapping_mul(7919));
            let variant = commuting_shuffle(&permute_qubits(&base, &perm), seed, 200);
            assert_eq!(digest_of(&variant, &config), want);
        }
    }

    #[test]
    fn name_is_excluded_from_the_canonical_digest() {
        let a = sample_circuit();
        let mut b = sample_circuit();
        b.set_name("completely different");
        let config = CanonConfig::default();
        assert_ne!(
            crate::hash::circuit_digest(&a),
            crate::hash::circuit_digest(&b)
        );
        assert_eq!(digest_of(&a, &config), digest_of(&b, &config));
    }

    #[test]
    fn bubble_sort_counterexample_normalizes_to_one_form() {
        // a = X(0), b = Z(1), c = Z(0): a‖b and b‖c commute (disjoint),
        // a∦c share a line and anticommute. All orders keeping a before
        // c are one trace; naive adjacent-swap sorting has two fixed
        // points among them ("bca" vs "cab" shapes).
        let build = |order: [&Gate; 3]| {
            let mut c = Circuit::new(2);
            for g in order {
                c.push(*g).unwrap();
            }
            c
        };
        let a = Gate::X(0);
        let b = Gate::Z(1);
        let c = Gate::Z(0);
        let config = CanonConfig::default();
        let abc = digest_of(&build([&a, &b, &c]), &config);
        assert_eq!(digest_of(&build([&b, &a, &c]), &config), abc);
        assert_eq!(digest_of(&build([&a, &c, &b]), &config), abc);
        // c before a is a *different* trace and must not collapse.
        assert_ne!(digest_of(&build([&c, &a, &b]), &config), abc);
    }

    #[test]
    fn distinct_circuits_have_distinct_digests() {
        let config = CanonConfig::default();
        let base = digest_of(&sample_circuit(), &config);
        let mut wider = sample_circuit();
        wider.h(1).unwrap();
        assert_ne!(digest_of(&wider, &config), base);

        let mut angle = Circuit::new(2);
        angle.rz(0, 0.25).unwrap();
        let mut angle2 = Circuit::new(2);
        angle2.rz(0, 0.26).unwrap();
        assert_ne!(digest_of(&angle, &config), digest_of(&angle2, &config));
    }

    #[test]
    fn angle_bucketing_merges_near_angles_only_when_enabled() {
        let mut a = Circuit::new(1);
        a.rz(0, 0.5).unwrap();
        let mut b = Circuit::new(1);
        b.rz(0, 0.5 + 1e-7).unwrap();
        let exact = CanonConfig::default();
        assert_ne!(digest_of(&a, &exact), digest_of(&b, &exact));
        let bucketed = CanonConfig {
            bucket_angles: true,
            ..CanonConfig::default()
        };
        assert_eq!(digest_of(&a, &bucketed), digest_of(&b, &bucketed));
        // Far-apart angles stay distinct even with bucketing.
        let mut c = Circuit::new(1);
        c.rz(0, 0.6).unwrap();
        assert_ne!(digest_of(&a, &bucketed), digest_of(&c, &bucketed));
    }

    #[test]
    fn oversized_circuits_skip_normalization_but_still_relabel() {
        let mut big = Circuit::new(2);
        for _ in 0..=CANON_MAX_GATES / 2 {
            big.h(0).unwrap();
            big.h(1).unwrap();
        }
        let form = canonicalize(&big, &CanonConfig::default());
        assert!(!form.normalized);
        assert_eq!(form.relabel.len(), 2);
        // Determinism holds either way.
        let again = canonicalize(&big, &CanonConfig::default());
        assert_eq!(
            canonical_digest(&form.circuit),
            canonical_digest(&again.circuit)
        );
    }

    #[test]
    fn measurement_order_is_preserved_per_line() {
        // Two measures on one line must not reorder.
        let mut c = Circuit::new(1);
        c.h(0).unwrap();
        c.measure(0).unwrap();
        c.x(0).unwrap();
        c.measure(0).unwrap();
        let form = canonicalize(&c, &CanonConfig::default());
        let names: Vec<&str> = form.circuit.iter().map(Gate::name).collect();
        assert_eq!(names, vec!["h", "measure", "x", "measure"]);
    }

    #[test]
    fn canonical_qasm_round_trips() {
        let form = canonicalize(&sample_circuit(), &CanonConfig::default());
        let text = qasm::print(&form.circuit);
        let back = qasm::parse(&text).unwrap();
        assert_eq!(back.gates(), form.circuit.gates());
    }
}
