//! The [`Circuit`] type: an ordered list of gates over `n` qubits.

use std::collections::BTreeMap;
use std::fmt;

use crate::gate::{Gate, GateKind, Qubit};

/// Error type for circuit construction.
#[derive(Debug, Clone, PartialEq)]
pub enum CircuitError {
    /// A gate referenced a qubit at or beyond the circuit width.
    QubitOutOfRange {
        /// Offending qubit index.
        qubit: Qubit,
        /// Circuit width.
        width: usize,
    },
    /// A multi-qubit gate listed the same qubit twice.
    DuplicateOperand(Qubit),
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::QubitOutOfRange { qubit, width } => {
                write!(f, "qubit {qubit} out of range for circuit of width {width}")
            }
            CircuitError::DuplicateOperand(q) => {
                write!(f, "duplicate operand qubit {q} in multi-qubit gate")
            }
        }
    }
}

impl std::error::Error for CircuitError {}

/// Size statistics of a circuit — the "common algorithm parameters" the
/// paper contrasts with interaction-graph metrics (Section III): number of
/// qubits, number of gates, two-qubit-gate percentage and depth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CircuitStats {
    /// Circuit width (declared qubits).
    pub qubits: usize,
    /// Total gate count (excluding barriers).
    pub gates: usize,
    /// Number of two-qubit unitary gates.
    pub two_qubit_gates: usize,
    /// Two-qubit gates as a fraction of all gates in `[0, 1]`.
    pub two_qubit_fraction: f64,
    /// Circuit depth (length of the longest dependency chain).
    pub depth: usize,
}

qcs_json::impl_json_object!(CircuitStats {
    qubits,
    gates,
    two_qubit_gates,
    two_qubit_fraction,
    depth,
});

/// A quantum circuit: a fixed number of qubits and an ordered gate list.
///
/// The builder methods append gates and return `&mut Self` so circuits can
/// be written fluently. All builders validate operands.
///
/// # Examples
///
/// ```
/// use qcs_circuit::circuit::Circuit;
///
/// let mut bell = Circuit::with_name(2, "bell");
/// bell.h(0)?.cnot(0, 1)?.measure_all();
/// assert_eq!(bell.stats().two_qubit_gates, 1);
/// # Ok::<(), qcs_circuit::CircuitError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Circuit {
    name: String,
    qubits: usize,
    gates: Vec<Gate>,
}

impl Circuit {
    /// Creates an empty circuit over `qubits` qubits.
    pub fn new(qubits: usize) -> Self {
        Circuit {
            name: String::new(),
            qubits,
            gates: Vec::new(),
        }
    }

    /// Creates an empty named circuit (names flow into experiment reports).
    pub fn with_name(qubits: usize, name: impl Into<String>) -> Self {
        Circuit {
            name: name.into(),
            qubits,
            gates: Vec::new(),
        }
    }

    /// The circuit's name (may be empty).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the circuit.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Number of qubits (circuit width).
    pub fn qubit_count(&self) -> usize {
        self.qubits
    }

    /// Number of gates, *including* barriers and measurements.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Whether the circuit has no gates.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// The gate list in program order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Iterates over the gates in program order.
    pub fn iter(&self) -> std::slice::Iter<'_, Gate> {
        self.gates.iter()
    }

    /// Appends a validated gate.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::QubitOutOfRange`] if an operand exceeds the
    /// circuit width, or [`CircuitError::DuplicateOperand`] if a
    /// multi-qubit gate repeats an operand.
    pub fn push(&mut self, gate: Gate) -> Result<&mut Self, CircuitError> {
        let qs = gate.qubits();
        for &q in &qs {
            if q >= self.qubits {
                return Err(CircuitError::QubitOutOfRange {
                    qubit: q,
                    width: self.qubits,
                });
            }
        }
        for i in 0..qs.len() {
            for j in (i + 1)..qs.len() {
                if qs[i] == qs[j] {
                    return Err(CircuitError::DuplicateOperand(qs[i]));
                }
            }
        }
        self.gates.push(gate);
        Ok(self)
    }

    /// Appends every gate of `other` (widths must already be compatible).
    ///
    /// # Errors
    ///
    /// Returns an error if any appended gate fails validation against this
    /// circuit's width.
    pub fn extend_from(&mut self, other: &Circuit) -> Result<&mut Self, CircuitError> {
        for &g in other.gates() {
            self.push(g)?;
        }
        Ok(self)
    }

    // --- fluent builders -------------------------------------------------

    /// Appends a Pauli-X gate. See [`Circuit::push`] for errors.
    #[allow(missing_docs)]
    pub fn x(&mut self, q: Qubit) -> Result<&mut Self, CircuitError> {
        self.push(Gate::X(q))
    }
    /// Appends a Pauli-Y gate. See [`Circuit::push`] for errors.
    pub fn y(&mut self, q: Qubit) -> Result<&mut Self, CircuitError> {
        self.push(Gate::Y(q))
    }
    /// Appends a Pauli-Z gate. See [`Circuit::push`] for errors.
    pub fn z(&mut self, q: Qubit) -> Result<&mut Self, CircuitError> {
        self.push(Gate::Z(q))
    }
    /// Appends a Hadamard gate. See [`Circuit::push`] for errors.
    pub fn h(&mut self, q: Qubit) -> Result<&mut Self, CircuitError> {
        self.push(Gate::H(q))
    }
    /// Appends an S gate. See [`Circuit::push`] for errors.
    pub fn s(&mut self, q: Qubit) -> Result<&mut Self, CircuitError> {
        self.push(Gate::S(q))
    }
    /// Appends an S† gate. See [`Circuit::push`] for errors.
    pub fn sdg(&mut self, q: Qubit) -> Result<&mut Self, CircuitError> {
        self.push(Gate::Sdg(q))
    }
    /// Appends a T gate. See [`Circuit::push`] for errors.
    pub fn t(&mut self, q: Qubit) -> Result<&mut Self, CircuitError> {
        self.push(Gate::T(q))
    }
    /// Appends a T† gate. See [`Circuit::push`] for errors.
    pub fn tdg(&mut self, q: Qubit) -> Result<&mut Self, CircuitError> {
        self.push(Gate::Tdg(q))
    }
    /// Appends an Rx rotation. See [`Circuit::push`] for errors.
    pub fn rx(&mut self, q: Qubit, angle: f64) -> Result<&mut Self, CircuitError> {
        self.push(Gate::Rx(q, angle))
    }
    /// Appends an Ry rotation. See [`Circuit::push`] for errors.
    pub fn ry(&mut self, q: Qubit, angle: f64) -> Result<&mut Self, CircuitError> {
        self.push(Gate::Ry(q, angle))
    }
    /// Appends an Rz rotation. See [`Circuit::push`] for errors.
    pub fn rz(&mut self, q: Qubit, angle: f64) -> Result<&mut Self, CircuitError> {
        self.push(Gate::Rz(q, angle))
    }
    /// Appends a CNOT (control, target). See [`Circuit::push`] for errors.
    pub fn cnot(&mut self, c: Qubit, t: Qubit) -> Result<&mut Self, CircuitError> {
        self.push(Gate::Cnot(c, t))
    }
    /// Appends a CZ. See [`Circuit::push`] for errors.
    pub fn cz(&mut self, c: Qubit, t: Qubit) -> Result<&mut Self, CircuitError> {
        self.push(Gate::Cz(c, t))
    }
    /// Appends a controlled phase rotation. See [`Circuit::push`] for errors.
    pub fn cphase(&mut self, c: Qubit, t: Qubit, angle: f64) -> Result<&mut Self, CircuitError> {
        self.push(Gate::Cphase(c, t, angle))
    }
    /// Appends a SWAP. See [`Circuit::push`] for errors.
    pub fn swap(&mut self, a: Qubit, b: Qubit) -> Result<&mut Self, CircuitError> {
        self.push(Gate::Swap(a, b))
    }
    /// Appends a Toffoli (control, control, target). See [`Circuit::push`]
    /// for errors.
    pub fn toffoli(&mut self, a: Qubit, b: Qubit, t: Qubit) -> Result<&mut Self, CircuitError> {
        self.push(Gate::Toffoli(a, b, t))
    }
    /// Appends a measurement. See [`Circuit::push`] for errors.
    pub fn measure(&mut self, q: Qubit) -> Result<&mut Self, CircuitError> {
        self.push(Gate::Measure(q))
    }

    /// Measures every qubit in index order.
    pub fn measure_all(&mut self) -> &mut Self {
        for q in 0..self.qubits {
            self.gates.push(Gate::Measure(q));
        }
        self
    }

    /// Appends a barrier on every qubit.
    pub fn barrier_all(&mut self) -> &mut Self {
        for q in 0..self.qubits {
            self.gates.push(Gate::Barrier(q));
        }
        self
    }

    // --- statistics -------------------------------------------------------

    /// Gate count excluding barriers (the paper's "number of gates").
    pub fn gate_count(&self) -> usize {
        self.gates
            .iter()
            .filter(|g| !matches!(g, Gate::Barrier(_)))
            .count()
    }

    /// Number of two-qubit unitary gates.
    pub fn two_qubit_gate_count(&self) -> usize {
        self.gates.iter().filter(|g| g.is_two_qubit()).count()
    }

    /// Two-qubit gates as a fraction of [`Circuit::gate_count`], 0 if empty.
    pub fn two_qubit_fraction(&self) -> f64 {
        let total = self.gate_count();
        if total == 0 {
            0.0
        } else {
            self.two_qubit_gate_count() as f64 / total as f64
        }
    }

    /// Circuit depth: longest chain of gates sharing qubits. A run of
    /// consecutive barriers acts as one synchronization point across all
    /// its qubits and adds no depth of its own.
    pub fn depth(&self) -> usize {
        let mut level = vec![0usize; self.qubits];
        let mut max_depth = 0;
        let mut i = 0;
        while i < self.gates.len() {
            if matches!(self.gates[i], Gate::Barrier(_)) {
                // Gather the consecutive barrier run and synchronize.
                let mut qs = Vec::new();
                while i < self.gates.len() {
                    if let Gate::Barrier(q) = self.gates[i] {
                        qs.push(q);
                        i += 1;
                    } else {
                        break;
                    }
                }
                let sync = qs.iter().map(|&q| level[q]).max().unwrap_or(0);
                for &q in &qs {
                    level[q] = sync;
                }
                continue;
            }
            let g = &self.gates[i];
            let qs = g.qubits();
            let end = qs.iter().map(|&q| level[q]).max().unwrap_or(0) + 1;
            for &q in &qs {
                level[q] = end;
            }
            max_depth = max_depth.max(end);
            i += 1;
        }
        max_depth
    }

    /// Per-kind gate histogram.
    pub fn gate_histogram(&self) -> BTreeMap<GateKind, usize> {
        let mut h = BTreeMap::new();
        for g in &self.gates {
            *h.entry(g.kind()).or_insert(0) += 1;
        }
        h
    }

    /// All size statistics in one record.
    pub fn stats(&self) -> CircuitStats {
        CircuitStats {
            qubits: self.qubits,
            gates: self.gate_count(),
            two_qubit_gates: self.two_qubit_gate_count(),
            two_qubit_fraction: self.two_qubit_fraction(),
            depth: self.depth(),
        }
    }

    /// The set of qubits that actually appear in at least one gate.
    pub fn used_qubits(&self) -> Vec<Qubit> {
        let mut used = vec![false; self.qubits];
        for g in &self.gates {
            for q in g.qubits() {
                used[q] = true;
            }
        }
        (0..self.qubits).filter(|&q| used[q]).collect()
    }

    /// Returns this circuit with all operands relabelled through `f`.
    ///
    /// The result has width `new_width`; the caller must guarantee `f`
    /// stays within it.
    ///
    /// # Errors
    ///
    /// Returns an error if a relabelled gate fails validation.
    pub fn relabeled<F: FnMut(Qubit) -> Qubit>(
        &self,
        new_width: usize,
        mut f: F,
    ) -> Result<Circuit, CircuitError> {
        let mut c = Circuit::with_name(new_width, self.name.clone());
        for g in &self.gates {
            c.push(g.map_qubits(&mut f))?;
        }
        Ok(c)
    }

    /// The inverse circuit (gates reversed and individually inverted).
    /// Non-unitary gates (measure, barrier) are dropped.
    pub fn inverse(&self) -> Circuit {
        let mut c = Circuit::with_name(self.qubits, format!("{}_inv", self.name));
        for g in self.gates.iter().rev() {
            if let Some(inv) = g.inverse() {
                c.gates.push(inv);
            }
        }
        c
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "circuit '{}': {} qubits, {} gates, depth {}",
            self.name,
            self.qubits,
            self.gate_count(),
            self.depth()
        )?;
        for g in &self.gates {
            writeln!(f, "  {g}")?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a Circuit {
    type Item = &'a Gate;
    type IntoIter = std::slice::Iter<'a, Gate>;

    fn into_iter(self) -> Self::IntoIter {
        self.gates.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig2_circuit() -> Circuit {
        // The 4-qubit circuit of Fig. 2 (five CNOTs).
        let mut c = Circuit::with_name(4, "fig2");
        c.cnot(1, 0)
            .unwrap()
            .cnot(1, 2)
            .unwrap()
            .cnot(2, 3)
            .unwrap()
            .cnot(2, 0)
            .unwrap()
            .cnot(1, 2)
            .unwrap();
        c
    }

    #[test]
    fn push_validates_range() {
        let mut c = Circuit::new(2);
        assert!(matches!(
            c.push(Gate::X(2)),
            Err(CircuitError::QubitOutOfRange { qubit: 2, width: 2 })
        ));
    }

    #[test]
    fn push_validates_duplicates() {
        let mut c = Circuit::new(3);
        assert_eq!(
            c.push(Gate::Cnot(1, 1)),
            Err(CircuitError::DuplicateOperand(1))
        );
        assert_eq!(
            c.push(Gate::Toffoli(0, 2, 2)),
            Err(CircuitError::DuplicateOperand(2))
        );
    }

    #[test]
    fn counts_and_fractions() {
        let mut c = Circuit::new(3);
        c.h(0)
            .unwrap()
            .cnot(0, 1)
            .unwrap()
            .t(2)
            .unwrap()
            .cz(1, 2)
            .unwrap();
        c.barrier_all();
        assert_eq!(c.gate_count(), 4);
        assert_eq!(c.two_qubit_gate_count(), 2);
        assert_eq!(c.two_qubit_fraction(), 0.5);
        assert_eq!(c.len(), 7); // barriers counted in raw length
    }

    #[test]
    fn empty_circuit_stats() {
        let c = Circuit::new(3);
        let s = c.stats();
        assert_eq!(s.gates, 0);
        assert_eq!(s.two_qubit_fraction, 0.0);
        assert_eq!(s.depth, 0);
        assert!(c.is_empty());
    }

    #[test]
    fn depth_tracks_dependencies() {
        let mut c = Circuit::new(3);
        // Parallel H's → depth 1; CNOT(0,1) then CNOT(1,2) chain → depth 3.
        c.h(0).unwrap().h(1).unwrap().h(2).unwrap();
        assert_eq!(c.depth(), 1);
        c.cnot(0, 1).unwrap().cnot(1, 2).unwrap();
        assert_eq!(c.depth(), 3);
    }

    #[test]
    fn barriers_synchronize_without_depth() {
        let mut a = Circuit::new(2);
        a.h(0).unwrap();
        a.barrier_all();
        a.h(1).unwrap();
        // Without the barrier the H(1) would land at level 1; the barrier
        // forces it after H(0) but adds no unit of depth itself.
        assert_eq!(a.depth(), 2);
    }

    #[test]
    fn fig2_statistics() {
        let c = fig2_circuit();
        let s = c.stats();
        assert_eq!(s.qubits, 4);
        assert_eq!(s.gates, 5);
        assert_eq!(s.two_qubit_gates, 5);
        assert_eq!(s.two_qubit_fraction, 1.0);
        assert_eq!(s.depth, 5); // all five CNOTs chain through q1/q2
    }

    #[test]
    fn histogram_counts_kinds() {
        let mut c = Circuit::new(2);
        c.h(0).unwrap().h(1).unwrap().cnot(0, 1).unwrap();
        let h = c.gate_histogram();
        assert_eq!(h[&GateKind::H], 2);
        assert_eq!(h[&GateKind::Cnot], 1);
    }

    #[test]
    fn used_qubits_skips_idle() {
        let mut c = Circuit::new(4);
        c.cnot(0, 2).unwrap();
        assert_eq!(c.used_qubits(), vec![0, 2]);
    }

    #[test]
    fn relabel_shifts_operands() {
        let c = fig2_circuit();
        let r = c.relabeled(8, |q| q + 4).unwrap();
        assert_eq!(r.gates()[0], Gate::Cnot(5, 4));
        assert_eq!(r.qubit_count(), 8);
    }

    #[test]
    fn inverse_reverses_and_inverts() {
        let mut c = Circuit::new(2);
        c.s(0).unwrap().cnot(0, 1).unwrap().measure_all();
        let inv = c.inverse();
        assert_eq!(inv.gates(), &[Gate::Cnot(0, 1), Gate::Sdg(0)]);
    }

    #[test]
    fn measure_all_in_order() {
        let mut c = Circuit::new(3);
        c.measure_all();
        assert_eq!(
            c.gates(),
            &[Gate::Measure(0), Gate::Measure(1), Gate::Measure(2)]
        );
    }

    #[test]
    fn extend_from_appends() {
        let mut a = Circuit::new(2);
        a.h(0).unwrap();
        let mut b = Circuit::new(2);
        b.cnot(0, 1).unwrap();
        a.extend_from(&b).unwrap();
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn iteration() {
        let c = fig2_circuit();
        assert_eq!(c.iter().count(), 5);
        assert_eq!((&c).into_iter().count(), 5);
    }
}
