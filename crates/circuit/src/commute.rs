//! Gate commutation rules and commutation-aware cancellation.
//!
//! Itoko et al. (the paper's ref \[39\]) improve mapping by exploiting
//! "gate transformation and commutation": two gates that commute can be
//! reordered, which exposes cancellations that a purely adjacent peephole
//! misses — e.g. the CNOTs in `CNOT(0,1) · Rz(0) · CNOT(0,1)` cancel
//! because `Rz` on the control commutes with the CNOT.
//!
//! [`gates_commute`] encodes the standard sound (conservative) rule set;
//! [`cancel_with_commutation`] uses it to cancel inverse pairs through
//! commuting blockers.

use crate::circuit::Circuit;
use crate::gate::Gate;

/// Whether `a` and `b` certainly commute (conservative: `false` means
/// "unknown", not "anti-commute").
///
/// Rules:
/// * gates on disjoint qubits always commute;
/// * diagonal gates (Z, S, S†, T, T†, Rz, CZ, CPhase, I) commute with
///   each other on any operand overlap;
/// * a diagonal single-qubit gate on a CNOT's **control** commutes with
///   the CNOT;
/// * X/Rx on a CNOT's **target** commutes with the CNOT;
/// * CNOTs sharing a control commute; CNOTs sharing a target commute;
/// * barriers commute with nothing (they are ordering fences) and
///   measurements commute with nothing sharing a qubit.
pub fn gates_commute(a: &Gate, b: &Gate) -> bool {
    let qa = a.qubits();
    let qb = b.qubits();
    if qa.iter().all(|q| !qb.contains(q)) {
        // Disjoint supports — but barriers still fence their own qubit
        // only, so disjoint is fine even for barriers.
        return true;
    }
    if matches!(a, Gate::Barrier(_)) || matches!(b, Gate::Barrier(_)) {
        return false;
    }
    if matches!(a, Gate::Measure(_)) || matches!(b, Gate::Measure(_)) {
        return false;
    }
    if a.is_diagonal() && b.is_diagonal() {
        return true;
    }
    // CNOT-specific rules (order-agnostic).
    if let Some(r) = cnot_rule(a, b) {
        return r;
    }
    if let Some(r) = cnot_rule(b, a) {
        return r;
    }
    false
}

/// Commutation of `other` with a CNOT, if `cnot` is one.
fn cnot_rule(cnot: &Gate, other: &Gate) -> Option<bool> {
    let &Gate::Cnot(c, t) = cnot else {
        return None;
    };
    Some(match *other {
        // Diagonal on the control line.
        Gate::Z(q) | Gate::S(q) | Gate::Sdg(q) | Gate::T(q) | Gate::Tdg(q) | Gate::Rz(q, _)
            if q == c =>
        {
            true
        }
        Gate::I(q) => q == c || q == t,
        // X-type on the target line.
        Gate::X(q) | Gate::Rx(q, _) if q == t => true,
        // Another CNOT sharing control or target (but not crossed).
        Gate::Cnot(c2, t2) => (c2 == c && t2 != c) || (t2 == t && c2 != c && c2 != t),
        // CZ touching only the control (CZ is diagonal; CNOT's control is
        // a diagonal line).
        Gate::Cz(a, b) | Gate::Cphase(a, b, _) => {
            let touches_target = a == t || b == t;
            !touches_target && (a == c || b == c)
        }
        _ => false,
    })
}

/// Inverse-pair cancellation through commuting blockers.
///
/// For each gate, scans forward for its inverse; the pair cancels if
/// every intermediate gate sharing a qubit with it commutes with it.
/// Runs to a fixed point. Returns the optimized circuit and the number
/// of gates removed.
pub fn cancel_with_commutation(circuit: &Circuit) -> (Circuit, usize) {
    let mut gates: Vec<Option<Gate>> = circuit.gates().iter().copied().map(Some).collect();
    let mut removed = 0usize;
    loop {
        let mut progress = false;
        'outer: for i in 0..gates.len() {
            let Some(gi) = gates[i] else { continue };
            if !gi.is_unitary() {
                continue;
            }
            for j in (i + 1)..gates.len() {
                let Some(gj) = gates[j] else { continue };
                let shares = gi.qubits().iter().any(|q| gj.qubits().contains(q));
                if !shares {
                    continue;
                }
                if gi.cancels_with(&gj) {
                    gates[i] = None;
                    gates[j] = None;
                    removed += 2;
                    progress = true;
                    continue 'outer;
                }
                if gates_commute(&gi, &gj) {
                    continue; // slide past and keep scanning
                }
                continue 'outer; // blocked
            }
        }
        if !progress {
            break;
        }
    }
    let mut out = Circuit::with_name(circuit.qubit_count(), circuit.name().to_string());
    for g in gates.into_iter().flatten() {
        out.push(g).expect("retained gate stays valid");
    }
    (out, removed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_gates_commute() {
        assert!(gates_commute(&Gate::H(0), &Gate::X(1)));
        assert!(gates_commute(&Gate::Cnot(0, 1), &Gate::Cz(2, 3)));
    }

    #[test]
    fn diagonal_gates_commute() {
        assert!(gates_commute(&Gate::Rz(0, 0.5), &Gate::T(0)));
        assert!(gates_commute(&Gate::Cz(0, 1), &Gate::Rz(1, 0.3)));
        assert!(gates_commute(&Gate::Cz(0, 1), &Gate::Cz(1, 2)));
        assert!(gates_commute(&Gate::Cphase(0, 1, 0.2), &Gate::S(0)));
    }

    #[test]
    fn cnot_control_rules() {
        assert!(gates_commute(&Gate::Cnot(0, 1), &Gate::Rz(0, 0.5)));
        assert!(gates_commute(&Gate::T(0), &Gate::Cnot(0, 1)));
        assert!(!gates_commute(&Gate::Cnot(0, 1), &Gate::Rz(1, 0.5)));
        assert!(!gates_commute(&Gate::X(0), &Gate::Cnot(0, 1)));
    }

    #[test]
    fn cnot_target_rules() {
        assert!(gates_commute(&Gate::Cnot(0, 1), &Gate::X(1)));
        assert!(gates_commute(&Gate::Rx(1, 0.4), &Gate::Cnot(0, 1)));
        assert!(!gates_commute(&Gate::Cnot(0, 1), &Gate::Z(1)));
    }

    #[test]
    fn cnot_cnot_rules() {
        // Shared control.
        assert!(gates_commute(&Gate::Cnot(0, 1), &Gate::Cnot(0, 2)));
        // Shared target.
        assert!(gates_commute(&Gate::Cnot(0, 2), &Gate::Cnot(1, 2)));
        // Crossed (control of one is target of other): not commuting.
        assert!(!gates_commute(&Gate::Cnot(0, 1), &Gate::Cnot(1, 0)));
        assert!(!gates_commute(&Gate::Cnot(0, 1), &Gate::Cnot(1, 2)));
        // Identical CNOTs commute trivially.
        assert!(gates_commute(&Gate::Cnot(0, 1), &Gate::Cnot(0, 1)));
    }

    #[test]
    fn fences_do_not_commute() {
        assert!(!gates_commute(&Gate::Barrier(0), &Gate::X(0)));
        assert!(!gates_commute(&Gate::Measure(0), &Gate::Z(0)));
        // Disjoint still fine.
        assert!(gates_commute(&Gate::Barrier(0), &Gate::X(1)));
    }

    #[test]
    fn cancels_cnots_through_rz_on_control() {
        let mut c = Circuit::new(2);
        c.cnot(0, 1)
            .unwrap()
            .rz(0, 0.5)
            .unwrap()
            .cnot(0, 1)
            .unwrap();
        let (opt, n) = cancel_with_commutation(&c);
        assert_eq!(n, 2);
        assert_eq!(opt.gates(), &[Gate::Rz(0, 0.5)]);
    }

    #[test]
    fn does_not_cancel_through_h() {
        let mut c = Circuit::new(2);
        c.cnot(0, 1).unwrap().h(0).unwrap().cnot(0, 1).unwrap();
        let (opt, n) = cancel_with_commutation(&c);
        assert_eq!(n, 0);
        assert_eq!(opt.len(), 3);
    }

    #[test]
    fn cancels_through_multiple_commuting_blockers() {
        let mut c = Circuit::new(3);
        c.cz(0, 1).unwrap();
        c.rz(0, 0.1).unwrap();
        c.t(1).unwrap();
        c.cz(1, 2).unwrap();
        c.cz(0, 1).unwrap();
        let (opt, n) = cancel_with_commutation(&c);
        assert_eq!(n, 2);
        assert_eq!(opt.len(), 3);
        assert!(opt.gates().iter().all(|g| *g != Gate::Cz(0, 1)));
    }

    #[test]
    fn fixed_point_cascades() {
        // S Sdg wrapped in a commuting CZ pair: everything vanishes.
        let mut c = Circuit::new(2);
        c.cz(0, 1)
            .unwrap()
            .s(0)
            .unwrap()
            .sdg(0)
            .unwrap()
            .cz(0, 1)
            .unwrap();
        let (opt, n) = cancel_with_commutation(&c);
        assert!(opt.is_empty(), "left {:?}", opt.gates());
        assert_eq!(n, 4);
    }

    #[test]
    fn preserves_semantics_on_random_circuits() {
        use qcs_graph::generate;
        // Deterministic pseudo-random circuits from graph seeds; verify
        // gate-count only here (simulation cross-check lives in the
        // integration tests).
        let _ = generate::path_graph(2); // keep dep used
        let mut c = Circuit::new(3);
        c.cnot(0, 1)
            .unwrap()
            .t(0)
            .unwrap()
            .x(1)
            .unwrap()
            .cnot(0, 1)
            .unwrap()
            .h(2)
            .unwrap();
        let (opt, n) = cancel_with_commutation(&c);
        assert_eq!(n, 2);
        assert_eq!(opt.gate_count(), 3);
    }

    #[test]
    fn measurements_block_cancellation() {
        let mut c = Circuit::new(2);
        c.cnot(0, 1)
            .unwrap()
            .measure(0)
            .unwrap()
            .cnot(0, 1)
            .unwrap();
        let (opt, n) = cancel_with_commutation(&c);
        assert_eq!(n, 0);
        assert_eq!(opt.len(), 3);
    }
}
