//! Gate-dependency DAG.
//!
//! Two gates depend on each other when they share a qubit; the DAG's
//! longest path is the circuit depth, its level sets are the ASAP layers
//! the scheduler starts from, and its *front layer* (gates with no
//! unresolved predecessors) is what look-ahead routers such as SABRE
//! iterate on.

use crate::circuit::Circuit;
use crate::gate::Gate;

/// Dependency DAG over the gates of a circuit.
///
/// Node `i` is the `i`-th gate of the source circuit (program order).
///
/// # Examples
///
/// ```
/// use qcs_circuit::circuit::Circuit;
/// use qcs_circuit::dag::DependencyDag;
///
/// let mut c = Circuit::new(3);
/// c.h(0)?.cnot(0, 1)?.cnot(1, 2)?;
/// let dag = DependencyDag::new(&c);
/// assert_eq!(dag.depth(), 3);
/// assert_eq!(dag.layers()[0], vec![0]); // only H(0) is initially ready
/// # Ok::<(), qcs_circuit::CircuitError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DependencyDag {
    gates: Vec<Gate>,
    /// Direct successors of each gate.
    successors: Vec<Vec<usize>>,
    /// Direct predecessors of each gate.
    predecessors: Vec<Vec<usize>>,
    /// ASAP level of each gate (0-based).
    levels: Vec<usize>,
}

impl DependencyDag {
    /// Builds the DAG for `circuit`.
    ///
    /// Edges connect each gate to the *latest* earlier gate on each of its
    /// qubits (transitively this reconstructs the full dependency order).
    pub fn new(circuit: &Circuit) -> Self {
        let n = circuit.len();
        let mut successors = vec![Vec::new(); n];
        let mut predecessors = vec![Vec::new(); n];
        let mut last_on_qubit: Vec<Option<usize>> = vec![None; circuit.qubit_count()];

        for (i, g) in circuit.iter().enumerate() {
            for q in g.qubits() {
                if let Some(p) = last_on_qubit[q] {
                    if !successors[p].contains(&i) {
                        successors[p].push(i);
                        predecessors[i].push(p);
                    }
                }
                last_on_qubit[q] = Some(i);
            }
        }

        // ASAP levels by a forward sweep (nodes are already topologically
        // sorted because edges only point forward in program order).
        let mut levels = vec![0usize; n];
        for i in 0..n {
            let base = predecessors[i]
                .iter()
                .map(|&p| levels[p] + 1)
                .max()
                .unwrap_or(0);
            levels[i] = base;
        }

        DependencyDag {
            gates: circuit.gates().to_vec(),
            successors,
            predecessors,
            levels,
        }
    }

    /// Number of gate nodes.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Whether the DAG is empty.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// The gate at node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn gate(&self, i: usize) -> &Gate {
        &self.gates[i]
    }

    /// Direct successors of node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn successors(&self, i: usize) -> &[usize] {
        &self.successors[i]
    }

    /// Direct predecessors of node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn predecessors(&self, i: usize) -> &[usize] {
        &self.predecessors[i]
    }

    /// ASAP level of node `i` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn level(&self, i: usize) -> usize {
        self.levels[i]
    }

    /// Depth: number of ASAP layers (= circuit depth when no barriers).
    pub fn depth(&self) -> usize {
        self.levels.iter().map(|&l| l + 1).max().unwrap_or(0)
    }

    /// The ASAP layers: `layers()[l]` lists the gate indices at level `l`,
    /// each in program order.
    pub fn layers(&self) -> Vec<Vec<usize>> {
        let mut layers = vec![Vec::new(); self.depth()];
        for (i, &l) in self.levels.iter().enumerate() {
            layers[l].push(i);
        }
        layers
    }

    /// Gate indices with no predecessors (the initial *front layer*).
    pub fn front_layer(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.predecessors[i].is_empty())
            .collect()
    }

    /// Number of direct dependency edges.
    pub fn edge_count(&self) -> usize {
        self.successors.iter().map(Vec::len).sum()
    }

    /// Average number of gates per layer — a parallelism figure of merit
    /// (1.0 means fully serial).
    pub fn parallelism(&self) -> f64 {
        if self.depth() == 0 {
            0.0
        } else {
            self.len() as f64 / self.depth() as f64
        }
    }
}

/// Incremental front-layer tracker used by routing algorithms.
///
/// Starts at the DAG's front layer; [`FrontLayer::resolve`] retires a gate
/// and activates any successors whose predecessors are all retired.
#[derive(Debug, Clone)]
pub struct FrontLayer<'a> {
    dag: &'a DependencyDag,
    unresolved_preds: Vec<usize>,
    active: Vec<usize>,
    resolved: usize,
}

impl<'a> FrontLayer<'a> {
    /// Creates the tracker positioned at the initial front layer.
    pub fn new(dag: &'a DependencyDag) -> Self {
        let unresolved_preds: Vec<usize> =
            (0..dag.len()).map(|i| dag.predecessors(i).len()).collect();
        let active = dag.front_layer();
        FrontLayer {
            dag,
            unresolved_preds,
            active,
            resolved: 0,
        }
    }

    /// Currently executable gate indices (program order not guaranteed).
    pub fn active(&self) -> &[usize] {
        &self.active
    }

    /// Whether every gate has been resolved.
    pub fn is_done(&self) -> bool {
        self.resolved == self.dag.len()
    }

    /// Number of gates resolved so far.
    pub fn resolved_count(&self) -> usize {
        self.resolved
    }

    /// Marks active gate `i` as executed, activating newly-ready
    /// successors.
    ///
    /// # Panics
    ///
    /// Panics if `i` is not currently active.
    pub fn resolve(&mut self, i: usize) {
        let pos = self
            .active
            .iter()
            .position(|&g| g == i)
            .expect("gate must be active to resolve");
        self.active.swap_remove(pos);
        self.resolved += 1;
        for &s in self.dag.successors(i) {
            self.unresolved_preds[s] -= 1;
            if self.unresolved_preds[s] == 0 {
                self.active.push(s);
            }
        }
    }

    /// The gates within `horizon` dependency steps behind the front layer
    /// (the *extended set* SABRE-style heuristics look ahead into).
    pub fn lookahead(&self, horizon: usize) -> Vec<usize> {
        let mut out = Vec::new();
        self.lookahead_into(horizon, &mut out, &mut LookaheadScratch::default());
        out
    }

    /// Allocation-free [`FrontLayer::lookahead`]: writes the extended set
    /// into `out` (cleared first) reusing caller-owned scratch. Routers
    /// call this once per blocked step, so buffer reuse keeps the routing
    /// hot loop free of per-step allocations.
    pub fn lookahead_into(
        &self,
        horizon: usize,
        out: &mut Vec<usize>,
        scratch: &mut LookaheadScratch,
    ) {
        out.clear();
        // `seen` is kept all-false between calls; only touched flags are
        // reset on exit, so a walk costs O(result), not O(gates).
        scratch.seen.resize(self.dag.len(), false);
        scratch.frontier.clear();
        scratch.frontier.extend_from_slice(&self.active);
        for &g in &scratch.frontier {
            scratch.seen[g] = true;
        }
        for _ in 0..horizon {
            scratch.next.clear();
            for &g in &scratch.frontier {
                for &s in self.dag.successors(g) {
                    if !scratch.seen[s] {
                        scratch.seen[s] = true;
                        scratch.next.push(s);
                        out.push(s);
                    }
                }
            }
            if scratch.next.is_empty() {
                break;
            }
            std::mem::swap(&mut scratch.frontier, &mut scratch.next);
        }
        for &g in &self.active {
            scratch.seen[g] = false;
        }
        for &g in out.iter() {
            scratch.seen[g] = false;
        }
    }
}

/// Reusable buffers for [`FrontLayer::lookahead_into`].
#[derive(Debug, Clone, Default)]
pub struct LookaheadScratch {
    seen: Vec<bool>,
    frontier: Vec<usize>,
    next: Vec<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;

    fn chain3() -> Circuit {
        let mut c = Circuit::new(3);
        c.h(0).unwrap().cnot(0, 1).unwrap().cnot(1, 2).unwrap();
        c
    }

    #[test]
    fn builds_dependencies() {
        let dag = DependencyDag::new(&chain3());
        assert_eq!(dag.len(), 3);
        assert_eq!(dag.predecessors(0), &[] as &[usize]);
        assert_eq!(dag.predecessors(1), &[0]);
        assert_eq!(dag.predecessors(2), &[1]);
        assert_eq!(dag.successors(0), &[1]);
        assert_eq!(dag.edge_count(), 2);
    }

    #[test]
    fn no_duplicate_edges_for_shared_pair() {
        // Two consecutive CNOTs on the same pair share both qubits but must
        // produce a single dependency edge.
        let mut c = Circuit::new(2);
        c.cnot(0, 1).unwrap().cnot(0, 1).unwrap();
        let dag = DependencyDag::new(&c);
        assert_eq!(dag.edge_count(), 1);
    }

    #[test]
    fn levels_and_layers() {
        let mut c = Circuit::new(4);
        c.h(0)
            .unwrap()
            .h(2)
            .unwrap()
            .cnot(0, 1)
            .unwrap()
            .cnot(2, 3)
            .unwrap();
        let dag = DependencyDag::new(&c);
        assert_eq!(dag.depth(), 2);
        let layers = dag.layers();
        assert_eq!(layers[0], vec![0, 1]);
        assert_eq!(layers[1], vec![2, 3]);
        assert_eq!(dag.parallelism(), 2.0);
    }

    #[test]
    fn depth_matches_circuit() {
        let c = chain3();
        assert_eq!(DependencyDag::new(&c).depth(), c.depth());
    }

    #[test]
    fn empty_dag() {
        let dag = DependencyDag::new(&Circuit::new(2));
        assert!(dag.is_empty());
        assert_eq!(dag.depth(), 0);
        assert_eq!(dag.parallelism(), 0.0);
        assert!(dag.front_layer().is_empty());
    }

    #[test]
    fn front_layer_progression() {
        let dag = DependencyDag::new(&chain3());
        let mut fl = FrontLayer::new(&dag);
        assert_eq!(fl.active(), &[0]);
        fl.resolve(0);
        assert_eq!(fl.active(), &[1]);
        fl.resolve(1);
        fl.resolve(2);
        assert!(fl.is_done());
        assert_eq!(fl.resolved_count(), 3);
    }

    #[test]
    #[should_panic(expected = "must be active")]
    fn resolving_inactive_panics() {
        let dag = DependencyDag::new(&chain3());
        let mut fl = FrontLayer::new(&dag);
        fl.resolve(2);
    }

    #[test]
    fn lookahead_window() {
        let dag = DependencyDag::new(&chain3());
        let fl = FrontLayer::new(&dag);
        assert_eq!(fl.lookahead(1), vec![1]);
        assert_eq!(fl.lookahead(2), vec![1, 2]);
        assert_eq!(fl.lookahead(10), vec![1, 2]); // exhausts early
    }

    #[test]
    fn diamond_dependencies() {
        // g0 = CNOT(0,1); g1 = H(0); g2 = H(1); g3 = CNOT(0,1).
        let mut c = Circuit::new(2);
        c.cnot(0, 1)
            .unwrap()
            .h(0)
            .unwrap()
            .h(1)
            .unwrap()
            .cnot(0, 1)
            .unwrap();
        let dag = DependencyDag::new(&c);
        assert_eq!(dag.predecessors(3), &[1, 2]);
        let mut fl = FrontLayer::new(&dag);
        fl.resolve(0);
        // Both H's become active; gate 3 needs both.
        assert_eq!(fl.active().len(), 2);
        fl.resolve(1);
        assert!(!fl.active().contains(&3));
        fl.resolve(2);
        assert!(fl.active().contains(&3));
    }
}
