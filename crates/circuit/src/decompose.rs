//! Decomposition to a device's primitive gate set.
//!
//! Section III, mapping step 1: "Decomposition of the gates of the circuit
//! to the primitive gate set. Note that a quantum chip gate set does not
//! necessarily have to match the one used in the circuit to be run."
//!
//! [`GateSet`] describes what a device natively executes (e.g. the
//! CZ-based set of the Surface-7/17 transmon processors, or a CNOT-based
//! IBM-style set); [`decompose_circuit`] rewrites a circuit into it using
//! standard exact identities (verified against the state-vector simulator
//! in `qcs-sim`'s tests).

use std::collections::BTreeSet;
use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};
use std::fmt;

use crate::circuit::{Circuit, CircuitError};
use crate::gate::{Gate, GateKind};

/// A set of natively-supported gate kinds.
///
/// # Examples
///
/// ```
/// use qcs_circuit::decompose::GateSet;
/// use qcs_circuit::gate::GateKind;
///
/// let surface = GateSet::surface_code_native();
/// assert!(surface.contains(GateKind::Cz));
/// assert!(!surface.contains(GateKind::Cnot));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GateSet {
    kinds: BTreeSet<GateKind>,
}

impl GateSet {
    /// Builds a gate set from explicit kinds. Measurement and barriers are
    /// always included (they are control-plane, not unitary, operations).
    pub fn new<I: IntoIterator<Item = GateKind>>(kinds: I) -> Self {
        let mut set: BTreeSet<GateKind> = kinds.into_iter().collect();
        set.insert(GateKind::Measure);
        set.insert(GateKind::Barrier);
        GateSet { kinds: set }
    }

    /// The CZ-based native set of surface-code transmon processors
    /// (Versluis et al. \[32\]): single-qubit rotations + CZ.
    pub fn surface_code_native() -> Self {
        use GateKind::*;
        GateSet::new([I, X, Y, Z, H, S, Sdg, T, Tdg, Rx, Ry, Rz, Cz])
    }

    /// A CNOT-based set in the style of IBM devices: rotations + CNOT.
    pub fn ibm_style() -> Self {
        use GateKind::*;
        GateSet::new([I, X, Y, Z, H, S, Sdg, T, Tdg, Rx, Ry, Rz, Cnot])
    }

    /// A minimal calibrated set: Rx, Ry, Rz and CZ only. Exercises the
    /// single-qubit-to-rotation rewrites.
    pub fn rotations_plus_cz() -> Self {
        use GateKind::*;
        GateSet::new([Rx, Ry, Rz, Cz])
    }

    /// Every gate kind (no decomposition needed).
    pub fn universal() -> Self {
        GateSet::new(GateKind::all().iter().copied())
    }

    /// Whether `kind` is native.
    pub fn contains(&self, kind: GateKind) -> bool {
        self.kinds.contains(&kind)
    }

    /// Iterates over the native kinds in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = GateKind> + '_ {
        self.kinds.iter().copied()
    }

    /// Number of native kinds.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Whether the set is empty (never true in practice — measure/barrier
    /// are always present).
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Whether the set can express any two-qubit entangling gate.
    pub fn has_entangler(&self) -> bool {
        self.contains(GateKind::Cnot) || self.contains(GateKind::Cz)
    }
}

impl qcs_json::ToJson for GateSet {
    /// Wire format: a sorted array of OpenQASM-style kind names.
    fn to_json(&self) -> qcs_json::Json {
        qcs_json::Json::Array(
            self.kinds
                .iter()
                .map(|k| qcs_json::Json::String(k.to_string()))
                .collect(),
        )
    }
}

impl qcs_json::FromJson for GateSet {
    fn from_json(json: &qcs_json::Json) -> Result<Self, qcs_json::JsonError> {
        let names = <Vec<String> as qcs_json::FromJson>::from_json(json)?;
        let kinds = names
            .iter()
            .map(|n| GateKind::from_name(n))
            .collect::<Option<Vec<_>>>()
            .ok_or(qcs_json::JsonError::Type {
                expected: "known gate kind name",
            })?;
        Ok(GateSet::new(kinds))
    }
}

/// Error produced when a gate cannot be decomposed into the target set.
#[derive(Debug, Clone, PartialEq)]
pub enum DecomposeError {
    /// No rewrite chain reaches the target set for this gate kind.
    Unsupported(GateKind),
    /// The target set has no two-qubit entangling primitive at all.
    NoEntangler,
    /// Recursion guard tripped (indicates an internal rule cycle).
    DepthExceeded(GateKind),
    /// Rewritten gate failed circuit validation.
    Circuit(CircuitError),
}

impl fmt::Display for DecomposeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecomposeError::Unsupported(k) => write!(f, "gate '{k}' cannot reach the target set"),
            DecomposeError::NoEntangler => {
                write!(f, "target gate set has no two-qubit entangling primitive")
            }
            DecomposeError::DepthExceeded(k) => {
                write!(f, "decomposition recursion limit hit for gate '{k}'")
            }
            DecomposeError::Circuit(e) => write!(f, "decomposition produced invalid gate: {e}"),
        }
    }
}

impl std::error::Error for DecomposeError {}

impl From<CircuitError> for DecomposeError {
    fn from(e: CircuitError) -> Self {
        DecomposeError::Circuit(e)
    }
}

const MAX_DEPTH: usize = 12;

/// Decomposes a single gate into `target`-native gates (exact identities,
/// equal up to global phase).
///
/// # Errors
///
/// See [`DecomposeError`].
pub fn decompose_gate(gate: Gate, target: &GateSet) -> Result<Vec<Gate>, DecomposeError> {
    decompose_rec(gate, target, 0)
}

fn decompose_rec(gate: Gate, target: &GateSet, depth: usize) -> Result<Vec<Gate>, DecomposeError> {
    if target.contains(gate.kind()) {
        return Ok(vec![gate]);
    }
    if depth >= MAX_DEPTH {
        return Err(DecomposeError::DepthExceeded(gate.kind()));
    }
    let rewrite: Vec<Gate> = match gate {
        // --- single-qubit rewrites (up to global phase) ---
        Gate::I(_) => Vec::new(),
        Gate::X(q) => vec![Gate::Rx(q, PI)],
        Gate::Y(q) => vec![Gate::Ry(q, PI)],
        Gate::Z(q) => vec![Gate::Rz(q, PI)],
        // H = Ry(π/2) · Z  (apply Z first, then the rotation).
        Gate::H(q) => vec![Gate::Z(q), Gate::Ry(q, FRAC_PI_2)],
        Gate::S(q) => vec![Gate::Rz(q, FRAC_PI_2)],
        Gate::Sdg(q) => vec![Gate::Rz(q, -FRAC_PI_2)],
        Gate::T(q) => vec![Gate::Rz(q, FRAC_PI_4)],
        Gate::Tdg(q) => vec![Gate::Rz(q, -FRAC_PI_4)],
        Gate::Rx(..) | Gate::Ry(..) | Gate::Rz(..) => {
            return Err(DecomposeError::Unsupported(gate.kind()))
        }
        // --- two-qubit rewrites ---
        Gate::Cnot(c, t) => {
            if target.contains(GateKind::Cz) {
                vec![Gate::H(t), Gate::Cz(c, t), Gate::H(t)]
            } else if target.has_entangler() {
                return Err(DecomposeError::Unsupported(GateKind::Cnot));
            } else {
                return Err(DecomposeError::NoEntangler);
            }
        }
        Gate::Cz(c, t) => {
            if target.contains(GateKind::Cnot) {
                vec![Gate::H(t), Gate::Cnot(c, t), Gate::H(t)]
            } else if target.has_entangler() {
                return Err(DecomposeError::Unsupported(GateKind::Cz));
            } else {
                return Err(DecomposeError::NoEntangler);
            }
        }
        Gate::Swap(a, b) => vec![Gate::Cnot(a, b), Gate::Cnot(b, a), Gate::Cnot(a, b)],
        // CP(θ) = Rz_t(θ/2) · CNOT · Rz_t(−θ/2) · CNOT · Rz_c(θ/2)
        // (in circuit order below; equal up to global phase).
        Gate::Cphase(c, t, a) => vec![
            Gate::Rz(c, a / 2.0),
            Gate::Rz(t, a / 2.0),
            Gate::Cnot(c, t),
            Gate::Rz(t, -a / 2.0),
            Gate::Cnot(c, t),
        ],
        // Standard 6-CNOT, 7-T Toffoli network.
        Gate::Toffoli(a, b, t) => vec![
            Gate::H(t),
            Gate::Cnot(b, t),
            Gate::Tdg(t),
            Gate::Cnot(a, t),
            Gate::T(t),
            Gate::Cnot(b, t),
            Gate::Tdg(t),
            Gate::Cnot(a, t),
            Gate::T(b),
            Gate::T(t),
            Gate::H(t),
            Gate::Cnot(a, b),
            Gate::T(a),
            Gate::Tdg(b),
            Gate::Cnot(a, b),
        ],
        Gate::Measure(_) | Gate::Barrier(_) => {
            unreachable!("measure/barrier are always in the target set")
        }
    };
    let mut out = Vec::with_capacity(rewrite.len());
    for g in rewrite {
        out.extend(decompose_rec(g, target, depth + 1)?);
    }
    Ok(out)
}

/// Decomposes every gate of `circuit` into the `target` set.
///
/// # Errors
///
/// Returns the first [`DecomposeError`] encountered.
///
/// # Examples
///
/// ```
/// use qcs_circuit::circuit::Circuit;
/// use qcs_circuit::decompose::{decompose_circuit, GateSet};
/// use qcs_circuit::gate::GateKind;
///
/// let mut c = Circuit::new(2);
/// c.cnot(0, 1)?;
/// let d = decompose_circuit(&c, &GateSet::surface_code_native())?;
/// assert!(d.gates().iter().all(|g| g.kind() != GateKind::Cnot));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn decompose_circuit(circuit: &Circuit, target: &GateSet) -> Result<Circuit, DecomposeError> {
    let mut out = Circuit::with_name(circuit.qubit_count(), circuit.name().to_string());
    for &g in circuit.gates() {
        for d in decompose_gate(g, target)? {
            out.push(d)?;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_native(c: &Circuit, set: &GateSet) -> bool {
        c.gates().iter().all(|g| set.contains(g.kind()))
    }

    #[test]
    fn native_gates_pass_through() {
        let set = GateSet::surface_code_native();
        assert_eq!(
            decompose_gate(Gate::Cz(0, 1), &set).unwrap(),
            vec![Gate::Cz(0, 1)]
        );
        assert_eq!(decompose_gate(Gate::H(0), &set).unwrap(), vec![Gate::H(0)]);
    }

    #[test]
    fn cnot_to_cz() {
        let set = GateSet::surface_code_native();
        let d = decompose_gate(Gate::Cnot(0, 1), &set).unwrap();
        assert_eq!(d, vec![Gate::H(1), Gate::Cz(0, 1), Gate::H(1)]);
    }

    #[test]
    fn cz_to_cnot() {
        let set = GateSet::ibm_style();
        let d = decompose_gate(Gate::Cz(0, 1), &set).unwrap();
        assert_eq!(d, vec![Gate::H(1), Gate::Cnot(0, 1), Gate::H(1)]);
    }

    #[test]
    fn swap_to_three_entanglers() {
        let ibm = GateSet::ibm_style();
        let d = decompose_gate(Gate::Swap(0, 1), &ibm).unwrap();
        assert_eq!(d.len(), 3);
        assert!(d.iter().all(|g| g.kind() == GateKind::Cnot));
        // Via CZ: each CNOT costs 2 extra H's.
        let cz = GateSet::surface_code_native();
        let d = decompose_gate(Gate::Swap(0, 1), &cz).unwrap();
        assert_eq!(d.iter().filter(|g| g.kind() == GateKind::Cz).count(), 3);
        assert_eq!(d.iter().filter(|g| g.kind() == GateKind::H).count(), 6);
    }

    #[test]
    fn toffoli_fully_decomposes() {
        let set = GateSet::rotations_plus_cz();
        let mut c = Circuit::new(3);
        c.toffoli(0, 1, 2).unwrap();
        let d = decompose_circuit(&c, &set).unwrap();
        assert!(all_native(&d, &set));
        assert!(d.gate_count() > 15);
    }

    #[test]
    fn single_qubit_rewrites_to_rotations() {
        let set = GateSet::rotations_plus_cz();
        for g in [
            Gate::X(0),
            Gate::Y(0),
            Gate::Z(0),
            Gate::H(0),
            Gate::S(0),
            Gate::Sdg(0),
            Gate::T(0),
            Gate::Tdg(0),
        ] {
            let d = decompose_gate(g, &set).unwrap();
            assert!(
                d.iter().all(|x| set.contains(x.kind())),
                "{g:?} decomposed to non-native {d:?}"
            );
        }
    }

    #[test]
    fn identity_drops_when_not_native() {
        let set = GateSet::rotations_plus_cz();
        assert!(decompose_gate(Gate::I(0), &set).unwrap().is_empty());
    }

    #[test]
    fn cphase_structure() {
        let set = GateSet::ibm_style();
        let d = decompose_gate(Gate::Cphase(0, 1, 1.0), &set).unwrap();
        assert_eq!(d.iter().filter(|g| g.kind() == GateKind::Cnot).count(), 2);
        assert_eq!(d.iter().filter(|g| g.kind() == GateKind::Rz).count(), 3);
    }

    #[test]
    fn no_entangler_error() {
        let set = GateSet::new([GateKind::Rx, GateKind::Ry, GateKind::Rz]);
        assert_eq!(
            decompose_gate(Gate::Cnot(0, 1), &set),
            Err(DecomposeError::NoEntangler)
        );
        assert!(!set.has_entangler());
    }

    #[test]
    fn rotation_without_native_rotation_errors() {
        let set = GateSet::new([GateKind::H, GateKind::Cnot]);
        assert_eq!(
            decompose_gate(Gate::Rz(0, 0.5), &set),
            Err(DecomposeError::Unsupported(GateKind::Rz))
        );
    }

    #[test]
    fn full_circuit_decomposition_counts() {
        let mut c = Circuit::new(3);
        c.h(0)
            .unwrap()
            .cnot(0, 1)
            .unwrap()
            .swap(1, 2)
            .unwrap()
            .measure_all();
        let set = GateSet::surface_code_native();
        let d = decompose_circuit(&c, &set).unwrap();
        assert!(all_native(&d, &set));
        // Measurements survive decomposition.
        assert_eq!(
            d.gates()
                .iter()
                .filter(|g| g.kind() == GateKind::Measure)
                .count(),
            3
        );
    }

    #[test]
    fn universal_set_is_identity_transform() {
        let mut c = Circuit::new(3);
        c.toffoli(0, 1, 2).unwrap().cphase(0, 2, 0.3).unwrap();
        let d = decompose_circuit(&c, &GateSet::universal()).unwrap();
        assert_eq!(d.gates(), c.gates());
    }

    #[test]
    fn gate_set_constructors() {
        assert!(GateSet::universal().contains(GateKind::Toffoli));
        assert!(GateSet::ibm_style().contains(GateKind::Cnot));
        assert!(!GateSet::ibm_style().contains(GateKind::Cz));
        // Measure/barrier always present.
        assert!(GateSet::new([]).contains(GateKind::Measure));
        assert!(GateSet::new([]).contains(GateKind::Barrier));
        assert!(!GateSet::rotations_plus_cz().is_empty());
        assert!(GateSet::rotations_plus_cz().len() >= 4);
        assert!(GateSet::rotations_plus_cz()
            .iter()
            .any(|k| k == GateKind::Cz));
    }
}
