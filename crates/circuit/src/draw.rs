//! ASCII circuit rendering.
//!
//! Renders circuits as textual wire diagrams, one row per qubit, gates
//! packed into ASAP layers (the same layering as [`crate::dag`]). Useful
//! in examples, experiment logs and debugging sessions:
//!
//! ```text
//! q0: ─ H ──●───────
//!           │
//! q1: ──────X───●───
//!               │
//! q2: ──────────X───
//! ```

use crate::circuit::Circuit;
use crate::gate::Gate;

/// Per-layer cell contents for one qubit.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Cell {
    /// No gate here (wire passes through).
    Wire,
    /// A labelled gate box.
    Label(String),
    /// CNOT control dot.
    Control,
    /// CNOT target.
    Target,
    /// SWAP endpoint.
    SwapEnd,
    /// Vertical connector (between the endpoints of a 2q gate).
    Vertical,
}

/// Renders `circuit` as an ASCII diagram.
///
/// Gates are grouped into dependency layers; two-qubit gates draw a
/// vertical connector between their operands. Wide (≥ 3-operand) gates
/// and measurements render as labelled boxes on each operand row.
pub fn draw(circuit: &Circuit) -> String {
    let n = circuit.qubit_count();
    if n == 0 {
        return String::new();
    }
    // Assign gates to layers exactly like Circuit::depth, but two-qubit
    // connectors also reserve the rows *between* the operands so the
    // vertical line never crosses another gate.
    let mut level = vec![0usize; n];
    let mut layers: Vec<Vec<(usize, Gate)>> = Vec::new();
    for (idx, g) in circuit.iter().enumerate() {
        let qs = g.qubits();
        let (lo, hi) = match (qs.iter().min(), qs.iter().max()) {
            (Some(&lo), Some(&hi)) => (lo, hi),
            _ => continue,
        };
        let start = (lo..=hi).map(|q| level[q]).max().unwrap_or(0);
        for l in &mut level[lo..=hi] {
            *l = start + 1;
        }
        if layers.len() <= start {
            layers.resize_with(start + 1, Vec::new);
        }
        layers[start].push((idx, *g));
    }

    // Build the cell matrix: rows = qubits, columns = layers.
    let mut cells = vec![vec![Cell::Wire; layers.len()]; n];
    for (col, layer) in layers.iter().enumerate() {
        for (_, g) in layer {
            let qs = g.qubits();
            match *g {
                Gate::Cnot(c, t) => {
                    cells[c][col] = Cell::Control;
                    cells[t][col] = Cell::Target;
                    fill_vertical(&mut cells, col, c, t);
                }
                Gate::Cz(a, b) | Gate::Cphase(a, b, _) => {
                    cells[a][col] = Cell::Control;
                    cells[b][col] = Cell::Control;
                    fill_vertical(&mut cells, col, a, b);
                }
                Gate::Swap(a, b) => {
                    cells[a][col] = Cell::SwapEnd;
                    cells[b][col] = Cell::SwapEnd;
                    fill_vertical(&mut cells, col, a, b);
                }
                Gate::Toffoli(a, b, t) => {
                    cells[a][col] = Cell::Control;
                    cells[b][col] = Cell::Control;
                    cells[t][col] = Cell::Target;
                    let lo = a.min(b).min(t);
                    let hi = a.max(b).max(t);
                    fill_vertical(&mut cells, col, lo, hi);
                }
                Gate::Measure(q) => cells[q][col] = Cell::Label("M".into()),
                Gate::Barrier(q) => cells[q][col] = Cell::Label("|".into()),
                _ => {
                    let label = short_label(g);
                    cells[qs[0]][col] = Cell::Label(label);
                }
            }
        }
    }

    // Column widths in display characters: the longest label in each.
    let widths: Vec<usize> = (0..layers.len())
        .map(|col| {
            cells
                .iter()
                .map(|row| match &row[col] {
                    Cell::Label(l) => l.chars().count(),
                    _ => 1,
                })
                .max()
                .unwrap_or(1)
        })
        .collect();

    // Pads `s` with `fill` to exactly `w` display characters.
    let pad = |s: &str, w: usize, fill: char| -> String {
        let mut out: String = s.chars().take(w).collect();
        for _ in out.chars().count()..w {
            out.push(fill);
        }
        out
    };

    let mut out = String::new();
    for q in 0..n {
        // Gate row.
        let mut line = format!("q{q:<2}: ─");
        for (col, w) in widths.iter().enumerate() {
            let cell = &cells[q][col];
            let body = match cell {
                Cell::Wire => "─".repeat(*w),
                Cell::Label(l) => pad(l, *w, '─'),
                Cell::Control => pad("●", *w, '─'),
                Cell::Target => pad("X", *w, '─'),
                Cell::SwapEnd => pad("x", *w, '─'),
                Cell::Vertical => pad("┼", *w, '─'),
            };
            line.push_str(&body);
            line.push_str("──");
        }
        out.push_str(line.trim_end());
        out.push('\n');
        // Connector row (between qubit rows).
        if q + 1 < n {
            let mut conn = String::from("      ");
            for (col, w) in widths.iter().enumerate() {
                let below_has_link = connector_between(&cells, col, q);
                let c = if below_has_link { "│" } else { " " };
                conn.push_str(c);
                conn.push_str(&" ".repeat(*w + 1));
            }
            let trimmed = conn.trim_end();
            if !trimmed.is_empty() {
                out.push_str(trimmed);
            }
            out.push('\n');
        }
    }
    out
}

/// Whether the connector between rows `q` and `q+1` in `col` is inside a
/// multi-qubit gate's vertical span.
fn connector_between(cells: &[Vec<Cell>], col: usize, q: usize) -> bool {
    let involved = |c: &Cell| {
        matches!(
            c,
            Cell::Control | Cell::Target | Cell::SwapEnd | Cell::Vertical
        )
    };
    involved(&cells[q][col]) && involved(&cells[q + 1][col])
}

fn fill_vertical(cells: &mut [Vec<Cell>], col: usize, a: usize, b: usize) {
    let (lo, hi) = (a.min(b), a.max(b));
    for row in cells.iter_mut().take(hi).skip(lo + 1) {
        if row[col] == Cell::Wire {
            row[col] = Cell::Vertical;
        }
    }
}

fn short_label(g: &Gate) -> String {
    match g.angle() {
        Some(a) => format!("{}({:.2})", g.name(), a),
        None => g.name().to_uppercase(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_bell_circuit() {
        let mut c = Circuit::new(2);
        c.h(0).unwrap().cnot(0, 1).unwrap();
        let art = draw(&c);
        let lines: Vec<&str> = art.lines().collect();
        assert!(lines[0].starts_with("q0"));
        assert!(lines[0].contains('H'));
        assert!(lines[0].contains('●'));
        assert!(lines[2].starts_with("q1"));
        assert!(lines[2].contains('X'));
        // Connector between the rows.
        assert!(lines[1].contains('│'));
    }

    #[test]
    fn independent_gates_share_a_column() {
        let mut c = Circuit::new(2);
        c.h(0).unwrap().h(1).unwrap();
        let art = draw(&c);
        // Both H's in the first layer: each row exactly one H.
        for line in art.lines().filter(|l| l.starts_with('q')) {
            assert_eq!(line.matches('H').count(), 1);
        }
    }

    #[test]
    fn vertical_span_through_middle_qubit() {
        let mut c = Circuit::new(3);
        c.cnot(0, 2).unwrap();
        let art = draw(&c);
        let q1_line = art.lines().find(|l| l.starts_with("q1")).unwrap();
        assert!(
            q1_line.contains('┼'),
            "middle wire must show the crossing: {art}"
        );
    }

    #[test]
    fn swap_and_measure_render() {
        let mut c = Circuit::new(2);
        c.swap(0, 1).unwrap().measure(0).unwrap();
        let art = draw(&c);
        assert_eq!(art.matches('x').count(), 2);
        assert!(art.contains('M'));
    }

    #[test]
    fn rotation_labels_carry_angles() {
        let mut c = Circuit::new(1);
        c.rz(0, 0.5).unwrap();
        let art = draw(&c);
        assert!(art.contains("rz(0.50)"));
    }

    #[test]
    fn empty_circuit() {
        assert!(draw(&Circuit::new(0)).is_empty());
        let idle = draw(&Circuit::new(2));
        assert_eq!(idle.lines().count(), 3); // two wires + connector row
    }

    #[test]
    fn layering_blocks_overlap() {
        // CNOT(0,2) spans rows 0..2, so H(1) cannot share its column.
        let mut c = Circuit::new(3);
        c.cnot(0, 2).unwrap().h(1).unwrap();
        let art = draw(&c);
        let q1_line = art.lines().find(|l| l.starts_with("q1")).unwrap();
        let cross = q1_line.find('┼').unwrap();
        let h = q1_line.find('H').unwrap();
        assert!(h > cross, "H must render after the crossing column: {art}");
    }
}
