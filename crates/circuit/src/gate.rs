//! Quantum gates.
//!
//! The gate set covers what NISQ benchmark suites and device primitive
//! sets need: Pauli and Clifford single-qubit gates, parametrized
//! rotations, the CNOT/CZ/SWAP two-qubit family, Toffoli, measurement and
//! barriers. Each gate knows its operands, arity, an inverse (where
//! defined), and its OpenQASM name.

use std::fmt;

/// Index of a (virtual or physical) qubit within a circuit or device.
pub type Qubit = usize;

/// A quantum gate (or scheduling directive) applied to specific qubits.
///
/// Angles are radians. Control qubits precede targets in the variant
/// fields, matching OpenQASM operand order.
///
/// # Examples
///
/// ```
/// use qcs_circuit::gate::Gate;
///
/// let g = Gate::Cnot(0, 1);
/// assert_eq!(g.qubits(), vec![0, 1]);
/// assert!(g.is_two_qubit());
/// assert_eq!(g.inverse(), Some(Gate::Cnot(0, 1))); // self-inverse
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Gate {
    /// Identity (explicit wait) on a qubit.
    I(Qubit),
    /// Pauli-X.
    X(Qubit),
    /// Pauli-Y.
    Y(Qubit),
    /// Pauli-Z.
    Z(Qubit),
    /// Hadamard.
    H(Qubit),
    /// Phase gate S = diag(1, i).
    S(Qubit),
    /// S-dagger.
    Sdg(Qubit),
    /// T = diag(1, e^{iπ/4}).
    T(Qubit),
    /// T-dagger.
    Tdg(Qubit),
    /// Rotation about X by the angle (radians).
    Rx(Qubit, f64),
    /// Rotation about Y by the angle (radians).
    Ry(Qubit, f64),
    /// Rotation about Z by the angle (radians).
    Rz(Qubit, f64),
    /// Controlled-NOT: control, target.
    Cnot(Qubit, Qubit),
    /// Controlled-Z (symmetric).
    Cz(Qubit, Qubit),
    /// Controlled phase rotation by the angle: control, target, angle.
    Cphase(Qubit, Qubit, f64),
    /// SWAP of two qubits.
    Swap(Qubit, Qubit),
    /// Toffoli (CCX): control, control, target.
    Toffoli(Qubit, Qubit, Qubit),
    /// Computational-basis measurement.
    Measure(Qubit),
    /// Scheduling barrier across the listed qubit (one per qubit; the
    /// circuit layer groups consecutive barriers).
    Barrier(Qubit),
}

impl Gate {
    /// The qubits this gate acts on, in operand order.
    pub fn qubits(&self) -> Vec<Qubit> {
        match *self {
            Gate::I(q)
            | Gate::X(q)
            | Gate::Y(q)
            | Gate::Z(q)
            | Gate::H(q)
            | Gate::S(q)
            | Gate::Sdg(q)
            | Gate::T(q)
            | Gate::Tdg(q)
            | Gate::Rx(q, _)
            | Gate::Ry(q, _)
            | Gate::Rz(q, _)
            | Gate::Measure(q)
            | Gate::Barrier(q) => vec![q],
            Gate::Cnot(c, t) | Gate::Cz(c, t) | Gate::Swap(c, t) | Gate::Cphase(c, t, _) => {
                vec![c, t]
            }
            Gate::Toffoli(a, b, t) => vec![a, b, t],
        }
    }

    /// Number of qubit operands.
    pub fn arity(&self) -> usize {
        self.qubits().len()
    }

    /// Whether this is a two-qubit *unitary* gate (the class that drives
    /// the mapping problem; barriers and measurements never count).
    pub fn is_two_qubit(&self) -> bool {
        matches!(
            self,
            Gate::Cnot(..) | Gate::Cz(..) | Gate::Swap(..) | Gate::Cphase(..)
        )
    }

    /// Whether this is a unitary operation (excludes measurement/barrier).
    pub fn is_unitary(&self) -> bool {
        !matches!(self, Gate::Measure(_) | Gate::Barrier(_))
    }

    /// Whether this gate is diagonal in the computational basis (commutes
    /// with other diagonal gates on shared qubits — used by the optimizer
    /// and schedulers).
    pub fn is_diagonal(&self) -> bool {
        matches!(
            self,
            Gate::I(_)
                | Gate::Z(_)
                | Gate::S(_)
                | Gate::Sdg(_)
                | Gate::T(_)
                | Gate::Tdg(_)
                | Gate::Rz(..)
                | Gate::Cz(..)
                | Gate::Cphase(..)
        )
    }

    /// The rotation angle for parametrized gates, `None` otherwise.
    pub fn angle(&self) -> Option<f64> {
        match *self {
            Gate::Rx(_, a) | Gate::Ry(_, a) | Gate::Rz(_, a) | Gate::Cphase(_, _, a) => Some(a),
            _ => None,
        }
    }

    /// The inverse gate, or `None` for non-unitary operations.
    pub fn inverse(&self) -> Option<Gate> {
        Some(match *self {
            Gate::I(q) => Gate::I(q),
            Gate::X(q) => Gate::X(q),
            Gate::Y(q) => Gate::Y(q),
            Gate::Z(q) => Gate::Z(q),
            Gate::H(q) => Gate::H(q),
            Gate::S(q) => Gate::Sdg(q),
            Gate::Sdg(q) => Gate::S(q),
            Gate::T(q) => Gate::Tdg(q),
            Gate::Tdg(q) => Gate::T(q),
            Gate::Rx(q, a) => Gate::Rx(q, -a),
            Gate::Ry(q, a) => Gate::Ry(q, -a),
            Gate::Rz(q, a) => Gate::Rz(q, -a),
            Gate::Cnot(c, t) => Gate::Cnot(c, t),
            Gate::Cz(c, t) => Gate::Cz(c, t),
            Gate::Cphase(c, t, a) => Gate::Cphase(c, t, -a),
            Gate::Swap(a, b) => Gate::Swap(a, b),
            Gate::Toffoli(a, b, t) => Gate::Toffoli(a, b, t),
            Gate::Measure(_) | Gate::Barrier(_) => return None,
        })
    }

    /// Whether `other` cancels this gate when applied immediately after it
    /// on the same operands (inverse pair with exact angle match).
    pub fn cancels_with(&self, other: &Gate) -> bool {
        self.inverse().is_some_and(|inv| inv == *other)
    }

    /// The gate's mnemonic, matching its OpenQASM 2.0 spelling.
    pub fn name(&self) -> &'static str {
        match self {
            Gate::I(_) => "id",
            Gate::X(_) => "x",
            Gate::Y(_) => "y",
            Gate::Z(_) => "z",
            Gate::H(_) => "h",
            Gate::S(_) => "s",
            Gate::Sdg(_) => "sdg",
            Gate::T(_) => "t",
            Gate::Tdg(_) => "tdg",
            Gate::Rx(..) => "rx",
            Gate::Ry(..) => "ry",
            Gate::Rz(..) => "rz",
            Gate::Cnot(..) => "cx",
            Gate::Cz(..) => "cz",
            Gate::Cphase(..) => "cp",
            Gate::Swap(..) => "swap",
            Gate::Toffoli(..) => "ccx",
            Gate::Measure(_) => "measure",
            Gate::Barrier(_) => "barrier",
        }
    }

    /// Returns the gate with each operand `q` replaced by `f(q)`.
    ///
    /// This is how mapping applies a virtual→physical placement.
    pub fn map_qubits<F: FnMut(Qubit) -> Qubit>(&self, mut f: F) -> Gate {
        match *self {
            Gate::I(q) => Gate::I(f(q)),
            Gate::X(q) => Gate::X(f(q)),
            Gate::Y(q) => Gate::Y(f(q)),
            Gate::Z(q) => Gate::Z(f(q)),
            Gate::H(q) => Gate::H(f(q)),
            Gate::S(q) => Gate::S(f(q)),
            Gate::Sdg(q) => Gate::Sdg(f(q)),
            Gate::T(q) => Gate::T(f(q)),
            Gate::Tdg(q) => Gate::Tdg(f(q)),
            Gate::Rx(q, a) => Gate::Rx(f(q), a),
            Gate::Ry(q, a) => Gate::Ry(f(q), a),
            Gate::Rz(q, a) => Gate::Rz(f(q), a),
            Gate::Cnot(c, t) => Gate::Cnot(f(c), f(t)),
            Gate::Cz(c, t) => Gate::Cz(f(c), f(t)),
            Gate::Cphase(c, t, a) => Gate::Cphase(f(c), f(t), a),
            Gate::Swap(a, b) => Gate::Swap(f(a), f(b)),
            Gate::Toffoli(a, b, t) => Gate::Toffoli(f(a), f(b), f(t)),
            Gate::Measure(q) => Gate::Measure(f(q)),
            Gate::Barrier(q) => Gate::Barrier(f(q)),
        }
    }

    /// The kind of this gate, ignoring operands and parameters.
    pub fn kind(&self) -> GateKind {
        match self {
            Gate::I(_) => GateKind::I,
            Gate::X(_) => GateKind::X,
            Gate::Y(_) => GateKind::Y,
            Gate::Z(_) => GateKind::Z,
            Gate::H(_) => GateKind::H,
            Gate::S(_) => GateKind::S,
            Gate::Sdg(_) => GateKind::Sdg,
            Gate::T(_) => GateKind::T,
            Gate::Tdg(_) => GateKind::Tdg,
            Gate::Rx(..) => GateKind::Rx,
            Gate::Ry(..) => GateKind::Ry,
            Gate::Rz(..) => GateKind::Rz,
            Gate::Cnot(..) => GateKind::Cnot,
            Gate::Cz(..) => GateKind::Cz,
            Gate::Cphase(..) => GateKind::Cphase,
            Gate::Swap(..) => GateKind::Swap,
            Gate::Toffoli(..) => GateKind::Toffoli,
            Gate::Measure(_) => GateKind::Measure,
            Gate::Barrier(_) => GateKind::Barrier,
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.angle() {
            Some(a) => write!(f, "{}({})", self.name(), a)?,
            None => write!(f, "{}", self.name())?,
        }
        let qs = self.qubits();
        let names: Vec<String> = qs.iter().map(|q| format!("q{q}")).collect();
        write!(f, " {}", names.join(", "))
    }
}

/// Gate kind: the operand-free identity of a gate, used to express device
/// primitive gate sets and gather per-kind statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum GateKind {
    I,
    X,
    Y,
    Z,
    H,
    S,
    Sdg,
    T,
    Tdg,
    Rx,
    Ry,
    Rz,
    Cnot,
    Cz,
    Cphase,
    Swap,
    Toffoli,
    Measure,
    Barrier,
}

impl GateKind {
    /// All gate kinds, in declaration order.
    pub fn all() -> &'static [GateKind] {
        use GateKind::*;
        &[
            I, X, Y, Z, H, S, Sdg, T, Tdg, Rx, Ry, Rz, Cnot, Cz, Cphase, Swap, Toffoli, Measure,
            Barrier,
        ]
    }

    /// Inverse of [`GateKind`]'s `Display` (OpenQASM-style names).
    pub fn from_name(name: &str) -> Option<GateKind> {
        GateKind::all()
            .iter()
            .copied()
            .find(|k| k.to_string() == name)
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            GateKind::I => "id",
            GateKind::X => "x",
            GateKind::Y => "y",
            GateKind::Z => "z",
            GateKind::H => "h",
            GateKind::S => "s",
            GateKind::Sdg => "sdg",
            GateKind::T => "t",
            GateKind::Tdg => "tdg",
            GateKind::Rx => "rx",
            GateKind::Ry => "ry",
            GateKind::Rz => "rz",
            GateKind::Cnot => "cx",
            GateKind::Cz => "cz",
            GateKind::Cphase => "cp",
            GateKind::Swap => "swap",
            GateKind::Toffoli => "ccx",
            GateKind::Measure => "measure",
            GateKind::Barrier => "barrier",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operand_order() {
        assert_eq!(Gate::Cnot(3, 1).qubits(), vec![3, 1]);
        assert_eq!(Gate::Toffoli(0, 1, 2).qubits(), vec![0, 1, 2]);
        assert_eq!(Gate::Rz(5, 0.3).qubits(), vec![5]);
    }

    #[test]
    fn arity_and_classes() {
        assert_eq!(Gate::H(0).arity(), 1);
        assert_eq!(Gate::Swap(0, 1).arity(), 2);
        assert_eq!(Gate::Toffoli(0, 1, 2).arity(), 3);
        assert!(Gate::Cz(0, 1).is_two_qubit());
        assert!(!Gate::Toffoli(0, 1, 2).is_two_qubit());
        assert!(!Gate::Measure(0).is_unitary());
        assert!(Gate::Rz(0, 1.0).is_diagonal());
        assert!(!Gate::Cnot(0, 1).is_diagonal());
    }

    #[test]
    fn inverses() {
        assert_eq!(Gate::S(2).inverse(), Some(Gate::Sdg(2)));
        assert_eq!(Gate::Tdg(2).inverse(), Some(Gate::T(2)));
        assert_eq!(Gate::Rx(1, 0.5).inverse(), Some(Gate::Rx(1, -0.5)));
        assert_eq!(Gate::Measure(0).inverse(), None);
        assert_eq!(Gate::Barrier(0).inverse(), None);
        // Self-inverse gates.
        for g in [Gate::X(0), Gate::H(0), Gate::Cnot(0, 1), Gate::Swap(1, 2)] {
            assert_eq!(g.inverse(), Some(g));
        }
    }

    #[test]
    fn cancellation() {
        assert!(Gate::H(0).cancels_with(&Gate::H(0)));
        assert!(Gate::S(0).cancels_with(&Gate::Sdg(0)));
        assert!(!Gate::S(0).cancels_with(&Gate::S(0)));
        assert!(!Gate::H(0).cancels_with(&Gate::H(1)));
        assert!(Gate::Rz(0, 0.7).cancels_with(&Gate::Rz(0, -0.7)));
    }

    #[test]
    fn map_qubits_relabels() {
        let g = Gate::Toffoli(0, 1, 2).map_qubits(|q| q + 10);
        assert_eq!(g, Gate::Toffoli(10, 11, 12));
    }

    #[test]
    fn names_match_qasm() {
        assert_eq!(Gate::Cnot(0, 1).name(), "cx");
        assert_eq!(Gate::Toffoli(0, 1, 2).name(), "ccx");
        assert_eq!(Gate::Sdg(0).name(), "sdg");
    }

    #[test]
    fn display_includes_angle() {
        assert_eq!(Gate::Rz(2, 0.5).to_string(), "rz(0.5) q2");
        assert_eq!(Gate::Cnot(0, 1).to_string(), "cx q0, q1");
    }

    #[test]
    fn kinds_cover_all() {
        assert_eq!(GateKind::all().len(), 19);
        assert_eq!(Gate::Cphase(0, 1, 0.2).kind(), GateKind::Cphase);
        assert_eq!(GateKind::Cnot.to_string(), "cx");
    }
}
