//! Stable content hashing for circuits.
//!
//! The compilation service keys its result cache by a digest of "what was
//! compiled": the canonical circuit content plus the device and mapper
//! configuration. [`Fnv64`] is a 64-bit FNV-1a streaming hasher — chosen
//! over `std::collections::hash_map::DefaultHasher` because its output is
//! *stable*: the same bytes hash to the same value across processes,
//! platforms and Rust releases, so digests can be logged, compared
//! between daemon restarts and used as protocol-visible cache keys.
//!
//! [`circuit_digest`] folds every observable property of a circuit into
//! the hash: qubit count, name, and each gate's kind, operands and exact
//! angle bits (`f64::to_bits`, so `0.1 + 0.2 ≠ 0.3` — byte-identical
//! compilation requires bit-identical inputs).
//!
//! # Examples
//!
//! ```
//! use qcs_circuit::circuit::Circuit;
//! use qcs_circuit::hash::circuit_digest;
//!
//! let mut a = Circuit::new(2);
//! a.h(0)?.cnot(0, 1)?;
//! let mut b = Circuit::new(2);
//! b.h(0)?.cnot(0, 1)?;
//! assert_eq!(circuit_digest(&a), circuit_digest(&b));
//! b.x(1)?;
//! assert_ne!(circuit_digest(&a), circuit_digest(&b));
//! # Ok::<(), qcs_circuit::CircuitError>(())
//! ```

use crate::circuit::Circuit;
use crate::gate::Gate;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A streaming FNV-1a 64-bit hasher with a stable, documented output.
///
/// Unlike `std::hash::Hasher` implementations, the mapping from input
/// bytes to output is part of this type's contract: digests may be
/// persisted and compared across runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv64 {
    state: u64,
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

impl Fnv64 {
    /// A hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv64 { state: FNV_OFFSET }
    }

    /// The current digest.
    pub fn finish(&self) -> u64 {
        self.state
    }

    /// Folds raw bytes into the digest.
    pub fn write_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Folds a `u64` (little-endian bytes) into the digest.
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write_bytes(&v.to_le_bytes())
    }

    /// Folds a `usize` into the digest (widened to `u64` so 32- and
    /// 64-bit builds agree).
    pub fn write_usize(&mut self, v: usize) -> &mut Self {
        self.write_u64(v as u64)
    }

    /// Folds an `f64`'s exact bit pattern into the digest.
    pub fn write_f64(&mut self, v: f64) -> &mut Self {
        self.write_u64(v.to_bits())
    }

    /// Folds a string into the digest, length-prefixed so concatenated
    /// strings cannot collide with shifted splits (`"ab","c"` vs
    /// `"a","bc"`).
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes())
    }
}

/// Folds one gate into a hasher: a kind tag, the operand list and (for
/// rotations) the exact angle bits.
///
/// Public so [`crate::canon::canonical_digest`] folds gates exactly the
/// way [`circuit_digest`] does — the two digests differ only in whether
/// the circuit name participates.
pub fn write_gate(h: &mut Fnv64, gate: &Gate) {
    // The kind's QASM name is a stable tag (GateKind has no guaranteed
    // discriminant values); Measure/Barrier share names with nothing.
    h.write_str(gate.name());
    let qs = gate.qubits();
    h.write_usize(qs.len());
    for q in qs {
        h.write_usize(q);
    }
    match gate.angle() {
        Some(a) => {
            h.write_u64(1).write_f64(a);
        }
        None => {
            h.write_u64(0);
        }
    }
}

/// Digest of a circuit's full observable content: qubit count, name and
/// ordered gate list (kinds, operands, exact angle bits).
///
/// Two circuits have equal digests exactly when they are
/// indistinguishable to the compilation pipeline and its report (the
/// name appears in [`crate::circuit::Circuit::name`] and therefore in
/// reports, so it is part of the content).
pub fn circuit_digest(circuit: &Circuit) -> u64 {
    let mut h = Fnv64::new();
    h.write_usize(circuit.qubit_count());
    h.write_str(circuit.name());
    h.write_usize(circuit.len());
    for gate in circuit.iter() {
        write_gate(&mut h, gate);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_vectors_are_stable() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(Fnv64::new().finish(), 0xcbf2_9ce4_8422_2325);
        assert_eq!(
            Fnv64::new().write_bytes(b"a").finish(),
            0xaf63_dc4c_8601_ec8c
        );
        assert_eq!(
            Fnv64::new().write_bytes(b"foobar").finish(),
            0x8594_4171_f739_67e8
        );
    }

    #[test]
    fn digest_is_deterministic_across_constructions() {
        let build = || {
            let mut c = Circuit::with_name(3, "probe");
            c.h(0).unwrap().cnot(0, 1).unwrap().rz(2, 0.25).unwrap();
            c
        };
        assert_eq!(circuit_digest(&build()), circuit_digest(&build()));
    }

    #[test]
    fn digest_sensitive_to_every_component() {
        let mut base = Circuit::with_name(3, "probe");
        base.h(0).unwrap().cnot(0, 1).unwrap().rz(2, 0.25).unwrap();
        let d0 = circuit_digest(&base);

        // Name.
        let mut c = base.clone();
        c.set_name("other");
        assert_ne!(circuit_digest(&c), d0);

        // Width (same gates, extra idle qubit).
        let mut c = Circuit::with_name(4, "probe");
        c.h(0).unwrap().cnot(0, 1).unwrap().rz(2, 0.25).unwrap();
        assert_ne!(circuit_digest(&c), d0);

        // Gate order.
        let mut c = Circuit::with_name(3, "probe");
        c.cnot(0, 1).unwrap().h(0).unwrap().rz(2, 0.25).unwrap();
        assert_ne!(circuit_digest(&c), d0);

        // Operands.
        let mut c = Circuit::with_name(3, "probe");
        c.h(0).unwrap().cnot(1, 0).unwrap().rz(2, 0.25).unwrap();
        assert_ne!(circuit_digest(&c), d0);

        // Angle bits: even a one-ulp change is a different circuit.
        let mut c = Circuit::with_name(3, "probe");
        c.h(0)
            .unwrap()
            .cnot(0, 1)
            .unwrap()
            .rz(2, f64::from_bits(0.25f64.to_bits() + 1))
            .unwrap();
        assert_ne!(circuit_digest(&c), d0);
    }

    #[test]
    fn string_length_prefix_prevents_shift_collisions() {
        let a = Fnv64::new().write_str("ab").write_str("c").finish();
        let b = Fnv64::new().write_str("a").write_str("bc").finish();
        assert_ne!(a, b);
    }

    #[test]
    fn gate_kind_tags_disambiguate() {
        // Same operands, different kinds.
        let mut x = Circuit::new(2);
        x.cnot(0, 1).unwrap();
        let mut z = Circuit::new(2);
        z.cz(0, 1).unwrap();
        assert_ne!(circuit_digest(&x), circuit_digest(&z));
    }
}
