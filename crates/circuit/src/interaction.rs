//! Qubit interaction graphs (Figs. 2 and 4 of the paper).
//!
//! "Interaction graphs are graphical representations of the two-qubit
//! gates of a given quantum circuit. Edges represent two-qubit gates and
//! nodes are the qubits that participate in those. If a circuit comprises
//! multiple two-qubit gates between pairs of qubits, it results in a
//! weighted graph which shows how often each pair of qubits interacts."

use qcs_graph::Graph;

use crate::circuit::Circuit;
use crate::gate::Gate;

/// Builds the weighted interaction graph of `circuit`.
///
/// Nodes are all circuit qubits `0..qubit_count()` (including idle ones,
/// so metric vectors stay aligned with the declared width); every
/// two-qubit unitary gate adds weight 1 to its pair's edge. Multi-qubit
/// gates like Toffoli contribute weight 1 to **each** operand pair, since
/// every pair must be adjacent (or decomposed) at mapping time.
///
/// # Examples
///
/// ```
/// use qcs_circuit::circuit::Circuit;
/// use qcs_circuit::interaction::interaction_graph;
///
/// let mut c = Circuit::new(3);
/// c.cnot(0, 1)?.cnot(0, 1)?.cz(1, 2)?;
/// let g = interaction_graph(&c);
/// assert_eq!(g.weight(0, 1), Some(2.0));
/// assert_eq!(g.weight(1, 2), Some(1.0));
/// assert_eq!(g.weight(0, 2), None);
/// # Ok::<(), qcs_circuit::CircuitError>(())
/// ```
pub fn interaction_graph(circuit: &Circuit) -> Graph {
    let mut g = Graph::with_nodes(circuit.qubit_count());
    for gate in circuit.iter() {
        match *gate {
            Gate::Cnot(a, b) | Gate::Cz(a, b) | Gate::Swap(a, b) | Gate::Cphase(a, b, _) => {
                g.add_edge(a, b)
                    .expect("circuit validation guarantees valid pairs");
            }
            Gate::Toffoli(a, b, t) => {
                g.add_edge(a, b).expect("valid pair");
                g.add_edge(a, t).expect("valid pair");
                g.add_edge(b, t).expect("valid pair");
            }
            _ => {}
        }
    }
    g
}

/// Like [`interaction_graph`] but restricted to the qubits that actually
/// interact (isolated nodes removed, ids compacted in ascending order).
///
/// Returns the compacted graph and the mapping from new node id to the
/// original qubit index.
pub fn compact_interaction_graph(circuit: &Circuit) -> (Graph, Vec<usize>) {
    let full = interaction_graph(circuit);
    let keep: Vec<usize> = (0..full.node_count())
        .filter(|&q| full.degree(q) > 0)
        .collect();
    let mut index_of = vec![usize::MAX; full.node_count()];
    for (new, &old) in keep.iter().enumerate() {
        index_of[old] = new;
    }
    let mut g = Graph::with_nodes(keep.len());
    for (u, v, w) in full.edges() {
        g.add_edge_weighted(index_of[u], index_of[v], w)
            .expect("compacted edge is valid");
    }
    (g, keep)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_multiplicities() {
        let mut c = Circuit::new(4);
        c.cnot(1, 0).unwrap();
        c.cnot(1, 2).unwrap();
        c.cnot(2, 3).unwrap();
        c.cnot(2, 0).unwrap();
        c.cnot(1, 2).unwrap();
        let g = interaction_graph(&c);
        // Matches the Fig. 2 interaction graph.
        assert_eq!(g.weight(0, 1), Some(1.0));
        assert_eq!(g.weight(1, 2), Some(2.0));
        assert_eq!(g.weight(2, 3), Some(1.0));
        assert_eq!(g.weight(0, 2), Some(1.0));
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.total_weight(), 5.0);
    }

    #[test]
    fn single_qubit_gates_ignored() {
        let mut c = Circuit::new(2);
        c.h(0).unwrap().t(1).unwrap().measure_all();
        let g = interaction_graph(&c);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.node_count(), 2);
    }

    #[test]
    fn toffoli_adds_all_pairs() {
        let mut c = Circuit::new(3);
        c.toffoli(0, 1, 2).unwrap();
        let g = interaction_graph(&c);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.weight(0, 2), Some(1.0));
    }

    #[test]
    fn swap_and_cphase_count() {
        let mut c = Circuit::new(2);
        c.swap(0, 1).unwrap().cphase(0, 1, 0.5).unwrap();
        let g = interaction_graph(&c);
        assert_eq!(g.weight(0, 1), Some(2.0));
    }

    #[test]
    fn compact_drops_idle_qubits() {
        let mut c = Circuit::new(5);
        c.cnot(1, 3).unwrap().cnot(3, 4).unwrap();
        let (g, back) = compact_interaction_graph(&c);
        assert_eq!(g.node_count(), 3);
        assert_eq!(back, vec![1, 3, 4]);
        assert_eq!(g.weight(0, 1), Some(1.0)); // old (1,3)
        assert_eq!(g.weight(1, 2), Some(1.0)); // old (3,4)
    }

    #[test]
    fn compact_of_fully_idle_circuit() {
        let c = Circuit::new(3);
        let (g, back) = compact_interaction_graph(&c);
        assert_eq!(g.node_count(), 0);
        assert!(back.is_empty());
    }
}
