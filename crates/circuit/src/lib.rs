//! Quantum circuit intermediate representation.
//!
//! This crate is the "quantum programming language / compiler front-end"
//! substrate of the full-stack (Fig. 1 of the paper): an IR that the
//! high-level workload generators produce and the mapping passes consume.
//!
//! * [`gate`] — the gate set: single-qubit Cliffords and rotations,
//!   controlled gates, SWAP, Toffoli, measurement and barriers.
//! * [`circuit`] — [`circuit::Circuit`]: an ordered gate list with a fluent
//!   builder and the size statistics the paper characterizes circuits by
//!   (gate count, qubit count, two-qubit-gate percentage, depth).
//! * [`dag`] — gate dependency DAG: ASAP layering, depth, topological
//!   traversal and the *front layer* used by look-ahead routers.
//! * [`interaction`] — extraction of the weighted **qubit interaction
//!   graph** (Fig. 2/4), the core object of the paper's Section IV.
//! * [`qasm`] — printer and parser for an OpenQASM 2.0 subset, the
//!   "low-level instructions" interchange of the stack.
//! * [`hash`] — stable FNV-1a content digests of circuits, the keys of
//!   the compilation service's content-addressed result cache.
//! * [`decompose`] — rewriting to a device's primitive gate set
//!   (mapping step 1 in Section III).
//! * [`optimize`] — gate-cancellation and rotation-merging peepholes
//!   (the compiler's "general optimization" from Section I).
//! * [`commute`] — gate commutation rules and commutation-aware
//!   cancellation (the technique of the paper's ref \[39\]).
//! * [`draw`] — ASCII wire-diagram rendering for logs and examples.
//!
//! # Examples
//!
//! Build the Fig. 2 circuit and extract its interaction graph:
//!
//! ```
//! use qcs_circuit::circuit::Circuit;
//! use qcs_circuit::interaction::interaction_graph;
//!
//! let mut c = Circuit::new(4);
//! c.cnot(1, 0)?.cnot(1, 2)?.cnot(2, 3)?.cnot(2, 0)?.cnot(1, 2)?;
//! let g = interaction_graph(&c);
//! assert_eq!(g.node_count(), 4);
//! assert_eq!(g.weight(1, 2), Some(2.0)); // q1–q2 interact twice
//! # Ok::<(), qcs_circuit::CircuitError>(())
//! ```

#![warn(missing_docs)]

pub mod canon;
pub mod circuit;
pub mod commute;
pub mod dag;
pub mod decompose;
pub mod draw;
pub mod gate;
pub mod hash;
pub mod interaction;
pub mod optimize;
pub mod qasm;

pub use circuit::{Circuit, CircuitError};
pub use gate::{Gate, Qubit};
