//! Peephole circuit optimization.
//!
//! The compiler layer of the stack performs "some general (e.g. gate
//! cancellation) … optimization on the quantum circuit" (Section I). This
//! module implements the standard passes:
//!
//! * [`cancel_inverse_pairs`] — removes adjacent gate/inverse pairs (H·H,
//!   CNOT·CNOT, S·S†, Rz(a)·Rz(−a), …) where "adjacent" means no
//!   intervening gate touches the pair's qubits;
//! * [`merge_rotations`] — fuses runs of same-axis rotations on a qubit
//!   into one, dropping rotations whose merged angle is ≡ 0 (mod 2π);
//! * [`remove_identities`] — drops explicit identity gates;
//! * [`optimize`] — runs all passes to a fixed point.

use std::f64::consts::TAU;

use crate::circuit::Circuit;
use crate::gate::Gate;

/// Removes adjacent inverse pairs; one left-to-right sweep.
///
/// Returns the optimized circuit and the number of gates removed.
pub fn cancel_inverse_pairs(circuit: &Circuit) -> (Circuit, usize) {
    // Stack of retained gate indices; the last gate on each qubit is the
    // candidate for cancellation against an incoming gate.
    let gates = circuit.gates();
    let mut keep: Vec<Option<Gate>> = Vec::with_capacity(gates.len());
    // last_on[q] = index into `keep` of the most recent retained gate on q.
    let mut last_on: Vec<Option<usize>> = vec![None; circuit.qubit_count()];
    let mut removed = 0usize;

    for &g in gates {
        let qs = g.qubits();
        // A cancellation is possible only if every operand's latest gate is
        // the *same* retained gate and it cancels with g.
        let candidate = qs.first().and_then(|&q| last_on[q]);
        let cancellable = g.is_unitary()
            && candidate.is_some_and(|idx| {
                qs.iter().all(|&q| last_on[q] == Some(idx))
                    && keep[idx].is_some_and(|prev| prev.cancels_with(&g))
            });
        if cancellable {
            let idx = candidate.expect("checked above");
            keep[idx] = None;
            removed += 2;
            // Rewind last_on for the affected qubits to their previous gate.
            for &q in &qs {
                last_on[q] = keep[..idx]
                    .iter()
                    .enumerate()
                    .rev()
                    .find(|(_, kg)| kg.is_some_and(|kg| kg.qubits().contains(&q)))
                    .map(|(i, _)| i);
            }
        } else {
            keep.push(Some(g));
            let idx = keep.len() - 1;
            for &q in &qs {
                last_on[q] = Some(idx);
            }
        }
    }

    let mut out = Circuit::with_name(circuit.qubit_count(), circuit.name().to_string());
    for g in keep.into_iter().flatten() {
        out.push(g).expect("retained gate stays valid");
    }
    (out, removed)
}

/// Merges adjacent same-axis rotations on each qubit.
///
/// Returns the optimized circuit and the number of gates eliminated
/// (merged-away plus zero-angle drops).
pub fn merge_rotations(circuit: &Circuit) -> (Circuit, usize) {
    let mut keep: Vec<Option<Gate>> = Vec::with_capacity(circuit.len());
    let mut last_on: Vec<Option<usize>> = vec![None; circuit.qubit_count()];
    let mut removed = 0usize;

    for &g in circuit.gates() {
        let qs = g.qubits();
        let mergeable = match g {
            Gate::Rx(q, a) | Gate::Ry(q, a) | Gate::Rz(q, a) => last_on[q]
                .and_then(|idx| keep[idx])
                .and_then(|prev| match (prev, g) {
                    (Gate::Rx(pq, pa), Gate::Rx(..)) if pq == q => {
                        Some((last_on[q].expect("checked"), Gate::Rx(q, pa + a)))
                    }
                    (Gate::Ry(pq, pa), Gate::Ry(..)) if pq == q => {
                        Some((last_on[q].expect("checked"), Gate::Ry(q, pa + a)))
                    }
                    (Gate::Rz(pq, pa), Gate::Rz(..)) if pq == q => {
                        Some((last_on[q].expect("checked"), Gate::Rz(q, pa + a)))
                    }
                    _ => None,
                }),
            _ => None,
        };
        if let Some((idx, merged)) = mergeable {
            removed += 1;
            let angle = merged.angle().expect("rotations carry angles");
            if is_zero_mod_tau(angle) {
                keep[idx] = None;
                removed += 1;
                let q = qs[0];
                last_on[q] = keep[..idx]
                    .iter()
                    .enumerate()
                    .rev()
                    .find(|(_, kg)| kg.is_some_and(|kg| kg.qubits().contains(&q)))
                    .map(|(i, _)| i);
            } else {
                keep[idx] = Some(merged);
            }
        } else {
            keep.push(Some(g));
            let idx = keep.len() - 1;
            for &q in &qs {
                last_on[q] = Some(idx);
            }
        }
    }

    let mut out = Circuit::with_name(circuit.qubit_count(), circuit.name().to_string());
    for g in keep.into_iter().flatten() {
        out.push(g).expect("retained gate stays valid");
    }
    (out, removed)
}

fn is_zero_mod_tau(angle: f64) -> bool {
    let r = angle.rem_euclid(TAU);
    r.abs() < 1e-12 || (TAU - r).abs() < 1e-12
}

/// Drops explicit identity gates. Returns the circuit and removal count.
pub fn remove_identities(circuit: &Circuit) -> (Circuit, usize) {
    let mut out = Circuit::with_name(circuit.qubit_count(), circuit.name().to_string());
    let mut removed = 0;
    for &g in circuit.gates() {
        if matches!(g, Gate::I(_)) {
            removed += 1;
        } else {
            out.push(g).expect("gate stays valid");
        }
    }
    (out, removed)
}

/// Summary of an [`optimize`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OptimizeReport {
    /// Gates removed by inverse-pair cancellation.
    pub cancelled: usize,
    /// Gates removed by rotation merging.
    pub merged: usize,
    /// Identity gates dropped.
    pub identities: usize,
    /// Fixed-point iterations executed.
    pub iterations: usize,
}

impl OptimizeReport {
    /// Total gates eliminated.
    pub fn total_removed(&self) -> usize {
        self.cancelled + self.merged + self.identities
    }
}

/// Runs all peephole passes to a fixed point.
///
/// # Examples
///
/// ```
/// use qcs_circuit::circuit::Circuit;
/// use qcs_circuit::optimize::optimize;
///
/// let mut c = Circuit::new(2);
/// c.h(0)?.h(0)?.cnot(0, 1)?.cnot(0, 1)?;
/// let (opt, report) = optimize(&c);
/// assert!(opt.is_empty());
/// assert_eq!(report.cancelled, 4);
/// # Ok::<(), qcs_circuit::CircuitError>(())
/// ```
pub fn optimize(circuit: &Circuit) -> (Circuit, OptimizeReport) {
    let mut report = OptimizeReport::default();
    let mut current = circuit.clone();
    loop {
        report.iterations += 1;
        let before = current.len();
        let (c, ids) = remove_identities(&current);
        let (c, cancelled) = cancel_inverse_pairs(&c);
        let (c, merged) = merge_rotations(&c);
        report.identities += ids;
        report.cancelled += cancelled;
        report.merged += merged;
        current = c;
        if current.len() == before || report.iterations > 32 {
            break;
        }
    }
    (current, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::GateKind;

    #[test]
    fn cancels_adjacent_h_pair() {
        let mut c = Circuit::new(1);
        c.h(0).unwrap().h(0).unwrap();
        let (opt, n) = cancel_inverse_pairs(&c);
        assert!(opt.is_empty());
        assert_eq!(n, 2);
    }

    #[test]
    fn cancels_s_sdg() {
        let mut c = Circuit::new(1);
        c.s(0).unwrap().sdg(0).unwrap();
        let (opt, _) = cancel_inverse_pairs(&c);
        assert!(opt.is_empty());
    }

    #[test]
    fn does_not_cancel_across_blockers() {
        let mut c = Circuit::new(2);
        c.h(0).unwrap().cnot(0, 1).unwrap().h(0).unwrap();
        let (opt, n) = cancel_inverse_pairs(&c);
        assert_eq!(opt.len(), 3);
        assert_eq!(n, 0);
    }

    #[test]
    fn cancels_cnot_pair() {
        let mut c = Circuit::new(2);
        c.cnot(0, 1).unwrap().cnot(0, 1).unwrap();
        let (opt, _) = cancel_inverse_pairs(&c);
        assert!(opt.is_empty());
    }

    #[test]
    fn different_operand_order_does_not_cancel() {
        let mut c = Circuit::new(2);
        c.cnot(0, 1).unwrap().cnot(1, 0).unwrap();
        let (opt, _) = cancel_inverse_pairs(&c);
        assert_eq!(opt.len(), 2);
    }

    #[test]
    fn partial_overlap_blocks_cancellation() {
        // CNOT(0,1) then H(1) then CNOT(0,1): H blocks.
        let mut c = Circuit::new(2);
        c.cnot(0, 1).unwrap().h(1).unwrap().cnot(0, 1).unwrap();
        let (opt, _) = cancel_inverse_pairs(&c);
        assert_eq!(opt.len(), 3);
    }

    #[test]
    fn cascading_cancellation() {
        // X H H X collapses completely in one pass (inner pair first, then
        // outer pair becomes adjacent on re-examination of last_on).
        let mut c = Circuit::new(1);
        c.x(0).unwrap().h(0).unwrap().h(0).unwrap().x(0).unwrap();
        let (opt, report) = optimize(&c);
        assert!(opt.is_empty(), "left {:?}", opt.gates());
        assert_eq!(report.cancelled, 4);
    }

    #[test]
    fn merges_rz_chain() {
        let mut c = Circuit::new(1);
        c.rz(0, 0.25)
            .unwrap()
            .rz(0, 0.5)
            .unwrap()
            .rz(0, 0.25)
            .unwrap();
        let (opt, n) = merge_rotations(&c);
        assert_eq!(opt.gates(), &[Gate::Rz(0, 1.0)]);
        assert_eq!(n, 2);
    }

    #[test]
    fn merged_zero_rotation_drops() {
        let mut c = Circuit::new(1);
        c.rx(0, 0.7).unwrap().rx(0, -0.7).unwrap();
        let (opt, n) = merge_rotations(&c);
        assert!(opt.is_empty());
        assert_eq!(n, 2);
    }

    #[test]
    fn full_turn_drops() {
        let mut c = Circuit::new(1);
        c.ry(0, std::f64::consts::PI)
            .unwrap()
            .ry(0, std::f64::consts::PI)
            .unwrap();
        let (opt, _) = merge_rotations(&c);
        assert!(opt.is_empty());
    }

    #[test]
    fn different_axes_do_not_merge() {
        let mut c = Circuit::new(1);
        c.rx(0, 0.5).unwrap().rz(0, 0.5).unwrap();
        let (opt, n) = merge_rotations(&c);
        assert_eq!(opt.len(), 2);
        assert_eq!(n, 0);
    }

    #[test]
    fn identity_removal() {
        let mut c = Circuit::new(2);
        c.push(Gate::I(0)).unwrap();
        c.h(1).unwrap();
        let (opt, n) = remove_identities(&c);
        assert_eq!(n, 1);
        assert_eq!(opt.gates(), &[Gate::H(1)]);
    }

    #[test]
    fn optimize_fixed_point_combination() {
        // Rz(a) Rz(-a) leaves nothing, exposing an H H pair around it?
        // H Rz(0.5) Rz(-0.5) H → H H → empty. Needs two iterations.
        let mut c = Circuit::new(1);
        c.h(0)
            .unwrap()
            .rz(0, 0.5)
            .unwrap()
            .rz(0, -0.5)
            .unwrap()
            .h(0)
            .unwrap();
        let (opt, report) = optimize(&c);
        assert!(opt.is_empty());
        assert!(report.iterations >= 2);
        assert_eq!(report.total_removed(), 4);
    }

    #[test]
    fn measurements_never_optimized_away() {
        let mut c = Circuit::new(1);
        c.measure(0).unwrap().measure(0).unwrap();
        let (opt, _) = optimize(&c);
        assert_eq!(
            opt.gates()
                .iter()
                .filter(|g| g.kind() == GateKind::Measure)
                .count(),
            2
        );
    }

    #[test]
    fn optimize_preserves_semantic_gates() {
        let mut c = Circuit::new(3);
        c.h(0)
            .unwrap()
            .cnot(0, 1)
            .unwrap()
            .toffoli(0, 1, 2)
            .unwrap();
        let (opt, report) = optimize(&c);
        assert_eq!(opt.gates(), c.gates());
        assert_eq!(report.total_removed(), 0);
    }
}
