//! OpenQASM 2.0 subset printer and parser.
//!
//! This is the stack's "quantum assembly" interchange format (the QASM of
//! Fig. 1): good enough to serialize every gate the IR supports and to
//! read back what it wrote (round-trip safe), plus the common hand-written
//! constructs (`pi`-expressions in angles, comments, `include`).
//!
//! Supported statements: `OPENQASM 2.0;`, `include "...";`, `qreg`/`creg`
//! declarations (one quantum register), gate applications from the
//! [`crate::gate::Gate`] set, `measure q[i] -> c[i];` and `barrier`.

use std::fmt::Write as _;

use crate::circuit::Circuit;
use crate::gate::Gate;

/// Error produced while parsing QASM source.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseQasmError {
    /// 1-based source line of the offending statement.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseQasmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "qasm parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseQasmError {}

/// Serializes `circuit` as OpenQASM 2.0.
///
/// The quantum register is named `q`, the classical register `c` (same
/// width). Angles print with Rust's shortest round-trip `f64` formatting,
/// so [`parse`] recovers them exactly.
///
/// # Examples
///
/// ```
/// use qcs_circuit::circuit::Circuit;
/// use qcs_circuit::qasm;
///
/// let mut c = Circuit::new(2);
/// c.h(0)?.cnot(0, 1)?;
/// let text = qasm::print(&c);
/// assert!(text.contains("cx q[0],q[1];"));
/// let back = qasm::parse(&text)?;
/// assert_eq!(back.gates(), c.gates());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn print(circuit: &Circuit) -> String {
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\n");
    out.push_str("include \"qelib1.inc\";\n");
    let _ = writeln!(out, "qreg q[{}];", circuit.qubit_count());
    let _ = writeln!(out, "creg c[{}];", circuit.qubit_count());
    for g in circuit.iter() {
        match *g {
            Gate::Measure(q) => {
                let _ = writeln!(out, "measure q[{q}] -> c[{q}];");
            }
            Gate::Barrier(q) => {
                let _ = writeln!(out, "barrier q[{q}];");
            }
            _ => {
                let qs = g.qubits();
                let operands: Vec<String> = qs.iter().map(|q| format!("q[{q}]")).collect();
                match g.angle() {
                    Some(a) => {
                        let _ = writeln!(out, "{}({}) {};", g.name(), a, operands.join(","));
                    }
                    None => {
                        let _ = writeln!(out, "{} {};", g.name(), operands.join(","));
                    }
                }
            }
        }
    }
    out
}

/// Parses OpenQASM 2.0 source into a [`Circuit`].
///
/// # Errors
///
/// Returns [`ParseQasmError`] on unknown gates, malformed operands,
/// missing register declarations, out-of-range indices or unsupported
/// constructs (custom gate definitions, conditionals, multiple qregs).
pub fn parse(source: &str) -> Result<Circuit, ParseQasmError> {
    let mut circuit: Option<Circuit> = None;
    let mut pending: Vec<(usize, String)> = Vec::new();

    for (lineno, raw) in source.lines().enumerate() {
        let line = lineno + 1;
        let no_comment = match raw.find("//") {
            Some(pos) => &raw[..pos],
            None => raw,
        };
        for stmt in no_comment.split(';') {
            let stmt = stmt.trim();
            if stmt.is_empty() {
                continue;
            }
            pending.push((line, stmt.to_string()));
        }
    }

    for (line, stmt) in pending {
        let err = |message: String| ParseQasmError { line, message };
        if stmt.starts_with("OPENQASM") || stmt.starts_with("include") || stmt.starts_with("creg") {
            continue;
        }
        if let Some(rest) = stmt.strip_prefix("qreg") {
            if circuit.is_some() {
                return Err(err("multiple qreg declarations are not supported".into()));
            }
            let n = parse_reg_size(rest.trim())
                .ok_or_else(|| err(format!("malformed qreg declaration '{stmt}'")))?;
            circuit = Some(Circuit::new(n));
            continue;
        }

        let c = circuit
            .as_mut()
            .ok_or_else(|| err("gate before qreg declaration".into()))?;

        // Split head from operands at the first whitespace *outside* any
        // angle parentheses (angle expressions may contain spaces).
        let ws = stmt.find(|ch: char| ch.is_whitespace());
        let split = match stmt.find('(') {
            Some(open) if ws.is_none_or(|w| open < w) => stmt
                .rfind(')')
                .map(|close| close + 1)
                .ok_or_else(|| err(format!("unclosed angle in '{stmt}'")))?,
            _ => ws.ok_or_else(|| err(format!("malformed statement '{stmt}'")))?,
        };
        let (head, operand_text) = (stmt[..split].trim(), stmt[split..].trim());
        if operand_text.is_empty() {
            return Err(err(format!("missing operands in '{stmt}'")));
        }

        if head == "measure" {
            // measure q[i] -> c[j]
            let src = operand_text
                .split("->")
                .next()
                .map(str::trim)
                .ok_or_else(|| err("malformed measure".into()))?;
            let q = parse_qubit(src).ok_or_else(|| err(format!("bad measure operand '{src}'")))?;
            c.push(Gate::Measure(q)).map_err(|e| err(e.to_string()))?;
            continue;
        }
        if head == "barrier" {
            for part in operand_text.split(',') {
                let part = part.trim();
                let q = parse_qubit(part)
                    .ok_or_else(|| err(format!("bad barrier operand '{part}'")))?;
                c.push(Gate::Barrier(q)).map_err(|e| err(e.to_string()))?;
            }
            continue;
        }

        // Gate name with optional parenthesized parameter list.
        let (name, angles) = match head.find('(') {
            Some(open) => {
                let close = head
                    .rfind(')')
                    .ok_or_else(|| err(format!("unclosed angle in '{head}'")))?;
                let exprs = &head[open + 1..close];
                let parsed: Vec<f64> = exprs
                    .split(',')
                    .map(|e| eval_angle(e).ok_or_else(|| err(format!("bad angle '{e}'"))))
                    .collect::<Result<_, _>>()?;
                (&head[..open], parsed)
            }
            None => (head, Vec::new()),
        };

        let qubits: Vec<usize> = operand_text
            .split(',')
            .map(|p| parse_qubit(p.trim()))
            .collect::<Option<Vec<_>>>()
            .ok_or_else(|| err(format!("bad operands '{operand_text}'")))?;

        let gates = build_gates(name, &angles, &qubits)
            .ok_or_else(|| err(format!("unknown or malformed gate '{stmt}'")))?;
        for gate in gates {
            c.push(gate).map_err(|e| err(e.to_string()))?;
        }
    }

    circuit.ok_or(ParseQasmError {
        line: 0,
        message: "no qreg declaration found".into(),
    })
}

fn build_gates(name: &str, angles: &[f64], qs: &[usize]) -> Option<Vec<Gate>> {
    let gate = match (name, angles, qs) {
        ("id", [], &[q]) => Gate::I(q),
        ("x", [], &[q]) => Gate::X(q),
        ("y", [], &[q]) => Gate::Y(q),
        ("z", [], &[q]) => Gate::Z(q),
        ("h", [], &[q]) => Gate::H(q),
        ("s", [], &[q]) => Gate::S(q),
        ("sdg", [], &[q]) => Gate::Sdg(q),
        ("t", [], &[q]) => Gate::T(q),
        ("tdg", [], &[q]) => Gate::Tdg(q),
        ("rx", &[a], &[q]) => Gate::Rx(q, a),
        ("ry", &[a], &[q]) => Gate::Ry(q, a),
        ("rz", &[a], &[q]) | ("u1", &[a], &[q]) => Gate::Rz(q, a),
        ("cx", [], &[c, t]) => Gate::Cnot(c, t),
        ("cz", [], &[c, t]) => Gate::Cz(c, t),
        ("cp", &[a], &[c, t]) | ("cu1", &[a], &[c, t]) => Gate::Cphase(c, t, a),
        ("swap", [], &[a, b]) => Gate::Swap(a, b),
        ("ccx", [], &[a, b, t]) => Gate::Toffoli(a, b, t),
        // qelib1 generic rotations, ZYZ-decomposed (equal up to global
        // phase): u3(θ,φ,λ) = Rz(φ)·Ry(θ)·Rz(λ); u2(φ,λ) = u3(π/2,φ,λ).
        ("u3", &[theta, phi, lambda], &[q]) => {
            return Some(vec![
                Gate::Rz(q, lambda),
                Gate::Ry(q, theta),
                Gate::Rz(q, phi),
            ])
        }
        ("u2", &[phi, lambda], &[q]) => {
            return Some(vec![
                Gate::Rz(q, lambda),
                Gate::Ry(q, std::f64::consts::FRAC_PI_2),
                Gate::Rz(q, phi),
            ])
        }
        _ => return None,
    };
    Some(vec![gate])
}

/// Parses `q[i]` into `i`.
fn parse_qubit(text: &str) -> Option<usize> {
    let rest = text.strip_prefix("q[")?;
    let idx = rest.strip_suffix(']')?;
    idx.parse().ok()
}

/// Parses `name[n]` (e.g. `q[5]`) into the register size.
fn parse_reg_size(text: &str) -> Option<usize> {
    let open = text.find('[')?;
    let close = text.rfind(']')?;
    text[open + 1..close].parse().ok()
}

/// Evaluates a QASM angle expression: a float, `pi`, and `* / + -`
/// combinations thereof with standard precedence (no parentheses).
fn eval_angle(expr: &str) -> Option<f64> {
    // Split on +/- at top level (respecting unary minus), then * and /.
    let expr = expr.trim();
    if expr.is_empty() {
        return None;
    }
    let mut terms: Vec<(f64, char)> = Vec::new(); // (value, sign-op)
    let mut current = String::new();
    let mut op = '+';
    let chars = expr.chars().peekable();
    let mut prev_was_operand = false;
    for ch in chars {
        if (ch == '+' || ch == '-') && prev_was_operand {
            terms.push((eval_product(current.trim())?, op));
            current = String::new();
            op = ch;
            prev_was_operand = false;
        } else {
            if !ch.is_whitespace() {
                prev_was_operand = prev_was_operand || ch != '-' && ch != '+';
            }
            current.push(ch);
        }
    }
    terms.push((eval_product(current.trim())?, op));
    let mut total = 0.0;
    for (v, o) in terms {
        if o == '+' {
            total += v;
        } else {
            total -= v;
        }
    }
    Some(total)
}

fn eval_product(expr: &str) -> Option<f64> {
    let mut value = 1.0;
    let mut op = '*';
    for part in split_keep_ops(expr) {
        match part.as_str() {
            "*" | "/" => op = part.chars().next().expect("op char"),
            token => {
                let v = eval_atom(token)?;
                if op == '*' {
                    value *= v;
                } else {
                    if v == 0.0 {
                        return None;
                    }
                    value /= v;
                }
            }
        }
    }
    Some(value)
}

fn split_keep_ops(expr: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut cur = String::new();
    for ch in expr.chars() {
        if ch == '*' || ch == '/' {
            if !cur.trim().is_empty() {
                parts.push(cur.trim().to_string());
            }
            parts.push(ch.to_string());
            cur = String::new();
        } else {
            cur.push(ch);
        }
    }
    if !cur.trim().is_empty() {
        parts.push(cur.trim().to_string());
    }
    parts
}

fn eval_atom(token: &str) -> Option<f64> {
    let token = token.trim();
    if let Some(rest) = token.strip_prefix('-') {
        return eval_atom(rest).map(|v| -v);
    }
    if token == "pi" {
        return Some(std::f64::consts::PI);
    }
    token.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn sample_circuit() -> Circuit {
        let mut c = Circuit::new(3);
        c.h(0)
            .unwrap()
            .rx(1, 0.12345)
            .unwrap()
            .cnot(0, 1)
            .unwrap()
            .cz(1, 2)
            .unwrap()
            .cphase(0, 2, -0.5)
            .unwrap()
            .swap(0, 2)
            .unwrap()
            .toffoli(0, 1, 2)
            .unwrap()
            .measure(2)
            .unwrap();
        c
    }

    #[test]
    fn print_contains_expected_statements() {
        let text = print(&sample_circuit());
        assert!(text.starts_with("OPENQASM 2.0;"));
        assert!(text.contains("qreg q[3];"));
        assert!(text.contains("rx(0.12345) q[1];"));
        assert!(text.contains("ccx q[0],q[1],q[2];"));
        assert!(text.contains("measure q[2] -> c[2];"));
    }

    #[test]
    fn round_trip_preserves_gates() {
        let c = sample_circuit();
        let back = parse(&print(&c)).unwrap();
        assert_eq!(back.qubit_count(), c.qubit_count());
        assert_eq!(back.gates(), c.gates());
    }

    #[test]
    fn parses_pi_expressions() {
        let src = "qreg q[1]; rz(pi/2) q[0]; rx(-pi/4) q[0]; ry(2*pi) q[0]; rz(pi) q[0];";
        let c = parse(src).unwrap();
        let angles: Vec<f64> = c.gates().iter().filter_map(Gate::angle).collect();
        assert!((angles[0] - PI / 2.0).abs() < 1e-12);
        assert!((angles[1] + PI / 4.0).abs() < 1e-12);
        assert!((angles[2] - 2.0 * PI).abs() < 1e-12);
        assert!((angles[3] - PI).abs() < 1e-12);
    }

    #[test]
    fn parses_sum_angles() {
        let src = "qreg q[1]; rz(pi/2 + pi/4) q[0]; rz(1.5 - 0.5) q[0];";
        let c = parse(src).unwrap();
        let angles: Vec<f64> = c.gates().iter().filter_map(Gate::angle).collect();
        assert!((angles[0] - 3.0 * PI / 4.0).abs() < 1e-12);
        assert!((angles[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let src = "// header\nOPENQASM 2.0;\n\nqreg q[2];\nh q[0]; // do an H\ncx q[0],q[1];\n";
        let c = parse(src).unwrap();
        assert_eq!(c.gates(), &[Gate::H(0), Gate::Cnot(0, 1)]);
    }

    #[test]
    fn multiple_statements_per_line() {
        let c = parse("qreg q[2]; h q[0]; h q[1]; cx q[0],q[1];").unwrap();
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn barrier_multiple_operands() {
        let c = parse("qreg q[2]; barrier q[0],q[1];").unwrap();
        assert_eq!(c.gates(), &[Gate::Barrier(0), Gate::Barrier(1)]);
    }

    #[test]
    fn u1_and_cu1_aliases() {
        let c = parse("qreg q[2]; u1(0.5) q[0]; cu1(0.25) q[0],q[1];").unwrap();
        assert_eq!(c.gates(), &[Gate::Rz(0, 0.5), Gate::Cphase(0, 1, 0.25)]);
    }

    #[test]
    fn u2_u3_decompose_to_zyz() {
        let c = parse("qreg q[1]; u3(0.3,0.2,0.1) q[0]; u2(pi,0) q[0];").unwrap();
        assert_eq!(
            c.gates(),
            &[
                Gate::Rz(0, 0.1),
                Gate::Ry(0, 0.3),
                Gate::Rz(0, 0.2),
                Gate::Rz(0, 0.0),
                Gate::Ry(0, PI / 2.0),
                Gate::Rz(0, PI),
            ]
        );
    }

    #[test]
    fn u3_wrong_arity_rejected() {
        assert!(parse("qreg q[1]; u3(0.1,0.2) q[0];").is_err());
        assert!(parse("qreg q[2]; u3(0.1,0.2,0.3) q[0],q[1];").is_err());
    }

    #[test]
    fn error_on_unknown_gate() {
        let e = parse("qreg q[1]; frobnicate q[0];").unwrap_err();
        assert!(e.message.contains("unknown"));
    }

    #[test]
    fn error_on_missing_qreg() {
        assert!(parse("h q[0];").is_err());
        assert!(parse("OPENQASM 2.0;").is_err());
    }

    #[test]
    fn error_on_out_of_range_operand() {
        let e = parse("qreg q[1]; cx q[0],q[3];").unwrap_err();
        assert!(e.message.contains("out of range"));
    }

    #[test]
    fn error_on_bad_angle() {
        assert!(parse("qreg q[1]; rz(abc) q[0];").is_err());
        assert!(parse("qreg q[1]; rz(1/0) q[0];").is_err());
    }

    #[test]
    fn error_on_second_qreg() {
        assert!(parse("qreg q[1]; qreg r[2];").is_err());
    }
}
