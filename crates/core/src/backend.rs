//! The compilation-target abstraction: one trait per routing physics.
//!
//! The paper's pipeline (and everything this workspace built on top of
//! it) assumes *fixed-coupler* hardware: connectivity is a static graph
//! and two-qubit gates between distant qubits are satisfied by inserting
//! SWAP chains. A [`Backend`] generalises that contract so the serving
//! tier, caches and benches can target hardware with a different
//! physics — today the movement-based neutral-atom arrays in
//! `qcs-dpqa`, where qubits are physically relocated by AOD row/column
//! shifts instead of SWAPped.
//!
//! The trait deliberately keeps the fixed-coupler *verification view*:
//! every backend exposes an inner [`Device`] that independent checking
//! ([`crate::verify`]) and health degradation run against, and `map`
//! returns the same [`MapOutcome`]/[`LadderError`] pair the fallback
//! ladder produces, so callers cannot tell (and need not care) which
//! physics served them beyond the report's counters.

use std::sync::Arc;

use qcs_circuit::circuit::Circuit;
use qcs_topology::device::{Device, DeviceError};
use qcs_topology::health::DeviceHealth;

use crate::config::MapperConfig;
use crate::ladder::{FallbackLadder, LadderError};
use crate::mapper::MapOutcome;

/// A compilation target: something a circuit can be mapped onto.
///
/// Implementations own their full compile pipeline (placement, routing
/// or movement scheduling, verification, fallback) and report through
/// the standard [`MapOutcome`]. The serving tier holds backends as
/// `Arc<dyn Backend>` and keys its caches on [`Backend::id`], so the id
/// must be deterministic for a given spec and distinct across specs
/// (degraded variants included).
pub trait Backend: Send + Sync {
    /// Stable identity used in cache keys and reports. For coupled
    /// devices this is the device name (degraded variants carry their
    /// health-digest suffix, e.g. `surface17@1a2b3c4d`).
    fn id(&self) -> &str;

    /// Number of physical qubit slots (sites) on the target.
    fn qubit_count(&self) -> usize;

    /// The fixed-coupler view of the target, used for independent
    /// verification, health overlays and topology introspection. For a
    /// movement backend this is the interaction-radius graph over its
    /// sites, not a physical coupler map.
    fn device(&self) -> &Device;

    /// Compiles `circuit` for this target with the requested strategy
    /// pipeline, falling back per the backend's own ladder.
    ///
    /// # Errors
    ///
    /// [`LadderError`] when every rung failed or the job is
    /// unsatisfiable on the target.
    fn map(&self, circuit: &Circuit, config: &MapperConfig) -> Result<MapOutcome, LadderError>;

    /// Compiles `circuit` with *exactly* the given pipeline — no
    /// internal fallback chain — verification on. The racing
    /// portfolio ([`crate::portfolio`]) runs its lanes through this
    /// so a failing lane is genuinely discarded (and another lane's
    /// result kept) instead of being silently demoted inside the
    /// backend; the default forwards to [`Backend::map`] for
    /// backends whose physics has no per-strategy ladder to bypass.
    ///
    /// # Errors
    ///
    /// [`LadderError`] when the pipeline failed, did not verify, or
    /// found the job unsatisfiable on the target.
    fn map_single(
        &self,
        circuit: &Circuit,
        config: &MapperConfig,
    ) -> Result<MapOutcome, LadderError> {
        self.map(circuit, config)
    }

    /// A new backend of the same physics with the health overlay
    /// applied (qubit/coupler outages). The returned backend's
    /// [`id`](Backend::id) reflects the overlay so cache keys stay
    /// distinct.
    ///
    /// # Errors
    ///
    /// [`DeviceError`] when the overlay leaves the target unusable
    /// (e.g. the surviving interaction graph is disconnected).
    fn degrade(&self, health: &DeviceHealth) -> Result<Arc<dyn Backend>, DeviceError>;
}

/// The classic fixed-coupler backend: SWAP routing over a static
/// coupling graph, served through [`FallbackLadder::standard`].
///
/// This is a thin adapter — it is exactly the pre-trait daemon path
/// (place → route → schedule → verify with fallback), packaged behind
/// [`Backend`] so it composes with movement backends in the catalog.
///
/// # Examples
///
/// ```
/// use qcs_core::backend::{Backend, CoupledBackend};
/// use qcs_core::config::MapperConfig;
/// use qcs_topology::surface::surface7;
///
/// let backend = CoupledBackend::new(surface7());
/// assert_eq!(backend.id(), "surface-7");
/// let ghz = qcs_workloads::ghz::ghz_chain(5)?;
/// let outcome = backend.map(&ghz, &MapperConfig::default())?;
/// assert!(outcome.report.verified);
/// assert_eq!(outcome.report.moves_inserted, 0); // SWAPs, not moves
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct CoupledBackend {
    device: Device,
}

impl CoupledBackend {
    /// Wraps a fixed-coupler device as a backend.
    pub fn new(device: Device) -> Self {
        CoupledBackend { device }
    }
}

impl Backend for CoupledBackend {
    fn id(&self) -> &str {
        self.device.name()
    }

    fn qubit_count(&self) -> usize {
        self.device.qubit_count()
    }

    fn device(&self) -> &Device {
        &self.device
    }

    fn map(&self, circuit: &Circuit, config: &MapperConfig) -> Result<MapOutcome, LadderError> {
        if crate::portfolio::is_auto(config) {
            let backend: Arc<dyn Backend> = Arc::new(self.clone());
            return crate::portfolio::Portfolio::default()
                .map(circuit, &backend, None)
                .map(|(outcome, _)| outcome);
        }
        FallbackLadder::standard(config.clone()).map(circuit, &self.device)
    }

    fn map_single(
        &self,
        circuit: &Circuit,
        config: &MapperConfig,
    ) -> Result<MapOutcome, LadderError> {
        FallbackLadder::new(vec![config.clone()]).map(circuit, &self.device)
    }

    fn degrade(&self, health: &DeviceHealth) -> Result<Arc<dyn Backend>, DeviceError> {
        Ok(Arc::new(CoupledBackend::new(self.device.degrade(health)?)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcs_topology::surface::surface17;

    #[test]
    fn coupled_backend_mirrors_device_identity() {
        let backend = CoupledBackend::new(surface17());
        assert_eq!(backend.id(), "surface-17");
        assert_eq!(backend.qubit_count(), 17);
        assert_eq!(backend.device().name(), "surface-17");
    }

    #[test]
    fn coupled_backend_maps_like_the_ladder() {
        let circuit = qcs_workloads::ghz::ghz_chain(5).unwrap();
        let backend = CoupledBackend::new(surface17());
        let via_backend = backend.map(&circuit, &MapperConfig::default()).unwrap();
        let via_ladder = FallbackLadder::standard(MapperConfig::default())
            .map(&circuit, &surface17())
            .unwrap();
        assert_eq!(
            via_backend.report.swaps_inserted,
            via_ladder.report.swaps_inserted
        );
        assert_eq!(via_backend.report.moves_inserted, 0);
        assert_eq!(via_backend.report.move_stages, 0);
        assert!(via_backend.report.verified);
    }

    #[test]
    fn degrade_renames_the_backend() {
        let backend = CoupledBackend::new(surface17());
        let health = DeviceHealth::random(backend.device().coupling(), 0.1, 0.1, 7);
        let degraded = backend.degrade(&health).unwrap();
        assert!(
            degraded.id().starts_with("surface-17@"),
            "{}",
            degraded.id()
        );
        assert_eq!(degraded.qubit_count(), 17);
    }
}
