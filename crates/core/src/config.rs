//! Serializable mapper configuration.
//!
//! The compilation service (and any other caller that receives its
//! pipeline choice over the wire) describes a [`crate::mapper::Mapper`]
//! as a pair of strategy names. [`MapperConfig`] is that description:
//! it round-trips through JSON via `impl_json_object!`, validates the
//! names, and builds the boxed strategy pipeline.
//!
//! The names accepted are exactly the `name()` strings the placers and
//! routers report, so a `MapReport` can be fed back in as a config.
//!
//! # Examples
//!
//! ```
//! use qcs_core::config::MapperConfig;
//!
//! let config = MapperConfig::new("trivial", "lookahead");
//! let mapper = config.build()?;
//! assert_eq!(mapper.placer_name(), "trivial");
//! assert_eq!(mapper.router_name(), "lookahead");
//! # Ok::<(), qcs_core::config::ConfigError>(())
//! ```

use crate::mapper::Mapper;
use crate::place::{GraphSimilarityPlacer, Placer, RandomPlacer, TrivialPlacer};
use crate::place_sabre::SabrePlacer;
use crate::place_subgraph::SubgraphPlacer;
use crate::route::{BidirectionalRouter, LookaheadRouter, NoiseAwareRouter, Router, TrivialRouter};

/// Error raised when a configuration names an unknown strategy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// The placer name is not one of [`MapperConfig::PLACERS`].
    UnknownPlacer(String),
    /// The router name is not one of [`MapperConfig::ROUTERS`].
    UnknownRouter(String),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::UnknownPlacer(name) => write!(
                f,
                "unknown placer '{name}' (expected one of: {})",
                MapperConfig::PLACERS.join(", ")
            ),
            ConfigError::UnknownRouter(name) => write!(
                f,
                "unknown router '{name}' (expected one of: {})",
                MapperConfig::ROUTERS.join(", ")
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// A mapper pipeline described by strategy names — the wire form of a
/// [`Mapper`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapperConfig {
    /// Placement strategy name.
    pub placer: String,
    /// Routing strategy name.
    pub router: String,
}

qcs_json::impl_json_object!(MapperConfig { placer, router });

impl Default for MapperConfig {
    /// The paper's target pipeline: algorithm-driven placement with
    /// look-ahead routing.
    fn default() -> Self {
        MapperConfig::new("graph-similarity", "lookahead")
    }
}

impl MapperConfig {
    /// Accepted placer names.
    pub const PLACERS: &'static [&'static str] =
        &["trivial", "random", "graph-similarity", "subgraph", "sabre"];
    /// Accepted router names.
    pub const ROUTERS: &'static [&'static str] =
        &["trivial", "lookahead", "bidirectional", "noise-aware"];

    /// Builds a config from strategy names (validated by [`build`]).
    ///
    /// [`build`]: MapperConfig::build
    pub fn new(placer: impl Into<String>, router: impl Into<String>) -> Self {
        MapperConfig {
            placer: placer.into(),
            router: router.into(),
        }
    }

    /// Instantiates the described pipeline.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] when either strategy name is unknown.
    pub fn build(&self) -> Result<Mapper, ConfigError> {
        Ok(Mapper::new(
            build_placer(&self.placer)?,
            build_router(&self.router)?,
        ))
    }
}

/// Instantiates a placement strategy by its advertised name. Backends
/// that replace the routing stage with their own physics (movement
/// scheduling in `qcs-dpqa`) reuse the placer catalogue through this.
///
/// # Errors
///
/// [`ConfigError::UnknownPlacer`] when the name is not one of
/// [`MapperConfig::PLACERS`].
pub fn build_placer(name: &str) -> Result<Box<dyn Placer>, ConfigError> {
    Ok(match name {
        "trivial" => Box::new(TrivialPlacer),
        // Fixed seed: a config names a deterministic pipeline.
        "random" => Box::new(RandomPlacer { seed: 0 }),
        "graph-similarity" => Box::new(GraphSimilarityPlacer),
        "subgraph" => Box::new(SubgraphPlacer::default()),
        "sabre" => Box::new(SabrePlacer::default()),
        other => return Err(ConfigError::UnknownPlacer(other.to_string())),
    })
}

/// Instantiates a routing strategy by its advertised name.
///
/// # Errors
///
/// [`ConfigError::UnknownRouter`] when the name is not one of
/// [`MapperConfig::ROUTERS`].
pub fn build_router(name: &str) -> Result<Box<dyn Router>, ConfigError> {
    Ok(match name {
        "trivial" => Box::new(TrivialRouter),
        "lookahead" => Box::new(LookaheadRouter::default()),
        "bidirectional" => Box::new(BidirectionalRouter),
        "noise-aware" => Box::new(NoiseAwareRouter),
        other => return Err(ConfigError::UnknownRouter(other.to_string())),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcs_json::{FromJson, ToJson};

    #[test]
    fn every_advertised_strategy_builds() {
        for placer in MapperConfig::PLACERS {
            for router in MapperConfig::ROUTERS {
                let m = MapperConfig::new(*placer, *router).build().unwrap();
                assert_eq!(m.placer_name(), *placer);
                assert_eq!(m.router_name(), *router);
            }
        }
    }

    #[test]
    fn unknown_names_are_rejected() {
        assert_eq!(
            MapperConfig::new("bogus", "trivial").build().unwrap_err(),
            ConfigError::UnknownPlacer("bogus".to_string())
        );
        assert_eq!(
            MapperConfig::new("trivial", "bogus").build().unwrap_err(),
            ConfigError::UnknownRouter("bogus".to_string())
        );
    }

    #[test]
    fn json_round_trip() {
        let config = MapperConfig::default();
        let back = MapperConfig::from_json(&config.to_json()).unwrap();
        assert_eq!(back, config);
    }

    #[test]
    fn built_mapper_matches_preset_output() {
        let circuit = qcs_workloads::qft::qft(5).unwrap();
        let device = qcs_topology::surface::surface17();
        let from_config = MapperConfig::new("trivial", "trivial")
            .build()
            .unwrap()
            .map(&circuit, &device)
            .unwrap();
        let preset = Mapper::trivial().map(&circuit, &device).unwrap();
        // Timing differs run to run; everything else must match.
        let mut a = from_config.report;
        let mut b = preset.report;
        a.timing = crate::mapper::StageTiming::ZERO;
        b.timing = crate::mapper::StageTiming::ZERO;
        assert_eq!(a, b);
    }

    #[test]
    fn error_messages_list_choices() {
        let msg = ConfigError::UnknownRouter("x".into()).to_string();
        assert!(msg.contains("lookahead"));
        assert!(msg.contains("noise-aware"));
    }
}
