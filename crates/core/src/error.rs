//! Structured error taxonomy for the mapping pipeline.
//!
//! Degraded devices (see [`qcs_topology::health`]) introduce a failure
//! mode the original pipeline could not express: the circuit is fine,
//! the device is fine, but the *healthy part* of the device cannot host
//! the circuit. [`UnsatisfiableReason`] enumerates exactly why, and
//! every pipeline stage surfaces it through its own error type
//! (`PlaceError::Unsatisfiable`, `RouteError::Unsatisfiable`), which the
//! top-level [`MapError::Unsatisfiable`] folds into a single structured
//! variant that servers can report to clients without string matching.
//!
//! [`MapError::Unsatisfiable`]: crate::mapper::MapError::Unsatisfiable

/// Why a circuit cannot be hosted on the (possibly degraded) device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnsatisfiableReason {
    /// Fewer in-service qubits than the circuit needs.
    NotEnoughActiveQubits {
        /// Qubits the circuit needs.
        needed: usize,
        /// In-service qubits on the device.
        active: usize,
    },
    /// Enough qubits survive, but no single connected healthy region is
    /// large enough to host the circuit (routing across regions is
    /// impossible).
    NoRegionLargeEnough {
        /// Qubits the circuit needs.
        needed: usize,
        /// Size of the largest connected healthy region.
        largest: usize,
    },
    /// The initial layout occupies an out-of-service qubit.
    DisabledQubitInLayout {
        /// The virtual qubit involved.
        virt: usize,
        /// The disabled physical qubit it was assigned to.
        phys: usize,
    },
    /// Two interacting qubits were placed in different healthy regions:
    /// no SWAP chain can ever bring them together.
    NoHealthyPath {
        /// Physical qubit of the first operand.
        from: usize,
        /// Physical qubit of the second operand.
        to: usize,
    },
}

impl std::fmt::Display for UnsatisfiableReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UnsatisfiableReason::NotEnoughActiveQubits { needed, active } => write!(
                f,
                "circuit needs {needed} qubits but only {active} are in service"
            ),
            UnsatisfiableReason::NoRegionLargeEnough { needed, largest } => write!(
                f,
                "circuit needs {needed} connected qubits but the largest healthy region has {largest}"
            ),
            UnsatisfiableReason::DisabledQubitInLayout { virt, phys } => write!(
                f,
                "layout places virtual qubit {virt} on out-of-service physical qubit {phys}"
            ),
            UnsatisfiableReason::NoHealthyPath { from, to } => write!(
                f,
                "no healthy path between physical qubits {from} and {to}"
            ),
        }
    }
}

impl std::error::Error for UnsatisfiableReason {}
