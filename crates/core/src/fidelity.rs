//! The analytic fidelity model of Fig. 3.
//!
//! "Circuit fidelity is calculated as product of fidelities for all one-
//! and two-qubit gates in the circuit, based on the error-rate values
//! taken from \[32\]." This module implements exactly that estimator on a
//! device's *calibrated* per-element fidelities, plus an optional
//! decoherence factor driven by the schedule makespan.

use qcs_circuit::circuit::Circuit;
use qcs_circuit::gate::Gate;
use qcs_topology::device::Device;

use crate::schedule::Schedule;

/// Estimator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FidelityModel {
    /// Include measurement fidelities in the product.
    pub include_measurement: bool,
    /// Multiply by `exp(−idle_time / T2)` per qubit (needs a schedule).
    pub include_decoherence: bool,
}

impl FidelityModel {
    /// The fidelity contribution of one gate on `device`, with operands
    /// interpreted as **physical** qubits.
    ///
    /// * single-qubit gate → per-qubit calibrated fidelity;
    /// * two-qubit gate → per-coupler calibrated fidelity (device-average
    ///   two-qubit fidelity when the operands are not coupled, which only
    ///   happens for *unmapped* circuits);
    /// * SWAP → cubed coupler fidelity (3 native two-qubit gates);
    /// * Toffoli → modelled as its standard decomposition: 6 two-qubit +
    ///   9 single-qubit gates;
    /// * barrier → 1; measurement → per-qubit readout fidelity when
    ///   enabled.
    pub fn gate_fidelity(&self, gate: &Gate, device: &Device) -> f64 {
        let cal = device.calibration();
        let two_qubit = |a: usize, b: usize| {
            cal.two_qubit_fidelity(a, b)
                .unwrap_or(cal.averages.two_qubit)
        };
        match *gate {
            Gate::Barrier(_) => 1.0,
            Gate::Measure(q) => {
                if self.include_measurement {
                    cal.readout_fidelity(q)
                } else {
                    1.0
                }
            }
            Gate::Swap(a, b) => two_qubit(a, b).powi(3),
            Gate::Cnot(a, b) | Gate::Cz(a, b) | Gate::Cphase(a, b, _) => two_qubit(a, b),
            Gate::Toffoli(a, b, t) => {
                let pairs = two_qubit(a, t) * two_qubit(b, t) * two_qubit(a, b);
                pairs.powi(2)
                    * cal.single_qubit_fidelity(a).powi(3)
                    * cal.single_qubit_fidelity(b).powi(3)
                    * cal.single_qubit_fidelity(t).powi(3)
            }
            _ => {
                let q = gate.qubits()[0];
                cal.single_qubit_fidelity(q)
            }
        }
    }

    /// Estimated fidelity of running `circuit` (physical operands) on
    /// `device`: the product of per-gate fidelities.
    pub fn circuit_fidelity(&self, circuit: &Circuit, device: &Device) -> f64 {
        circuit
            .iter()
            .map(|g| self.gate_fidelity(g, device))
            .product()
    }

    /// As [`FidelityModel::circuit_fidelity`], additionally weighted by
    /// decoherence over each qubit's idle time when
    /// `include_decoherence` is set.
    pub fn circuit_fidelity_scheduled(
        &self,
        circuit: &Circuit,
        device: &Device,
        schedule: &Schedule,
    ) -> f64 {
        let base = self.circuit_fidelity(circuit, device);
        if !self.include_decoherence {
            return base;
        }
        let t2 = device.calibration().coherence.t2_ns.max(1.0);
        let idle = schedule.total_idle_ns(circuit.qubit_count());
        base * (-idle / t2).exp()
    }
}

/// Convenience: the paper's Fig. 3 estimator (gates only).
pub fn estimate_fidelity(circuit: &Circuit, device: &Device) -> f64 {
    FidelityModel::default().circuit_fidelity(circuit, device)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{schedule_asap, ControlGroups};
    use qcs_topology::error::GateDurations;
    use qcs_topology::lattice::line_device;

    #[test]
    fn product_of_gate_fidelities() {
        let dev = line_device(3); // defaults: 1q 0.999, 2q 0.99
        let mut c = Circuit::new(3);
        c.h(0).unwrap().cnot(0, 1).unwrap().cnot(1, 2).unwrap();
        let f = estimate_fidelity(&c, &dev);
        let expect = 0.999 * 0.99 * 0.99;
        assert!((f - expect).abs() < 1e-12);
    }

    #[test]
    fn swap_counts_as_three_gates() {
        let dev = line_device(2);
        let mut c = Circuit::new(2);
        c.swap(0, 1).unwrap();
        let f = estimate_fidelity(&c, &dev);
        assert!((f - 0.99f64.powi(3)).abs() < 1e-12);
    }

    #[test]
    fn measurement_toggle() {
        let dev = line_device(1);
        let mut c = Circuit::new(1);
        c.measure(0).unwrap();
        assert_eq!(estimate_fidelity(&c, &dev), 1.0);
        let with = FidelityModel {
            include_measurement: true,
            include_decoherence: false,
        };
        assert!((with.circuit_fidelity(&c, &dev) - 0.995).abs() < 1e-12);
    }

    #[test]
    fn monotone_in_gate_count() {
        let dev = line_device(4);
        let mut short = Circuit::new(4);
        short.cnot(0, 1).unwrap();
        let mut long = short.clone();
        long.cnot(1, 2).unwrap().cnot(2, 3).unwrap();
        assert!(estimate_fidelity(&long, &dev) < estimate_fidelity(&short, &dev));
    }

    #[test]
    fn per_edge_calibration_matters() {
        let mut dev = line_device(3);
        dev.calibration_mut().set_two_qubit_fidelity(0, 1, 0.5);
        let mut on_bad = Circuit::new(3);
        on_bad.cnot(0, 1).unwrap();
        let mut on_good = Circuit::new(3);
        on_good.cnot(1, 2).unwrap();
        assert!(estimate_fidelity(&on_bad, &dev) < estimate_fidelity(&on_good, &dev));
    }

    #[test]
    fn toffoli_costs_its_decomposition() {
        let dev = line_device(3);
        let mut c = Circuit::new(3);
        c.toffoli(0, 1, 2).unwrap();
        let f = estimate_fidelity(&c, &dev);
        let expect = (0.99f64.powi(3)).powi(2) * 0.999f64.powi(9);
        assert!((f - expect).abs() < 1e-12);
        assert!(f < 0.99f64.powi(3), "toffoli worse than a swap");
    }

    #[test]
    fn decoherence_penalizes_idle_schedules() {
        let dev = line_device(3);
        // Qubit 2 idles while 0 and 1 run a long chain.
        let mut c = Circuit::new(3);
        c.h(2).unwrap();
        for _ in 0..20 {
            c.cnot(0, 1).unwrap();
        }
        c.cnot(1, 2).unwrap();
        let sched = schedule_asap(
            &c,
            &GateDurations::default(),
            &ControlGroups::unconstrained(),
        );
        let plain = FidelityModel::default();
        let decoh = FidelityModel {
            include_measurement: false,
            include_decoherence: true,
        };
        let f_plain = plain.circuit_fidelity_scheduled(&c, &dev, &sched);
        let f_decoh = decoh.circuit_fidelity_scheduled(&c, &dev, &sched);
        assert!(f_decoh < f_plain);
        assert_eq!(f_plain, plain.circuit_fidelity(&c, &dev));
    }

    #[test]
    fn barrier_free() {
        let dev = line_device(2);
        let mut c = Circuit::new(2);
        c.barrier_all();
        assert_eq!(estimate_fidelity(&c, &dev), 1.0);
    }
}
