//! Graceful strategy degradation: the fallback ladder.
//!
//! A single flaky placement or routing strategy should cost a request
//! its *optimality*, never its *answer*. [`FallbackLadder`] wraps an
//! ordered chain of [`MapperConfig`] rungs — typically the requested
//! pipeline, then `sabre`, then `subgraph`, then `trivial` — and runs
//! them in order until one produces a result that also passes
//! independent verification ([`crate::verify`]). A rung is demoted on:
//!
//! * a structured [`MapError`] (including injected failpoint errors),
//! * a **panic** anywhere in that rung's pipeline (caught with
//!   `catch_unwind`; the ladder's data is all freshly owned per rung, so
//!   unwinding cannot leave shared state behind), or
//! * a [`VerifyError`] from post-compilation verification.
//!
//! The one exception is [`MapError::Unsatisfiable`]: that is a property
//! of the (degraded) device, not of the strategy, so the ladder stops
//! immediately rather than burning every rung on an impossible job.
//!
//! The serving rung is recorded in the outcome's report
//! ([`MapReport::fallback_rung`](crate::mapper::MapReport::fallback_rung)
//! = 0 for the requested pipeline), together with whether verification
//! passed, so callers and cached results always name the pipeline that
//! actually produced them.

use std::panic::{catch_unwind, AssertUnwindSafe};

use qcs_circuit::circuit::Circuit;
use qcs_topology::device::Device;

use crate::config::MapperConfig;
use crate::mapper::{MapError, MapOutcome};
use crate::verify::{verify_outcome, VerifyConfig};

/// Why one rung of the ladder was demoted.
#[derive(Debug, Clone, PartialEq)]
pub struct LadderAttempt {
    /// The rung's placer name.
    pub placer: String,
    /// The rung's router name.
    pub router: String,
    /// What went wrong, as a one-line message.
    pub error: String,
}

/// Error raised when every rung of the ladder failed (or the job is
/// unsatisfiable on the device, which no rung can fix).
#[derive(Debug, Clone, PartialEq)]
pub struct LadderError {
    /// Every demoted rung, in ladder order.
    pub attempts: Vec<LadderAttempt>,
    /// True when the ladder stopped early on an unsatisfiable device.
    pub unsatisfiable: bool,
}

impl std::fmt::Display for LadderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.unsatisfiable {
            write!(f, "job unsatisfiable on device: ")?;
        } else {
            write!(f, "all {} ladder rungs failed: ", self.attempts.len())?;
        }
        for (i, attempt) in self.attempts.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(
                f,
                "[{}] {}/{}: {}",
                i, attempt.placer, attempt.router, attempt.error
            )?;
        }
        Ok(())
    }
}

impl std::error::Error for LadderError {}

/// An ordered chain of mapper configurations with optional per-result
/// verification.
///
/// # Examples
///
/// ```
/// use qcs_core::config::MapperConfig;
/// use qcs_core::ladder::FallbackLadder;
/// use qcs_topology::surface::surface7;
///
/// let ladder = FallbackLadder::standard(MapperConfig::default());
/// let qft = qcs_workloads::qft::qft(5)?;
/// let outcome = ladder.map(&qft, &surface7())?;
/// assert_eq!(outcome.report.fallback_rung, 0); // primary rung served
/// assert!(outcome.report.verified);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FallbackLadder {
    rungs: Vec<MapperConfig>,
    verify: Option<VerifyConfig>,
}

impl FallbackLadder {
    /// The default degradation chain after a primary config: SABRE
    /// placement, then subgraph placement, then the trivial pipeline —
    /// strictly decreasing in sophistication, strictly increasing in
    /// robustness. Rungs equal to an earlier one are dropped.
    pub fn standard(primary: MapperConfig) -> Self {
        let mut rungs = vec![
            primary,
            MapperConfig::new("sabre", "lookahead"),
            MapperConfig::new("subgraph", "lookahead"),
            MapperConfig::new("trivial", "trivial"),
        ];
        let mut seen: Vec<MapperConfig> = Vec::new();
        rungs.retain(|r| {
            if seen.contains(r) {
                false
            } else {
                seen.push(r.clone());
                true
            }
        });
        FallbackLadder {
            rungs,
            verify: Some(VerifyConfig::default()),
        }
    }

    /// A ladder with exactly the given rungs (must be non-empty),
    /// verification on with defaults.
    ///
    /// # Panics
    ///
    /// Panics if `rungs` is empty.
    pub fn new(rungs: Vec<MapperConfig>) -> Self {
        assert!(!rungs.is_empty(), "a ladder needs at least one rung");
        FallbackLadder {
            rungs,
            verify: Some(VerifyConfig::default()),
        }
    }

    /// Replaces the verification configuration.
    #[must_use]
    pub fn with_verification(mut self, config: VerifyConfig) -> Self {
        self.verify = Some(config);
        self
    }

    /// Disables post-compilation verification (rungs are then demoted
    /// only on errors and panics).
    #[must_use]
    pub fn without_verification(mut self) -> Self {
        self.verify = None;
        self
    }

    /// The configured rungs, in order.
    pub fn rungs(&self) -> &[MapperConfig] {
        &self.rungs
    }

    /// Maps `circuit` on `device` through the first rung that succeeds
    /// *and* verifies. The returned outcome's report records the serving
    /// rung and verification status.
    ///
    /// # Errors
    ///
    /// [`LadderError`] when every rung failed, a rung found the job
    /// unsatisfiable on the device, or a rung's config is invalid.
    pub fn map(&self, circuit: &Circuit, device: &Device) -> Result<MapOutcome, LadderError> {
        let mut attempts = Vec::new();
        for (rung, config) in self.rungs.iter().enumerate() {
            let demote = |error: String, attempts: &mut Vec<LadderAttempt>| {
                attempts.push(LadderAttempt {
                    placer: config.placer.clone(),
                    router: config.router.clone(),
                    error,
                });
            };
            let mapper = match config.build() {
                Ok(mapper) => mapper,
                Err(e) => {
                    demote(e.to_string(), &mut attempts);
                    continue;
                }
            };
            // Panic isolation per rung: a panicking strategy (bug or
            // armed failpoint) demotes to the next rung. Everything the
            // closure touches is owned by this rung, so the unwind
            // leaves no broken state behind.
            let result = catch_unwind(AssertUnwindSafe(|| mapper.map(circuit, device)));
            let mut outcome = match result {
                Ok(Ok(outcome)) => outcome,
                Ok(Err(MapError::Unsatisfiable(reason))) => {
                    demote(reason.to_string(), &mut attempts);
                    return Err(LadderError {
                        attempts,
                        unsatisfiable: true,
                    });
                }
                Ok(Err(e)) => {
                    demote(e.to_string(), &mut attempts);
                    continue;
                }
                Err(panic) => {
                    demote(
                        format!("panicked: {}", panic_message(panic.as_ref())),
                        &mut attempts,
                    );
                    continue;
                }
            };
            if let Some(verify_config) = &self.verify {
                match verify_outcome(circuit, &outcome, device, verify_config) {
                    Ok(_) => outcome.report.verified = true,
                    Err(e) => {
                        demote(format!("verification failed: {e}"), &mut attempts);
                        continue;
                    }
                }
            }
            outcome.report.fallback_rung = rung;
            return Ok(outcome);
        }
        Err(LadderError {
            attempts,
            unsatisfiable: false,
        })
    }
}

/// Renders a caught panic payload into a one-line message.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcs_topology::surface::surface7;

    fn ghz5() -> Circuit {
        qcs_workloads::ghz::ghz_chain(5).unwrap()
    }

    #[test]
    fn standard_ladder_dedups_rungs() {
        let ladder = FallbackLadder::standard(MapperConfig::new("sabre", "lookahead"));
        assert_eq!(ladder.rungs().len(), 3);
        assert_eq!(ladder.rungs()[0], MapperConfig::new("sabre", "lookahead"));
        let ladder = FallbackLadder::standard(MapperConfig::default());
        assert_eq!(ladder.rungs().len(), 4);
    }

    #[test]
    fn primary_rung_serves_when_healthy() {
        let ladder = FallbackLadder::standard(MapperConfig::default());
        let outcome = ladder.map(&ghz5(), &surface7()).unwrap();
        assert_eq!(outcome.report.fallback_rung, 0);
        assert_eq!(outcome.report.placer, "graph-similarity");
        assert!(outcome.report.verified);
    }

    #[test]
    fn bad_primary_config_demotes_to_next_rung() {
        let ladder = FallbackLadder::new(vec![
            MapperConfig::new("warp", "lookahead"),
            MapperConfig::new("trivial", "trivial"),
        ]);
        let outcome = ladder.map(&ghz5(), &surface7()).unwrap();
        assert_eq!(outcome.report.fallback_rung, 1);
        assert_eq!(outcome.report.placer, "trivial");
    }

    #[test]
    fn exhausted_ladder_reports_every_attempt() {
        let ladder = FallbackLadder::new(vec![
            MapperConfig::new("warp", "lookahead"),
            MapperConfig::new("trivial", "phase-conduit"),
        ]);
        let err = ladder.map(&ghz5(), &surface7()).unwrap_err();
        assert!(!err.unsatisfiable);
        assert_eq!(err.attempts.len(), 2);
        let message = err.to_string();
        assert!(message.contains("warp"), "{message}");
        assert!(message.contains("phase-conduit"), "{message}");
    }

    #[test]
    fn too_wide_circuit_is_unsatisfiable_like_failure_not_a_panic() {
        // 9 qubits on surface-7: every rung's placer errors. The ladder
        // must exhaust cleanly (width is a Place error, not
        // Unsatisfiable, so all rungs are tried).
        let wide = Circuit::new(9);
        let ladder = FallbackLadder::standard(MapperConfig::default());
        let err = ladder.map(&wide, &surface7()).unwrap_err();
        assert_eq!(err.attempts.len(), ladder.rungs().len());
    }
}
