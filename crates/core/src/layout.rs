//! The virtual↔physical qubit assignment evolved during routing.

/// Error raised when constructing an invalid layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayoutError {
    /// A virtual qubit mapped outside the device.
    PhysicalOutOfRange {
        /// Virtual qubit.
        virt: usize,
        /// Offending physical index.
        phys: usize,
        /// Device size.
        device: usize,
    },
    /// Two virtual qubits mapped to the same physical qubit.
    Collision {
        /// The physical qubit claimed twice.
        phys: usize,
    },
    /// More virtual than physical qubits.
    TooManyVirtual {
        /// Virtual count.
        virt: usize,
        /// Physical count.
        phys: usize,
    },
}

impl std::fmt::Display for LayoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LayoutError::PhysicalOutOfRange { virt, phys, device } => write!(
                f,
                "virtual qubit {virt} mapped to physical {phys}, device has {device}"
            ),
            LayoutError::Collision { phys } => {
                write!(f, "two virtual qubits mapped to physical qubit {phys}")
            }
            LayoutError::TooManyVirtual { virt, phys } => {
                write!(f, "{virt} virtual qubits exceed {phys} physical qubits")
            }
        }
    }
}

impl std::error::Error for LayoutError {}

/// A (partial) bijection from virtual qubits `0..v` to physical qubits
/// `0..p` with `v ≤ p`.
///
/// Routing mutates the layout with [`Layout::swap_physical`] every time a
/// SWAP gate is inserted; the initial and final layouts together define
/// the permutation contract that `qcs-sim`'s `mapped_equivalent` verifies.
///
/// # Examples
///
/// ```
/// use qcs_core::Layout;
///
/// let mut l = Layout::identity(2, 4);
/// assert_eq!(l.phys_of(1), 1);
/// l.swap_physical(1, 3); // SWAP inserted on couplers (1, 3)
/// assert_eq!(l.phys_of(1), 3);
/// assert_eq!(l.virt_at(1), None);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    virt_to_phys: Vec<usize>,
    phys_to_virt: Vec<Option<usize>>,
}

impl Layout {
    /// The identity layout: virtual `i` on physical `i`.
    ///
    /// # Panics
    ///
    /// Panics if `virtual_count > physical_count`.
    pub fn identity(virtual_count: usize, physical_count: usize) -> Self {
        assert!(
            virtual_count <= physical_count,
            "{virtual_count} virtual qubits exceed {physical_count} physical"
        );
        let virt_to_phys: Vec<usize> = (0..virtual_count).collect();
        let mut phys_to_virt = vec![None; physical_count];
        for (v, &p) in virt_to_phys.iter().enumerate() {
            phys_to_virt[p] = Some(v);
        }
        Layout {
            virt_to_phys,
            phys_to_virt,
        }
    }

    /// Builds a layout from an explicit assignment `virt_to_phys[v] = p`.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError`] on out-of-range targets, collisions, or
    /// more virtual than physical qubits.
    pub fn from_assignment(
        virt_to_phys: Vec<usize>,
        physical_count: usize,
    ) -> Result<Self, LayoutError> {
        if virt_to_phys.len() > physical_count {
            return Err(LayoutError::TooManyVirtual {
                virt: virt_to_phys.len(),
                phys: physical_count,
            });
        }
        let mut phys_to_virt = vec![None; physical_count];
        for (v, &p) in virt_to_phys.iter().enumerate() {
            if p >= physical_count {
                return Err(LayoutError::PhysicalOutOfRange {
                    virt: v,
                    phys: p,
                    device: physical_count,
                });
            }
            if phys_to_virt[p].is_some() {
                return Err(LayoutError::Collision { phys: p });
            }
            phys_to_virt[p] = Some(v);
        }
        Ok(Layout {
            virt_to_phys,
            phys_to_virt,
        })
    }

    /// Number of placed virtual qubits.
    pub fn virtual_count(&self) -> usize {
        self.virt_to_phys.len()
    }

    /// Number of physical qubits.
    pub fn physical_count(&self) -> usize {
        self.phys_to_virt.len()
    }

    /// Physical home of virtual qubit `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn phys_of(&self, v: usize) -> usize {
        self.virt_to_phys[v]
    }

    /// Virtual occupant of physical qubit `p` (`None` if free).
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    #[inline]
    pub fn virt_at(&self, p: usize) -> Option<usize> {
        self.phys_to_virt[p]
    }

    /// The full virtual→physical assignment.
    pub fn as_assignment(&self) -> &[usize] {
        &self.virt_to_phys
    }

    /// Exchanges the occupants of two physical qubits (either or both may
    /// be empty) — the layout effect of inserting a SWAP gate.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range or they coincide.
    #[inline]
    pub fn swap_physical(&mut self, p1: usize, p2: usize) {
        assert!(p1 != p2, "cannot swap a physical qubit with itself");
        let v1 = self.phys_to_virt[p1];
        let v2 = self.phys_to_virt[p2];
        self.phys_to_virt[p1] = v2;
        self.phys_to_virt[p2] = v1;
        if let Some(v) = v1 {
            self.virt_to_phys[v] = p2;
        }
        if let Some(v) = v2 {
            self.virt_to_phys[v] = p1;
        }
    }

    /// Verifies internal consistency (both directions agree); used by
    /// property tests.
    pub fn is_consistent(&self) -> bool {
        self.virt_to_phys
            .iter()
            .enumerate()
            .all(|(v, &p)| p < self.phys_to_virt.len() && self.phys_to_virt[p] == Some(v))
            && self
                .phys_to_virt
                .iter()
                .enumerate()
                .all(|(p, occ)| occ.is_none_or(|v| self.virt_to_phys.get(v) == Some(&p)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_layout() {
        let l = Layout::identity(3, 5);
        assert_eq!(l.virtual_count(), 3);
        assert_eq!(l.physical_count(), 5);
        assert_eq!(l.phys_of(2), 2);
        assert_eq!(l.virt_at(2), Some(2));
        assert_eq!(l.virt_at(4), None);
        assert!(l.is_consistent());
    }

    #[test]
    fn from_assignment_valid() {
        let l = Layout::from_assignment(vec![3, 0, 2], 4).unwrap();
        assert_eq!(l.phys_of(0), 3);
        assert_eq!(l.virt_at(3), Some(0));
        assert_eq!(l.virt_at(1), None);
        assert!(l.is_consistent());
    }

    #[test]
    fn from_assignment_rejects_collision() {
        assert_eq!(
            Layout::from_assignment(vec![1, 1], 3).unwrap_err(),
            LayoutError::Collision { phys: 1 }
        );
    }

    #[test]
    fn from_assignment_rejects_out_of_range() {
        assert!(matches!(
            Layout::from_assignment(vec![0, 7], 3).unwrap_err(),
            LayoutError::PhysicalOutOfRange {
                virt: 1,
                phys: 7,
                device: 3
            }
        ));
    }

    #[test]
    fn from_assignment_rejects_overflow() {
        assert!(matches!(
            Layout::from_assignment(vec![0, 1, 2], 2).unwrap_err(),
            LayoutError::TooManyVirtual { virt: 3, phys: 2 }
        ));
    }

    #[test]
    fn swap_occupied_pair() {
        let mut l = Layout::identity(2, 3);
        l.swap_physical(0, 1);
        assert_eq!(l.phys_of(0), 1);
        assert_eq!(l.phys_of(1), 0);
        assert!(l.is_consistent());
    }

    #[test]
    fn swap_with_empty_slot() {
        let mut l = Layout::identity(2, 4);
        l.swap_physical(1, 3);
        assert_eq!(l.phys_of(1), 3);
        assert_eq!(l.virt_at(1), None);
        assert_eq!(l.virt_at(3), Some(1));
        assert!(l.is_consistent());
    }

    #[test]
    fn swap_two_empty_slots() {
        let mut l = Layout::identity(1, 3);
        l.swap_physical(1, 2);
        assert_eq!(l.phys_of(0), 0);
        assert!(l.is_consistent());
    }

    #[test]
    fn swaps_compose_to_permutation() {
        let mut l = Layout::identity(4, 4);
        l.swap_physical(0, 1);
        l.swap_physical(1, 2);
        l.swap_physical(2, 3);
        // Virtual 0 walked to physical 3.
        assert_eq!(l.phys_of(0), 3);
        assert!(l.is_consistent());
    }

    #[test]
    #[should_panic(expected = "with itself")]
    fn swap_same_qubit_panics() {
        let mut l = Layout::identity(2, 2);
        l.swap_physical(1, 1);
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn identity_rejects_too_many_virtual() {
        let _ = Layout::identity(5, 3);
    }
}
