//! Hardware-aware and algorithm-driven quantum circuit mapping.
//!
//! This crate implements the paper's core subject (Sections III–IV): the
//! *mapping process* that accommodates quantum algorithms to
//! resource-constrained quantum devices, and the interaction-graph
//! profiling that makes it algorithm-driven.
//!
//! The four mapping steps of Section III each have a module:
//!
//! 1. **Decomposition** to the primitive gate set — reused from
//!    [`qcs_circuit::decompose`].
//! 2. **Scheduling** to leverage parallelism — [`schedule`] (ASAP/ALAP
//!    with gate durations and shared-control constraints).
//! 3. **Placement** of virtual qubits onto physical qubits — [`place`]
//!    (trivial, random, and the algorithm-driven graph-similarity placer).
//! 4. **Routing** via SWAP insertion — [`route`] (the OpenQL-style
//!    trivial router used in Figs. 3/5, a SABRE-style look-ahead router, a
//!    meet-in-the-middle bidirectional router and a noise-aware router).
//!
//! On top of these sit:
//!
//! * [`backend`] — the compilation-target trait that lets the serving
//!   stack address fixed-coupler devices and movement-based hardware
//!   (`qcs-dpqa`) through one interface;
//! * [`error`] — the structured unsatisfiability taxonomy for degraded
//!   devices (outages can make mapping impossible; see
//!   [`qcs_topology::health`]);
//! * [`layout`] — the virtual↔physical qubit bijection the routers evolve;
//! * [`fidelity`] — the analytic fidelity model of Fig. 3 ("product of
//!   fidelities for all one- and two-qubit gates"), with optional
//!   decoherence weighting;
//! * [`mapper`] — the end-to-end pass pipeline with a mapping report
//!   (gate overhead, depth overhead, fidelity decrease, per-stage
//!   wall-clock timing);
//! * [`config`] — the serializable strategy-name form of a mapper, used
//!   by callers that receive their pipeline choice over the wire;
//! * [`profile`] — interaction-graph metric vectors (Table I), Pearson
//!   correlation pruning and k-means clustering of benchmark circuits;
//! * [`report`] — serializable experiment records for the figure
//!   harnesses;
//! * [`place_subgraph`] — exact subgraph-isomorphism placement (refs
//!   \[41\]/\[42\]) with greedy fallback;
//! * [`place_sabre`] — SABRE-style forward/backward placement refinement;
//! * [`portfolio`] — the metric-driven strategy selector and
//!   deadline-bounded racing engine that put the Section IV analysis
//!   on the serving path.
//!
//! # Examples
//!
//! Map the Fig. 2 circuit onto Surface-7 with the trivial mapper:
//!
//! ```
//! use qcs_circuit::circuit::Circuit;
//! use qcs_core::mapper::Mapper;
//! use qcs_topology::surface::surface7;
//!
//! let mut c = Circuit::new(4);
//! c.cnot(1, 0)?.cnot(1, 2)?.cnot(2, 3)?.cnot(2, 0)?.cnot(1, 2)?;
//! let outcome = Mapper::trivial().map(&c, &surface7())?;
//! assert!(outcome.report.swaps_inserted >= 1); // Fig. 2 needs a SWAP
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod backend;
pub mod config;
pub mod error;
pub mod fidelity;
pub mod ladder;
pub mod layout;
pub mod mapper;
pub mod place;
pub mod place_sabre;
pub mod place_subgraph;
pub mod portfolio;
pub mod profile;
pub mod report;
pub mod route;
pub mod schedule;
pub mod verify;

pub use backend::{Backend, CoupledBackend};
pub use config::MapperConfig;
pub use error::UnsatisfiableReason;
pub use ladder::{FallbackLadder, LadderAttempt, LadderError};
pub use layout::Layout;
pub use mapper::{MapError, MapOutcome, Mapper, StageTiming};
pub use portfolio::{Portfolio, PortfolioMode, PortfolioReport, Selection, Selector};
pub use verify::{verify_outcome, VerifyConfig, VerifyError, VerifyReport};
