//! The end-to-end mapping pipeline and its report.
//!
//! [`Mapper`] chains the four mapping steps of Section III —
//! decomposition, placement, routing, scheduling — and produces a
//! [`MapReport`] with the metrics the paper evaluates mappers by:
//! "gate overhead (number of SWAPs), circuit depth and latency overhead
//! (number of time-stamps) and reliability/fidelity or success rate
//! probability."

use qcs_circuit::circuit::Circuit;
use qcs_circuit::decompose::{decompose_circuit, DecomposeError};
use qcs_topology::device::Device;

use crate::error::UnsatisfiableReason;
use crate::fidelity::FidelityModel;
use crate::place::{GraphSimilarityPlacer, PlaceError, Placer, TrivialPlacer};
use crate::route::{
    LookaheadRouter, NoiseAwareRouter, RouteError, RoutedCircuit, Router, TrivialRouter,
};
use crate::schedule::{schedule_asap, ControlGroups, Schedule};

/// Error raised by the mapping pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum MapError {
    /// Decomposition to the device's primitive set failed.
    Decompose(DecomposeError),
    /// Placement failed.
    Place(PlaceError),
    /// Routing failed.
    Route(RouteError),
    /// The degraded device cannot host this circuit at all — a property
    /// of the outage, not of the chosen strategies. Surfaced as its own
    /// variant (rather than buried in `Place`/`Route`) so callers can
    /// distinguish "retry on a healthier device" from "compiler bug".
    Unsatisfiable(UnsatisfiableReason),
    /// A `qcs-faults` failpoint injected this error (chaos testing).
    Injected(String),
}

impl std::fmt::Display for MapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MapError::Decompose(e) => write!(f, "decomposition failed: {e}"),
            MapError::Place(e) => write!(f, "placement failed: {e}"),
            MapError::Route(e) => write!(f, "routing failed: {e}"),
            MapError::Unsatisfiable(reason) => {
                write!(f, "degraded device cannot host circuit: {reason}")
            }
            MapError::Injected(message) => write!(f, "injected fault: {message}"),
        }
    }
}

impl std::error::Error for MapError {}

impl From<DecomposeError> for MapError {
    fn from(e: DecomposeError) -> Self {
        MapError::Decompose(e)
    }
}
impl From<PlaceError> for MapError {
    fn from(e: PlaceError) -> Self {
        match e {
            PlaceError::Unsatisfiable(reason) => MapError::Unsatisfiable(reason),
            other => MapError::Place(other),
        }
    }
}
impl From<RouteError> for MapError {
    fn from(e: RouteError) -> Self {
        match e {
            RouteError::Unsatisfiable(reason) => MapError::Unsatisfiable(reason),
            other => MapError::Route(other),
        }
    }
}

/// Wall-clock time spent in each pipeline stage of one mapping run, in
/// microseconds.
///
/// The compilation service reads this to attribute request latency per
/// stage in its `stats` histograms. Timing is *measurement*, not circuit
/// content: consumers that require deterministic, reproducible reports
/// (the parallel suite engine, the service's cached responses) normalize
/// it to [`StageTiming::ZERO`] before comparing or serializing results.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StageTiming {
    /// Decomposition to the primitive gate set (both passes).
    pub decompose_micros: f64,
    /// Placement.
    pub place_micros: f64,
    /// Routing.
    pub route_micros: f64,
    /// ASAP scheduling.
    pub schedule_micros: f64,
}

qcs_json::impl_json_object!(StageTiming {
    decompose_micros,
    place_micros,
    route_micros,
    schedule_micros,
});

impl StageTiming {
    /// All-zero timing, the normalized form for deterministic outputs.
    pub const ZERO: StageTiming = StageTiming {
        decompose_micros: 0.0,
        place_micros: 0.0,
        route_micros: 0.0,
        schedule_micros: 0.0,
    };

    /// Total time across all stages.
    pub fn total_micros(&self) -> f64 {
        self.decompose_micros + self.place_micros + self.route_micros + self.schedule_micros
    }
}

/// All figures of merit from one mapping run.
#[derive(Debug, Clone, PartialEq)]
pub struct MapReport {
    /// Source circuit name.
    pub circuit_name: String,
    /// Target device name.
    pub device_name: String,
    /// Placement strategy used.
    pub placer: String,
    /// Routing strategy used.
    pub router: String,
    /// Gate count of the input circuit as given.
    pub input_gates: usize,
    /// Gate count after decomposition to the primitive set, before
    /// routing (the denominator of the overhead percentage).
    pub decomposed_gates: usize,
    /// Two-qubit gate count before routing.
    pub original_two_qubit_gates: usize,
    /// Gate count of the fully-routed circuit in native gates
    /// (SWAPs decomposed).
    pub routed_gates: usize,
    /// Two-qubit gate count after routing (SWAPs decomposed).
    pub routed_two_qubit_gates: usize,
    /// SWAP gates inserted by the router. Movement backends count their
    /// relocation stand-ins here too (each move is replayed as one
    /// permutation SWAP during verification), so SWAP-replay accounting
    /// stays uniform across backends.
    pub swaps_inserted: usize,
    /// Physical qubit relocations performed by a movement backend (AOD
    /// shuttle moves on a neutral-atom array). Always 0 for fixed-coupler
    /// SWAP routing.
    pub moves_inserted: usize,
    /// Parallel gate stages scheduled by a movement backend. Always 0
    /// for fixed-coupler SWAP routing.
    pub move_stages: usize,
    /// `(routed − decomposed) / decomposed × 100` (Figs. 3(b), 5).
    pub gate_overhead_pct: f64,
    /// Depth before routing (decomposed circuit).
    pub depth_before: usize,
    /// Depth after routing (native gates).
    pub depth_after: usize,
    /// `(after − before) / before × 100`.
    pub depth_overhead_pct: f64,
    /// Analytic fidelity of the decomposed circuit (pre-routing).
    pub fidelity_before: f64,
    /// Analytic fidelity of the routed native circuit (Fig. 3(a)).
    pub fidelity_after: f64,
    /// `(before − after) / before × 100` (Fig. 3(c)).
    pub fidelity_decrease_pct: f64,
    /// Scheduled makespan of the routed circuit in nanoseconds.
    pub makespan_ns: f64,
    /// Which fallback-ladder rung produced this result: 0 for the
    /// requested pipeline, 1+ for each degradation step. Always 0 for a
    /// plain [`Mapper::map`] run.
    pub fallback_rung: usize,
    /// Whether independent post-compilation verification
    /// ([`crate::verify::verify_outcome`]) passed on this result. Set by
    /// the fallback ladder; always false for a plain [`Mapper::map`] run.
    pub verified: bool,
    /// Wall-clock time per pipeline stage (zero when normalized for
    /// deterministic output).
    pub timing: StageTiming,
}

qcs_json::impl_json_object!(MapReport {
    circuit_name,
    device_name,
    placer,
    router,
    input_gates,
    decomposed_gates,
    original_two_qubit_gates,
    routed_gates,
    routed_two_qubit_gates,
    swaps_inserted,
    moves_inserted,
    move_stages,
    gate_overhead_pct,
    depth_before,
    depth_after,
    depth_overhead_pct,
    fidelity_before,
    fidelity_after,
    fidelity_decrease_pct,
    makespan_ns,
    fallback_rung,
    verified,
    timing,
});

/// Passes the generic and per-strategy failpoint for one pipeline stage.
/// The per-strategy site name is only built when something is armed, so
/// the common case stays two relaxed atomic loads.
fn stage_failpoint(site: &str, strategy: &str) -> Result<(), MapError> {
    if !qcs_faults::any_armed() {
        return Ok(());
    }
    if let qcs_faults::Hit::Error(message) = qcs_faults::hit(site) {
        return Err(MapError::Injected(message));
    }
    if let qcs_faults::Hit::Error(message) = qcs_faults::hit(&format!("{site}.{strategy}")) {
        return Err(MapError::Injected(message));
    }
    Ok(())
}

/// Everything produced by one mapping run.
#[derive(Debug, Clone, PartialEq)]
pub struct MapOutcome {
    /// The input circuit decomposed to the device's primitive set (still
    /// virtual operands).
    pub decomposed: Circuit,
    /// The routed circuit (physical operands, SWAPs explicit).
    pub routed: RoutedCircuit,
    /// The routed circuit with SWAPs decomposed to native gates.
    pub native: Circuit,
    /// ASAP schedule of the native circuit.
    pub schedule: Schedule,
    /// Figures of merit.
    pub report: MapReport,
}

/// The configurable mapping pipeline.
///
/// # Examples
///
/// ```
/// use qcs_core::mapper::Mapper;
/// use qcs_topology::surface::surface17;
///
/// let qft = qcs_workloads::qft::qft(8)?;
/// let outcome = Mapper::algorithm_driven().map(&qft, &surface17())?;
/// assert!(outcome.report.gate_overhead_pct >= 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Mapper {
    placer: Box<dyn Placer>,
    router: Box<dyn Router>,
    fidelity: FidelityModel,
    controls: ControlGroups,
}

impl std::fmt::Debug for Mapper {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mapper")
            .field("placer", &self.placer.name())
            .field("router", &self.router.name())
            .field("fidelity", &self.fidelity)
            .finish_non_exhaustive()
    }
}

impl Mapper {
    /// Builds a mapper from explicit strategies.
    pub fn new(placer: Box<dyn Placer>, router: Box<dyn Router>) -> Self {
        Mapper {
            placer,
            router,
            fidelity: FidelityModel::default(),
            controls: ControlGroups::unconstrained(),
        }
    }

    /// The OpenQL-style trivial mapper of Figs. 3/5: identity placement +
    /// shortest-path routing.
    pub fn trivial() -> Self {
        Mapper::new(Box::new(TrivialPlacer), Box::new(TrivialRouter))
    }

    /// Hardware-aware baseline: identity placement + SABRE-style
    /// look-ahead routing.
    pub fn lookahead() -> Self {
        Mapper::new(
            Box::new(TrivialPlacer),
            Box::new(LookaheadRouter::default()),
        )
    }

    /// The paper's target: algorithm-driven (interaction-graph) placement
    /// combined with hardware-aware look-ahead routing.
    pub fn algorithm_driven() -> Self {
        Mapper::new(
            Box::new(GraphSimilarityPlacer),
            Box::new(LookaheadRouter::default()),
        )
    }

    /// Noise-aware variant: calibration-weighted SWAP chains.
    pub fn noise_aware() -> Self {
        Mapper::new(Box::new(GraphSimilarityPlacer), Box::new(NoiseAwareRouter))
    }

    /// Exact subgraph-isomorphism placement (greedy fallback) with
    /// look-ahead routing.
    pub fn subgraph() -> Self {
        Mapper::new(
            Box::new(crate::place_subgraph::SubgraphPlacer::default()),
            Box::new(LookaheadRouter::default()),
        )
    }

    /// SABRE-style forward/backward placement refinement with look-ahead
    /// routing.
    pub fn sabre() -> Self {
        Mapper::new(
            Box::new(crate::place_sabre::SabrePlacer::default()),
            Box::new(LookaheadRouter::default()),
        )
    }

    /// Replaces the fidelity model.
    pub fn with_fidelity_model(mut self, model: FidelityModel) -> Self {
        self.fidelity = model;
        self
    }

    /// Adds shared-control scheduling constraints.
    pub fn with_control_groups(mut self, controls: ControlGroups) -> Self {
        self.controls = controls;
        self
    }

    /// The placer's name.
    pub fn placer_name(&self) -> &'static str {
        self.placer.name()
    }

    /// The router's name.
    pub fn router_name(&self) -> &'static str {
        self.router.name()
    }

    /// Runs the full pipeline: decompose → place → route → re-decompose
    /// (SWAPs) → schedule, and assembles the report.
    ///
    /// # Errors
    ///
    /// See [`MapError`].
    pub fn map(&self, circuit: &Circuit, device: &Device) -> Result<MapOutcome, MapError> {
        let micros_since = |start: std::time::Instant| start.elapsed().as_secs_f64() * 1e6;

        let t = std::time::Instant::now();
        let decomposed = decompose_circuit(circuit, device.gate_set())?;
        let mut decompose_micros = micros_since(t);

        let t = std::time::Instant::now();
        // Chaos-test failpoints: panics and delays act inside `hit`,
        // injected errors surface as `MapError::Injected`, triggers are
        // meaningless mid-pipeline and pass through. Each stage has a
        // generic site plus a per-strategy one (`mapper.place.sabre`, …)
        // so chaos harnesses can fail exactly one fallback-ladder rung.
        stage_failpoint("mapper.place", self.placer.name())?;
        let layout = self.placer.place(&decomposed, device)?;
        let place_micros = micros_since(t);

        let t = std::time::Instant::now();
        stage_failpoint("mapper.route", self.router.name())?;
        let routed = self.router.route(&decomposed, device, layout)?;
        let route_micros = micros_since(t);

        let t = std::time::Instant::now();
        let native = decompose_circuit(&routed.circuit, device.gate_set())?;
        decompose_micros += micros_since(t);

        let t = std::time::Instant::now();
        let schedule = schedule_asap(&native, &device.calibration().durations, &self.controls);
        let schedule_micros = micros_since(t);

        let decomposed_gates = decomposed.gate_count();
        let routed_gates = native.gate_count();
        let depth_before = decomposed.depth();
        let depth_after = native.depth();
        let fidelity_before = self.fidelity.circuit_fidelity(&decomposed, device);
        let fidelity_after = self
            .fidelity
            .circuit_fidelity_scheduled(&native, device, &schedule);

        let pct = |before: f64, after: f64| {
            if before > 0.0 {
                (after - before) / before * 100.0
            } else {
                0.0
            }
        };

        let report = MapReport {
            circuit_name: circuit.name().to_string(),
            device_name: device.name().to_string(),
            placer: self.placer.name().to_string(),
            router: self.router.name().to_string(),
            input_gates: circuit.gate_count(),
            decomposed_gates,
            original_two_qubit_gates: decomposed.two_qubit_gate_count(),
            routed_gates,
            routed_two_qubit_gates: native.two_qubit_gate_count(),
            swaps_inserted: routed.swaps_inserted,
            moves_inserted: 0,
            move_stages: 0,
            gate_overhead_pct: pct(decomposed_gates as f64, routed_gates as f64),
            depth_before,
            depth_after,
            depth_overhead_pct: pct(depth_before as f64, depth_after as f64),
            fidelity_before,
            fidelity_after,
            fidelity_decrease_pct: if fidelity_before > 0.0 {
                (fidelity_before - fidelity_after) / fidelity_before * 100.0
            } else {
                0.0
            },
            makespan_ns: schedule.makespan_ns,
            fallback_rung: 0,
            verified: false,
            timing: StageTiming {
                decompose_micros,
                place_micros,
                route_micros,
                schedule_micros,
            },
        };

        Ok(MapOutcome {
            decomposed,
            routed,
            native,
            schedule,
            report,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcs_circuit::gate::GateKind;
    use qcs_topology::lattice::{grid_device, line_device};
    use qcs_topology::surface::surface7;

    fn fig2_circuit() -> Circuit {
        let mut c = Circuit::with_name(4, "fig2");
        c.cnot(1, 0)
            .unwrap()
            .cnot(1, 2)
            .unwrap()
            .cnot(2, 3)
            .unwrap();
        c.cnot(2, 0).unwrap().cnot(1, 2).unwrap();
        c
    }

    #[test]
    fn trivial_mapper_on_fig2() {
        let outcome = Mapper::trivial().map(&fig2_circuit(), &surface7()).unwrap();
        let r = &outcome.report;
        assert_eq!(r.input_gates, 5);
        assert!(r.swaps_inserted >= 1);
        assert!(r.gate_overhead_pct > 0.0);
        assert!(r.fidelity_after < r.fidelity_before);
        assert!(outcome.routed.respects_connectivity(&surface7()));
        // Native circuit must be entirely in the device's gate set.
        assert!(outcome
            .native
            .gates()
            .iter()
            .all(|g| surface7().gate_set().contains(g.kind())));
    }

    #[test]
    fn swaps_become_native_gates() {
        let mut c = Circuit::new(3);
        c.cnot(0, 2).unwrap();
        let dev = line_device(3);
        let outcome = Mapper::trivial().map(&c, &dev).unwrap();
        assert_eq!(outcome.routed.swaps_inserted, 1);
        assert!(outcome
            .native
            .gates()
            .iter()
            .all(|g| g.kind() != GateKind::Swap));
        assert!(outcome.report.routed_two_qubit_gates >= 4); // 1 + 3 per swap
    }

    #[test]
    fn zero_overhead_when_layout_fits() {
        let mut c = Circuit::new(3);
        c.cnot(0, 1).unwrap().cnot(1, 2).unwrap();
        let dev = line_device(3);
        let outcome = Mapper::trivial().map(&c, &dev).unwrap();
        assert_eq!(outcome.report.swaps_inserted, 0);
        assert_eq!(outcome.report.gate_overhead_pct, 0.0);
        assert_eq!(outcome.report.depth_overhead_pct, 0.0);
        assert!((outcome.report.fidelity_before - outcome.report.fidelity_after).abs() < 1e-12);
    }

    #[test]
    fn algorithm_driven_no_worse_than_trivial_on_star() {
        // Star circuit: algorithm-driven placement puts the hub centrally.
        let mut c = Circuit::new(5);
        for q in 1..5 {
            c.cnot(0, q).unwrap();
            c.cnot(0, q).unwrap();
        }
        let dev = grid_device(3, 3);
        let trivial = Mapper::trivial().map(&c, &dev).unwrap();
        let smart = Mapper::algorithm_driven().map(&c, &dev).unwrap();
        assert!(
            smart.report.swaps_inserted <= trivial.report.swaps_inserted,
            "smart {} vs trivial {}",
            smart.report.swaps_inserted,
            trivial.report.swaps_inserted
        );
    }

    #[test]
    fn report_names_filled() {
        let outcome = Mapper::lookahead()
            .map(&fig2_circuit(), &surface7())
            .unwrap();
        assert_eq!(outcome.report.circuit_name, "fig2");
        assert_eq!(outcome.report.device_name, "surface-7");
        assert_eq!(outcome.report.placer, "trivial");
        assert_eq!(outcome.report.router, "lookahead");
        assert!(outcome.report.makespan_ns > 0.0);
    }

    #[test]
    fn too_wide_circuit_errors() {
        let c = Circuit::new(9);
        let err = Mapper::trivial().map(&c, &surface7()).unwrap_err();
        assert!(matches!(err, MapError::Place(_)));
    }

    #[test]
    fn toffoli_is_decomposed_before_routing() {
        let mut c = Circuit::new(3);
        c.toffoli(0, 1, 2).unwrap();
        let dev = line_device(3);
        let outcome = Mapper::trivial().map(&c, &dev).unwrap();
        assert!(outcome.report.decomposed_gates > 10);
        assert!(outcome.routed.respects_connectivity(&dev));
    }

    #[test]
    fn mapper_debug_format() {
        let m = Mapper::noise_aware();
        let s = format!("{m:?}");
        assert!(s.contains("graph-similarity"));
        assert!(s.contains("noise-aware"));
    }

    #[test]
    fn stage_timing_is_measured_and_normalizable() {
        let mut outcome = Mapper::trivial().map(&fig2_circuit(), &surface7()).unwrap();
        let t = outcome.report.timing;
        assert!(t.place_micros >= 0.0 && t.route_micros >= 0.0);
        assert!(t.total_micros() > 0.0, "pipeline takes nonzero time");
        outcome.report.timing = StageTiming::ZERO;
        assert_eq!(outcome.report.timing.total_micros(), 0.0);
    }

    #[test]
    fn control_groups_extend_makespan() {
        let mut c = Circuit::new(4);
        c.h(0).unwrap().h(1).unwrap().h(2).unwrap().h(3).unwrap();
        let dev = line_device(4);
        let free = Mapper::trivial().map(&c, &dev).unwrap();
        let constrained = Mapper::trivial()
            .with_control_groups(ControlGroups::new(vec![vec![0, 1, 2, 3]]))
            .map(&c, &dev)
            .unwrap();
        assert!(constrained.report.makespan_ns > free.report.makespan_ns);
    }
}
