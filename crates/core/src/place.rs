//! Initial placement of virtual qubits onto physical qubits.
//!
//! Mapping step 3 (Section III): "Smartly placing virtual qubits (from
//! the circuit) onto physical qubits (placements on actual chip) such
//! that the … nearest-neighbor two-qubit gate constraint is satisfied as
//! much as possible during circuit execution."
//!
//! Three placers:
//!
//! * [`TrivialPlacer`] — virtual `i` → physical `i`, the placement inside
//!   OpenQL's trivial mapper used for Figs. 3 and 5;
//! * [`RandomPlacer`] — a seeded random assignment (ablation baseline);
//! * [`GraphSimilarityPlacer`] — the *algorithm-driven* placer: walks the
//!   circuit's weighted interaction graph in descending interaction order
//!   and greedily embeds it into the coupling graph, minimizing
//!   weight × distance to already-placed partners.

use qcs_rng::ChaCha8Rng;
use qcs_rng::SeedableRng;

use qcs_circuit::circuit::Circuit;
use qcs_circuit::interaction::interaction_graph;
use qcs_topology::device::Device;

use crate::error::UnsatisfiableReason;
use crate::layout::Layout;

/// Error raised during placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlaceError {
    /// The circuit uses more qubits than the device provides.
    CircuitTooWide {
        /// Circuit width.
        circuit: usize,
        /// Device size.
        device: usize,
    },
    /// The device is large enough on paper, but its degraded state cannot
    /// host the circuit.
    Unsatisfiable(UnsatisfiableReason),
}

impl std::fmt::Display for PlaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlaceError::CircuitTooWide { circuit, device } => {
                write!(f, "circuit needs {circuit} qubits, device has {device}")
            }
            PlaceError::Unsatisfiable(reason) => {
                write!(f, "degraded device cannot host circuit: {reason}")
            }
        }
    }
}

impl std::error::Error for PlaceError {}

/// The largest connected region of in-service qubits, sorted ascending.
/// On a pristine device this is simply every qubit. Ties between
/// equal-sized regions break toward the one containing the
/// lowest-numbered qubit, so the choice is deterministic.
pub(crate) fn largest_active_region(device: &Device) -> Vec<usize> {
    let n = device.qubit_count();
    if device.health().is_empty() {
        return (0..n).collect();
    }
    let mut seen = vec![false; n];
    let mut best: Vec<usize> = Vec::new();
    for start in device.active_qubits() {
        if seen[start] {
            continue;
        }
        let mut component = vec![start];
        seen[start] = true;
        let mut cursor = 0;
        while cursor < component.len() {
            let u = component[cursor];
            cursor += 1;
            for &v in device.neighbors(u) {
                if !seen[v] {
                    seen[v] = true;
                    component.push(v);
                }
            }
        }
        if component.len() > best.len() {
            best = component;
        }
    }
    best.sort_unstable();
    best
}

/// Width check plus degraded-device feasibility: returns the pool of
/// physical qubits placement may use (the whole chip when pristine, the
/// largest healthy region otherwise).
fn placement_pool(circuit: &Circuit, device: &Device) -> Result<Vec<usize>, PlaceError> {
    let needed = circuit.qubit_count();
    if needed > device.qubit_count() {
        return Err(PlaceError::CircuitTooWide {
            circuit: needed,
            device: device.qubit_count(),
        });
    }
    if device.health().is_empty() {
        return Ok((0..device.qubit_count()).collect());
    }
    let active = device.active_qubit_count();
    if needed > active {
        return Err(PlaceError::Unsatisfiable(
            UnsatisfiableReason::NotEnoughActiveQubits { needed, active },
        ));
    }
    let region = largest_active_region(device);
    if needed > region.len() {
        return Err(PlaceError::Unsatisfiable(
            UnsatisfiableReason::NoRegionLargeEnough {
                needed,
                largest: region.len(),
            },
        ));
    }
    Ok(region)
}

/// Strategy for choosing an initial layout.
///
/// `Send + Sync` so a `Mapper` holding a boxed placer can be shared
/// read-only across the worker threads of the parallel suite engine.
pub trait Placer: Send + Sync {
    /// Produces the initial virtual→physical layout for `circuit` on
    /// `device`.
    ///
    /// # Errors
    ///
    /// Returns [`PlaceError::CircuitTooWide`] when the circuit does not
    /// fit the device.
    fn place(&self, circuit: &Circuit, device: &Device) -> Result<Layout, PlaceError>;

    /// Human-readable strategy name (used in reports).
    fn name(&self) -> &'static str;
}

/// Identity placement: virtual qubit `i` starts on physical qubit `i`.
/// On a degraded device, virtual qubit `i` starts on the `i`-th qubit of
/// the largest healthy region instead (which is the identity again when
/// nothing is degraded).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrivialPlacer;

impl Placer for TrivialPlacer {
    fn place(&self, circuit: &Circuit, device: &Device) -> Result<Layout, PlaceError> {
        let mut pool = placement_pool(circuit, device)?;
        pool.truncate(circuit.qubit_count());
        Ok(Layout::from_assignment(pool, device.qubit_count())
            .expect("region prefix is collision-free"))
    }

    fn name(&self) -> &'static str {
        "trivial"
    }
}

/// Seeded uniformly-random placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomPlacer {
    /// RNG seed (deterministic placement per seed).
    pub seed: u64,
}

impl Placer for RandomPlacer {
    fn place(&self, circuit: &Circuit, device: &Device) -> Result<Layout, PlaceError> {
        let mut pool = placement_pool(circuit, device)?;
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        for i in (1..pool.len()).rev() {
            let j = qcs_rng::Rng::gen_range(&mut rng, 0..=i);
            pool.swap(i, j);
        }
        pool.truncate(circuit.qubit_count());
        Ok(Layout::from_assignment(pool, device.qubit_count())
            .expect("shuffled prefix is collision-free"))
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

/// Algorithm-driven placement from the circuit's interaction graph.
///
/// Virtual qubits are visited in descending weighted-interaction order
/// (heaviest interactor first, then BFS-like expansion through the
/// interaction graph); each is assigned the free physical qubit
/// minimizing `Σ weight(v, u) × hop-distance(p, phys(u))` over
/// already-placed partners `u`. The first qubit lands on the physical
/// qubit with the smallest average distance to the rest of the chip
/// (the topological centre).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GraphSimilarityPlacer;

impl GraphSimilarityPlacer {
    /// Total weighted-distance cost of an assignment (the objective the
    /// greedy embedding minimizes).
    fn assignment_cost(ig: &qcs_graph::Graph, device: &Device, assignment: &[usize]) -> f64 {
        ig.edges()
            .map(|(u, v, w)| w * device.distance(assignment[u], assignment[v]) as f64)
            .sum()
    }

    /// Greedy embedding with the anchor qubit pinned to `anchor`,
    /// restricted to the physical qubits in `pool`.
    fn greedy_from_anchor(
        ig: &qcs_graph::Graph,
        order: &[usize],
        device: &Device,
        anchor: usize,
        pool: &[usize],
    ) -> Vec<usize> {
        let n = order.len();
        let m = device.qubit_count();
        let mut assignment = vec![usize::MAX; n];
        let mut free = vec![false; m];
        for &p in pool {
            free[p] = true;
        }
        for (rank, &v) in order.iter().enumerate() {
            if rank == 0 {
                assignment[v] = anchor;
                free[anchor] = false;
                continue;
            }
            let placed_partners: Vec<(usize, f64)> = ig
                .neighbors(v)
                .iter()
                .filter(|&&u| assignment[u] != usize::MAX)
                .map(|&u| (assignment[u], ig.weight(v, u).unwrap_or(0.0)))
                .collect();
            let mut best_p = usize::MAX;
            let mut best_cost = f64::INFINITY;
            for (p, &is_free) in free.iter().enumerate() {
                if !is_free {
                    continue;
                }
                let cost = if placed_partners.is_empty() {
                    // Unconnected qubit: keep it near the anchor.
                    device.distance(p, anchor) as f64
                } else {
                    placed_partners
                        .iter()
                        .map(|&(pp, w)| w * device.distance(p, pp) as f64)
                        .sum()
                };
                if cost < best_cost {
                    best_cost = cost;
                    best_p = p;
                }
            }
            assignment[v] = best_p;
            free[best_p] = false;
        }
        assignment
    }
}

impl Placer for GraphSimilarityPlacer {
    fn place(&self, circuit: &Circuit, device: &Device) -> Result<Layout, PlaceError> {
        let pool = placement_pool(circuit, device)?;
        let n = circuit.qubit_count();
        let m = device.qubit_count();
        let ig = interaction_graph(circuit);

        // Visit order: repeatedly pick the unvisited virtual qubit with
        // the largest total interaction weight to visited qubits (or
        // overall weighted degree when nothing is placed yet).
        let mut order: Vec<usize> = Vec::with_capacity(n);
        let mut visited = vec![false; n];
        for _ in 0..n {
            let mut best: Option<(f64, f64, usize)> = None;
            for v in 0..n {
                if visited[v] {
                    continue;
                }
                let to_visited: f64 = ig
                    .neighbors(v)
                    .iter()
                    .filter(|&&u| visited[u])
                    .map(|&u| ig.weight(v, u).unwrap_or(0.0))
                    .sum();
                let total = ig.weighted_degree(v);
                // Sort key: anchored weight first, total weight second,
                // lowest index breaks ties deterministically.
                let key = (to_visited, total, v);
                let better = match best {
                    None => true,
                    Some((bw, bt, bv)) => {
                        key.0 > bw || (key.0 == bw && (key.1 > bt || (key.1 == bt && v < bv)))
                    }
                };
                if better {
                    best = Some(key);
                }
            }
            let (_, _, v) = best.expect("some qubit remains");
            visited[v] = true;
            order.push(v);
        }

        if n == 0 {
            return Ok(Layout::identity(0, m));
        }

        // Try every physical anchor for the heaviest qubit and keep the
        // cheapest embedding: greedy placement is sensitive to where the
        // seed lands (a chain anchored mid-line runs into the wall).
        let mut best_assignment: Option<Vec<usize>> = None;
        let mut best_cost = f64::INFINITY;
        for &anchor in &pool {
            let assignment = Self::greedy_from_anchor(&ig, &order, device, anchor, &pool);
            let cost = Self::assignment_cost(&ig, device, &assignment);
            if cost < best_cost {
                best_cost = cost;
                best_assignment = Some(assignment);
            }
        }
        let assignment = best_assignment.expect("device has at least one qubit");

        Ok(Layout::from_assignment(assignment, m).expect("greedy assignment is collision-free"))
    }

    fn name(&self) -> &'static str {
        "graph-similarity"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcs_topology::lattice::{grid_device, line_device};
    use qcs_topology::surface::surface7;

    fn line_circuit(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        for q in 1..n {
            c.cnot(q - 1, q).unwrap();
        }
        c
    }

    #[test]
    fn trivial_is_identity() {
        let c = line_circuit(4);
        let dev = surface7();
        let l = TrivialPlacer.place(&c, &dev).unwrap();
        assert_eq!(l.as_assignment(), &[0, 1, 2, 3]);
    }

    #[test]
    fn width_check() {
        let c = line_circuit(9);
        let dev = surface7();
        assert_eq!(
            TrivialPlacer.place(&c, &dev).unwrap_err(),
            PlaceError::CircuitTooWide {
                circuit: 9,
                device: 7
            }
        );
        assert!(RandomPlacer { seed: 0 }.place(&c, &dev).is_err());
        assert!(GraphSimilarityPlacer.place(&c, &dev).is_err());
    }

    #[test]
    fn random_is_valid_and_deterministic() {
        let c = line_circuit(5);
        let dev = grid_device(3, 3);
        let a = RandomPlacer { seed: 9 }.place(&c, &dev).unwrap();
        let b = RandomPlacer { seed: 9 }.place(&c, &dev).unwrap();
        assert_eq!(a, b);
        assert!(a.is_consistent());
        let other = RandomPlacer { seed: 10 }.place(&c, &dev).unwrap();
        // Overwhelmingly likely to differ on a 9-choose-5 space.
        assert_ne!(a, other);
    }

    #[test]
    fn graph_similarity_places_chain_adjacently() {
        // A chain circuit on a line device must embed with every
        // interacting pair adjacent (zero routing needed).
        let c = line_circuit(5);
        let dev = line_device(5);
        let l = GraphSimilarityPlacer.place(&c, &dev).unwrap();
        for q in 1..5 {
            assert_eq!(
                dev.distance(l.phys_of(q - 1), l.phys_of(q)),
                1,
                "pair ({}, {q}) not adjacent",
                q - 1
            );
        }
    }

    #[test]
    fn graph_similarity_beats_trivial_on_star() {
        // Star circuit: q0 interacts with everyone. On a grid, the trivial
        // layout puts q0 in the corner; graph-similarity must do at least
        // as well in total weighted distance.
        let n = 5;
        let mut c = Circuit::new(n);
        for q in 1..n {
            c.cnot(0, q).unwrap();
        }
        let dev = grid_device(3, 3);
        let ig = interaction_graph(&c);
        let cost = |l: &Layout| -> f64 {
            ig.edges()
                .map(|(u, v, w)| w * dev.distance(l.phys_of(u), l.phys_of(v)) as f64)
                .sum()
        };
        let trivial = TrivialPlacer.place(&c, &dev).unwrap();
        let smart = GraphSimilarityPlacer.place(&c, &dev).unwrap();
        assert!(cost(&smart) <= cost(&trivial));
        // The hub must land on a high-degree physical qubit.
        let hub = smart.phys_of(0);
        assert!(
            dev.coupling().degree(hub) >= 3,
            "hub on degree-{} site",
            dev.coupling().degree(hub)
        );
    }

    #[test]
    fn graph_similarity_handles_no_interactions() {
        let c = Circuit::new(3); // empty circuit
        let dev = grid_device(2, 2);
        let l = GraphSimilarityPlacer.place(&c, &dev).unwrap();
        assert!(l.is_consistent());
        assert_eq!(l.virtual_count(), 3);
    }

    #[test]
    fn placer_names() {
        assert_eq!(TrivialPlacer.name(), "trivial");
        assert_eq!(RandomPlacer { seed: 0 }.name(), "random");
        assert_eq!(GraphSimilarityPlacer.name(), "graph-similarity");
    }

    #[test]
    fn placers_avoid_disabled_qubits() {
        use qcs_topology::DeviceHealth;
        // 3×3 grid with the centre (4) and a corner coupler dead.
        let dev = grid_device(3, 3)
            .degrade(&DeviceHealth::new().disable_qubit(4).disable_coupler(0, 1))
            .unwrap();
        let c = line_circuit(4);
        let placers: Vec<Box<dyn Placer>> = vec![
            Box::new(TrivialPlacer),
            Box::new(RandomPlacer { seed: 3 }),
            Box::new(GraphSimilarityPlacer),
        ];
        for p in placers {
            let l = p.place(&c, &dev).unwrap();
            for v in 0..4 {
                assert!(
                    dev.is_qubit_active(l.phys_of(v)),
                    "{} placed virtual {v} on disabled qubit {}",
                    p.name(),
                    l.phys_of(v)
                );
            }
        }
    }

    #[test]
    fn trivial_stays_identity_on_pristine_devices() {
        let c = line_circuit(4);
        let dev = grid_device(3, 3);
        let l = TrivialPlacer.place(&c, &dev).unwrap();
        assert_eq!(l.as_assignment(), &[0, 1, 2, 3]);
    }

    #[test]
    fn placement_confined_to_largest_region() {
        use qcs_topology::DeviceHealth;
        // Line of 7 with qubit 2 dead: regions {0,1} and {3,4,5,6}; a
        // 3-qubit circuit must land entirely in the larger one.
        let dev = line_device(7)
            .degrade(&DeviceHealth::new().disable_qubit(2))
            .unwrap();
        let c = line_circuit(3);
        let l = GraphSimilarityPlacer.place(&c, &dev).unwrap();
        for v in 0..3 {
            assert!(l.phys_of(v) >= 3, "virtual {v} outside the large region");
        }
    }

    #[test]
    fn unsatisfiable_outages_are_structured() {
        use crate::error::UnsatisfiableReason;
        use qcs_topology::DeviceHealth;
        // Line of 5 with qubit 2 dead: 4 active qubits, largest region 2.
        let dev = line_device(5)
            .degrade(&DeviceHealth::new().disable_qubit(2))
            .unwrap();
        assert_eq!(
            TrivialPlacer.place(&line_circuit(5), &dev).unwrap_err(),
            PlaceError::Unsatisfiable(UnsatisfiableReason::NotEnoughActiveQubits {
                needed: 5,
                active: 4
            })
        );
        assert_eq!(
            TrivialPlacer.place(&line_circuit(3), &dev).unwrap_err(),
            PlaceError::Unsatisfiable(UnsatisfiableReason::NoRegionLargeEnough {
                needed: 3,
                largest: 2
            })
        );
        // A width the region can host still works.
        assert!(TrivialPlacer.place(&line_circuit(2), &dev).is_ok());
    }
}
