//! SABRE-style iterative placement refinement.
//!
//! The SABRE heuristic (Li et al., among the mapping approaches the paper
//! surveys in refs \[35\]–\[42\]) derives an initial placement from routing
//! itself: route the circuit forward from a seed layout, take the *final*
//! layout, route the **reversed** circuit from it, and repeat. Each pass
//! lets the SWAP history of one direction inform the starting point of
//! the other, converging on a placement adapted to the circuit's
//! interaction *sequence* (not just its aggregate graph).

use qcs_circuit::circuit::Circuit;
use qcs_circuit::gate::Gate;
use qcs_topology::device::Device;

use crate::layout::Layout;
use crate::place::{GraphSimilarityPlacer, PlaceError, Placer};
use crate::route::{LookaheadRouter, Router};

/// Iterative forward/backward placement refinement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SabrePlacer {
    /// Forward+backward refinement rounds (default 2).
    pub rounds: usize,
    /// The router used for the refinement passes.
    pub router: LookaheadRouter,
}

impl Default for SabrePlacer {
    fn default() -> Self {
        SabrePlacer {
            rounds: 2,
            router: LookaheadRouter::default(),
        }
    }
}

impl SabrePlacer {
    /// The two-qubit skeleton of a circuit: single-qubit gates dropped,
    /// two-qubit gates kept as CZ (placement only cares about which pairs
    /// interact when), Toffolis expanded into their three pairs.
    fn skeleton(circuit: &Circuit) -> Circuit {
        let mut out = Circuit::with_name(circuit.qubit_count(), "skeleton");
        for g in circuit.iter() {
            match *g {
                Gate::Cnot(a, b) | Gate::Cz(a, b) | Gate::Swap(a, b) | Gate::Cphase(a, b, _) => {
                    out.cz(a, b).expect("validated pair");
                }
                Gate::Toffoli(a, b, t) => {
                    out.cz(a, b).expect("validated pair");
                    out.cz(a, t).expect("validated pair");
                    out.cz(b, t).expect("validated pair");
                }
                _ => {}
            }
        }
        out
    }

    /// The reversed skeleton (gate order flipped; CZ is symmetric and
    /// self-inverse so no per-gate inversion is needed).
    fn reversed(skeleton: &Circuit) -> Circuit {
        let mut out = Circuit::with_name(skeleton.qubit_count(), "skeleton-rev");
        for g in skeleton.gates().iter().rev() {
            out.push(*g).expect("validated gate");
        }
        out
    }
}

impl Placer for SabrePlacer {
    fn place(&self, circuit: &Circuit, device: &Device) -> Result<Layout, PlaceError> {
        // Seed with the interaction-graph embedding (already strong), then
        // refine with routing passes.
        let mut layout = GraphSimilarityPlacer.place(circuit, device)?;
        let forward = Self::skeleton(circuit);
        if forward.is_empty() {
            return Ok(layout);
        }
        let backward = Self::reversed(&forward);
        let mut best = layout.clone();
        let mut best_swaps = usize::MAX;
        for _ in 0..self.rounds {
            // Forward pass: where the qubits END UP routing the circuit is
            // where the reversed circuit wants to START.
            let Ok(f) = self.router.route(&forward, device, layout) else {
                return Ok(best); // refinement is best-effort
            };
            if f.swaps_inserted < best_swaps {
                best_swaps = f.swaps_inserted;
                best.clone_from(&f.initial); // reuse best's buffers
            }
            let Ok(b) = self.router.route(&backward, device, f.final_layout) else {
                return Ok(best);
            };
            layout = b.final_layout;
        }
        // One last forward evaluation of the refined layout. `f.initial`
        // is the layout we passed in, handed back unchanged — no clone.
        if let Ok(f) = self.router.route(&forward, device, layout) {
            if f.swaps_inserted < best_swaps {
                best = f.initial;
            }
        }
        Ok(best)
    }

    fn name(&self) -> &'static str {
        "sabre"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::Mapper;
    use crate::place::TrivialPlacer;
    use qcs_topology::lattice::grid_device;
    use qcs_topology::surface::surface17;

    #[test]
    fn refinement_never_worse_than_greedy_seed() {
        let circuit = qcs_workloads::qaoa::qaoa_maxcut_regular(10, 3, 2, 5).unwrap();
        let device = surface17();
        let router = LookaheadRouter::default();
        let seed_layout = GraphSimilarityPlacer.place(&circuit, &device).unwrap();
        let skeleton = SabrePlacer::skeleton(&circuit);
        let seed_swaps = router
            .route(&skeleton, &device, seed_layout)
            .unwrap()
            .swaps_inserted;
        let refined_layout = SabrePlacer::default().place(&circuit, &device).unwrap();
        let refined_swaps = router
            .route(&skeleton, &device, refined_layout)
            .unwrap()
            .swaps_inserted;
        assert!(
            refined_swaps <= seed_swaps,
            "refined {refined_swaps} vs seed {seed_swaps}"
        );
    }

    #[test]
    fn skeleton_extracts_pairs() {
        let mut c = Circuit::new(3);
        c.h(0)
            .unwrap()
            .cnot(0, 1)
            .unwrap()
            .toffoli(0, 1, 2)
            .unwrap()
            .measure_all();
        let s = SabrePlacer::skeleton(&c);
        assert_eq!(s.gate_count(), 4); // 1 CNOT-pair + 3 Toffoli pairs
        assert!(s.gates().iter().all(|g| g.name() == "cz"));
    }

    #[test]
    fn empty_and_single_qubit_circuits() {
        let device = grid_device(2, 2);
        let mut c = Circuit::new(3);
        c.h(0).unwrap().t(1).unwrap();
        let layout = SabrePlacer::default().place(&c, &device).unwrap();
        assert!(layout.is_consistent());
        assert_eq!(layout.virtual_count(), 3);
    }

    #[test]
    fn full_mapping_with_sabre_placer() {
        let circuit = qcs_workloads::qft::qft(6).unwrap();
        let device = surface17();
        let mapper = Mapper::new(
            Box::new(SabrePlacer::default()),
            Box::new(LookaheadRouter::default()),
        );
        let outcome = mapper.map(&circuit, &device).unwrap();
        assert!(outcome.routed.respects_connectivity(&device));
        // Compare against the naive baseline: SABRE must not be worse by
        // more than noise (identical router, better start).
        let naive = Mapper::new(
            Box::new(TrivialPlacer),
            Box::new(LookaheadRouter::default()),
        )
        .map(&circuit, &device)
        .unwrap();
        assert!(outcome.report.swaps_inserted <= naive.report.swaps_inserted);
    }

    #[test]
    fn too_wide_propagates() {
        let c = Circuit::new(30);
        let device = grid_device(2, 2);
        assert!(SabrePlacer::default().place(&c, &device).is_err());
    }

    #[test]
    fn placer_name() {
        assert_eq!(SabrePlacer::default().name(), "sabre");
    }
}
