//! Subgraph-isomorphism placement (the approach of the paper's refs
//! \[41\] Jiang et al. and \[42\] Li et al.: "qubit mapping based on subgraph
//! isomorphism").
//!
//! If the circuit's interaction graph is (edge-)isomorphic to a subgraph
//! of the coupling graph, a matching embedding executes *every* two-qubit
//! gate without routing. [`SubgraphPlacer`] runs a VF2-style backtracking
//! search for such an embedding (most-constrained-first variable order,
//! degree and adjacency pruning, step budget); when no embedding exists
//! or the budget is exhausted it falls back to the greedy
//! [`GraphSimilarityPlacer`].
//!
//! [`GraphSimilarityPlacer`]: crate::place::GraphSimilarityPlacer

use qcs_circuit::circuit::Circuit;
use qcs_circuit::interaction::interaction_graph;
use qcs_graph::Graph;
use qcs_topology::device::Device;

use crate::layout::Layout;
use crate::place::{GraphSimilarityPlacer, PlaceError, Placer};

/// Exact-embedding placer with greedy fallback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubgraphPlacer {
    /// Maximum number of backtracking steps before falling back
    /// (default 200 000).
    pub step_budget: usize,
}

impl Default for SubgraphPlacer {
    fn default() -> Self {
        SubgraphPlacer {
            step_budget: 200_000,
        }
    }
}

/// Outcome of an embedding attempt (exposed for diagnostics/tests).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmbeddingOutcome {
    /// A perfect embedding was found: every interacting pair is adjacent.
    Exact(Vec<usize>),
    /// No embedding exists (search space exhausted).
    NoEmbedding,
    /// The step budget ran out before the search finished.
    BudgetExhausted,
}

impl SubgraphPlacer {
    /// Searches for a monomorphism of `pattern` (the interaction graph,
    /// edges only — weights are irrelevant for embeddability) into
    /// `host` (the coupling graph). Returns the assignment
    /// `pattern node → host node` when found.
    ///
    /// Isolated pattern nodes are placed greedily on the leftover host
    /// nodes afterwards, so the search only works on interacting qubits.
    pub fn find_embedding(&self, pattern: &Graph, host: &Graph) -> EmbeddingOutcome {
        let n = pattern.node_count();
        let m = host.node_count();
        if n > m {
            return EmbeddingOutcome::NoEmbedding;
        }

        // Variable order: interacting nodes, most-constrained (highest
        // degree) first, then BFS-ish around already-ordered nodes so each
        // new node has placed neighbours to prune against.
        let mut order: Vec<usize> = Vec::new();
        let mut chosen = vec![false; n];
        let interacting: Vec<usize> = (0..n).filter(|&v| pattern.degree(v) > 0).collect();
        for _ in 0..interacting.len() {
            let next = interacting
                .iter()
                .copied()
                .filter(|&v| !chosen[v])
                .max_by_key(|&v| {
                    let anchored = pattern.neighbors(v).iter().filter(|&&u| chosen[u]).count();
                    (anchored, pattern.degree(v), usize::MAX - v)
                })
                .expect("interacting node remains");
            chosen[next] = true;
            order.push(next);
        }

        let mut assignment = vec![usize::MAX; n];
        let mut used = vec![false; m];
        let mut steps = 0usize;
        let ok = self.backtrack(
            pattern,
            host,
            &order,
            0,
            &mut assignment,
            &mut used,
            &mut steps,
        );
        match ok {
            Some(true) => {
                // Place isolated pattern nodes on any free host nodes.
                let mut free = (0..m).filter(|&p| !used[p]);
                for slot in assignment.iter_mut() {
                    if *slot == usize::MAX {
                        *slot = free.next().expect("n <= m leaves room");
                    }
                }
                EmbeddingOutcome::Exact(assignment)
            }
            Some(false) => EmbeddingOutcome::NoEmbedding,
            None => EmbeddingOutcome::BudgetExhausted,
        }
    }

    /// Returns `Some(found)` on a finished search, `None` on budget
    /// exhaustion.
    #[allow(clippy::too_many_arguments)]
    fn backtrack(
        &self,
        pattern: &Graph,
        host: &Graph,
        order: &[usize],
        depth: usize,
        assignment: &mut [usize],
        used: &mut [bool],
        steps: &mut usize,
    ) -> Option<bool> {
        if depth == order.len() {
            return Some(true);
        }
        let v = order[depth];
        let placed_nbrs: Vec<usize> = pattern
            .neighbors(v)
            .iter()
            .copied()
            .filter(|&u| assignment[u] != usize::MAX)
            .collect();

        // Candidate hosts: adjacent to every placed neighbour's image
        // (or all free hosts when v is the component anchor).
        let candidates: Vec<usize> = if let Some(&first) = placed_nbrs.first() {
            host.neighbors(assignment[first])
                .iter()
                .copied()
                .filter(|&p| !used[p])
                .filter(|&p| placed_nbrs.iter().all(|&u| host.has_edge(p, assignment[u])))
                .collect()
        } else {
            (0..host.node_count()).filter(|&p| !used[p]).collect()
        };

        for p in candidates {
            *steps += 1;
            if *steps > self.step_budget {
                return None;
            }
            if host.degree(p) < pattern.degree(v) {
                continue; // degree pruning
            }
            assignment[v] = p;
            used[p] = true;
            match self.backtrack(pattern, host, order, depth + 1, assignment, used, steps) {
                Some(true) => return Some(true),
                Some(false) => {}
                None => return None,
            }
            assignment[v] = usize::MAX;
            used[p] = false;
        }
        Some(false)
    }
}

impl Placer for SubgraphPlacer {
    fn place(&self, circuit: &Circuit, device: &Device) -> Result<Layout, PlaceError> {
        // Feasibility (width + degraded-device checks) via the shared
        // pool logic; the pool is the healthy region embedding may use.
        let pool = crate::place::largest_active_region(device);
        GraphSimilarityPlacer.place(circuit, device).map(|greedy| {
            // The greedy placement only proves feasibility; prefer an
            // exact embedding when one exists.
            let pattern = interaction_graph(circuit);
            let filtered: Option<Graph> = if device.health().is_empty() {
                None
            } else {
                // Healthy-subgraph host restricted to the pool: the
                // search can only use in-service couplers.
                let mut g = Graph::with_nodes(device.qubit_count());
                let in_pool: Vec<bool> = {
                    let mut f = vec![false; device.qubit_count()];
                    for &p in &pool {
                        f[p] = true;
                    }
                    f
                };
                for (u, v, _) in device.coupling().edges() {
                    if in_pool[u] && in_pool[v] && device.are_adjacent(u, v) {
                        g.add_edge(u, v).expect("endpoints exist");
                    }
                }
                Some(g)
            };
            let host = filtered.as_ref().unwrap_or_else(|| device.coupling());
            match self.find_embedding(&pattern, host) {
                EmbeddingOutcome::Exact(mut assignment) => {
                    // Isolated pattern nodes may have been filled onto
                    // out-of-pool (disabled or disconnected) hosts, since
                    // the host graph carries every node index; re-home
                    // them inside the pool.
                    let mut taken = vec![false; device.qubit_count()];
                    for &p in &assignment {
                        taken[p] = true;
                    }
                    let mut free = pool.iter().copied().filter(|&p| !taken[p]);
                    for slot in assignment.iter_mut() {
                        if !pool.contains(slot) {
                            *slot = free.next().expect("pool fits the circuit");
                        }
                    }
                    Layout::from_assignment(assignment, device.qubit_count())
                        .expect("embedding is a valid partial injection")
                }
                EmbeddingOutcome::NoEmbedding | EmbeddingOutcome::BudgetExhausted => greedy,
            }
        })
    }

    fn name(&self) -> &'static str {
        "subgraph"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcs_graph::generate;
    use qcs_topology::lattice::{grid_device, line_device, ring_device};
    use qcs_topology::surface::surface17;

    fn chain_circuit(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        for q in 1..n {
            c.cnot(q - 1, q).unwrap();
        }
        c
    }

    #[test]
    fn embeds_path_into_line_exactly() {
        let c = chain_circuit(5);
        let dev = line_device(5);
        let layout = SubgraphPlacer::default().place(&c, &dev).unwrap();
        for q in 1..5 {
            assert!(dev.are_adjacent(layout.phys_of(q - 1), layout.phys_of(q)));
        }
    }

    #[test]
    fn embeds_ring_into_grid() {
        // A 4-cycle embeds into a 2×2 grid face.
        let mut c = Circuit::new(4);
        c.cnot(0, 1)
            .unwrap()
            .cnot(1, 2)
            .unwrap()
            .cnot(2, 3)
            .unwrap()
            .cnot(3, 0)
            .unwrap();
        let dev = grid_device(3, 3);
        let layout = SubgraphPlacer::default().place(&c, &dev).unwrap();
        for (a, b) in [(0, 1), (1, 2), (2, 3), (3, 0)] {
            assert!(
                dev.are_adjacent(layout.phys_of(a), layout.phys_of(b)),
                "edge ({a},{b}) not adjacent"
            );
        }
    }

    #[test]
    fn detects_impossible_embedding() {
        // A 5-star cannot embed into a ring (max degree 2).
        let placer = SubgraphPlacer::default();
        let star = generate::star_graph(5);
        let ring = generate::ring_graph(8);
        assert_eq!(
            placer.find_embedding(&star, &ring),
            EmbeddingOutcome::NoEmbedding
        );
    }

    #[test]
    fn falls_back_gracefully_when_no_embedding() {
        // Star circuit on a ring device: fallback to greedy still yields a
        // valid layout.
        let mut c = Circuit::new(5);
        for q in 1..5 {
            c.cnot(0, q).unwrap();
        }
        let dev = ring_device(6);
        let layout = SubgraphPlacer::default().place(&c, &dev).unwrap();
        assert!(layout.is_consistent());
        assert_eq!(layout.virtual_count(), 5);
    }

    #[test]
    fn triangle_rejected_by_bipartite_host() {
        // Grids are bipartite: no triangle embeds.
        let placer = SubgraphPlacer::default();
        let triangle = generate::complete_graph(3);
        let grid = generate::grid_graph(4, 4);
        assert_eq!(
            placer.find_embedding(&triangle, &grid),
            EmbeddingOutcome::NoEmbedding
        );
    }

    #[test]
    fn isolated_qubits_get_homes() {
        let mut c = Circuit::new(5);
        c.cnot(0, 1).unwrap(); // qubits 2..4 idle
        let dev = line_device(6);
        let layout = SubgraphPlacer::default().place(&c, &dev).unwrap();
        assert!(layout.is_consistent());
        assert!(dev.are_adjacent(layout.phys_of(0), layout.phys_of(1)));
    }

    #[test]
    fn budget_exhaustion_falls_back() {
        let placer = SubgraphPlacer { step_budget: 1 };
        let c = chain_circuit(6);
        let dev = surface17();
        // Either embeds within 1 step (impossible) or falls back; both
        // paths must produce a valid layout.
        let layout = placer.place(&c, &dev).unwrap();
        assert!(layout.is_consistent());
    }

    #[test]
    fn mapping_with_subgraph_placer_eliminates_swaps_on_embeddable() {
        use crate::mapper::Mapper;
        use crate::route::LookaheadRouter;
        let c = chain_circuit(8);
        let dev = surface17();
        let mapper = Mapper::new(
            Box::new(SubgraphPlacer::default()),
            Box::new(LookaheadRouter::default()),
        );
        let outcome = mapper.map(&c, &dev).unwrap();
        assert_eq!(
            outcome.report.swaps_inserted, 0,
            "an embeddable chain must route swap-free"
        );
    }

    #[test]
    fn too_wide_errors() {
        let c = chain_circuit(20);
        let dev = line_device(5);
        assert!(SubgraphPlacer::default().place(&c, &dev).is_err());
    }

    #[test]
    fn placer_name() {
        assert_eq!(SubgraphPlacer::default().name(), "subgraph");
    }
}
