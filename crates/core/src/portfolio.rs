//! Metric-driven mapper portfolio with deadline-bounded racing.
//!
//! BENCH_mapper.json shows a ~7x wall-time and ~3x swap-count spread
//! across the trivial/lookahead/sabre strategy lanes, so a single
//! blindly-chosen strategy is both a latency hazard and a single point
//! of failure. This module operationalises the paper's Section IV
//! thesis — the pruned interaction-graph metric set {avg shortest
//! path, max/min degree, adjacency std-dev} predicts mapping cost —
//! as a serving-path component with two halves:
//!
//! * a [`Selector`] that computes the retained metrics for a circuit
//!   and picks the cheapest lane predicted *adequate* (within
//!   [`ADEQUACY_FACTOR`] of the best lane's swap count), with
//!   thresholds calibrated offline from the committed 200-circuit
//!   training sweep (`CALIBRATION_portfolio.json`, re-derivable with
//!   the `portfolio_calibrate` bench bin); and
//! * a deadline-bounded racing engine ([`Portfolio::map`]) that, when
//!   the selector is unconfident and the remaining budget allows,
//!   races lanes on threads with per-lane `catch_unwind` isolation,
//!   cooperative cancellation of losers, and
//!   keep-best-*verified*-result semantics — a lane that panics,
//!   exceeds the race budget, or fails [`crate::verify`] is simply
//!   discarded.
//!
//! Degradation is graceful and total-ordered:
//!
//! 1. confident selector pick (panic-isolated; under a deadline it
//!    gets at most half the remaining budget, so a hung primary lane
//!    still leaves room to race the others);
//! 2. race the (remaining) lanes under the deadline budget;
//! 3. the cheapest lane (`trivial/trivial`), run synchronously — this
//!    is why a deadline that cold-racing cannot meet still returns a
//!    *verified* trivial-strategy result instead of an error;
//! 4. the existing [`FallbackLadder`].
//!
//! Failpoints: `mapper.select` fires at selector entry and
//! `mapper.race.<lane>` at every lane launch (both the confident
//! direct run and each raced lane), so the chaos suite can prove that
//! a panicking or hung selector/lane degrades with zero
//! client-visible errors.
//!
//! [`MapError::Unsatisfiable`](crate::mapper::MapError::Unsatisfiable)
//! is a property of the (degraded) device, not of any lane, so the
//! first lane that reports it short-circuits the whole portfolio —
//! matching [`FallbackLadder`] semantics.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use qcs_core::backend::{Backend, CoupledBackend};
//! use qcs_core::portfolio::Portfolio;
//! use qcs_topology::surface::surface17;
//!
//! let backend: Arc<dyn Backend> = Arc::new(CoupledBackend::new(surface17()));
//! let qft = qcs_workloads::qft::qft(6)?;
//! let (outcome, report) = Portfolio::default().map(&qft, &backend, None)?;
//! assert!(outcome.report.verified);
//! assert!(!report.lane.is_empty());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use qcs_circuit::circuit::Circuit;
use qcs_circuit::interaction::interaction_graph;
use qcs_graph::metrics::GraphMetrics;

use crate::backend::Backend;
use crate::config::MapperConfig;
use crate::ladder::{LadderAttempt, LadderError};
use crate::mapper::MapOutcome;

/// Placer/router value that requests metric-driven selection.
pub const AUTO: &str = "auto";

/// The portfolio lanes, cheapest first. The order is a tie-break for
/// race winners and the preference order for the oracle, so it must
/// stay aligned with the measured wall-time ranking in
/// BENCH_mapper.json (trivial ~0.3 s, lookahead ~0.5 s, sabre ~2 s
/// over the 200-circuit suite).
pub const LANES: &[&str] = &["trivial", "lookahead", "sabre"];

/// A lane's swap count is *adequate* when it is within this factor of
/// the best lane's count (or within [`ADEQUACY_SLACK`] absolute swaps,
/// whichever is looser — tiny circuits should not force sabre over a
/// 2-swap difference).
pub const ADEQUACY_FACTOR: f64 = 1.25;

/// Absolute swap slack for adequacy on small circuits.
pub const ADEQUACY_SLACK: usize = 8;

/// Default minimum remaining budget below which racing is skipped and
/// the portfolio degrades straight to the cheapest lane.
pub const DEFAULT_MIN_RACE_BUDGET_MS: u64 = 50;

/// True when `config` requests metric-driven strategy selection.
pub fn is_auto(config: &MapperConfig) -> bool {
    config.placer == AUTO || config.router == AUTO
}

/// The pipeline a lane name stands for, or `None` for unknown names.
/// Lane pipelines mirror the bench_baseline presets so calibration
/// data and serving behaviour describe the same strategies.
pub fn lane_config(lane: &str) -> Option<MapperConfig> {
    match lane {
        "trivial" => Some(MapperConfig::new("trivial", "trivial")),
        "lookahead" => Some(MapperConfig::new("trivial", "lookahead")),
        "sabre" => Some(MapperConfig::new("sabre", "lookahead")),
        _ => None,
    }
}

/// Position of `lane` in [`LANES`] (the cost/tie-break order).
pub fn lane_index(lane: &str) -> Option<usize> {
    LANES.iter().position(|&l| l == lane)
}

/// Whether a lane with `swaps` is adequate against the best lane's
/// `best` swap count (see [`ADEQUACY_FACTOR`]).
pub fn adequate(swaps: usize, best: usize) -> bool {
    swaps <= best.saturating_add(ADEQUACY_SLACK)
        || (swaps as f64) <= (best as f64) * ADEQUACY_FACTOR
}

/// The oracle's pick for a circuit whose per-lane swap counts are
/// `swaps` (aligned with [`LANES`]): the cheapest adequate lane. This
/// is the label the selector is calibrated against — it is defined on
/// deterministic counters only, so the calibration sweep and the
/// BENCH_mapper.json portfolio section are exactly reproducible.
pub fn oracle_lane(swaps: &[usize]) -> &'static str {
    let best = swaps.iter().copied().min().unwrap_or(0);
    for (i, lane) in LANES.iter().enumerate() {
        if swaps.get(i).is_some_and(|&s| adequate(s, best)) {
            return lane;
        }
    }
    LANES[LANES.len() - 1]
}

/// Decision thresholds over the retained Section IV metrics.
///
/// The decision list mirrors what the training sweep actually shows
/// on the 200-circuit suite: chain/ring-like graphs (tiny maximum
/// degree, long average shortest path) route almost for free, so the
/// trivial lane is adequate; large near-complete *regular* graphs
/// (average shortest path ≈ 1, high minimum degree — the QFT family)
/// are ones where lookahead keeps pace with sabre at a quarter of the
/// wall time; everything else is irregular enough that sabre's
/// placement pays for itself. Adjacency std-dev — the fourth retained
/// metric — turned out non-discriminative for *lane choice* on this
/// suite (it tracks weighted edge multiplicity, not routing
/// difficulty), so it rides along in [`Selection::metrics`] but
/// carries no threshold.
///
/// The defaults are the output of the committed calibration sweep
/// (`portfolio_calibrate` over the 200-circuit suite on the Fig. 3
/// device); a repo-level test asserts they match
/// `CALIBRATION_portfolio.json` so the two cannot drift apart.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectorThresholds {
    /// Average shortest path at or above which the interaction graph
    /// is sparse/path-like enough for the trivial lane.
    pub trivial_min_path: f64,
    /// Maximum degree at or below which the trivial lane is trusted
    /// (chain- and ring-like graphs).
    pub trivial_max_degree: f64,
    /// Average shortest path at or below which the graph is close
    /// enough to complete for the lookahead rule to apply.
    pub lookahead_max_path: f64,
    /// Minimum degree at or above which a near-complete graph is
    /// regular enough for lookahead to keep pace with sabre.
    pub lookahead_min_degree: f64,
    /// Relative margin every deciding comparison must clear for the
    /// pick to count as *confident* (confident picks skip the race).
    pub margin: f64,
}

impl Default for SelectorThresholds {
    fn default() -> Self {
        // Calibrated values — see CALIBRATION_portfolio.json.
        SelectorThresholds {
            trivial_min_path: 1.0,
            trivial_max_degree: 3.0,
            lookahead_max_path: 1.235_294_117_647_058_9,
            lookahead_min_degree: 21.0,
            margin: 0.10,
        }
    }
}

/// One selector decision for one circuit.
#[derive(Debug, Clone, PartialEq)]
pub struct Selection {
    /// The chosen lane (an entry of [`LANES`]).
    pub lane: &'static str,
    /// True when every deciding comparison cleared its threshold by
    /// the calibrated margin; unconfident picks are raced instead.
    pub confident: bool,
    /// The retained metric vector the decision was made on, in
    /// [`GraphMetrics::selected_names`] order.
    pub metrics: [f64; 4],
}

impl Selection {
    /// The pipeline config of the chosen lane.
    pub fn config(&self) -> MapperConfig {
        lane_config(self.lane).expect("selection lanes are portfolio lanes")
    }
}

/// The metric-driven strategy selector.
#[derive(Debug, Clone, Default)]
pub struct Selector {
    /// Calibrated decision thresholds.
    pub thresholds: SelectorThresholds,
}

impl Selector {
    /// A selector with the given thresholds.
    pub fn new(thresholds: SelectorThresholds) -> Self {
        Selector { thresholds }
    }

    /// Picks a lane for `circuit`, hitting the `mapper.select`
    /// failpoint first (an injected panic propagates to the caller;
    /// [`Portfolio::map`] isolates it and degrades to the race).
    ///
    /// # Errors
    ///
    /// The injected failpoint message when a `mapper.select` error
    /// fault is armed; selection itself is total.
    pub fn select(&self, circuit: &Circuit) -> Result<Selection, String> {
        if qcs_faults::any_armed() {
            if let qcs_faults::Hit::Error(message) = qcs_faults::hit("mapper.select") {
                return Err(message);
            }
        }
        let metrics = GraphMetrics::compute(&interaction_graph(circuit));
        Ok(self.select_metrics(&metrics))
    }

    /// The pure decision function over an already-computed metric
    /// vector (used by the calibration sweep, which batches metric
    /// computation).
    pub fn select_metrics(&self, metrics: &GraphMetrics) -> Selection {
        let t = &self.thresholds;
        let vec = [
            metrics.avg_shortest_path,
            metrics.max_degree,
            metrics.min_degree,
            metrics.adjacency_std,
        ];
        // No two-qubit structure at all: nothing to route, the
        // trivial lane is exact.
        if metrics.max_degree == 0.0 {
            return Selection {
                lane: "trivial",
                confident: true,
                metrics: vec,
            };
        }
        let asp = metrics.avg_shortest_path;
        let sparse = asp >= t.trivial_min_path && metrics.max_degree <= t.trivial_max_degree;
        if sparse {
            let confident = asp >= t.trivial_min_path * (1.0 + t.margin)
                && metrics.max_degree <= t.trivial_max_degree * (1.0 - t.margin).max(0.0);
            return Selection {
                lane: "trivial",
                confident,
                metrics: vec,
            };
        }
        let regular = asp <= t.lookahead_max_path && metrics.min_degree >= t.lookahead_min_degree;
        if regular {
            let confident = asp <= t.lookahead_max_path * (1.0 - t.margin).max(0.0)
                && metrics.min_degree >= t.lookahead_min_degree * (1.0 + t.margin);
            return Selection {
                lane: "lookahead",
                confident,
                metrics: vec,
            };
        }
        // The irregular rest. Confident only when clearly neither
        // rule applies: each earlier rule misses by margin on at
        // least one of its legs.
        let clearly_not_sparse = asp < t.trivial_min_path * (1.0 - t.margin).max(0.0)
            || metrics.max_degree > t.trivial_max_degree * (1.0 + t.margin);
        let clearly_not_regular = asp > t.lookahead_max_path * (1.0 + t.margin)
            || metrics.min_degree < t.lookahead_min_degree * (1.0 - t.margin).max(0.0);
        Selection {
            lane: "sabre",
            confident: clearly_not_sparse && clearly_not_regular,
            metrics: vec,
        }
    }
}

/// How the portfolio produced (or failed to produce) its result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortfolioMode {
    /// The confident selector pick served directly.
    Selected,
    /// A race winner served.
    Raced,
    /// The cheapest lane served after selection and racing could not.
    Cheapest,
    /// The standard [`FallbackLadder`] served as the last resort.
    Ladder,
}

impl PortfolioMode {
    /// Stable lowercase name for stats and logs.
    pub fn as_str(self) -> &'static str {
        match self {
            PortfolioMode::Selected => "selected",
            PortfolioMode::Raced => "raced",
            PortfolioMode::Cheapest => "cheapest",
            PortfolioMode::Ladder => "ladder",
        }
    }
}

/// Side-channel accounting for one portfolio run. Deliberately *not*
/// part of [`MapReport`](crate::mapper::MapReport): the report is
/// embedded in canonical cacheable payloads, and portfolio accounting
/// (how long a race waited, how many lanes were discarded) is
/// delivery metadata, not job identity.
#[derive(Debug, Clone, PartialEq)]
pub struct PortfolioReport {
    /// Which degradation stage served the result.
    pub mode: PortfolioMode,
    /// The serving lane name, or `"ladder"` for the last resort.
    pub lane: String,
    /// True when the selector produced a confident pick.
    pub confident: bool,
    /// True when the selector panicked or was error-injected (the
    /// portfolio then treats the circuit as unconfident and races).
    pub selector_failed: bool,
    /// Lanes launched into the race (0 when no race ran).
    pub raced: usize,
    /// Lanes discarded across the whole run: panicked, error-injected,
    /// failed verification, or still unreported when the budget ended.
    pub discarded: usize,
    /// True when every raced lane reported before the budget ended
    /// (or no race ran). A complete race is deterministic — the best
    /// verified result is a pure function of the job.
    pub race_complete: bool,
    /// True when the remaining deadline budget altered the execution
    /// path at any point: a confident pick or race was skipped as too
    /// expensive, or a race was truncated before every lane reported.
    /// Budget-limited results are correct and verified but *not* a
    /// pure function of the job, so the serving tier must not cache
    /// them.
    pub budget_limited: bool,
}

/// How one lane run ended, short of producing a verified outcome.
enum LaneFailure {
    /// The lane found the job unsatisfiable on the device — a device
    /// property, so it short-circuits the whole portfolio.
    Unsatisfiable(LadderError),
    /// Strategy-local failure: error, panic, or failed verification.
    Failed(String),
}

/// One message from a raced lane thread.
type LaneMessage = (usize, Result<Box<MapOutcome>, LaneFailure>);

/// The portfolio engine: selector plus racing plus total-ordered
/// graceful degradation. See the module docs for the exact order.
#[derive(Debug, Clone)]
pub struct Portfolio {
    selector: Selector,
    /// Remaining budget below which the race is skipped and the
    /// portfolio degrades straight to the cheapest lane.
    min_race_budget: Duration,
}

impl Default for Portfolio {
    fn default() -> Self {
        Portfolio {
            selector: Selector::default(),
            min_race_budget: Duration::from_millis(DEFAULT_MIN_RACE_BUDGET_MS),
        }
    }
}

impl Portfolio {
    /// A portfolio with explicit selector thresholds (tests and
    /// calibration; serving uses [`Portfolio::default`]).
    pub fn with_thresholds(thresholds: SelectorThresholds) -> Self {
        Portfolio {
            selector: Selector::new(thresholds),
            ..Portfolio::default()
        }
    }

    /// Overrides the minimum budget below which racing is skipped.
    #[must_use]
    pub fn with_min_race_budget(mut self, budget: Duration) -> Self {
        self.min_race_budget = budget;
        self
    }

    /// The configured selector.
    pub fn selector(&self) -> &Selector {
        &self.selector
    }

    /// Maps `circuit` on `backend` through the portfolio. `deadline`
    /// is the *remaining* end-to-end budget; `None` means unbounded
    /// (a race then waits for every lane, which makes the winner a
    /// pure function of the job).
    ///
    /// The returned outcome is always verified (every stage runs with
    /// ladder verification on). The companion [`PortfolioReport`]
    /// says which stage served and whether the result is cacheable.
    ///
    /// # Errors
    ///
    /// [`LadderError`] only when every stage — including the final
    /// [`FallbackLadder`] — failed, or a lane found the job
    /// unsatisfiable on the device.
    pub fn map(
        &self,
        circuit: &Circuit,
        backend: &Arc<dyn Backend>,
        deadline: Option<Duration>,
    ) -> Result<(MapOutcome, PortfolioReport), LadderError> {
        self.run(circuit, backend, deadline, false)
    }

    /// Like [`Portfolio::map`], but always races every lane — the
    /// selector is bypassed entirely. This is the serving tier's
    /// explicit `race` request mode: callers who want the best
    /// verified result across all strategies rather than the
    /// cheapest-adequate pick. Degradation stages 2–4 are identical
    /// to [`Portfolio::map`].
    ///
    /// # Errors
    ///
    /// As for [`Portfolio::map`].
    pub fn map_racing(
        &self,
        circuit: &Circuit,
        backend: &Arc<dyn Backend>,
        deadline: Option<Duration>,
    ) -> Result<(MapOutcome, PortfolioReport), LadderError> {
        self.run(circuit, backend, deadline, true)
    }

    fn run(
        &self,
        circuit: &Circuit,
        backend: &Arc<dyn Backend>,
        deadline: Option<Duration>,
        force_race: bool,
    ) -> Result<(MapOutcome, PortfolioReport), LadderError> {
        let started = Instant::now();
        let remaining = |deadline: Option<Duration>| -> Option<Duration> {
            deadline.map(|d| d.saturating_sub(started.elapsed()))
        };
        let tight =
            |rem: Option<Duration>| -> bool { rem.is_some_and(|r| r < self.min_race_budget) };

        let mut report = PortfolioReport {
            mode: PortfolioMode::Ladder,
            lane: String::new(),
            confident: false,
            selector_failed: false,
            raced: 0,
            discarded: 0,
            race_complete: true,
            budget_limited: false,
        };
        let mut attempts: Vec<LadderAttempt> = Vec::new();
        let demote = |lane: &str, error: String, attempts: &mut Vec<LadderAttempt>| {
            let config = lane_config(lane).unwrap_or_default();
            attempts.push(LadderAttempt {
                placer: config.placer,
                router: config.router,
                error,
            });
        };

        // Stage 1: metric-driven selection, panic-isolated. A
        // panicking or error-injected selector is not an error — the
        // circuit is simply treated as unconfident. Forced races skip
        // selection entirely.
        let selection = if force_race {
            None
        } else {
            match catch_unwind(AssertUnwindSafe(|| self.selector.select(circuit))) {
                Ok(Ok(selection)) => Some(selection),
                Ok(Err(_)) | Err(_) => {
                    report.selector_failed = true;
                    None
                }
            }
        };
        report.confident = selection.as_ref().is_some_and(|s| s.confident);

        let mut failed_lanes: Vec<&'static str> = Vec::new();
        if let Some(selection) = &selection {
            if selection.confident {
                if tight(remaining(deadline)) {
                    report.budget_limited = true;
                } else {
                    // The confident pick gets at most half the
                    // remaining budget: a primary lane hung in an
                    // armed delay failpoint (or simply pathological on
                    // this circuit) must leave room to race the other
                    // lanes instead of blowing the whole deadline.
                    let budget = remaining(deadline).map(|r| r / 2);
                    match run_lane_bounded(selection.lane, circuit, backend, budget) {
                        Some(Ok(outcome)) => {
                            report.mode = PortfolioMode::Selected;
                            report.lane = selection.lane.to_string();
                            return Ok((*outcome, report));
                        }
                        Some(Err(LaneFailure::Unsatisfiable(error))) => return Err(error),
                        Some(Err(LaneFailure::Failed(error))) => {
                            report.discarded += 1;
                            demote(selection.lane, error, &mut attempts);
                            failed_lanes.push(selection.lane);
                        }
                        None => {
                            report.discarded += 1;
                            report.budget_limited = true;
                            demote(
                                selection.lane,
                                "did not report within the budget".to_string(),
                                &mut attempts,
                            );
                            failed_lanes.push(selection.lane);
                        }
                    }
                }
            }
        }

        // Stage 2: race the remaining lanes under the budget.
        if tight(remaining(deadline)) {
            report.budget_limited = true;
        } else {
            let lanes: Vec<&'static str> = LANES
                .iter()
                .copied()
                .filter(|lane| !failed_lanes.contains(lane))
                .collect();
            if !lanes.is_empty() {
                match self.race(circuit, backend, &lanes, remaining(deadline), &mut report) {
                    Ok(Some(outcome)) => {
                        report.mode = PortfolioMode::Raced;
                        return Ok((*outcome, report));
                    }
                    Ok(None) => {}
                    Err(error) => return Err(error),
                }
            }
        }

        // Stage 3: the cheapest lane, synchronously. This is the
        // guarantee that a deadline cold-racing cannot meet still
        // returns a verified trivial-strategy result.
        match run_lane_caught("trivial", circuit, backend.as_ref(), None) {
            Ok(outcome) => {
                report.mode = PortfolioMode::Cheapest;
                report.lane = "trivial".to_string();
                return Ok((*outcome, report));
            }
            Err(LaneFailure::Unsatisfiable(error)) => return Err(error),
            Err(LaneFailure::Failed(error)) => {
                report.discarded += 1;
                demote("trivial", error, &mut attempts);
            }
        }

        // Stage 4: the standard fallback ladder, exactly as a
        // non-portfolio request would be served.
        match backend.map(circuit, &MapperConfig::default()) {
            Ok(outcome) => {
                report.mode = PortfolioMode::Ladder;
                report.lane = "ladder".to_string();
                Ok((outcome, report))
            }
            Err(mut error) => {
                let mut all = attempts;
                all.append(&mut error.attempts);
                error.attempts = all;
                Err(error)
            }
        }
    }

    /// Races `lanes` with per-lane panic isolation and cooperative
    /// cancellation, returning the best verified result that reported
    /// within `budget` (`None` budget waits for every lane).
    ///
    /// Best is the minimum of `(swaps_inserted, routed_gates, lane
    /// cost order)` over verified lane outcomes — all deterministic
    /// quantities, so a *complete* race has a deterministic winner.
    ///
    /// Lane threads are detached: a lane hung in an armed delay
    /// failpoint (or simply slower than the budget) cannot hold the
    /// serving thread hostage. Losers observe the shared cancel flag
    /// at their next checkpoint and exit without reporting.
    fn race(
        &self,
        circuit: &Circuit,
        backend: &Arc<dyn Backend>,
        lanes: &[&'static str],
        budget: Option<Duration>,
        report: &mut PortfolioReport,
    ) -> Result<Option<Box<MapOutcome>>, LadderError> {
        report.raced = lanes.len();
        let cancel = Arc::new(AtomicBool::new(false));
        let (tx, rx) = mpsc::channel::<LaneMessage>();
        let mut handles = Vec::with_capacity(lanes.len());
        for (index, lane) in lanes.iter().copied().enumerate() {
            let tx = tx.clone();
            let cancel = Arc::clone(&cancel);
            let circuit = circuit.clone();
            let backend = Arc::clone(backend);
            handles.push(Some(std::thread::spawn(move || {
                let result = run_lane_caught(lane, &circuit, backend.as_ref(), Some(&cancel));
                if cancel.load(Ordering::Relaxed) {
                    return; // Cancelled loser: stay silent.
                }
                let _ = tx.send((index, result));
            })));
        }
        drop(tx);

        let deadline_at = budget.map(|b| Instant::now() + b);
        let mut best: Option<(usize, Box<MapOutcome>)> = None;
        let mut reported = 0usize;
        let mut unsatisfiable: Option<LadderError> = None;
        while reported < lanes.len() {
            let message = match deadline_at {
                Some(at) => {
                    let now = Instant::now();
                    if now >= at {
                        break;
                    }
                    match rx.recv_timeout(at - now) {
                        Ok(message) => message,
                        Err(_) => break,
                    }
                }
                None => match rx.recv() {
                    Ok(message) => message,
                    Err(_) => break,
                },
            };
            reported += 1;
            let (index, result) = message;
            if let Some(handle) = handles[index].take() {
                // The lane sent its result as its last act; joining
                // here is instantaneous and keeps threads accounted.
                let _ = handle.join();
            }
            match result {
                Ok(outcome) => {
                    let better = match &best {
                        None => true,
                        Some((best_index, best_outcome)) => {
                            let candidate = (
                                outcome.report.swaps_inserted,
                                outcome.report.routed_gates,
                                index,
                            );
                            let incumbent = (
                                best_outcome.report.swaps_inserted,
                                best_outcome.report.routed_gates,
                                *best_index,
                            );
                            candidate < incumbent
                        }
                    };
                    if better {
                        best = Some((index, outcome));
                    }
                }
                Err(LaneFailure::Unsatisfiable(error)) => {
                    report.discarded += 1;
                    // Authoritative: no lane can fix a device-level
                    // unsatisfiability. Stop listening, cancel, report.
                    unsatisfiable = Some(error);
                    break;
                }
                Err(LaneFailure::Failed(_)) => report.discarded += 1,
            }
        }
        cancel.store(true, Ordering::Relaxed);
        report.race_complete = reported == lanes.len();
        report.discarded += lanes.len() - reported;
        if let Some(error) = unsatisfiable {
            return Err(error);
        }
        if !report.race_complete {
            // The budget ended before every lane reported: whatever is
            // served next depends on wall-clock, not only on the job.
            report.budget_limited = true;
        }
        if let Some((index, outcome)) = best {
            report.lane = lanes[index].to_string();
            return Ok(Some(outcome));
        }
        Ok(None)
    }
}

/// Runs one lane under a budget. With no budget the lane runs
/// synchronously on the calling thread (no spawn on the deterministic
/// unbounded path). With a budget it runs on a detached thread and
/// must report in time; a lane that does not is cancelled and `None`
/// is returned, so deadline-boundedness holds even for the confident
/// direct run — a hung lane cannot hold the request past its deadline.
fn run_lane_bounded(
    lane: &'static str,
    circuit: &Circuit,
    backend: &Arc<dyn Backend>,
    budget: Option<Duration>,
) -> Option<Result<Box<MapOutcome>, LaneFailure>> {
    let Some(budget) = budget else {
        return Some(run_lane_caught(lane, circuit, backend.as_ref(), None));
    };
    let cancel = Arc::new(AtomicBool::new(false));
    let (tx, rx) = mpsc::channel();
    {
        let cancel = Arc::clone(&cancel);
        let circuit = circuit.clone();
        let backend = Arc::clone(backend);
        std::thread::spawn(move || {
            let result = run_lane_caught(lane, &circuit, backend.as_ref(), Some(&cancel));
            if cancel.load(Ordering::Relaxed) {
                return; // Cancelled after timing out: stay silent.
            }
            let _ = tx.send(result);
        });
    }
    match rx.recv_timeout(budget) {
        Ok(result) => Some(result),
        Err(_) => {
            cancel.store(true, Ordering::Relaxed);
            None
        }
    }
}

/// Runs one lane with panic isolation: failpoint, then the backend's
/// single-strategy pipeline (verification on). The `cancel` flag is
/// checked at the lane checkpoints (entry and after the failpoint) so
/// cancelled race losers stop doing work cooperatively.
fn run_lane_caught(
    lane: &'static str,
    circuit: &Circuit,
    backend: &dyn Backend,
    cancel: Option<&AtomicBool>,
) -> Result<Box<MapOutcome>, LaneFailure> {
    let cancelled = || cancel.is_some_and(|c| c.load(Ordering::Relaxed));
    if cancelled() {
        return Err(LaneFailure::Failed("cancelled".to_string()));
    }
    match catch_unwind(AssertUnwindSafe(|| {
        run_lane(lane, circuit, backend, cancel)
    })) {
        Ok(result) => result,
        Err(panic) => Err(LaneFailure::Failed(format!(
            "panicked: {}",
            panic_message(panic.as_ref())
        ))),
    }
}

/// The lane body: `mapper.race.<lane>` failpoint, cancel checkpoint,
/// then a single-rung verified compile via [`Backend::map_single`].
fn run_lane(
    lane: &'static str,
    circuit: &Circuit,
    backend: &dyn Backend,
    cancel: Option<&AtomicBool>,
) -> Result<Box<MapOutcome>, LaneFailure> {
    if qcs_faults::any_armed() {
        if let qcs_faults::Hit::Error(message) = qcs_faults::hit(&format!("mapper.race.{lane}")) {
            return Err(LaneFailure::Failed(message));
        }
    }
    if cancel.is_some_and(|c| c.load(Ordering::Relaxed)) {
        return Err(LaneFailure::Failed("cancelled".to_string()));
    }
    let config = lane_config(lane)
        .unwrap_or_else(|| panic!("unknown portfolio lane {lane:?} (expected one of {LANES:?})"));
    match backend.map_single(circuit, &config) {
        Ok(outcome) => Ok(Box::new(outcome)),
        Err(error) if error.unsatisfiable => Err(LaneFailure::Unsatisfiable(error)),
        Err(error) => Err(LaneFailure::Failed(error.to_string())),
    }
}

/// Renders a caught panic payload into a one-line message.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::CoupledBackend;
    use qcs_topology::surface::surface17;

    fn backend() -> Arc<dyn Backend> {
        Arc::new(CoupledBackend::new(surface17()))
    }

    #[test]
    fn lane_table_is_consistent() {
        for (i, lane) in LANES.iter().enumerate() {
            assert_eq!(lane_index(lane), Some(i));
            assert!(lane_config(lane).is_some());
        }
        assert_eq!(lane_config("warp"), None);
        assert_eq!(lane_index("warp"), None);
    }

    #[test]
    fn adequacy_and_oracle_prefer_cheap_lanes() {
        // Clear win for trivial.
        assert_eq!(oracle_lane(&[10, 10, 10]), "trivial");
        // Trivial 3x worse than best: skip to lookahead.
        assert_eq!(oracle_lane(&[300, 100, 100]), "lookahead");
        // Only sabre is adequate.
        assert_eq!(oracle_lane(&[300, 200, 100]), "sabre");
        // Small absolute differences never force an expensive lane.
        assert_eq!(oracle_lane(&[8, 2, 1]), "trivial");
    }

    #[test]
    fn selector_is_deterministic_and_total() {
        let selector = Selector::default();
        let qft = qcs_workloads::qft::qft(8).unwrap();
        let a = selector.select(&qft).unwrap();
        let b = selector.select(&qft).unwrap();
        assert_eq!(a, b);
        assert!(lane_index(a.lane).is_some());
    }

    #[test]
    fn empty_interaction_graph_is_a_confident_trivial_pick() {
        let selector = Selector::default();
        let single = Circuit::new(3); // no two-qubit gates at all
        let s = selector.select(&single).unwrap();
        assert_eq!(s.lane, "trivial");
        assert!(s.confident);
    }

    #[test]
    fn portfolio_serves_verified_results_without_deadline() {
        let (outcome, report) = Portfolio::default()
            .map(&qcs_workloads::qft::qft(6).unwrap(), &backend(), None)
            .unwrap();
        assert!(outcome.report.verified);
        assert!(report.race_complete);
        assert!(!report.budget_limited);
        assert!(!report.lane.is_empty());
    }

    #[test]
    fn tight_deadline_degrades_to_the_cheapest_lane() {
        let (outcome, report) = Portfolio::default()
            .map(
                &qcs_workloads::qft::qft(6).unwrap(),
                &backend(),
                Some(Duration::from_millis(1)),
            )
            .unwrap();
        assert_eq!(report.mode, PortfolioMode::Cheapest);
        assert_eq!(report.lane, "trivial");
        assert_eq!(outcome.report.placer, "trivial");
        assert!(outcome.report.verified);
        assert!(
            report.budget_limited,
            "tight-deadline results must not be cached"
        );
    }

    #[test]
    fn forced_race_bypasses_the_selector() {
        let (outcome, report) = Portfolio::default()
            .map_racing(&qcs_workloads::qft::qft(6).unwrap(), &backend(), None)
            .unwrap();
        assert_eq!(report.mode, PortfolioMode::Raced);
        assert_eq!(report.raced, LANES.len());
        assert!(report.race_complete);
        assert!(!report.budget_limited);
        assert!(!report.confident);
        assert!(outcome.report.verified);
    }

    #[test]
    fn complete_races_are_deterministic() {
        let portfolio = Portfolio::default();
        let circuit = qcs_workloads::qft::qft(7).unwrap();
        let b = backend();
        let mut lanes = Vec::new();
        let mut payloads = Vec::new();
        for _ in 0..3 {
            let mut report = PortfolioReport {
                mode: PortfolioMode::Raced,
                lane: String::new(),
                confident: false,
                selector_failed: false,
                raced: 0,
                discarded: 0,
                race_complete: true,
                budget_limited: false,
            };
            let outcome = portfolio
                .race(&circuit, &b, LANES, None, &mut report)
                .unwrap()
                .unwrap();
            assert!(report.race_complete);
            lanes.push(report.lane.clone());
            payloads.push((
                outcome.report.swaps_inserted,
                outcome.report.routed_gates,
                outcome.report.placer.clone(),
            ));
        }
        assert_eq!(lanes[0], lanes[1]);
        assert_eq!(lanes[1], lanes[2]);
        assert_eq!(payloads[0], payloads[1]);
        assert_eq!(payloads[1], payloads[2]);
    }

    #[test]
    fn too_wide_circuits_exhaust_with_attempts() {
        let wide = Circuit::new(30); // 30 qubits on surface-17
        let err = Portfolio::default()
            .map(&wide, &backend(), None)
            .unwrap_err();
        assert!(!err.unsatisfiable);
        assert!(!err.attempts.is_empty());
    }
}
