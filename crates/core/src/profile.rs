//! Interaction-graph profiling of quantum circuits (Section IV).
//!
//! "We will broaden the scope of algorithm characterization by
//! introducing interaction-graph-based profiling." A [`CircuitProfile`]
//! couples the three classical size parameters with the Table I graph
//! metric vector; over a benchmark suite the module reproduces the
//! paper's analysis steps: the Pearson correlation matrix over metrics,
//! the pruning of codependent metrics, and k-means clustering of
//! algorithms by profile.

use qcs_rng::Rng;

use qcs_circuit::circuit::{Circuit, CircuitStats};
use qcs_circuit::interaction::interaction_graph;
use qcs_graph::cluster::{kmeans, Clustering};
use qcs_graph::metrics::GraphMetrics;
use qcs_graph::stats::{correlation_matrix, select_uncorrelated};

/// A circuit's full characterization record.
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitProfile {
    /// Circuit name.
    pub name: String,
    /// The classical size parameters (qubits, gates, 2q %, depth).
    pub stats: CircuitStats,
    /// The Table I interaction-graph metric vector.
    pub metrics: GraphMetrics,
}

qcs_json::impl_json_object!(CircuitProfile {
    name,
    stats,
    metrics,
});

impl CircuitProfile {
    /// Profiles one circuit.
    pub fn of(circuit: &Circuit) -> Self {
        CircuitProfile {
            name: circuit.name().to_string(),
            stats: circuit.stats(),
            metrics: GraphMetrics::compute(&interaction_graph(circuit)),
        }
    }

    /// The combined feature vector: classical parameters followed by the
    /// graph metrics (aligned with [`CircuitProfile::feature_names`]).
    pub fn feature_vec(&self) -> Vec<f64> {
        let mut v = vec![
            self.stats.qubits as f64,
            self.stats.gates as f64,
            self.stats.two_qubit_fraction,
            self.stats.depth as f64,
        ];
        v.extend(self.metrics.to_vec());
        v
    }

    /// Names aligned with [`CircuitProfile::feature_vec`].
    pub fn feature_names() -> Vec<&'static str> {
        let mut names = vec!["qubits", "gates", "two_qubit_fraction", "depth"];
        names.extend(GraphMetrics::names());
        names
    }
}

/// The Pearson correlation matrix over the profiles' feature vectors
/// (rows/columns aligned with [`CircuitProfile::feature_names`]).
pub fn profile_correlation(profiles: &[CircuitProfile]) -> Vec<Vec<f64>> {
    let samples: Vec<Vec<f64>> = profiles.iter().map(CircuitProfile::feature_vec).collect();
    correlation_matrix(&samples)
}

/// The paper's metric-pruning step: greedily keeps features whose
/// pairwise |Pearson| stays below `threshold`, returning the retained
/// feature names.
pub fn prune_codependent_metrics(profiles: &[CircuitProfile], threshold: f64) -> Vec<&'static str> {
    let corr = profile_correlation(profiles);
    let names = CircuitProfile::feature_names();
    select_uncorrelated(&corr, threshold)
        .into_iter()
        .map(|i| names[i])
        .collect()
}

/// Clusters profiles into `k` groups by their feature vectors
/// ("algorithms with similar properties ought to show similar
/// performance").
///
/// # Panics
///
/// Panics if `profiles` is empty or `k` exceeds the profile count.
pub fn cluster_profiles<R: Rng>(profiles: &[CircuitProfile], k: usize, rng: &mut R) -> Clustering {
    let samples: Vec<Vec<f64>> = profiles.iter().map(CircuitProfile::feature_vec).collect();
    kmeans_restarts(&samples, k, rng)
}

/// Runs k-means several times and keeps the lowest-inertia clustering
/// (k-means is seeding-sensitive; restarts make the result robust).
fn kmeans_restarts<R: Rng>(samples: &[Vec<f64>], k: usize, rng: &mut R) -> Clustering {
    const RESTARTS: usize = 10;
    let mut best: Option<Clustering> = None;
    for _ in 0..RESTARTS {
        let c = kmeans(samples, k, 200, rng);
        if best.as_ref().is_none_or(|b| c.inertia < b.inertia) {
            best = Some(c);
        }
    }
    best.expect("at least one restart ran")
}

/// Clusters on the pruned Table I subset only (avg. shortest path,
/// max/min degree, adjacency std. dev.) — the paper's proposal.
///
/// # Panics
///
/// Panics if `profiles` is empty or `k` exceeds the profile count.
pub fn cluster_profiles_selected<R: Rng>(
    profiles: &[CircuitProfile],
    k: usize,
    rng: &mut R,
) -> Clustering {
    let samples: Vec<Vec<f64>> = profiles.iter().map(|p| p.metrics.selected_vec()).collect();
    kmeans_restarts(&samples, k, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcs_rng::ChaCha8Rng;
    use qcs_rng::SeedableRng;

    fn qft_profile(n: usize) -> CircuitProfile {
        CircuitProfile::of(&qcs_workloads::qft::qft(n).unwrap())
    }

    fn ghz_profile(n: usize) -> CircuitProfile {
        CircuitProfile::of(&qcs_workloads::ghz::ghz_chain(n).unwrap())
    }

    #[test]
    fn profile_captures_both_views() {
        let p = qft_profile(6);
        assert_eq!(p.stats.qubits, 6);
        assert_eq!(p.metrics.density, 1.0); // QFT: complete interaction graph
        assert_eq!(p.feature_vec().len(), CircuitProfile::feature_names().len());
    }

    #[test]
    fn fig4_contrast_same_params_different_graphs() {
        // The paper's Fig. 4: a QAOA circuit and a random circuit with
        // identical size parameters have very different graph metrics.
        let qaoa = qcs_workloads::qaoa::fig4_qaoa(1).unwrap();
        let s = qaoa.stats();
        let random =
            qcs_workloads::random::random_like(s.qubits, s.gates, s.two_qubit_fraction, 99)
                .unwrap();
        let pq = CircuitProfile::of(&qaoa);
        let pr = CircuitProfile::of(&random);
        // Same classical parameters…
        assert_eq!(pq.stats.qubits, pr.stats.qubits);
        assert_eq!(pq.stats.gates, pr.stats.gates);
        assert!((pq.stats.two_qubit_fraction - pr.stats.two_qubit_fraction).abs() < 0.01);
        // …different structure: the random graph is denser with higher
        // max degree (paper: "more complex with full-connectivity").
        assert!(pr.metrics.density > pq.metrics.density);
        assert!(pr.metrics.max_degree > pq.metrics.max_degree);
    }

    #[test]
    fn correlation_matrix_dimensions() {
        let profiles: Vec<CircuitProfile> = (3..10).map(qft_profile).collect();
        let corr = profile_correlation(&profiles);
        let k = CircuitProfile::feature_names().len();
        assert_eq!(corr.len(), k);
        assert!((corr[0][0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pruning_reduces_feature_count() {
        let mut profiles: Vec<CircuitProfile> = (3..14).map(qft_profile).collect();
        profiles.extend((3..14).map(ghz_profile));
        let kept = prune_codependent_metrics(&profiles, 0.95);
        assert!(!kept.is_empty());
        assert!(kept.len() < CircuitProfile::feature_names().len());
        // The first feature always survives the greedy pass.
        assert_eq!(kept[0], "qubits");
    }

    #[test]
    fn clustering_separates_families() {
        // QFTs (dense) vs GHZ chains (sparse): two clear clusters on the
        // selected metric subset. A narrow size band keeps within-family
        // variance below the family gap.
        let mut profiles: Vec<CircuitProfile> = (8..14).map(qft_profile).collect();
        let split = profiles.len();
        profiles.extend((8..14).map(ghz_profile));
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let clustering = cluster_profiles_selected(&profiles, 2, &mut rng);
        let qft_cluster = clustering.assignments[0];
        assert!(
            clustering.assignments[..split]
                .iter()
                .all(|&a| a == qft_cluster),
            "QFT family split across clusters: {:?}",
            clustering.assignments
        );
        assert!(
            clustering.assignments[split..]
                .iter()
                .all(|&a| a != qft_cluster),
            "GHZ family merged into QFT cluster: {:?}",
            clustering.assignments
        );
    }

    #[test]
    fn full_feature_clustering_runs() {
        let profiles: Vec<CircuitProfile> = (3..9).map(qft_profile).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let c = cluster_profiles(&profiles, 2, &mut rng);
        assert_eq!(c.assignments.len(), profiles.len());
    }
}
