//! Serializable experiment records for the figure harnesses.
//!
//! Each benchmark mapped in an experiment yields one [`MappingRecord`]
//! joining provenance (family, synthetic flag), the circuit's profile and
//! the mapping report — everything Figs. 3 and 5 plot.

use qcs_json::{FromJson, JsonError, ToJson};

use crate::mapper::MapReport;
use crate::profile::CircuitProfile;

/// One row of an experiment's raw data.
#[derive(Debug, Clone, PartialEq)]
pub struct MappingRecord {
    /// Benchmark name.
    pub name: String,
    /// Workload family label (e.g. "qaoa", "random").
    pub family: String,
    /// Whether the paper would plot it as synthetic (square) or real
    /// (circle).
    pub synthetic: bool,
    /// The circuit's profile (size parameters + graph metrics).
    pub profile: CircuitProfile,
    /// The mapping figures of merit.
    pub report: MapReport,
}

qcs_json::impl_json_object!(MappingRecord {
    name,
    family,
    synthetic,
    profile,
    report,
});

impl MappingRecord {
    /// Serializes a batch of records as pretty JSON.
    pub fn batch_to_json(records: &[MappingRecord]) -> String {
        qcs_json::Json::Array(records.iter().map(ToJson::to_json).collect()).to_string_pretty()
    }

    /// Parses a batch of records from JSON.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on malformed input.
    pub fn batch_from_json(json: &str) -> Result<Vec<MappingRecord>, JsonError> {
        Vec::<MappingRecord>::from_json(&qcs_json::parse(json)?)
    }
}

/// Summary statistics over a set of records (one plotted series).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesSummary {
    /// Number of records.
    pub count: usize,
    /// Mean gate overhead (%).
    pub mean_gate_overhead_pct: f64,
    /// Mean fidelity decrease (%).
    pub mean_fidelity_decrease_pct: f64,
    /// Mean SWAPs inserted.
    pub mean_swaps: f64,
}

impl SeriesSummary {
    /// Aggregates records into a summary (zeros when empty).
    pub fn of(records: &[&MappingRecord]) -> Self {
        let n = records.len();
        if n == 0 {
            return SeriesSummary {
                count: 0,
                mean_gate_overhead_pct: 0.0,
                mean_fidelity_decrease_pct: 0.0,
                mean_swaps: 0.0,
            };
        }
        let nf = n as f64;
        SeriesSummary {
            count: n,
            mean_gate_overhead_pct: records
                .iter()
                .map(|r| r.report.gate_overhead_pct)
                .sum::<f64>()
                / nf,
            mean_fidelity_decrease_pct: records
                .iter()
                .map(|r| r.report.fidelity_decrease_pct)
                .sum::<f64>()
                / nf,
            mean_swaps: records
                .iter()
                .map(|r| r.report.swaps_inserted as f64)
                .sum::<f64>()
                / nf,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::Mapper;
    use qcs_topology::surface::surface17;

    fn sample_record(name: &str, synthetic: bool) -> MappingRecord {
        let c = qcs_workloads::qft::qft(5).unwrap();
        let outcome = Mapper::trivial().map(&c, &surface17()).unwrap();
        MappingRecord {
            name: name.to_string(),
            family: "qft".to_string(),
            synthetic,
            profile: CircuitProfile::of(&c),
            report: outcome.report,
        }
    }

    #[test]
    fn json_round_trip() {
        let records = vec![sample_record("a", false), sample_record("b", true)];
        let json = MappingRecord::batch_to_json(&records);
        let back = MappingRecord::batch_from_json(&json).unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn summary_aggregates() {
        let records = [sample_record("a", false), sample_record("b", false)];
        let refs: Vec<&MappingRecord> = records.iter().collect();
        let s = SeriesSummary::of(&refs);
        assert_eq!(s.count, 2);
        assert!(s.mean_gate_overhead_pct >= 0.0);
        assert_eq!(s.mean_swaps, records[0].report.swaps_inserted as f64);
    }

    #[test]
    fn empty_summary_is_zero() {
        let s = SeriesSummary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean_swaps, 0.0);
    }
}
