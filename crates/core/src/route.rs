//! Routing: SWAP insertion to satisfy nearest-neighbour constraints.
//!
//! Mapping step 4 (Section III): "Routing or exchanging positions of
//! virtual qubits on the chip such that all qubits that need to interact
//! during circuit execution are adjacent … by inserting additional
//! quantum gates called SWAPs."
//!
//! Four routers, spanning the design space of the paper's refs \[35\]–\[42\]:
//!
//! * [`TrivialRouter`] — the OpenQL-style baseline used in Figs. 3/5:
//!   walk each blocked two-qubit gate's first operand along a shortest
//!   path until adjacent.
//! * [`BidirectionalRouter`] — same SWAP count, but both operands move
//!   toward the middle of the path, halving the inserted depth.
//! * [`LookaheadRouter`] — SABRE-style heuristic: maintains the DAG front
//!   layer and greedily picks the SWAP minimizing summed distances over
//!   the front layer plus a discounted extended set.
//! * [`NoiseAwareRouter`] — hardware-aware routing over calibrated error
//!   rates: the SWAP chain minimizes accumulated `−ln(fidelity)` instead
//!   of hop count, detouring around bad couplers.

use qcs_circuit::circuit::Circuit;
use qcs_circuit::dag::{DependencyDag, FrontLayer, LookaheadScratch};
use qcs_circuit::gate::{Gate, GateKind};
use qcs_graph::paths::UNREACHABLE;
use qcs_topology::device::Device;

use crate::error::UnsatisfiableReason;
use crate::layout::Layout;

/// Error raised during routing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError {
    /// A gate with more than two operands reached the router; decompose
    /// the circuit first.
    NonPrimitiveGate {
        /// Offending gate kind.
        kind: GateKind,
        /// Gate index in the input circuit.
        index: usize,
    },
    /// The layout does not match the circuit/device widths.
    LayoutMismatch,
    /// The router failed to make progress (internal heuristic livelock).
    Unroutable {
        /// Number of gates successfully routed before the stall.
        routed: usize,
    },
    /// The degraded device makes this routing problem impossible (layout
    /// on disabled qubits, or interacting qubits in disconnected healthy
    /// regions) — no router could succeed.
    Unsatisfiable(UnsatisfiableReason),
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::NonPrimitiveGate { kind, index } => {
                write!(
                    f,
                    "gate '{kind}' at index {index} has arity > 2; decompose first"
                )
            }
            RouteError::LayoutMismatch => write!(f, "layout does not match circuit/device"),
            RouteError::Unroutable { routed } => {
                write!(f, "router stalled after routing {routed} gates")
            }
            RouteError::Unsatisfiable(reason) => {
                write!(f, "degraded device makes routing impossible: {reason}")
            }
        }
    }
}

impl std::error::Error for RouteError {}

/// A routed circuit: physical operands, device width, SWAPs inserted.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutedCircuit {
    /// The physical circuit (operands are physical qubits; width equals
    /// the device's qubit count).
    pub circuit: Circuit,
    /// Layout before the first gate.
    pub initial: Layout,
    /// Layout after the last gate.
    pub final_layout: Layout,
    /// Number of SWAP gates inserted.
    pub swaps_inserted: usize,
    /// Deterministic work counter: candidate-SWAP score evaluations the
    /// router performed (0 for routers without heuristic scoring). The
    /// benchmark-regression gate compares this exactly across runs.
    pub score_evals: usize,
}

impl RoutedCircuit {
    /// Checks that every two-qubit gate acts on coupled physical qubits.
    pub fn respects_connectivity(&self, device: &Device) -> bool {
        self.circuit.gates().iter().all(|g| {
            let qs = g.qubits();
            qs.len() < 2 || device.are_adjacent(qs[0], qs[1])
        })
    }
}

/// A routing strategy.
///
/// `Send + Sync` so a `Mapper` holding a boxed router can be shared
/// read-only across the worker threads of the parallel suite engine.
pub trait Router: Send + Sync {
    /// Routes `circuit` on `device` starting from `initial`.
    ///
    /// The input circuit must contain only gates of arity ≤ 2 (run
    /// decomposition first for Toffolis).
    ///
    /// # Errors
    ///
    /// See [`RouteError`].
    fn route(
        &self,
        circuit: &Circuit,
        device: &Device,
        initial: Layout,
    ) -> Result<RoutedCircuit, RouteError>;

    /// Strategy name for reports.
    fn name(&self) -> &'static str;
}

fn check_inputs(circuit: &Circuit, device: &Device, initial: &Layout) -> Result<(), RouteError> {
    if initial.virtual_count() != circuit.qubit_count()
        || initial.physical_count() != device.qubit_count()
    {
        return Err(RouteError::LayoutMismatch);
    }
    for (i, g) in circuit.iter().enumerate() {
        if g.arity() > 2 {
            return Err(RouteError::NonPrimitiveGate {
                kind: g.kind(),
                index: i,
            });
        }
    }
    // Degraded-device feasibility: every router relies on the layout
    // living entirely inside one healthy region. SWAPs only ever traverse
    // in-service couplers (`Device::neighbors` / `shortest_path` are
    // health-filtered), so these two invariants hold for the whole run
    // once they hold for the initial layout.
    if !device.health().is_empty() {
        for (virt, &phys) in initial.as_assignment().iter().enumerate() {
            if !device.is_qubit_active(phys) {
                return Err(RouteError::Unsatisfiable(
                    UnsatisfiableReason::DisabledQubitInLayout { virt, phys },
                ));
            }
        }
        for g in circuit.iter().filter(|g| g.is_two_qubit()) {
            let qs = g.qubits();
            let (pa, pb) = (initial.phys_of(qs[0]), initial.phys_of(qs[1]));
            if device.distance(pa, pb) == UNREACHABLE {
                return Err(RouteError::Unsatisfiable(
                    UnsatisfiableReason::NoHealthyPath { from: pa, to: pb },
                ));
            }
        }
    }
    Ok(())
}

/// Emits the gate with operands translated to physical qubits.
fn emit_physical(out: &mut Circuit, layout: &Layout, gate: &Gate) {
    let phys = gate.map_qubits(|q| layout.phys_of(q));
    out.push(phys)
        .expect("physical operands are in device range");
}

/// Inserts a SWAP on physical qubits `(p, q)` and updates the layout.
fn emit_swap(out: &mut Circuit, layout: &mut Layout, p: usize, q: usize, swaps: &mut usize) {
    out.push(Gate::Swap(p, q))
        .expect("coupler endpoints are valid");
    layout.swap_physical(p, q);
    *swaps += 1;
}

/// The OpenQL-style trivial router (program order, shortest-path chains).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrivialRouter;

impl Router for TrivialRouter {
    fn route(
        &self,
        circuit: &Circuit,
        device: &Device,
        initial: Layout,
    ) -> Result<RoutedCircuit, RouteError> {
        check_inputs(circuit, device, &initial)?;
        let mut layout = initial.clone();
        let mut out = Circuit::with_name(device.qubit_count(), circuit.name().to_string());
        let mut swaps = 0usize;
        for g in circuit.iter() {
            if g.is_two_qubit() {
                let qs = g.qubits();
                let (pa, pb) = (layout.phys_of(qs[0]), layout.phys_of(qs[1]));
                if !device.are_adjacent(pa, pb) {
                    let path = device.shortest_path(pa, pb);
                    // Walk the first operand up to the neighbour of pb.
                    for w in path.windows(2).take(path.len() - 2) {
                        emit_swap(&mut out, &mut layout, w[0], w[1], &mut swaps);
                    }
                }
            }
            emit_physical(&mut out, &layout, g);
        }
        Ok(RoutedCircuit {
            circuit: out,
            initial,
            final_layout: layout,
            swaps_inserted: swaps,
            score_evals: 0,
        })
    }

    fn name(&self) -> &'static str {
        "trivial"
    }
}

/// Meet-in-the-middle router: both operands move toward the path centre.
/// Same SWAP count as [`TrivialRouter`], roughly half the inserted depth
/// (the two SWAP chains run in parallel).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BidirectionalRouter;

impl Router for BidirectionalRouter {
    fn route(
        &self,
        circuit: &Circuit,
        device: &Device,
        initial: Layout,
    ) -> Result<RoutedCircuit, RouteError> {
        check_inputs(circuit, device, &initial)?;
        let mut layout = initial.clone();
        let mut out = Circuit::with_name(device.qubit_count(), circuit.name().to_string());
        let mut swaps = 0usize;
        for g in circuit.iter() {
            if g.is_two_qubit() {
                let qs = g.qubits();
                let (pa, pb) = (layout.phys_of(qs[0]), layout.phys_of(qs[1]));
                if !device.are_adjacent(pa, pb) {
                    let path = device.shortest_path(pa, pb);
                    // path = [pa, x1, …, x_{k-1}, pb]; move pa forward
                    // `fwd` hops and pb backward the remaining hops so they
                    // end on adjacent sites. Interleave the two chains so a
                    // scheduler can overlap them.
                    let hops = path.len() - 2; // SWAPs needed in total
                    let fwd = hops / 2;
                    let mut fwd_steps: Vec<(usize, usize)> =
                        (0..fwd).map(|i| (path[i], path[i + 1])).collect();
                    let mut back_steps: Vec<(usize, usize)> = (0..hops - fwd)
                        .map(|i| (path[path.len() - 1 - i], path[path.len() - 2 - i]))
                        .collect();
                    fwd_steps.reverse();
                    back_steps.reverse();
                    while !fwd_steps.is_empty() || !back_steps.is_empty() {
                        if let Some((p, q)) = fwd_steps.pop() {
                            emit_swap(&mut out, &mut layout, p, q, &mut swaps);
                        }
                        if let Some((p, q)) = back_steps.pop() {
                            emit_swap(&mut out, &mut layout, p, q, &mut swaps);
                        }
                    }
                }
            }
            emit_physical(&mut out, &layout, g);
        }
        Ok(RoutedCircuit {
            circuit: out,
            initial,
            final_layout: layout,
            swaps_inserted: swaps,
            score_evals: 0,
        })
    }

    fn name(&self) -> &'static str {
        "bidirectional"
    }
}

/// SABRE-style look-ahead router.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LookaheadRouter {
    /// Dependency-steps of look-ahead (extended set horizon).
    pub lookahead_depth: usize,
    /// Weight of the extended set in the SWAP score.
    pub extended_weight: f64,
}

impl Default for LookaheadRouter {
    fn default() -> Self {
        LookaheadRouter {
            lookahead_depth: 8,
            extended_weight: 0.5,
        }
    }
}

/// Incremental SWAP scorer for the SABRE-style routing loop.
///
/// The historical implementation cloned the whole [`Layout`] for every
/// candidate SWAP of every blocked step and re-summed all front/extended
/// distances on the clone — two heap allocations plus an O(pairs) rescore
/// per candidate. This scorer keeps the *physical* endpoint pairs of the
/// front layer and extended set in reusable buffers and scores a
/// candidate `SWAP(p, q)` as a delta: a swap of physical qubits `p` and
/// `q` only changes distance terms whose endpoints touch `p` or `q`, so
/// the candidate's score is the prepared base sum plus the per-pair
/// distance differences — no clone, no layout mutation.
///
/// Distance sums are accumulated in integers and converted to `f64` only
/// at the end. Every distance is a small hop count, so the integer sums
/// are exact and bit-identical to the historical sequential `f64`
/// accumulation (integers below 2⁵³ are exactly representable): routed
/// output is byte-for-byte unchanged.
#[derive(Debug, Clone, Default)]
pub struct SwapScorer {
    /// Physical endpoint pairs of blocked front-layer gates.
    front: Vec<(usize, usize)>,
    /// Physical endpoint pairs of the extended (lookahead) set.
    ext: Vec<(usize, usize)>,
    /// Σ distance over `front` at prepare time.
    front_base: u64,
    /// Σ distance over `ext` at prepare time.
    ext_base: u64,
    /// Weight of the extended-set mean in the score.
    ext_weight: f64,
    /// Indices into `front` of pairs touching each physical qubit.
    front_inc: Vec<Vec<u32>>,
    /// Indices into `ext` of pairs touching each physical qubit.
    ext_inc: Vec<Vec<u32>>,
    /// Physical qubits whose incidence lists are non-empty (the only
    /// ones that need clearing on the next `prepare`).
    touched: Vec<usize>,
}

impl SwapScorer {
    /// A scorer with the given extended-set weight and empty pair tables.
    pub fn new(ext_weight: f64) -> Self {
        SwapScorer {
            ext_weight,
            ..SwapScorer::default()
        }
    }

    /// Changes the extended-set weight applied by [`Self::score_swap`].
    pub fn set_ext_weight(&mut self, ext_weight: f64) {
        self.ext_weight = ext_weight;
    }

    /// Rebuilds the pair tables from virtual qubit pairs under `layout`,
    /// reusing the buffers' capacity, and recomputes the base sums and
    /// the per-qubit incidence index.
    pub fn prepare(
        &mut self,
        device: &Device,
        layout: &Layout,
        front_virt: impl IntoIterator<Item = (usize, usize)>,
        ext_virt: impl IntoIterator<Item = (usize, usize)>,
    ) {
        self.front.clear();
        self.ext.clear();
        self.front_base = 0;
        self.ext_base = 0;
        let n = device.qubit_count();
        if self.front_inc.len() < n {
            self.front_inc.resize_with(n, Vec::new);
            self.ext_inc.resize_with(n, Vec::new);
        }
        for &t in &self.touched {
            self.front_inc[t].clear();
            self.ext_inc[t].clear();
        }
        self.touched.clear();
        for (a, b) in front_virt {
            let (pa, pb) = (layout.phys_of(a), layout.phys_of(b));
            self.front_base += device.distance(pa, pb) as u64;
            let i = self.front.len() as u32;
            self.front.push((pa, pb));
            self.touched.push(pa);
            self.touched.push(pb);
            self.front_inc[pa].push(i);
            self.front_inc[pb].push(i);
        }
        for (a, b) in ext_virt {
            let (pa, pb) = (layout.phys_of(a), layout.phys_of(b));
            self.ext_base += device.distance(pa, pb) as u64;
            let i = self.ext.len() as u32;
            self.ext.push((pa, pb));
            self.touched.push(pa);
            self.touched.push(pb);
            self.ext_inc[pa].push(i);
            self.ext_inc[pb].push(i);
        }
    }

    /// The prepared physical front-layer pairs (candidate generation
    /// walks their endpoints' neighbours).
    pub fn front_pairs(&self) -> &[(usize, usize)] {
        &self.front
    }

    /// Signed distance change of one pair table under `SWAP(p, q)`,
    /// visiting only pairs the incidence index says touch `p` or `q`.
    ///
    /// A pair equal to `{p, q}` appears in both incidence lists and is
    /// visited twice; each visit contributes `dist(q, p) − dist(p, q)`,
    /// which is zero on the symmetric BFS distance matrix, so the
    /// double-visit is exact (matches a single visit of a full scan).
    fn delta(
        pairs: &[(usize, usize)],
        inc: &[Vec<u32>],
        device: &Device,
        p: usize,
        q: usize,
    ) -> i64 {
        let mut delta = 0i64;
        for &i in inc[p].iter().chain(inc[q].iter()) {
            let (a, b) = pairs[i as usize];
            let na = if a == p {
                q
            } else if a == q {
                p
            } else {
                a
            };
            let nb = if b == p {
                q
            } else if b == q {
                p
            } else {
                b
            };
            delta += device.distance(na, nb) as i64 - device.distance(a, b) as i64;
        }
        delta
    }

    /// Score of the prepared layout with `SWAP(p, q)` applied: summed
    /// front-layer distances plus `ext_weight ×` the extended-set mean —
    /// exactly what a full rescore of a swapped layout clone would
    /// return. Distance sums are integers, so accumulation order cannot
    /// change the result.
    pub fn score_swap(&self, device: &Device, p: usize, q: usize) -> f64 {
        let front = (self.front_base as i64
            + Self::delta(&self.front, &self.front_inc, device, p, q)) as f64;
        let ext = if self.ext.is_empty() {
            0.0
        } else {
            (self.ext_base as i64 + Self::delta(&self.ext, &self.ext_inc, device, p, q)) as f64
                / self.ext.len() as f64
        };
        front + self.ext_weight * ext
    }
}

impl Router for LookaheadRouter {
    fn route(
        &self,
        circuit: &Circuit,
        device: &Device,
        initial: Layout,
    ) -> Result<RoutedCircuit, RouteError> {
        check_inputs(circuit, device, &initial)?;
        let mut layout = initial.clone();
        let mut out = Circuit::with_name(device.qubit_count(), circuit.name().to_string());
        let mut swaps = 0usize;
        let mut score_evals = 0usize;
        let dag = DependencyDag::new(circuit);
        let mut fl = FrontLayer::new(&dag);
        let mut last_swap: Option<(usize, usize)> = None;
        // Generous stall guard: every gate should route within a chip
        // diameter's worth of SWAPs.
        let budget = (circuit.len() + 1) * (device.diameter() + 2) * 4;
        let mut steps = 0usize;
        // Scratch owned by this routing run, reused across every blocked
        // step: the incremental scorer's pair tables, the candidate edge
        // list, and the drain loop's active-gate snapshot. The hot loop
        // below allocates nothing.
        let mut scorer = SwapScorer::new(self.extended_weight);
        let mut candidates: Vec<(usize, usize)> = Vec::new();
        let mut active: Vec<usize> = Vec::new();
        let mut ext: Vec<usize> = Vec::new();
        let mut la_scratch = LookaheadScratch::default();

        while !fl.is_done() {
            // Drain everything executable.
            let mut progressed = true;
            while progressed {
                progressed = false;
                active.clear();
                active.extend_from_slice(fl.active());
                for &gi in &active {
                    let g = dag.gate(gi);
                    let executable = if g.is_two_qubit() {
                        let qs = g.qubits();
                        device.are_adjacent(layout.phys_of(qs[0]), layout.phys_of(qs[1]))
                    } else {
                        true
                    };
                    if executable {
                        emit_physical(&mut out, &layout, g);
                        fl.resolve(gi);
                        progressed = true;
                        last_swap = None;
                    }
                }
            }
            if fl.is_done() {
                break;
            }
            steps += 1;
            if steps > budget {
                return Err(RouteError::Unroutable {
                    routed: fl.resolved_count(),
                });
            }

            // Blocked: prepare the incremental scorer from the front
            // layer and the discounted extended set.
            let two_qubit_pairs = |gi: &usize| {
                let g = dag.gate(*gi);
                g.is_two_qubit().then(|| {
                    let qs = g.qubits();
                    (qs[0], qs[1])
                })
            };
            fl.lookahead_into(self.lookahead_depth, &mut ext, &mut la_scratch);
            scorer.prepare(
                device,
                &layout,
                fl.active().iter().filter_map(two_qubit_pairs),
                ext.iter().filter_map(two_qubit_pairs),
            );

            // Candidates: coupler edges touching any front-pair operand.
            candidates.clear();
            for &(pa, pb) in scorer.front_pairs() {
                for p in [pa, pb] {
                    for &q in device.neighbors(p) {
                        candidates.push((p.min(q), p.max(q)));
                    }
                }
            }
            candidates.sort_unstable();
            candidates.dedup();

            let mut best: Option<((usize, usize), f64)> = None;
            for &(p, q) in &candidates {
                if last_swap == Some((p, q)) {
                    continue; // forbid immediate undo (anti-oscillation)
                }
                let s = scorer.score_swap(device, p, q);
                score_evals += 1;
                if best.as_ref().is_none_or(|&(_, bs)| s < bs) {
                    best = Some(((p, q), s));
                }
            }
            let ((p, q), _) = best.ok_or(RouteError::Unroutable {
                routed: fl.resolved_count(),
            })?;
            emit_swap(&mut out, &mut layout, p, q, &mut swaps);
            last_swap = Some((p, q));
        }

        Ok(RoutedCircuit {
            circuit: out,
            initial,
            final_layout: layout,
            swaps_inserted: swaps,
            score_evals,
        })
    }

    fn name(&self) -> &'static str {
        "lookahead"
    }
}

/// Noise-aware router: SWAP chains minimize accumulated error instead of
/// hop count, so routing detours around weak couplers.
///
/// Edge cost is `3 × (−ln f)` for a SWAP (3 native two-qubit gates) plus
/// `−ln f` for the final gate's coupler.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoiseAwareRouter;

impl NoiseAwareRouter {
    /// Dijkstra with predecessor tracking over −ln-fidelity SWAP costs.
    fn best_chain(&self, device: &Device, from: usize, to: usize) -> Vec<usize> {
        let n = device.qubit_count();
        let edge_err = |u: usize, v: usize| -> f64 {
            let f = device
                .calibration()
                .two_qubit_fidelity(u, v)
                .unwrap_or(0.5)
                .clamp(1e-9, 1.0);
            -(f.ln())
        };
        let mut dist = vec![f64::INFINITY; n];
        let mut prev = vec![usize::MAX; n];
        let mut done = vec![false; n];
        dist[from] = 0.0;
        for _ in 0..n {
            let u = (0..n)
                .filter(|&u| !done[u])
                .min_by(|&a, &b| dist[a].partial_cmp(&dist[b]).expect("finite"))
                .expect("some node undone");
            if dist[u].is_infinite() {
                break;
            }
            done[u] = true;
            for &v in device.neighbors(u) {
                let nd = dist[u] + 3.0 * edge_err(u, v);
                if nd < dist[v] {
                    dist[v] = nd;
                    prev[v] = u;
                }
            }
        }
        // Best terminal: neighbour u of `to` minimizing chain + final gate.
        let mut best_u = from;
        let mut best_cost = f64::INFINITY;
        for &u in device.neighbors(to) {
            let c = dist[u] + edge_err(u, to);
            if c < best_cost {
                best_cost = c;
                best_u = u;
            }
        }
        // Reconstruct from → best_u.
        let mut path = vec![best_u];
        let mut cur = best_u;
        while cur != from {
            cur = prev[cur];
            path.push(cur);
        }
        path.reverse();
        path
    }
}

impl Router for NoiseAwareRouter {
    fn route(
        &self,
        circuit: &Circuit,
        device: &Device,
        initial: Layout,
    ) -> Result<RoutedCircuit, RouteError> {
        check_inputs(circuit, device, &initial)?;
        let mut layout = initial.clone();
        let mut out = Circuit::with_name(device.qubit_count(), circuit.name().to_string());
        let mut swaps = 0usize;
        for g in circuit.iter() {
            if g.is_two_qubit() {
                let qs = g.qubits();
                let (pa, pb) = (layout.phys_of(qs[0]), layout.phys_of(qs[1]));
                if !device.are_adjacent(pa, pb) {
                    let chain = self.best_chain(device, pa, pb);
                    for w in chain.windows(2) {
                        emit_swap(&mut out, &mut layout, w[0], w[1], &mut swaps);
                    }
                }
            }
            emit_physical(&mut out, &layout, g);
        }
        Ok(RoutedCircuit {
            circuit: out,
            initial,
            final_layout: layout,
            swaps_inserted: swaps,
            score_evals: 0,
        })
    }

    fn name(&self) -> &'static str {
        "noise-aware"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::place::{Placer, TrivialPlacer};
    use qcs_topology::lattice::{full_device, grid_device, line_device};
    use qcs_topology::surface::surface7;

    fn distant_pair_circuit() -> Circuit {
        let mut c = Circuit::new(5);
        c.cnot(0, 4).unwrap();
        c
    }

    fn routers() -> Vec<Box<dyn Router>> {
        vec![
            Box::new(TrivialRouter),
            Box::new(BidirectionalRouter),
            Box::new(LookaheadRouter::default()),
            Box::new(NoiseAwareRouter),
        ]
    }

    #[test]
    fn all_routers_satisfy_connectivity() {
        let c = distant_pair_circuit();
        let dev = line_device(5);
        for r in routers() {
            let init = TrivialPlacer.place(&c, &dev).unwrap();
            let routed = r.route(&c, &dev, init).unwrap();
            assert!(
                routed.respects_connectivity(&dev),
                "router {} violated connectivity",
                r.name()
            );
            assert_eq!(routed.swaps_inserted, 3, "router {}", r.name());
        }
    }

    #[test]
    fn adjacent_gates_need_no_swaps() {
        let mut c = Circuit::new(2);
        c.cnot(0, 1).unwrap().h(0).unwrap().measure_all();
        let dev = line_device(3);
        for r in routers() {
            let init = TrivialPlacer.place(&c, &dev).unwrap();
            let routed = r.route(&c, &dev, init).unwrap();
            assert_eq!(routed.swaps_inserted, 0, "router {}", r.name());
            assert_eq!(routed.final_layout, routed.initial, "router {}", r.name());
        }
    }

    #[test]
    fn full_device_never_swaps() {
        let mut c = Circuit::new(4);
        c.cnot(0, 3).unwrap().cz(1, 2).unwrap().cnot(3, 1).unwrap();
        let dev = full_device(4);
        for r in routers() {
            let init = TrivialPlacer.place(&c, &dev).unwrap();
            assert_eq!(r.route(&c, &dev, init).unwrap().swaps_inserted, 0);
        }
    }

    #[test]
    fn rejects_toffoli() {
        let mut c = Circuit::new(3);
        c.toffoli(0, 1, 2).unwrap();
        let dev = line_device(3);
        let init = TrivialPlacer.place(&c, &dev).unwrap();
        assert!(matches!(
            TrivialRouter.route(&c, &dev, init),
            Err(RouteError::NonPrimitiveGate {
                kind: GateKind::Toffoli,
                index: 0
            })
        ));
    }

    #[test]
    fn rejects_layout_mismatch() {
        let c = distant_pair_circuit();
        let dev = line_device(5);
        let wrong = Layout::identity(3, 5);
        assert_eq!(
            TrivialRouter.route(&c, &dev, wrong).unwrap_err(),
            RouteError::LayoutMismatch
        );
    }

    #[test]
    fn trivial_router_tracks_layout() {
        let c = distant_pair_circuit();
        let dev = line_device(5);
        let routed = TrivialRouter
            .route(&c, &dev, Layout::identity(5, 5))
            .unwrap();
        // Virtual 0 walked from physical 0 to physical 3.
        assert_eq!(routed.final_layout.phys_of(0), 3);
        assert_eq!(routed.final_layout.phys_of(4), 4);
        assert!(routed.final_layout.is_consistent());
    }

    #[test]
    fn bidirectional_halves_depth() {
        // Distance-5 pair on a line of 6: 4 SWAPs. Trivial = serial chain
        // (depth 5 incl. gate); bidirectional overlaps the two chains.
        let mut c = Circuit::new(6);
        c.cnot(0, 5).unwrap();
        let dev = line_device(6);
        let t = TrivialRouter
            .route(&c, &dev, Layout::identity(6, 6))
            .unwrap();
        let b = BidirectionalRouter
            .route(&c, &dev, Layout::identity(6, 6))
            .unwrap();
        assert_eq!(t.swaps_inserted, b.swaps_inserted);
        assert!(
            b.circuit.depth() < t.circuit.depth(),
            "bidirectional {} vs trivial {}",
            b.circuit.depth(),
            t.circuit.depth()
        );
        assert!(b.respects_connectivity(&dev));
    }

    #[test]
    fn lookahead_beats_trivial_on_repeated_pairs() {
        // Program: (0,4) then (0,4) again. Trivial re-routes per gate but
        // the moved layout persists, so second gate is free; lookahead
        // must be no worse.
        let mut c = Circuit::new(5);
        c.cnot(0, 4)
            .unwrap()
            .cnot(0, 4)
            .unwrap()
            .cnot(0, 4)
            .unwrap();
        let dev = line_device(5);
        let t = TrivialRouter
            .route(&c, &dev, Layout::identity(5, 5))
            .unwrap();
        let l = LookaheadRouter::default()
            .route(&c, &dev, Layout::identity(5, 5))
            .unwrap();
        assert!(l.swaps_inserted <= t.swaps_inserted);
        assert!(l.respects_connectivity(&dev));
    }

    #[test]
    fn lookahead_routes_surface7_fig2() {
        let mut c = Circuit::new(4);
        c.cnot(1, 0)
            .unwrap()
            .cnot(1, 2)
            .unwrap()
            .cnot(2, 3)
            .unwrap();
        c.cnot(2, 0).unwrap().cnot(1, 2).unwrap();
        let dev = surface7();
        let routed = LookaheadRouter::default()
            .route(&c, &dev, Layout::identity(4, 7))
            .unwrap();
        assert!(routed.respects_connectivity(&dev));
        // Fig. 2 shows one extra SWAP suffices for this circuit.
        assert!(routed.swaps_inserted >= 1);
    }

    #[test]
    fn noise_aware_detours_around_bad_coupler() {
        // Grid 1x… no, need alternative paths: a 2x3 grid, route (0, 2).
        // Degrade the direct middle coupler (1,2) so the router prefers
        // the southern detour.
        let mut dev = grid_device(2, 3);
        // Path 0-1-2 (top row) vs 0-3-4-5-2 (bottom detour).
        dev.calibration_mut().set_two_qubit_fidelity(0, 1, 0.30);
        dev.calibration_mut().set_two_qubit_fidelity(1, 2, 0.30);
        let mut c = Circuit::new(6);
        c.cnot(0, 2).unwrap();
        let routed = NoiseAwareRouter
            .route(&c, &dev, Layout::identity(6, 6))
            .unwrap();
        assert!(routed.respects_connectivity(&dev));
        // The detour costs 3 SWAPs instead of 1; it is chosen only when
        // the error model makes it cheaper: 4 hops of good edges vs 2 of
        // terrible ones. 3·(−ln 0.99)·3 + … let us simply check the router
        // avoided the degraded couplers entirely.
        for g in routed.circuit.gates() {
            let qs = g.qubits();
            if qs.len() == 2 {
                let pair = (qs[0].min(qs[1]), qs[0].max(qs[1]));
                assert_ne!(pair, (0, 1), "used degraded coupler (0,1)");
                assert_ne!(pair, (1, 2), "used degraded coupler (1,2)");
            }
        }
    }

    #[test]
    fn measurement_and_barrier_pass_through() {
        let mut c = Circuit::new(2);
        c.h(0).unwrap().measure(0).unwrap();
        c.barrier_all();
        let dev = line_device(4);
        let routed = TrivialRouter
            .route(&c, &dev, Layout::identity(2, 4))
            .unwrap();
        assert_eq!(routed.circuit.len(), 4);
        assert_eq!(routed.circuit.qubit_count(), 4);
    }

    #[test]
    fn routers_detour_around_disabled_coupler() {
        use qcs_topology::DeviceHealth;
        // Ring of 6 with coupler (0, 5) dead: routing (0, 5) must go the
        // long way round without ever touching the dead link.
        let dev = qcs_topology::lattice::ring_device(6)
            .degrade(&DeviceHealth::new().disable_coupler(0, 5))
            .unwrap();
        let mut c = Circuit::new(6);
        c.cnot(0, 5).unwrap();
        for r in routers() {
            let routed = r.route(&c, &dev, Layout::identity(6, 6)).unwrap();
            assert!(
                routed.respects_connectivity(&dev),
                "router {} used a dead coupler",
                r.name()
            );
            for g in routed.circuit.gates() {
                let qs = g.qubits();
                if qs.len() == 2 {
                    assert_ne!(
                        (qs[0].min(qs[1]), qs[0].max(qs[1])),
                        (0, 5),
                        "router {} crossed the disabled coupler",
                        r.name()
                    );
                }
            }
        }
    }

    #[test]
    fn unsatisfiable_layouts_are_rejected_up_front() {
        use crate::error::UnsatisfiableReason;
        use qcs_topology::DeviceHealth;
        let mut c = Circuit::new(2);
        c.cnot(0, 1).unwrap();
        // Layout occupying a disabled qubit.
        let dev = line_device(4)
            .degrade(&DeviceHealth::new().disable_qubit(1))
            .unwrap();
        assert_eq!(
            TrivialRouter
                .route(&c, &dev, Layout::identity(2, 4))
                .unwrap_err(),
            RouteError::Unsatisfiable(UnsatisfiableReason::DisabledQubitInLayout {
                virt: 1,
                phys: 1
            })
        );
        // Interacting pair split across disconnected healthy regions.
        let split = line_device(5)
            .degrade(&DeviceHealth::new().disable_qubit(2))
            .unwrap();
        let layout = Layout::from_assignment(vec![0, 4], 5).unwrap();
        assert_eq!(
            TrivialRouter.route(&c, &split, layout).unwrap_err(),
            RouteError::Unsatisfiable(UnsatisfiableReason::NoHealthyPath { from: 0, to: 4 })
        );
    }

    #[test]
    fn router_names() {
        assert_eq!(TrivialRouter.name(), "trivial");
        assert_eq!(LookaheadRouter::default().name(), "lookahead");
        assert_eq!(NoiseAwareRouter.name(), "noise-aware");
        assert_eq!(BidirectionalRouter.name(), "bidirectional");
    }
}
