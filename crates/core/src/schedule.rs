//! Gate scheduling: ASAP/ALAP timing with durations and shared-control
//! constraints.
//!
//! Mapping step 2 (Section III): "Scheduling quantum operations to
//! leverage parallelism and therefore shorten execution time", subject to
//! the "classical control constraints that come from the use of shared
//! control electronics … this limits the operations' parallelization".

use qcs_circuit::circuit::Circuit;
use qcs_circuit::gate::Gate;
use qcs_topology::error::GateDurations;

/// A gate with assigned start time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduledGate {
    /// Index of the gate in the source circuit.
    pub index: usize,
    /// The gate itself.
    pub gate: Gate,
    /// Start time in nanoseconds.
    pub start_ns: f64,
    /// Duration in nanoseconds.
    pub duration_ns: f64,
}

impl ScheduledGate {
    /// End time in nanoseconds.
    pub fn end_ns(&self) -> f64 {
        self.start_ns + self.duration_ns
    }
}

/// A timed schedule of a circuit.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Scheduled gates, ordered by source index.
    pub gates: Vec<ScheduledGate>,
    /// Total execution time (latest end) in nanoseconds.
    pub makespan_ns: f64,
}

impl Schedule {
    /// Number of scheduled operations.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Maximum number of gates overlapping at any instant — the
    /// parallelism the control electronics must sustain.
    pub fn peak_parallelism(&self) -> usize {
        let mut events: Vec<(f64, i32)> = Vec::with_capacity(self.gates.len() * 2);
        for g in &self.gates {
            if g.duration_ns > 0.0 {
                events.push((g.start_ns, 1));
                events.push((g.end_ns(), -1));
            }
        }
        events.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite").then(a.1.cmp(&b.1)));
        let mut cur = 0i32;
        let mut peak = 0i32;
        for (_, d) in events {
            cur += d;
            peak = peak.max(cur);
        }
        peak.max(0) as usize
    }

    /// Total idle time summed over qubits that appear in the schedule
    /// (time between a qubit's first and last op not spent operating).
    pub fn total_idle_ns(&self, qubit_count: usize) -> f64 {
        let mut first = vec![f64::INFINITY; qubit_count];
        let mut last = vec![0.0f64; qubit_count];
        let mut busy = vec![0.0f64; qubit_count];
        for g in &self.gates {
            for q in g.gate.qubits() {
                first[q] = first[q].min(g.start_ns);
                last[q] = last[q].max(g.end_ns());
                busy[q] += g.duration_ns;
            }
        }
        (0..qubit_count)
            .filter(|&q| first[q].is_finite())
            .map(|q| (last[q] - first[q]) - busy[q])
            .sum()
    }
}

/// Shared-control constraint: qubits in the same group share classical
/// control hardware, so at most one *gate start* per group per instant.
///
/// An empty set of groups means unconstrained scheduling.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ControlGroups {
    groups: Vec<Vec<usize>>,
}

impl ControlGroups {
    /// No shared-control constraints.
    pub fn unconstrained() -> Self {
        ControlGroups::default()
    }

    /// Builds groups from explicit qubit lists.
    pub fn new(groups: Vec<Vec<usize>>) -> Self {
        ControlGroups { groups }
    }

    /// Groups every qubit with the others sharing `stride` (models
    /// frequency-multiplexed drive lines: qubits `q`, `q + stride`, …).
    pub fn multiplexed(qubit_count: usize, stride: usize) -> Self {
        assert!(stride > 0, "stride must be positive");
        let mut groups = vec![Vec::new(); stride.min(qubit_count)];
        for q in 0..qubit_count {
            groups[q % stride].push(q);
        }
        ControlGroups { groups }
    }

    /// The group index of `q`, if any.
    pub fn group_of(&self, q: usize) -> Option<usize> {
        self.groups.iter().position(|g| g.contains(&q))
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether there are no constraints.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }
}

/// The duration of `gate` under `durations` (barriers take zero time).
pub fn gate_duration(gate: &Gate, durations: &GateDurations) -> f64 {
    match gate {
        Gate::Barrier(_) => 0.0,
        Gate::Measure(_) => durations.measurement_ns,
        Gate::Swap(..) => 3.0 * durations.two_qubit_ns, // 3 native 2q gates
        g if g.is_two_qubit() => durations.two_qubit_ns,
        Gate::Toffoli(..) => 6.0 * durations.two_qubit_ns + 9.0 * durations.single_qubit_ns,
        _ => durations.single_qubit_ns,
    }
}

/// ASAP (as-soon-as-possible) list scheduling.
///
/// Each gate starts at the max end-time of its operand qubits; when
/// `controls` constrains a gate's qubits, its start is additionally
/// pushed past the last start in the same control group (one gate start
/// per group per instant).
pub fn schedule_asap(
    circuit: &Circuit,
    durations: &GateDurations,
    controls: &ControlGroups,
) -> Schedule {
    let mut qubit_free = vec![0.0f64; circuit.qubit_count()];
    let mut group_last_start = vec![0.0f64; controls.len()];
    let mut group_busy = vec![false; controls.len()];
    let mut gates = Vec::with_capacity(circuit.len());
    let mut makespan = 0.0f64;

    for (index, g) in circuit.iter().enumerate() {
        let qs = g.qubits();
        let mut start = qs.iter().map(|&q| qubit_free[q]).fold(0.0, f64::max);
        let dur = gate_duration(g, durations);
        // Control constraint: strictly after the last start in the group.
        if dur > 0.0 {
            for &q in &qs {
                if let Some(gr) = controls.group_of(q) {
                    if group_busy[gr] && start <= group_last_start[gr] {
                        start = group_last_start[gr] + 1.0; // 1 ns stagger
                    }
                }
            }
        }
        for &q in &qs {
            qubit_free[q] = start + dur;
        }
        if dur > 0.0 {
            for &q in &qs {
                if let Some(gr) = controls.group_of(q) {
                    group_last_start[gr] = start;
                    group_busy[gr] = true;
                }
            }
        }
        makespan = makespan.max(start + dur);
        gates.push(ScheduledGate {
            index,
            gate: *g,
            start_ns: start,
            duration_ns: dur,
        });
    }

    Schedule {
        gates,
        makespan_ns: makespan,
    }
}

/// ALAP (as-late-as-possible) scheduling: same makespan as ASAP but gates
/// are pushed toward the end, minimizing early idling (useful when
/// decoherence clocks start at first use).
pub fn schedule_alap(
    circuit: &Circuit,
    durations: &GateDurations,
    controls: &ControlGroups,
) -> Schedule {
    let asap = schedule_asap(circuit, durations, controls);
    let makespan = asap.makespan_ns;
    // Reverse sweep: each gate ends when its qubits are next needed.
    let mut qubit_need = vec![makespan; circuit.qubit_count()];
    let mut gates: Vec<ScheduledGate> = Vec::with_capacity(circuit.len());
    for (index, g) in circuit.iter().enumerate().rev() {
        let qs = g.qubits();
        let dur = gate_duration(g, durations);
        let end = qs.iter().map(|&q| qubit_need[q]).fold(makespan, f64::min);
        let start = end - dur;
        for &q in &qs {
            qubit_need[q] = start;
        }
        gates.push(ScheduledGate {
            index,
            gate: *g,
            start_ns: start,
            duration_ns: dur,
        });
    }
    gates.reverse();
    Schedule {
        gates,
        makespan_ns: makespan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn durs() -> GateDurations {
        GateDurations::surface_code_defaults()
    }

    #[test]
    fn parallel_gates_overlap() {
        let mut c = Circuit::new(2);
        c.h(0).unwrap().h(1).unwrap();
        let s = schedule_asap(&c, &durs(), &ControlGroups::unconstrained());
        assert_eq!(s.gates[0].start_ns, 0.0);
        assert_eq!(s.gates[1].start_ns, 0.0);
        assert_eq!(s.makespan_ns, 20.0);
        assert_eq!(s.peak_parallelism(), 2);
    }

    #[test]
    fn dependent_gates_serialize() {
        let mut c = Circuit::new(2);
        c.h(0).unwrap().cnot(0, 1).unwrap().measure(1).unwrap();
        let s = schedule_asap(&c, &durs(), &ControlGroups::unconstrained());
        assert_eq!(s.gates[1].start_ns, 20.0);
        assert_eq!(s.gates[2].start_ns, 60.0);
        assert_eq!(s.makespan_ns, 360.0);
    }

    #[test]
    fn swap_costs_three_two_qubit_gates() {
        let mut c = Circuit::new(2);
        c.swap(0, 1).unwrap();
        let s = schedule_asap(&c, &durs(), &ControlGroups::unconstrained());
        assert_eq!(s.makespan_ns, 120.0);
    }

    #[test]
    fn control_groups_stagger_starts() {
        // Two independent H's on qubits sharing a control line cannot
        // start simultaneously.
        let mut c = Circuit::new(2);
        c.h(0).unwrap().h(1).unwrap();
        let groups = ControlGroups::new(vec![vec![0, 1]]);
        let s = schedule_asap(&c, &durs(), &groups);
        assert_ne!(s.gates[0].start_ns, s.gates[1].start_ns);
        assert!(s.makespan_ns > 20.0);
    }

    #[test]
    fn multiplexed_groups() {
        let g = ControlGroups::multiplexed(6, 2);
        assert_eq!(g.len(), 2);
        assert_eq!(g.group_of(0), Some(0));
        assert_eq!(g.group_of(3), Some(1));
        assert_eq!(g.group_of(4), Some(0));
        assert!(!g.is_empty());
        assert!(ControlGroups::unconstrained().is_empty());
    }

    #[test]
    fn alap_same_makespan_later_starts() {
        let mut c = Circuit::new(3);
        c.h(0).unwrap().h(1).unwrap().cnot(1, 2).unwrap();
        let un = ControlGroups::unconstrained();
        let asap = schedule_asap(&c, &durs(), &un);
        let alap = schedule_alap(&c, &durs(), &un);
        assert_eq!(asap.makespan_ns, alap.makespan_ns);
        // H(0) has no successors: ALAP pushes it to the end.
        assert!(alap.gates[0].start_ns > asap.gates[0].start_ns);
        // Dependencies still respected.
        assert!(alap.gates[2].start_ns >= alap.gates[1].end_ns());
    }

    #[test]
    fn idle_time_accounting() {
        let mut c = Circuit::new(2);
        c.h(0).unwrap().h(0).unwrap().cnot(0, 1).unwrap();
        let s = schedule_asap(&c, &durs(), &ControlGroups::unconstrained());
        // Qubit 1 first appears at the CNOT: zero idle. Qubit 0 never
        // idles between its ops.
        assert_eq!(s.total_idle_ns(2), 0.0);
    }

    #[test]
    fn barriers_zero_duration() {
        let mut c = Circuit::new(2);
        c.barrier_all();
        let s = schedule_asap(&c, &durs(), &ControlGroups::unconstrained());
        assert_eq!(s.makespan_ns, 0.0);
        assert_eq!(s.peak_parallelism(), 0);
    }

    #[test]
    fn empty_schedule() {
        let s = schedule_asap(&Circuit::new(3), &durs(), &ControlGroups::unconstrained());
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.makespan_ns, 0.0);
    }
}
