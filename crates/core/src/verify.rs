//! Independent post-compilation verification.
//!
//! The mapping pipeline only earns its fidelity claims if every routed
//! circuit is actually *legal* on the target device and *semantically
//! equivalent* to its input. [`verify_outcome`] is the t|ket⟩-style
//! validity predicate for a finished [`MapOutcome`]: it re-derives every
//! claim the report makes from the artifacts themselves, without trusting
//! any intermediate state of the pipeline that produced them.
//!
//! Checks, in order:
//!
//! 1. **Shape** — the routed/native circuits span exactly the device
//!    register and the layouts are internally consistent bijections.
//! 2. **Legality** — every gate operand is an in-service qubit and every
//!    two-qubit gate acts across a usable coupler
//!    ([`Device::are_adjacent`], which respects health overlays).
//! 3. **Permutation** — replaying the routed circuit's SWAPs from the
//!    initial layout must land exactly on the reported final layout.
//! 4. **Reconciliation** — gate counts, SWAP counts, two-qubit counts
//!    and depths in the [`MapReport`] must match a recount.
//! 5. **Equivalence** (small registers only) — the native circuit must
//!    implement the input circuit up to the tracked permutation, checked
//!    by [`qcs_sim::equiv::mapped_equivalent`] on seeded random states.
//!
//! Violations come back as a structured [`VerifyError`] — never a panic,
//! so a verification failure can demote one fallback-ladder rung instead
//! of killing a serving thread. The `verify.check` failpoint lets chaos
//! tests inject verification failures deterministically.

use std::cell::RefCell;

use qcs_circuit::circuit::Circuit;
use qcs_circuit::gate::GateKind;
use qcs_circuit::hash::circuit_digest;
use qcs_rng::{ChaCha8Rng, SeedableRng};
use qcs_sim::equiv::EquivScratch;
use qcs_topology::device::Device;

use crate::mapper::{MapOutcome, MapReport};

thread_local! {
    /// Per-thread simulator scratch: verification sweeps reuse the same
    /// four state buffers instead of allocating `2^width` amplitudes per
    /// equivalence trial.
    static EQUIV_SCRATCH: RefCell<EquivScratch> = RefCell::new(EquivScratch::default());
}

/// Everything [`verify_outcome`] can find wrong with a mapping outcome.
#[derive(Debug, Clone, PartialEq)]
pub enum VerifyError {
    /// The routed or native circuit is not device-width.
    WidthMismatch {
        /// Which artifact ("routed" or "native").
        artifact: &'static str,
        /// Width of the artifact.
        circuit: usize,
        /// Width of the device register.
        device: usize,
    },
    /// A gate touches an out-of-service qubit.
    InactiveOperand {
        /// Index of the offending gate in the native circuit.
        gate_index: usize,
        /// The disabled physical qubit.
        qubit: usize,
    },
    /// A two-qubit gate spans physical qubits with no usable coupler.
    UncoupledOperands {
        /// Index of the offending gate in the native circuit.
        gate_index: usize,
        /// First operand.
        a: usize,
        /// Second operand.
        b: usize,
    },
    /// The initial or final layout is not a consistent bijection.
    LayoutCorrupt {
        /// Which layout ("initial" or "final").
        which: &'static str,
    },
    /// Replaying the routed circuit's SWAPs from the initial layout does
    /// not reproduce the reported final layout.
    LayoutDrift {
        /// Virtual qubit whose tracked home diverged.
        virt: usize,
        /// Physical home after SWAP replay.
        replayed: usize,
        /// Physical home the final layout claims.
        reported: usize,
    },
    /// A figure in the report disagrees with a recount of the artifacts.
    CountMismatch {
        /// Which report field.
        field: &'static str,
        /// What the report claims.
        reported: usize,
        /// What the artifacts actually contain.
        actual: usize,
    },
    /// Simulation found the native circuit inequivalent to the input.
    NotEquivalent {
        /// Random-state trial at which the mismatch appeared.
        trial: usize,
        /// Observed state fidelity (should be ~1).
        fidelity: f64,
    },
    /// The equivalence simulation itself panicked (a checker bug — the
    /// outcome is treated as unverified, not as a crash).
    CheckPanicked(String),
    /// A `verify.check` failpoint injected this failure.
    Injected(String),
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::WidthMismatch {
                artifact,
                circuit,
                device,
            } => write!(
                f,
                "{artifact} circuit spans {circuit} qubits, device register has {device}"
            ),
            VerifyError::InactiveOperand { gate_index, qubit } => {
                write!(f, "gate {gate_index} acts on out-of-service qubit {qubit}")
            }
            VerifyError::UncoupledOperands { gate_index, a, b } => write!(
                f,
                "gate {gate_index} spans qubits {a} and {b} with no usable coupler"
            ),
            VerifyError::LayoutCorrupt { which } => {
                write!(f, "{which} layout is not a consistent bijection")
            }
            VerifyError::LayoutDrift {
                virt,
                replayed,
                reported,
            } => write!(
                f,
                "virtual qubit {virt} ends at physical {replayed} by SWAP replay, \
                 final layout claims {reported}"
            ),
            VerifyError::CountMismatch {
                field,
                reported,
                actual,
            } => write!(
                f,
                "report field '{field}' claims {reported}, artifacts contain {actual}"
            ),
            VerifyError::NotEquivalent { trial, fidelity } => write!(
                f,
                "native circuit not equivalent to input: trial {trial} fidelity {fidelity:.6}"
            ),
            VerifyError::CheckPanicked(message) => {
                write!(f, "equivalence checker panicked: {message}")
            }
            VerifyError::Injected(message) => write!(f, "injected verification failure: {message}"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Tuning for [`verify_outcome`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifyConfig {
    /// Run the simulation-based equivalence check only when the device
    /// register is at most this wide (state-vector cost is `2^width`).
    /// Structural checks always run.
    pub equiv_max_qubits: usize,
    /// Random input states per equivalence check.
    pub equiv_trials: usize,
    /// Treat SWAP gates in the routed/native circuits as physical
    /// *relocations* rather than gates: skip the coupler-adjacency
    /// requirement for them (operands must still be in-service qubits).
    ///
    /// Movement backends (neutral-atom arrays with AOD shuttling) lower
    /// each move to a SWAP stand-in between the source and destination
    /// sites so the permutation replay and statevector equivalence
    /// checks run unchanged; the sites involved are generally not within
    /// interaction radius of each other, and move legality (vacancy, AOD
    /// row/column ordering) is the backend's own responsibility. Always
    /// `false` for fixed-coupler devices, where a SWAP is three real
    /// entangling gates on one coupler.
    pub move_swaps: bool,
}

impl Default for VerifyConfig {
    fn default() -> Self {
        VerifyConfig {
            equiv_max_qubits: 12,
            equiv_trials: 2,
            move_swaps: false,
        }
    }
}

/// What a successful verification actually covered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VerifyReport {
    /// Structural checks (shape, legality, permutation, reconciliation)
    /// all passed. Always true on `Ok`.
    pub structural: bool,
    /// The simulation equivalence check ran (it is skipped for registers
    /// wider than [`VerifyConfig::equiv_max_qubits`]).
    pub equivalence_checked: bool,
}

fn check_counts(input: &Circuit, outcome: &MapOutcome) -> Result<(), VerifyError> {
    let report: &MapReport = &outcome.report;
    let mismatch = |field: &'static str, reported: usize, actual: usize| {
        if reported == actual {
            Ok(())
        } else {
            Err(VerifyError::CountMismatch {
                field,
                reported,
                actual,
            })
        }
    };
    mismatch("input_gates", report.input_gates, input.gate_count())?;
    mismatch(
        "decomposed_gates",
        report.decomposed_gates,
        outcome.decomposed.gate_count(),
    )?;
    mismatch(
        "original_two_qubit_gates",
        report.original_two_qubit_gates,
        outcome.decomposed.two_qubit_gate_count(),
    )?;
    mismatch(
        "routed_gates",
        report.routed_gates,
        outcome.native.gate_count(),
    )?;
    mismatch(
        "routed_two_qubit_gates",
        report.routed_two_qubit_gates,
        outcome.native.two_qubit_gate_count(),
    )?;
    let swaps = outcome
        .routed
        .circuit
        .gates()
        .iter()
        .filter(|g| g.kind() == GateKind::Swap)
        .count();
    mismatch("swaps_inserted", report.swaps_inserted, swaps)?;
    mismatch(
        "depth_before",
        report.depth_before,
        outcome.decomposed.depth(),
    )?;
    mismatch("depth_after", report.depth_after, outcome.native.depth())?;
    Ok(())
}

fn check_legality(
    outcome: &MapOutcome,
    device: &Device,
    config: &VerifyConfig,
) -> Result<(), VerifyError> {
    for (circuit, artifact) in [
        (&outcome.routed.circuit, "routed"),
        (&outcome.native, "native"),
    ] {
        if circuit.qubit_count() != device.qubit_count() {
            return Err(VerifyError::WidthMismatch {
                artifact,
                circuit: circuit.qubit_count(),
                device: device.qubit_count(),
            });
        }
        for (gate_index, gate) in circuit.gates().iter().enumerate() {
            let qubits = gate.qubits();
            for &q in &qubits {
                if !device.is_qubit_active(q) {
                    return Err(VerifyError::InactiveOperand {
                        gate_index,
                        qubit: q,
                    });
                }
            }
            let is_move = config.move_swaps && gate.kind() == GateKind::Swap;
            if qubits.len() == 2 && !is_move && !device.are_adjacent(qubits[0], qubits[1]) {
                return Err(VerifyError::UncoupledOperands {
                    gate_index,
                    a: qubits[0],
                    b: qubits[1],
                });
            }
        }
    }
    Ok(())
}

fn check_permutation(outcome: &MapOutcome) -> Result<(), VerifyError> {
    let routed = &outcome.routed;
    if !routed.initial.is_consistent() {
        return Err(VerifyError::LayoutCorrupt { which: "initial" });
    }
    if !routed.final_layout.is_consistent() {
        return Err(VerifyError::LayoutCorrupt { which: "final" });
    }
    let mut replay = routed.initial.clone();
    for gate in routed.circuit.gates() {
        if gate.kind() == GateKind::Swap {
            let qs = gate.qubits();
            if qs[0] != qs[1] {
                replay.swap_physical(qs[0], qs[1]);
            }
        }
    }
    for virt in 0..replay.virtual_count() {
        let replayed = replay.phys_of(virt);
        let reported = routed.final_layout.phys_of(virt);
        if replayed != reported {
            return Err(VerifyError::LayoutDrift {
                virt,
                replayed,
                reported,
            });
        }
    }
    Ok(())
}

fn check_equivalence(
    input: &Circuit,
    outcome: &MapOutcome,
    device: &Device,
    config: &VerifyConfig,
) -> Result<(), VerifyError> {
    // Deterministic per-circuit seed: same job, same trial states.
    let seed = circuit_digest(input) ^ 0x56_52_46_59; // "VRFY"
    let initial = outcome.routed.initial.as_assignment().to_vec();
    let final_layout = outcome.routed.final_layout.as_assignment().to_vec();
    let trials = config.equiv_trials.max(1);
    let width = device.qubit_count();
    // The simulator asserts on malformed placements; the structural
    // checks above should make that impossible, so a panic here is a
    // checker bug — report it, don't unwind into the caller.
    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        EQUIV_SCRATCH.with(|scratch| {
            qcs_sim::equiv::mapped_equivalent_with_scratch(
                input,
                &outcome.native,
                width,
                &initial,
                &final_layout,
                trials,
                &mut rng,
                &mut scratch.borrow_mut(),
            )
        })
    }));
    match run {
        Ok(Ok(())) => Ok(()),
        Ok(Err(failure)) => Err(VerifyError::NotEquivalent {
            trial: failure.trial,
            fidelity: failure.fidelity,
        }),
        Err(panic) => {
            let message = if let Some(s) = panic.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = panic.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            };
            Err(VerifyError::CheckPanicked(message))
        }
    }
}

/// Verifies a finished mapping outcome against its input and device.
///
/// See the module docs for the check catalogue. On success the returned
/// [`VerifyReport`] says whether the simulation equivalence check ran or
/// was skipped for width.
///
/// # Errors
///
/// The first [`VerifyError`] found, in check order. Never panics.
pub fn verify_outcome(
    input: &Circuit,
    outcome: &MapOutcome,
    device: &Device,
    config: &VerifyConfig,
) -> Result<VerifyReport, VerifyError> {
    // Chaos-test failpoint: error actions inject a verification failure,
    // panics unwind into the fallback ladder's isolation.
    if let qcs_faults::Hit::Error(message) = qcs_faults::hit("verify.check") {
        return Err(VerifyError::Injected(message));
    }
    check_legality(outcome, device, config)?;
    check_permutation(outcome)?;
    check_counts(input, outcome)?;
    let equivalence = device.qubit_count() <= config.equiv_max_qubits;
    if equivalence {
        check_equivalence(input, outcome, device, config)?;
    }
    Ok(VerifyReport {
        structural: true,
        equivalence_checked: equivalence,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::Mapper;
    use qcs_circuit::gate::Gate;
    use qcs_topology::lattice::{grid_device, line_device};
    use qcs_topology::surface::{surface17, surface7};

    fn fig2_circuit() -> Circuit {
        let mut c = Circuit::with_name(4, "fig2");
        c.cnot(1, 0)
            .unwrap()
            .cnot(1, 2)
            .unwrap()
            .cnot(2, 3)
            .unwrap();
        c.cnot(2, 0).unwrap().cnot(1, 2).unwrap();
        c
    }

    #[test]
    fn clean_outcome_verifies_with_equivalence() {
        let device = surface7();
        let input = fig2_circuit();
        let outcome = Mapper::trivial().map(&input, &device).unwrap();
        let report = verify_outcome(&input, &outcome, &device, &VerifyConfig::default()).unwrap();
        assert!(report.structural);
        assert!(report.equivalence_checked, "7-qubit device is small enough");
    }

    #[test]
    fn wide_device_skips_equivalence_but_verifies() {
        let device = surface17();
        let input = qcs_workloads::qft::qft(6).unwrap();
        let outcome = Mapper::algorithm_driven().map(&input, &device).unwrap();
        let report = verify_outcome(&input, &outcome, &device, &VerifyConfig::default()).unwrap();
        assert!(report.structural);
        assert!(!report.equivalence_checked, "17 > 12 qubits");
    }

    #[test]
    fn every_strategy_pair_survives_verification() {
        use crate::config::MapperConfig;
        let device = grid_device(3, 3);
        let input = qcs_workloads::ghz::ghz_chain(5).unwrap();
        for placer in MapperConfig::PLACERS {
            for router in MapperConfig::ROUTERS {
                let mapper = MapperConfig::new(*placer, *router).build().unwrap();
                let outcome = mapper.map(&input, &device).unwrap();
                verify_outcome(&input, &outcome, &device, &VerifyConfig::default())
                    .unwrap_or_else(|e| panic!("{placer}/{router}: {e}"));
            }
        }
    }

    #[test]
    fn detects_uncoupled_two_qubit_gate() {
        let device = line_device(4);
        let input = fig2_circuit();
        let mut outcome = Mapper::trivial().map(&input, &device).unwrap();
        // Corrupt the native circuit with a non-adjacent CNOT.
        outcome.native.push(Gate::Cnot(0, 3)).unwrap();
        let err = verify_outcome(&input, &outcome, &device, &VerifyConfig::default()).unwrap_err();
        assert!(matches!(
            err,
            VerifyError::UncoupledOperands { a: 0, b: 3, .. }
        ));
    }

    #[test]
    fn move_swaps_skips_adjacency_for_relocations_only() {
        let device = line_device(4);
        let input = fig2_circuit();
        let mut outcome = Mapper::trivial().map(&input, &device).unwrap();
        // Append a long-range relocation (a movement backend's SWAP
        // stand-in), tracked through the final layout and the report.
        outcome.routed.circuit.push(Gate::Swap(0, 3)).unwrap();
        outcome.routed.final_layout.swap_physical(0, 3);
        outcome.routed.swaps_inserted += 1;
        outcome.native.push(Gate::Swap(0, 3)).unwrap();
        outcome.report.swaps_inserted += 1;
        outcome.report.routed_gates += 1;
        outcome.report.routed_two_qubit_gates += 1;
        outcome.report.depth_after = outcome.native.depth();

        // Fixed-coupler rules reject the non-adjacent SWAP outright.
        let err = verify_outcome(&input, &outcome, &device, &VerifyConfig::default()).unwrap_err();
        assert!(matches!(
            err,
            VerifyError::UncoupledOperands { a: 0, b: 3, .. }
        ));

        // Movement rules accept it, and every other check still runs.
        let moves = VerifyConfig {
            move_swaps: true,
            ..VerifyConfig::default()
        };
        let report = verify_outcome(&input, &outcome, &device, &moves).unwrap();
        assert!(report.structural);
        assert!(report.equivalence_checked);

        // Non-SWAP gates stay bound by adjacency even in movement mode.
        outcome.native.push(Gate::Cnot(0, 3)).unwrap();
        outcome.report.routed_gates += 1;
        outcome.report.routed_two_qubit_gates += 1;
        outcome.report.depth_after = outcome.native.depth();
        let err = verify_outcome(&input, &outcome, &device, &moves).unwrap_err();
        assert!(matches!(
            err,
            VerifyError::UncoupledOperands { a: 0, b: 3, .. }
        ));
    }

    #[test]
    fn detects_gate_on_disabled_qubit() {
        use qcs_topology::DeviceHealth;
        let base = grid_device(3, 3);
        let input = qcs_workloads::ghz::ghz_chain(4).unwrap();
        let outcome = Mapper::trivial().map(&input, &base).unwrap();
        // Disable a qubit the routed circuit actually uses.
        let used = outcome
            .native
            .gates()
            .iter()
            .flat_map(|g| g.qubits())
            .next()
            .unwrap();
        let health = DeviceHealth::new().disable_qubit(used);
        let degraded = base.degrade(&health).unwrap();
        let err =
            verify_outcome(&input, &outcome, &degraded, &VerifyConfig::default()).unwrap_err();
        assert!(matches!(
            err,
            VerifyError::InactiveOperand { .. } | VerifyError::UncoupledOperands { .. }
        ));
    }

    #[test]
    fn detects_layout_drift() {
        let device = line_device(3);
        let mut input = Circuit::new(3);
        input.cnot(0, 2).unwrap();
        let mut outcome = Mapper::trivial().map(&input, &device).unwrap();
        assert!(outcome.routed.swaps_inserted >= 1);
        // Stale final layout: undo the router's tracking.
        outcome.routed.final_layout = outcome.routed.initial.clone();
        let err = verify_outcome(&input, &outcome, &device, &VerifyConfig::default()).unwrap_err();
        assert!(matches!(err, VerifyError::LayoutDrift { .. }));
    }

    #[test]
    fn detects_report_count_lies() {
        let device = surface7();
        let input = fig2_circuit();
        let mut outcome = Mapper::trivial().map(&input, &device).unwrap();
        outcome.report.swaps_inserted += 1;
        let err = verify_outcome(&input, &outcome, &device, &VerifyConfig::default()).unwrap_err();
        assert_eq!(
            err,
            VerifyError::CountMismatch {
                field: "swaps_inserted",
                reported: outcome.report.swaps_inserted,
                actual: outcome.report.swaps_inserted - 1,
            }
        );
    }

    #[test]
    fn detects_semantic_corruption() {
        let device = line_device(3);
        let mut input = Circuit::new(3);
        input.cnot(0, 1).unwrap().cnot(1, 2).unwrap();
        let mut outcome = Mapper::trivial().map(&input, &device).unwrap();
        // Structurally legal but semantically wrong: an extra native X.
        outcome.native.push(Gate::X(0)).unwrap();
        outcome.report.routed_gates += 1;
        outcome.report.depth_after = outcome.native.depth();
        let err = verify_outcome(&input, &outcome, &device, &VerifyConfig::default()).unwrap_err();
        assert!(
            matches!(
                err,
                VerifyError::NotEquivalent { .. } | VerifyError::CountMismatch { .. }
            ),
            "got {err}"
        );
    }

    #[test]
    fn injected_failure_is_structured() {
        let device = surface7();
        let input = fig2_circuit();
        let outcome = Mapper::trivial().map(&input, &device).unwrap();
        qcs_faults::arm(
            "verify.check",
            qcs_faults::FaultAction::Error("chaos".into()),
            qcs_faults::Policy::Once,
        );
        let err = verify_outcome(&input, &outcome, &device, &VerifyConfig::default()).unwrap_err();
        qcs_faults::disarm("verify.check");
        assert_eq!(err, VerifyError::Injected("chaos".into()));
    }
}
