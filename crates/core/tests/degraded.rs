//! Property tests over seeded random device degradations.
//!
//! The invariant under test is the tentpole guarantee of the degraded-
//! operation subsystem: whatever the outage (1–20% of qubits and
//! couplers disabled, any placer/router combination), a successful
//! mapping never touches a disabled resource and still implements the
//! source circuit — verified against the statevector simulator. When the
//! outage makes mapping impossible, the failure must be the structured
//! [`MapError::Unsatisfiable`], never a panic or a bogus layout.

use qcs_check::check;
use qcs_core::mapper::{MapError, Mapper};
use qcs_rng::{ChaCha8Rng, SeedableRng};
use qcs_topology::device::Device;
use qcs_topology::lattice::{grid_device, line_device, ring_device};
use qcs_topology::DeviceHealth;
use qcs_workloads::random::{random_circuit, RandomSpec};

/// Every pipeline the mapper exposes, by constructor.
fn mappers() -> Vec<(&'static str, Mapper)> {
    vec![
        ("trivial", Mapper::trivial()),
        ("lookahead", Mapper::lookahead()),
        ("algorithm-driven", Mapper::algorithm_driven()),
        ("noise-aware", Mapper::noise_aware()),
        ("subgraph", Mapper::subgraph()),
        ("sabre", Mapper::sabre()),
    ]
}

/// Small (≤ 12-qubit) hosts so statevector equivalence stays cheap.
fn devices() -> Vec<Device> {
    vec![grid_device(3, 4), ring_device(10), line_device(10)]
}

#[test]
fn mapped_circuits_never_touch_disabled_resources() {
    check("degraded-mapping", 12, |g| {
        let devices = devices();
        let pristine = g.choose(&devices);
        let qubit_frac = 0.01 + 0.19 * g.f64_unit();
        let coupler_frac = 0.01 + 0.19 * g.f64_unit();
        let health = DeviceHealth::random(pristine.coupling(), qubit_frac, coupler_frac, g.u64());
        let Ok(device) = pristine.degrade(&health) else {
            return; // overlay disabled everything: rejected up front, fine
        };

        let width = g.usize_in_incl(2..=device.active_qubit_count().min(6));
        let circuit = random_circuit(&RandomSpec {
            qubits: width,
            gates: g.usize_in_incl(10..=40),
            two_qubit_fraction: 0.4,
            seed: g.u64(),
        })
        .expect("random spec is valid");

        for (name, mapper) in mappers() {
            let outcome = match mapper.map(&circuit, &device) {
                Ok(outcome) => outcome,
                // The only acceptable failure on a degraded device is the
                // structured unsatisfiability taxonomy.
                Err(MapError::Unsatisfiable(_)) => continue,
                Err(other) => panic!(
                    "{name} failed non-structurally (seed {}): {other}",
                    g.seed()
                ),
            };

            for (virt, &phys) in outcome.routed.initial.as_assignment().iter().enumerate() {
                assert!(
                    device.is_qubit_active(phys),
                    "{name}: virtual {virt} placed on disabled qubit {phys}"
                );
            }
            for gate in outcome.routed.circuit.gates() {
                let qubits = gate.qubits();
                for &q in &qubits {
                    assert!(
                        device.is_qubit_active(q),
                        "{name}: gate {gate:?} touches disabled qubit {q}"
                    );
                }
                if gate.is_two_qubit() {
                    assert!(
                        device.are_adjacent(qubits[0], qubits[1]),
                        "{name}: gate {gate:?} crosses a disabled or absent coupler"
                    );
                }
            }

            // Routed output still implements the source circuit.
            let mut rng = ChaCha8Rng::seed_from_u64(g.seed() ^ 0xD15A);
            qcs_sim::equiv::mapped_equivalent(
                &outcome.decomposed,
                &outcome.routed.circuit,
                device.qubit_count(),
                outcome.routed.initial.as_assignment(),
                outcome.routed.final_layout.as_assignment(),
                2,
                &mut rng,
            )
            .unwrap_or_else(|e| {
                panic!("{name}: mapped circuit diverged on degraded device: {e:?}")
            });
        }
    });
}

#[test]
fn heavy_outages_fail_structurally_not_chaotically() {
    // 60–90% outages: most mappings are impossible; all failures must be
    // structured, and any success must still respect the health overlay.
    check("degraded-heavy", 8, |g| {
        let devices = devices();
        let pristine = g.choose(&devices);
        let health = DeviceHealth::random(
            pristine.coupling(),
            0.6 + 0.3 * g.f64_unit(),
            0.5 * g.f64_unit(),
            g.u64(),
        );
        let Ok(device) = pristine.degrade(&health) else {
            return;
        };
        let circuit = random_circuit(&RandomSpec {
            qubits: 4,
            gates: 12,
            two_qubit_fraction: 0.5,
            seed: g.u64(),
        })
        .expect("random spec is valid");
        for (name, mapper) in mappers() {
            match mapper.map(&circuit, &device) {
                Ok(outcome) => {
                    for gate in outcome.routed.circuit.gates() {
                        for &q in &gate.qubits() {
                            assert!(device.is_qubit_active(q), "{name}: disabled qubit used");
                        }
                    }
                }
                Err(MapError::Unsatisfiable(_)) => {}
                Err(other) => {
                    panic!(
                        "{name} failed non-structurally (seed {}): {other}",
                        g.seed()
                    )
                }
            }
        }
    });
}
