//! Property test: the router's incremental delta scoring is *exactly*
//! the full recompute it replaced.
//!
//! [`SwapScorer`] scores a candidate SWAP by adjusting cached integer
//! distance sums with the delta contributed by pairs touching the
//! swapped qubits, instead of cloning the layout and re-walking every
//! pair. Routing determinism (byte-identical output before/after the
//! optimization) rests on those two computations agreeing bit-for-bit,
//! so this test compares them with `==`, not a tolerance: distance sums
//! are small exact integers, so the f64 reference accumulation is exact
//! too. Instances cover pristine and randomly-degraded devices (disabled
//! qubits leave `UNREACHABLE` rows in the distance matrix — the scorer
//! must only ever see finite distances through placed, connected
//! qubits).

use qcs_check::check;
use qcs_core::layout::Layout;
use qcs_core::route::SwapScorer;
use qcs_topology::device::Device;
use qcs_topology::lattice::{grid_device, line_device, ring_device};
use qcs_topology::DeviceHealth;

/// Active qubits reachable from the first active qubit — distances
/// within one component are finite, which both scorer and reference
/// require.
fn largest_component(device: &Device) -> Vec<usize> {
    let Some(start) = device.active_qubits().next() else {
        return Vec::new();
    };
    let mut seen = vec![false; device.qubit_count()];
    let mut queue = vec![start];
    seen[start] = true;
    let mut comp = Vec::new();
    while let Some(u) = queue.pop() {
        comp.push(u);
        for &v in device.neighbors(u) {
            if !seen[v] {
                seen[v] = true;
                queue.push(v);
            }
        }
    }
    comp.sort_unstable();
    comp
}

/// The pre-optimization scoring path: clone the layout, apply the SWAP,
/// re-walk every pair summing BFS distances in f64.
fn full_recompute(
    device: &Device,
    layout: &Layout,
    front: &[(usize, usize)],
    ext: &[(usize, usize)],
    ext_weight: f64,
    p: usize,
    q: usize,
) -> f64 {
    let mut trial = layout.clone();
    trial.swap_physical(p, q);
    let dist =
        |(a, b): &(usize, usize)| device.distance(trial.phys_of(*a), trial.phys_of(*b)) as f64;
    let front_sum: f64 = front.iter().map(dist).sum();
    if ext.is_empty() {
        front_sum
    } else {
        let ext_sum: f64 = ext.iter().map(dist).sum();
        front_sum + ext_weight * (ext_sum / ext.len() as f64)
    }
}

#[test]
fn delta_score_equals_full_recompute() {
    // One scorer across all cases: `prepare` must fully supersede any
    // state left by earlier, differently-shaped instances.
    let mut scorer = SwapScorer::new(0.5);
    // 100 cases x (pristine + degraded) = at least 200 instances.
    check("delta-score", 100, |g| {
        let bases = [
            grid_device(3, 4),
            grid_device(4, 5),
            ring_device(10),
            line_device(10),
        ];
        let base = g.choose(&bases);
        let health = DeviceHealth::random(
            base.coupling(),
            0.01 + 0.19 * g.f64_unit(),
            0.01 + 0.19 * g.f64_unit(),
            g.u64(),
        );
        let mut instances = vec![base.clone()];
        if let Ok(degraded) = base.degrade(&health) {
            instances.push(degraded);
        }

        for device in &instances {
            let comp = largest_component(device);
            if comp.len() < 4 {
                continue;
            }

            // Place k virtuals on a random subset of the component.
            let k = g.usize_in_incl(2..=comp.len());
            let perm = g.permutation(comp.len());
            let assignment: Vec<usize> = perm[..k].iter().map(|&i| comp[i]).collect();
            let layout =
                Layout::from_assignment(assignment, device.qubit_count()).expect("valid layout");

            let pair = |g: &mut qcs_check::Gen| {
                let a = g.usize_in(0..k);
                let b = (a + g.usize_in(1..k)) % k;
                (a, b)
            };
            let front = g.vec(1..6, pair);
            let ext = g.vec(0..10, pair);
            let ext_weight = g.f64_in(0.0..1.0);

            scorer.set_ext_weight(ext_weight);
            scorer.prepare(device, &layout, front.iter().copied(), ext.iter().copied());

            // Score every active edge of the component, the candidate
            // set routing actually draws from.
            for &p in &comp {
                for &q in device.neighbors(p) {
                    if p < q {
                        let incremental = scorer.score_swap(device, p, q);
                        let full = full_recompute(device, &layout, &front, &ext, ext_weight, p, q);
                        assert_eq!(
                            incremental,
                            full,
                            "seed {}: swap ({p},{q}) diverged on {}",
                            g.seed(),
                            device.name()
                        );
                    }
                }
            }
        }
    });
}
