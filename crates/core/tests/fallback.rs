//! Failpoint-driven exercise of the fallback ladder: a strategy that
//! panics or errors must cost a request its preferred pipeline, never
//! its answer — and the report must say which rung served.
//!
//! The failpoint sites are per-strategy (`mapper.place.<placer>`,
//! `mapper.route.<router>`), so a chaos spec can kill exactly one rung's
//! strategy while the rest of the ladder stays healthy. The `qcs-faults`
//! registry is process-global; tests serialize on a local gate.

use std::sync::{Mutex, MutexGuard};

use qcs_core::config::MapperConfig;
use qcs_core::ladder::FallbackLadder;
use qcs_faults::{arm, reset, FaultAction, Policy};
use qcs_topology::surface::surface17;
use qcs_workloads::suite::{generate_suite, SuiteConfig};

fn serial() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(|p| p.into_inner())
}

fn qft5() -> qcs_circuit::circuit::Circuit {
    qcs_workloads::qft::qft(5).unwrap()
}

#[test]
fn panicking_primary_placer_falls_back_one_rung() {
    let _g = serial();
    reset();
    arm(
        "mapper.place.graph-similarity",
        FaultAction::Panic,
        Policy::Always,
    );
    let ladder = FallbackLadder::standard(MapperConfig::default());
    let outcome = ladder.map(&qft5(), &surface17()).unwrap();
    reset();
    assert_eq!(outcome.report.fallback_rung, 1);
    assert_eq!(outcome.report.placer, "sabre");
    assert!(outcome.report.verified);
}

#[test]
fn erroring_primary_and_secondary_fall_back_two_rungs() {
    let _g = serial();
    reset();
    arm(
        "mapper.place.graph-similarity",
        FaultAction::Error("calibration drift".into()),
        Policy::Always,
    );
    arm("mapper.place.sabre", FaultAction::Panic, Policy::Always);
    let ladder = FallbackLadder::standard(MapperConfig::default());
    let outcome = ladder.map(&qft5(), &surface17()).unwrap();
    reset();
    assert_eq!(outcome.report.fallback_rung, 2);
    assert_eq!(outcome.report.placer, "subgraph");
    assert!(outcome.report.verified);
}

#[test]
fn panicking_shared_router_degrades_to_trivial_pipeline() {
    let _g = serial();
    reset();
    // The first three standard rungs all route with `lookahead`; killing
    // it proves the ladder walks all the way down to trivial/trivial.
    arm("mapper.route.lookahead", FaultAction::Panic, Policy::Always);
    let ladder = FallbackLadder::standard(MapperConfig::default());
    let outcome = ladder.map(&qft5(), &surface17()).unwrap();
    reset();
    assert_eq!(outcome.report.fallback_rung, 3);
    assert_eq!(outcome.report.placer, "trivial");
    assert_eq!(outcome.report.router, "trivial");
    assert!(outcome.report.verified);
}

#[test]
fn every_rung_dead_is_a_structured_error_with_the_full_story() {
    let _g = serial();
    reset();
    arm("mapper.place", FaultAction::Panic, Policy::Always); // generic: every rung
    let ladder = FallbackLadder::standard(MapperConfig::default());
    let err = ladder.map(&qft5(), &surface17()).unwrap_err();
    reset();
    assert_eq!(err.attempts.len(), 4);
    assert!(err.attempts.iter().all(|a| a.error.contains("panicked")));
}

/// The acceptance sweep: primary placer armed to always panic, a full
/// generated suite still compiles with zero failures, and every report
/// names a non-primary serving rung.
#[test]
fn suite_sweep_survives_a_dead_primary_strategy() {
    let _g = serial();
    reset();
    arm(
        "mapper.place.graph-similarity",
        FaultAction::Panic,
        Policy::Always,
    );
    let suite = generate_suite(&SuiteConfig {
        count: 60,
        max_qubits: 12,
        max_gates: 300,
        seed: 11,
    });
    let ladder = FallbackLadder::standard(MapperConfig::default());
    let device = surface17();
    let mut failures = Vec::new();
    for benchmark in &suite {
        match ladder.map(&benchmark.circuit, &device) {
            Ok(outcome) => {
                assert!(
                    outcome.report.fallback_rung >= 1,
                    "{}: primary rung cannot serve while its placer panics",
                    benchmark.name
                );
                assert!(outcome.report.verified, "{}", benchmark.name);
            }
            Err(e) => failures.push(format!("{}: {e}", benchmark.name)),
        }
    }
    reset();
    assert!(
        failures.is_empty(),
        "ladder failed {} of {} suite requests:\n{}",
        failures.len(),
        suite.len(),
        failures.join("\n")
    );
}

/// Without any armed faults the ladder is invisible: the primary rung
/// serves the whole suite and reports rung 0.
#[test]
fn healthy_suite_always_serves_from_the_primary_rung() {
    let _g = serial();
    reset();
    let suite = generate_suite(&SuiteConfig {
        count: 30,
        max_qubits: 10,
        max_gates: 200,
        seed: 3,
    });
    let ladder = FallbackLadder::standard(MapperConfig::default());
    let device = surface17();
    for benchmark in &suite {
        let outcome = ladder.map(&benchmark.circuit, &device).unwrap();
        assert_eq!(outcome.report.fallback_rung, 0, "{}", benchmark.name);
        assert!(outcome.report.verified, "{}", benchmark.name);
    }
}
