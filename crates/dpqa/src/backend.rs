//! The DPQA compilation backend: movement first, SWAP routing as the
//! demotion target.
//!
//! [`DpqaBackend`] implements [`Backend`] over a [`DpqaGrid`]. Its
//! internal ladder runs *movement rungs* first — the requested placer,
//! then the trivial placer — each producing a move schedule via
//! [`crate::sched::plan_moves`] and passing independent verification
//! with [`VerifyConfig::move_swaps`] enabled. A movement rung is
//! demoted on any failure **including an unsatisfiable plan** (an
//! over-full array is a property of the movement physics, not of the
//! job: SWAP routing over the same interaction-radius graph may still
//! succeed), after which the standard [`FallbackLadder`] takes over on
//! the radius device. `fallback_rung` counts demoted movement rungs
//! before the ladder's own, so rung 0 always means "the requested
//! pipeline, movement included, served this".

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

use qcs_circuit::circuit::Circuit;
use qcs_circuit::decompose::decompose_circuit;
use qcs_core::backend::Backend;
use qcs_core::config::{build_placer, MapperConfig};
use qcs_core::fidelity::FidelityModel;
use qcs_core::ladder::{FallbackLadder, LadderAttempt, LadderError};
use qcs_core::mapper::{MapOutcome, MapReport, StageTiming};
use qcs_core::schedule::{schedule_asap, ControlGroups};
use qcs_core::verify::{verify_outcome, VerifyConfig};
use qcs_topology::device::{Device, DeviceError};
use qcs_topology::health::DeviceHealth;

use crate::grid::DpqaGrid;
use crate::moves::MoveSchedule;
use crate::sched::plan_moves;

/// The router name movement rungs report: there is no SWAP router in
/// the loop, the "routing" stage is the movement scheduler.
pub const MOVE_ROUTER: &str = "dpqa-move";

/// A movement-based neutral-atom compilation target.
///
/// # Examples
///
/// ```
/// use qcs_core::backend::Backend;
/// use qcs_core::config::MapperConfig;
/// use qcs_dpqa::DpqaBackend;
///
/// let backend = DpqaBackend::new(3, 4)?;
/// assert_eq!(backend.id(), "dpqa-3x4");
/// let qft = qcs_workloads::qft::qft(6)?;
/// let outcome = backend.map(&qft, &MapperConfig::default())?;
/// assert!(outcome.report.verified);
/// assert_eq!(outcome.report.moves_inserted, outcome.report.swaps_inserted);
/// assert!(outcome.report.move_stages > 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct DpqaBackend {
    grid: DpqaGrid,
    device: Device,
}

impl DpqaBackend {
    /// A backend over a rows × cols site array.
    ///
    /// # Errors
    ///
    /// [`DeviceError`] when either dimension is zero (surfaced as a
    /// device-construction failure rather than a panic so spec parsing
    /// can report it).
    pub fn new(rows: usize, cols: usize) -> Result<Self, DeviceError> {
        if rows == 0 || cols == 0 {
            return Err(DeviceError::EmptyRegister);
        }
        let grid = DpqaGrid::new(rows, cols);
        let device = grid.device()?;
        Ok(DpqaBackend { grid, device })
    }

    /// The site geometry.
    pub fn grid(&self) -> &DpqaGrid {
        &self.grid
    }

    /// As [`Backend::map`], additionally returning the batched AOD move
    /// schedule when a movement rung served the result (`None` when the
    /// job was demoted to SWAP routing).
    ///
    /// # Errors
    ///
    /// [`LadderError`] when every movement rung *and* every SWAP rung
    /// failed; `unsatisfiable` is set only when SWAP routing itself
    /// found the job unsatisfiable on the radius device.
    pub fn compile_with_schedule(
        &self,
        circuit: &Circuit,
        config: &MapperConfig,
    ) -> Result<(MapOutcome, Option<MoveSchedule>), LadderError> {
        let mut attempts: Vec<LadderAttempt> = Vec::new();
        let mut placers = vec![config.placer.clone()];
        if config.placer != "trivial" {
            placers.push("trivial".to_string());
        }
        for placer in placers {
            let rung = attempts.len();
            let result = catch_unwind(AssertUnwindSafe(|| {
                self.movement_rung(circuit, &placer, rung)
            }));
            match result {
                Ok(Ok((outcome, schedule))) => return Ok((outcome, Some(schedule))),
                Ok(Err(error)) => attempts.push(LadderAttempt {
                    placer,
                    router: MOVE_ROUTER.to_string(),
                    error,
                }),
                Err(panic) => attempts.push(LadderAttempt {
                    placer,
                    router: MOVE_ROUTER.to_string(),
                    error: format!("panicked: {}", panic_message(panic.as_ref())),
                }),
            }
        }
        // Demote to SWAP routing over the interaction-radius device.
        let movement_rungs = attempts.len();
        match FallbackLadder::standard(config.clone()).map(circuit, &self.device) {
            Ok(mut outcome) => {
                outcome.report.fallback_rung += movement_rungs;
                Ok((outcome, None))
            }
            Err(error) => {
                attempts.extend(error.attempts);
                Err(LadderError {
                    attempts,
                    unsatisfiable: error.unsatisfiable,
                })
            }
        }
    }

    /// One movement rung: place with the named strategy, plan moves,
    /// assemble the outcome, verify. Any failure (as a one-line
    /// message) demotes the rung.
    fn movement_rung(
        &self,
        circuit: &Circuit,
        placer_name: &str,
        rung: usize,
    ) -> Result<(MapOutcome, MoveSchedule), String> {
        let micros_since = |start: Instant| start.elapsed().as_secs_f64() * 1e6;
        let placer = build_placer(placer_name).map_err(|e| e.to_string())?;

        let t = Instant::now();
        let decomposed =
            decompose_circuit(circuit, self.device.gate_set()).map_err(|e| e.to_string())?;
        let decompose_micros = micros_since(t);

        let t = Instant::now();
        let initial = placer
            .place(&decomposed, &self.device)
            .map_err(|e| e.to_string())?;
        let place_micros = micros_since(t);

        let t = Instant::now();
        let plan = plan_moves(&decomposed, &self.device, &self.grid, initial)
            .map_err(|e| e.to_string())?;
        let route_micros = micros_since(t);

        // The routed circuit is already native apart from relocation
        // stand-ins, which must survive into the native artifact for
        // SWAP-replay verification — no re-decomposition.
        let native = plan.routed.circuit.clone();
        let t = Instant::now();
        let schedule = schedule_asap(
            &native,
            &self.device.calibration().durations,
            &ControlGroups::unconstrained(),
        );
        let schedule_micros = micros_since(t);

        let fidelity = FidelityModel::default();
        let decomposed_gates = decomposed.gate_count();
        let routed_gates = native.gate_count();
        let depth_before = decomposed.depth();
        let depth_after = native.depth();
        let fidelity_before = fidelity.circuit_fidelity(&decomposed, &self.device);
        let fidelity_after = fidelity.circuit_fidelity_scheduled(&native, &self.device, &schedule);
        let pct = |before: f64, after: f64| {
            if before > 0.0 {
                (after - before) / before * 100.0
            } else {
                0.0
            }
        };
        let report = MapReport {
            circuit_name: circuit.name().to_string(),
            device_name: self.device.name().to_string(),
            placer: placer_name.to_string(),
            router: MOVE_ROUTER.to_string(),
            input_gates: circuit.gate_count(),
            decomposed_gates,
            original_two_qubit_gates: decomposed.two_qubit_gate_count(),
            routed_gates,
            routed_two_qubit_gates: native.two_qubit_gate_count(),
            swaps_inserted: plan.routed.swaps_inserted,
            moves_inserted: plan.schedule.move_count(),
            move_stages: plan.schedule.stage_count(),
            gate_overhead_pct: pct(decomposed_gates as f64, routed_gates as f64),
            depth_before,
            depth_after,
            depth_overhead_pct: pct(depth_before as f64, depth_after as f64),
            fidelity_before,
            fidelity_after,
            fidelity_decrease_pct: if fidelity_before > 0.0 {
                (fidelity_before - fidelity_after) / fidelity_before * 100.0
            } else {
                0.0
            },
            makespan_ns: schedule.makespan_ns,
            fallback_rung: rung,
            verified: false,
            timing: StageTiming {
                decompose_micros,
                place_micros,
                route_micros,
                schedule_micros,
            },
        };
        let mut outcome = MapOutcome {
            decomposed,
            routed: plan.routed,
            native,
            schedule,
            report,
        };
        let verify_config = VerifyConfig {
            move_swaps: true,
            ..VerifyConfig::default()
        };
        verify_outcome(circuit, &outcome, &self.device, &verify_config)
            .map_err(|e| format!("verification failed: {e}"))?;
        outcome.report.verified = true;
        Ok((outcome, plan.schedule))
    }
}

impl Backend for DpqaBackend {
    fn id(&self) -> &str {
        self.device.name()
    }

    fn qubit_count(&self) -> usize {
        self.device.qubit_count()
    }

    fn device(&self) -> &Device {
        &self.device
    }

    fn map(&self, circuit: &Circuit, config: &MapperConfig) -> Result<MapOutcome, LadderError> {
        self.compile_with_schedule(circuit, config)
            .map(|(outcome, _)| outcome)
    }

    fn degrade(&self, health: &DeviceHealth) -> Result<Arc<dyn Backend>, DeviceError> {
        Ok(Arc::new(DpqaBackend {
            grid: self.grid,
            device: self.device.degrade(health)?,
        }))
    }
}

/// Renders a caught panic payload into a one-line message.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn movement_rung_serves_and_verifies() {
        let backend = DpqaBackend::new(3, 4).unwrap();
        let qft = qcs_workloads::qft::qft(8).unwrap();
        let (outcome, schedule) = backend
            .compile_with_schedule(&qft, &MapperConfig::default())
            .unwrap();
        let schedule = schedule.expect("movement rung should serve");
        assert_eq!(outcome.report.fallback_rung, 0);
        assert_eq!(outcome.report.router, MOVE_ROUTER);
        assert!(outcome.report.verified);
        assert_eq!(outcome.report.moves_inserted, schedule.move_count());
        assert_eq!(outcome.report.move_stages, schedule.stage_count());
        assert_eq!(outcome.report.swaps_inserted, outcome.report.moves_inserted);
    }

    #[test]
    fn equivalence_simulation_covers_small_arrays() {
        // 3x4 = 12 sites is within the default simulation ceiling, so
        // the movement rung's verification includes statevector
        // equivalence of the relocated circuit — not just structure.
        let backend = DpqaBackend::new(3, 4).unwrap();
        let qft = qcs_workloads::qft::qft(7).unwrap();
        let outcome = backend.map(&qft, &MapperConfig::default()).unwrap();
        assert!(outcome.report.verified);
        assert!(outcome.report.moves_inserted > 0, "QFT needs relocations");
    }

    #[test]
    fn full_array_demotes_to_swap_routing() {
        // 9 atoms fill a 3x3 array completely, and the circuit's
        // interaction graph is K5 — the radius graph's largest clique
        // is 4, so under *any* placement some pair is out of radius and
        // no atom can move on the full array. SWAP routing over the
        // radius graph still works, so an unsatisfiable movement plan
        // must demote, not fail the job.
        let backend = DpqaBackend::new(3, 3).unwrap();
        let mut c = Circuit::new(9);
        for a in 0..5 {
            for b in (a + 1)..5 {
                c.cnot(a, b).unwrap();
            }
        }
        let (outcome, schedule) = backend
            .compile_with_schedule(&c, &MapperConfig::default())
            .unwrap();
        assert!(schedule.is_none(), "SWAP rung should have served");
        assert!(
            outcome.report.fallback_rung >= 2,
            "both movement rungs demoted"
        );
        assert_ne!(outcome.report.router, MOVE_ROUTER);
        assert_eq!(outcome.report.moves_inserted, 0);
        assert!(outcome.report.verified);
    }

    #[test]
    fn zero_dimension_is_a_device_error() {
        assert!(DpqaBackend::new(0, 4).is_err());
        assert!(DpqaBackend::new(4, 0).is_err());
    }

    #[test]
    fn degrade_renames_and_keeps_geometry() {
        let backend = DpqaBackend::new(4, 4).unwrap();
        let health = DeviceHealth::random(backend.device().coupling(), 0.1, 0.1, 3);
        let degraded = backend.degrade(&health).unwrap();
        assert!(degraded.id().starts_with("dpqa-4x4@"), "{}", degraded.id());
        assert_eq!(degraded.qubit_count(), 16);
    }

    #[test]
    fn compile_is_deterministic() {
        let backend = DpqaBackend::new(4, 4).unwrap();
        let qft = qcs_workloads::qft::qft(10).unwrap();
        let a = backend.map(&qft, &MapperConfig::default()).unwrap();
        let b = backend.map(&qft, &MapperConfig::default()).unwrap();
        let mut ra = a.report.clone();
        let mut rb = b.report.clone();
        ra.timing = StageTiming::ZERO;
        rb.timing = StageTiming::ZERO;
        assert_eq!(ra, rb);
        assert_eq!(a.routed.circuit, b.routed.circuit);
    }
}
