//! DPQA site geometry: a rows × cols array of trap sites.
//!
//! Atoms sit in SLM trap sites arranged on a regular 2D grid. Two atoms
//! can perform an entangling gate when their sites are within the
//! Rydberg *interaction radius*; on the unit grid we model that radius
//! as `distance² ≤ 2` — the four axial neighbours plus the four
//! diagonals. The interaction graph over all sites doubles as the
//! [`Device`] view of the array, which is what placement, health
//! overlays and independent verification run against.

use qcs_circuit::decompose::GateSet;
use qcs_graph::Graph;
use qcs_topology::device::{Device, DeviceError};

/// Geometry of a rows × cols DPQA site array. Sites are numbered
/// row-major: site `r * cols + c` is at grid coordinates `(r, c)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DpqaGrid {
    rows: usize,
    cols: usize,
}

impl DpqaGrid {
    /// A rows × cols grid.
    ///
    /// # Panics
    ///
    /// Panics when either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "grid dimensions must be positive");
        DpqaGrid { rows, cols }
    }

    /// Number of site rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of site columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of sites.
    pub fn site_count(&self) -> usize {
        self.rows * self.cols
    }

    /// The site index at `(row, col)`.
    pub fn site(&self, row: usize, col: usize) -> usize {
        debug_assert!(row < self.rows && col < self.cols);
        row * self.cols + col
    }

    /// The `(row, col)` coordinates of a site.
    pub fn coords(&self, site: usize) -> (usize, usize) {
        debug_assert!(site < self.site_count());
        (site / self.cols, site % self.cols)
    }

    /// Squared Euclidean distance between two sites on the unit grid.
    pub fn dist2(&self, a: usize, b: usize) -> usize {
        let (ra, ca) = self.coords(a);
        let (rb, cb) = self.coords(b);
        let dr = ra.abs_diff(rb);
        let dc = ca.abs_diff(cb);
        dr * dr + dc * dc
    }

    /// Whether two sites are within the Rydberg interaction radius
    /// (`distance² ≤ 2`: axial neighbours and diagonals).
    pub fn within_radius(&self, a: usize, b: usize) -> bool {
        a != b && self.dist2(a, b) <= 2
    }

    /// The interaction graph over all sites: one node per site, one edge
    /// per within-radius pair.
    pub fn interaction_graph(&self) -> Graph {
        let n = self.site_count();
        let mut graph = Graph::with_nodes(n);
        for a in 0..n {
            for b in (a + 1)..n {
                if self.within_radius(a, b) {
                    graph
                        .add_edge(a, b)
                        .expect("sites are in range and pairs are unique");
                }
            }
        }
        graph
    }

    /// The [`Device`] view of this array: the interaction graph with the
    /// neutral-atom native gate set (single-qubit rotations plus CZ —
    /// deliberately *without* SWAP, so any SWAP gate appearing in a
    /// routed circuit is exactly a movement stand-in inserted by the
    /// scheduler, never a leftover input gate).
    ///
    /// Named `dpqa-{rows}x{cols}`; degraded variants get the standard
    /// health-digest suffix via [`Device::degrade`].
    ///
    /// # Errors
    ///
    /// [`DeviceError`] from device construction (cannot happen for a
    /// positive-dimension grid: the interaction graph is connected).
    pub fn device(&self) -> Result<Device, DeviceError> {
        Device::new(
            format!("dpqa-{}x{}", self.rows, self.cols),
            self.interaction_graph(),
            GateSet::rotations_plus_cz(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radius_covers_axial_and_diagonal_neighbours() {
        let g = DpqaGrid::new(3, 3);
        let center = g.site(1, 1);
        for site in 0..g.site_count() {
            if site == center {
                continue;
            }
            assert!(g.within_radius(center, site), "site {site}");
        }
        // Distance-2 axial pairs are out of radius.
        assert!(!g.within_radius(g.site(0, 0), g.site(0, 2)));
        assert!(!g.within_radius(g.site(0, 0), g.site(2, 0)));
        // Knight moves (dist² = 5) are out of radius.
        assert!(!g.within_radius(g.site(0, 0), g.site(1, 2)));
    }

    #[test]
    fn device_has_one_node_per_site_and_is_buildable() {
        let g = DpqaGrid::new(4, 5);
        let device = g.device().unwrap();
        assert_eq!(device.name(), "dpqa-4x5");
        assert_eq!(device.qubit_count(), 20);
        // Interior site: 8 within-radius neighbours.
        assert_eq!(device.neighbors(g.site(1, 1)).len(), 8);
        // Corner site: 3.
        assert_eq!(device.neighbors(g.site(0, 0)).len(), 3);
    }

    #[test]
    fn adjacency_matches_radius() {
        let g = DpqaGrid::new(3, 4);
        let device = g.device().unwrap();
        for a in 0..g.site_count() {
            for b in 0..g.site_count() {
                if a != b {
                    assert_eq!(device.are_adjacent(a, b), g.within_radius(a, b), "{a},{b}");
                }
            }
        }
    }
}
