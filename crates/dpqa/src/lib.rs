//! Movement-based neutral-atom (DPQA) compilation backend.
//!
//! A dynamically field-programmable qubit array holds atoms in a 2D
//! grid of optical trap sites and entangles pairs that sit within the
//! Rydberg interaction radius. Instead of satisfying connectivity with
//! SWAP chains — the fixed-coupler physics the rest of this workspace
//! was built around — the hardware *physically relocates* atoms
//! between stages using AOD (acousto-optic deflector) row/column
//! shuttles, whose one structural rule is that picked rows and columns
//! may not cross.
//!
//! This crate is that second physics for the whole stack:
//!
//! * [`grid`] — site geometry and the interaction-radius [`Device`]
//!   view (`distance² ≤ 2`: axial plus diagonal neighbours), which is
//!   what placement, health overlays and independent verification run
//!   against;
//! * [`stages`] — ASAP gate staging by commuting-set recomputation;
//! * [`moves`] — AOD move primitives ([`MovePick`]/[`MoveOp`]) with an
//!   independent batched-move legality checker (vacant destinations,
//!   no row/column crossing);
//! * [`sched`] — the greedy movement scheduler: per stage it shuttles
//!   out-of-radius operands together (move-in → spectator displacement
//!   → pair rebuild, splitting stages when blocked), emitting each
//!   relocation both as a [`MoveSchedule`] pick and as a SWAP stand-in
//!   in the routed circuit so `qcs-core::verify` replays movement as a
//!   qubit permutation;
//! * [`backend`] — [`DpqaBackend`], the [`qcs_core::Backend`]
//!   implementation whose internal ladder demotes an unsatisfiable
//!   movement compile to SWAP routing over the radius graph rather
//!   than failing the job.
//!
//! Modelling note: two-qubit gates are taken as individually addressed
//! CZ pulses (no global-pulse separation constraint between concurrent
//! pairs), and each relocation stand-in is charged the calibrated
//! two-qubit fidelity as a transfer-loss proxy.
//!
//! [`Device`]: qcs_topology::device::Device
//!
//! # Examples
//!
//! Compile and verify a QFT on a 3×4 site array:
//!
//! ```
//! use qcs_core::backend::Backend;
//! use qcs_core::config::MapperConfig;
//! use qcs_dpqa::DpqaBackend;
//!
//! let backend = DpqaBackend::new(3, 4)?;
//! let qft = qcs_workloads::qft::qft(8)?;
//! let (outcome, schedule) =
//!     backend.compile_with_schedule(&qft, &MapperConfig::default())?;
//! let schedule = schedule.expect("movement rung serves on a sparse array");
//! assert!(outcome.report.verified);
//! assert_eq!(outcome.report.moves_inserted, schedule.move_count());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod backend;
pub mod grid;
pub mod moves;
pub mod sched;
pub mod stages;

pub use backend::{DpqaBackend, MOVE_ROUTER};
pub use grid::DpqaGrid;
pub use moves::{MoveOp, MovePick, MoveSchedule, MoveStage};
pub use sched::{plan_moves, MovePlan};
pub use stages::recalculate_stages;
