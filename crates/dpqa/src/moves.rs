//! AOD move primitives and their legality rules.
//!
//! An AOD (acousto-optic deflector) move picks up a set of atoms and
//! translates them in one shot. The picks are addressed by crossed AOD
//! rows and columns, which gives the hardware its one structural rule:
//! **rows and columns may not cross**. Two picked atoms that start in
//! the same row must land in the same row; one that starts above
//! another must land above it — and likewise for columns. Destinations
//! must be vacant (an AOD tweezer flies *over* occupied SLM sites but
//! cannot drop an atom onto one), though a site vacated by the same
//! move is fair game since all picks translate simultaneously.
//!
//! [`check_move_op`] is the independent legality checker for one such
//! batched move against an occupancy snapshot; the movement scheduler
//! ([`crate::sched`]) emits only ops that pass it, and tests call it
//! directly to audit whole schedules.

use crate::grid::DpqaGrid;
use qcs_circuit::gate::Gate;

/// One atom relocation within a batched move: pick up the atom at
/// `src`, drop it at `dst`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MovePick {
    /// Site the atom starts at (must be occupied).
    pub src: usize,
    /// Site the atom lands at (must be vacant, or vacated by this op).
    pub dst: usize,
}

/// One batched AOD move: a set of picks executed simultaneously.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MoveOp {
    /// The atoms moved, in pick order.
    pub picks: Vec<MovePick>,
}

/// One stage of the movement schedule: the batched moves that
/// reconfigure the array, then the gates that fire in parallel on the
/// reconfigured layout (operands are physical sites).
#[derive(Debug, Clone, PartialEq)]
pub struct MoveStage {
    /// Batched AOD moves, executed in order before the gates.
    pub ops: Vec<MoveOp>,
    /// The stage's gates at their post-move physical sites.
    pub gates: Vec<Gate>,
}

/// The full movement schedule of one compiled circuit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MoveSchedule {
    /// Stages in execution order.
    pub stages: Vec<MoveStage>,
}

impl MoveSchedule {
    /// Total atom relocations across all stages (one per pick).
    pub fn move_count(&self) -> usize {
        self.stages
            .iter()
            .map(|s| s.ops.iter().map(|op| op.picks.len()).sum::<usize>())
            .sum()
    }

    /// Number of stages.
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// Total batched AOD move operations across all stages.
    pub fn op_count(&self) -> usize {
        self.stages.iter().map(|s| s.ops.len()).sum()
    }
}

/// Why a batched move is illegal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MoveError {
    /// A pick references a site outside the grid.
    OutOfGrid {
        /// The offending site index.
        site: usize,
    },
    /// A pick's source site holds no atom.
    EmptySource {
        /// The vacant source site.
        site: usize,
    },
    /// Two picks lift the same atom.
    DuplicateSource {
        /// The doubly-picked site.
        site: usize,
    },
    /// Two picks land on the same site.
    DuplicateDestination {
        /// The doubly-targeted site.
        site: usize,
    },
    /// A destination site is occupied by an atom this op does not move.
    OccupiedDestination {
        /// The occupied destination site.
        site: usize,
    },
    /// Two picks' AOD rows would cross (or merge/split): their source
    /// row order differs from their destination row order.
    RowCrossing {
        /// First pick involved.
        a: MovePick,
        /// Second pick involved.
        b: MovePick,
    },
    /// Two picks' AOD columns would cross (or merge/split).
    ColumnCrossing {
        /// First pick involved.
        a: MovePick,
        /// Second pick involved.
        b: MovePick,
    },
}

impl std::fmt::Display for MoveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MoveError::OutOfGrid { site } => write!(f, "site {site} is outside the grid"),
            MoveError::EmptySource { site } => write!(f, "source site {site} holds no atom"),
            MoveError::DuplicateSource { site } => write!(f, "site {site} picked twice"),
            MoveError::DuplicateDestination { site } => {
                write!(f, "two picks land on site {site}")
            }
            MoveError::OccupiedDestination { site } => {
                write!(f, "destination site {site} is occupied")
            }
            MoveError::RowCrossing { a, b } => write!(
                f,
                "AOD rows cross: {}→{} vs {}→{}",
                a.src, a.dst, b.src, b.dst
            ),
            MoveError::ColumnCrossing { a, b } => write!(
                f,
                "AOD columns cross: {}→{} vs {}→{}",
                a.src, a.dst, b.src, b.dst
            ),
        }
    }
}

impl std::error::Error for MoveError {}

/// Checks one batched move against an occupancy snapshot taken *before*
/// the op executes. `occupied[site]` says whether an atom sits at
/// `site`. See the module docs for the rules enforced.
///
/// # Errors
///
/// The first [`MoveError`] found.
pub fn check_move_op(grid: &DpqaGrid, occupied: &[bool], op: &MoveOp) -> Result<(), MoveError> {
    let n = grid.site_count();
    for pick in &op.picks {
        for site in [pick.src, pick.dst] {
            if site >= n {
                return Err(MoveError::OutOfGrid { site });
            }
        }
        if !occupied[pick.src] {
            return Err(MoveError::EmptySource { site: pick.src });
        }
    }
    for (i, a) in op.picks.iter().enumerate() {
        for b in &op.picks[i + 1..] {
            if a.src == b.src {
                return Err(MoveError::DuplicateSource { site: a.src });
            }
            if a.dst == b.dst {
                return Err(MoveError::DuplicateDestination { site: a.dst });
            }
        }
    }
    for pick in &op.picks {
        let vacated = op.picks.iter().any(|p| p.src == pick.dst);
        if occupied[pick.dst] && !vacated {
            return Err(MoveError::OccupiedDestination { site: pick.dst });
        }
    }
    // No-crossing: source order must equal destination order, per axis.
    for (i, a) in op.picks.iter().enumerate() {
        let (ra_s, ca_s) = grid.coords(a.src);
        let (ra_d, ca_d) = grid.coords(a.dst);
        for b in &op.picks[i + 1..] {
            let (rb_s, cb_s) = grid.coords(b.src);
            let (rb_d, cb_d) = grid.coords(b.dst);
            if ra_s.cmp(&rb_s) != ra_d.cmp(&rb_d) {
                return Err(MoveError::RowCrossing { a: *a, b: *b });
            }
            if ca_s.cmp(&cb_s) != ca_d.cmp(&cb_d) {
                return Err(MoveError::ColumnCrossing { a: *a, b: *b });
            }
        }
    }
    Ok(())
}

/// Applies a (checked) batched move to an occupancy snapshot: all
/// sources vacate, then all destinations fill.
pub fn apply_move_op(occupied: &mut [bool], op: &MoveOp) {
    for pick in &op.picks {
        occupied[pick.src] = false;
    }
    for pick in &op.picks {
        occupied[pick.dst] = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_3x3() -> DpqaGrid {
        DpqaGrid::new(3, 3)
    }

    fn occ(grid: &DpqaGrid, sites: &[usize]) -> Vec<bool> {
        let mut o = vec![false; grid.site_count()];
        for &s in sites {
            o[s] = true;
        }
        o
    }

    #[test]
    fn single_pick_to_empty_site_is_legal() {
        let g = grid_3x3();
        let o = occ(&g, &[0]);
        let op = MoveOp {
            picks: vec![MovePick { src: 0, dst: 8 }],
        };
        assert_eq!(check_move_op(&g, &o, &op), Ok(()));
    }

    #[test]
    fn occupied_destination_is_rejected() {
        let g = grid_3x3();
        let o = occ(&g, &[0, 8]);
        let op = MoveOp {
            picks: vec![MovePick { src: 0, dst: 8 }],
        };
        assert_eq!(
            check_move_op(&g, &o, &op),
            Err(MoveError::OccupiedDestination { site: 8 })
        );
    }

    #[test]
    fn vacated_destination_is_legal() {
        // Atom 0→1 while atom 1→2: site 1 is vacated by the same op.
        let g = grid_3x3();
        let o = occ(&g, &[0, 1]);
        let op = MoveOp {
            picks: vec![MovePick { src: 0, dst: 1 }, MovePick { src: 1, dst: 2 }],
        };
        assert_eq!(check_move_op(&g, &o, &op), Ok(()));
    }

    #[test]
    fn crossing_columns_are_rejected() {
        // Sites 0=(0,0) and 1=(0,1): swapping their columns crosses.
        let g = grid_3x3();
        let o = occ(&g, &[0, 1]);
        let op = MoveOp {
            picks: vec![MovePick { src: 0, dst: 4 }, MovePick { src: 1, dst: 3 }],
        };
        assert!(matches!(
            check_move_op(&g, &o, &op),
            Err(MoveError::ColumnCrossing { .. })
        ));
    }

    #[test]
    fn crossing_rows_are_rejected() {
        // Sites 0=(0,0) and 3=(1,0): swapping their rows crosses.
        let g = grid_3x3();
        let o = occ(&g, &[0, 3]);
        let op = MoveOp {
            picks: vec![MovePick { src: 0, dst: 4 }, MovePick { src: 3, dst: 1 }],
        };
        assert!(matches!(
            check_move_op(&g, &o, &op),
            Err(MoveError::RowCrossing { .. })
        ));
    }

    #[test]
    fn same_row_sources_must_stay_in_one_row() {
        // Both picks start in row 0; landing in different rows splits
        // the AOD row — rejected.
        let g = grid_3x3();
        let o = occ(&g, &[0, 1]);
        let op = MoveOp {
            picks: vec![MovePick { src: 0, dst: 3 }, MovePick { src: 1, dst: 7 }],
        };
        assert!(matches!(
            check_move_op(&g, &o, &op),
            Err(MoveError::RowCrossing { .. })
        ));
    }

    #[test]
    fn parallel_translation_is_legal() {
        // Two atoms in row 0 both shift down one row, keeping order.
        let g = grid_3x3();
        let o = occ(&g, &[0, 1]);
        let op = MoveOp {
            picks: vec![MovePick { src: 0, dst: 3 }, MovePick { src: 1, dst: 4 }],
        };
        assert_eq!(check_move_op(&g, &o, &op), Ok(()));
    }

    #[test]
    fn empty_source_and_duplicates_are_rejected() {
        let g = grid_3x3();
        let o = occ(&g, &[0]);
        let op = MoveOp {
            picks: vec![MovePick { src: 5, dst: 8 }],
        };
        assert_eq!(
            check_move_op(&g, &o, &op),
            Err(MoveError::EmptySource { site: 5 })
        );
        let op = MoveOp {
            picks: vec![MovePick { src: 0, dst: 4 }, MovePick { src: 0, dst: 8 }],
        };
        assert_eq!(
            check_move_op(&g, &o, &op),
            Err(MoveError::DuplicateSource { site: 0 })
        );
    }

    #[test]
    fn apply_updates_occupancy() {
        let g = grid_3x3();
        let mut o = occ(&g, &[0, 1]);
        let op = MoveOp {
            picks: vec![MovePick { src: 0, dst: 1 }, MovePick { src: 1, dst: 2 }],
        };
        check_move_op(&g, &o, &op).unwrap();
        apply_move_op(&mut o, &op);
        assert!(!o[0] && o[1] && o[2]);
    }
}
