//! The greedy movement scheduler.
//!
//! Given a decomposed circuit (native gates, virtual operands), the
//! interaction-radius [`Device`] view of the array and an initial
//! placement, [`plan_moves`] produces a [`RoutedCircuit`] whose only
//! SWAP gates are *relocation stand-ins* — each one records "the atom
//! at `src` moved to the vacant site `dst`" — plus the batched
//! [`MoveSchedule`] that realises those relocations on AOD hardware.
//!
//! Per stage (ASAP commuting sets from [`crate::stages`]), every
//! two-qubit gate whose operands are out of interaction radius gets a
//! relocation plan, tried in order:
//!
//! 1. **Move in**: shuttle one operand onto a vacant site within radius
//!    of the other (whichever direction is the shorter flight).
//! 2. **Displace**: park an unpinned spectator atom from a site within
//!    radius of one operand onto the nearest vacant site, then move the
//!    operand into the freed site. Operands of the stage's own
//!    two-qubit gates are *pinned* — displacing one could break an
//!    adjacency the stage already established.
//! 3. **Rebuild**: shuttle both operands onto a fresh vacant
//!    within-radius site pair elsewhere on the grid.
//!
//! When none applies, the stage is *split*: the blocked gate retries in
//! a singleton stage (minimal pinning frees every spectator) and the
//! stage's remaining gates follow in their own stage. A singleton stage
//! that still cannot be satisfied — no vacant site anywhere, or an
//! operand stranded by a health overlay — is reported as
//! [`MapError::Unsatisfiable`], which the backend treats as a demotable
//! rung (falling back to SWAP routing over the radius graph), not a
//! hard failure.
//!
//! Emitted stand-ins always target a vacant site, so replaying them as
//! physical-qubit swaps through `qcs-core::verify`'s permutation and
//! equivalence checks reproduces exactly the relocation the hardware
//! performs.

use std::collections::VecDeque;

use qcs_circuit::circuit::Circuit;
use qcs_circuit::gate::Gate;
use qcs_core::error::UnsatisfiableReason;
use qcs_core::layout::Layout;
use qcs_core::mapper::MapError;
use qcs_core::route::RoutedCircuit;
use qcs_topology::device::Device;

use crate::grid::DpqaGrid;
use crate::moves::{apply_move_op, check_move_op, MoveOp, MovePick, MoveSchedule, MoveStage};
use crate::stages::recalculate_stages;

/// Everything [`plan_moves`] produces for one circuit.
#[derive(Debug, Clone, PartialEq)]
pub struct MovePlan {
    /// The physical circuit with relocation SWAP stand-ins, plus the
    /// evolved layouts. `swaps_inserted` counts the stand-ins;
    /// `score_evals` counts candidate-site evaluations (the scheduler's
    /// deterministic work counter).
    pub routed: RoutedCircuit,
    /// The batched AOD move schedule realising the stand-ins.
    pub schedule: MoveSchedule,
}

/// Mutable planning state threaded through one scheduling run.
struct Planner<'a> {
    decomposed: &'a Circuit,
    device: &'a Device,
    grid: &'a DpqaGrid,
    layout: Layout,
    occupied: Vec<bool>,
    phys: Circuit,
    picks_in_stage: Vec<MovePick>,
    swaps: usize,
    score_evals: usize,
}

/// Plans the movement schedule for `decomposed` starting from
/// `initial`. The circuit must already be decomposed to the device's
/// gate set (no SWAP gates), so every SWAP in the returned routed
/// circuit is a relocation stand-in.
///
/// # Errors
///
/// [`MapError::Unsatisfiable`] when no legal move sequence exists (see
/// module docs); the caller demotes to SWAP routing.
pub fn plan_moves(
    decomposed: &Circuit,
    device: &Device,
    grid: &DpqaGrid,
    initial: Layout,
) -> Result<MovePlan, MapError> {
    assert_eq!(
        grid.site_count(),
        device.qubit_count(),
        "device must be the grid's interaction-radius view"
    );
    for virt in 0..initial.virtual_count() {
        let phys = initial.phys_of(virt);
        if !device.is_qubit_active(phys) {
            return Err(MapError::Unsatisfiable(
                UnsatisfiableReason::DisabledQubitInLayout { virt, phys },
            ));
        }
    }
    let occupied = (0..device.qubit_count())
        .map(|p| initial.virt_at(p).is_some())
        .collect();
    let mut planner = Planner {
        decomposed,
        device,
        grid,
        layout: initial.clone(),
        occupied,
        phys: Circuit::with_name(device.qubit_count(), decomposed.name()),
        picks_in_stage: Vec::new(),
        swaps: 0,
        score_evals: 0,
    };

    let mut worklist: VecDeque<Vec<usize>> = recalculate_stages(decomposed).into();
    let mut stages_out: Vec<MoveStage> = Vec::new();
    while let Some(stage) = worklist.pop_front() {
        // Pinned atoms: operands of this stage's two-qubit gates. They
        // may be *moved* for their own gate but never displaced as
        // spectators for another gate's relocation.
        let mut pinned = vec![false; decomposed.qubit_count()];
        for &gi in &stage {
            let gate = &decomposed.gates()[gi];
            if gate.is_two_qubit() {
                for q in gate.qubits() {
                    pinned[q] = true;
                }
            }
        }

        let stage_start_occupancy = planner.occupied.clone();
        planner.picks_in_stage.clear();
        let mut kept = stage.len();
        for (pos, &gi) in stage.iter().enumerate() {
            let gate = &planner.decomposed.gates()[gi];
            if !gate.is_two_qubit() {
                continue;
            }
            let qs = gate.qubits();
            if planner.ensure_adjacent(qs[0], qs[1], &pinned) {
                continue;
            }
            // Blocked. A singleton stage had minimal pinning already —
            // nothing left to free, the array genuinely cannot host
            // this interaction.
            if stage.len() == 1 {
                let (from, to) = (planner.layout.phys_of(qs[0]), planner.layout.phys_of(qs[1]));
                return Err(MapError::Unsatisfiable(
                    UnsatisfiableReason::NoHealthyPath { from, to },
                ));
            }
            // Split the stage: the blocked gate retries alone (minimal
            // pinning), the unprocessed remainder follows. Gates within
            // a stage are operand-disjoint, so the reorder is sound.
            kept = pos;
            if pos + 1 < stage.len() {
                worklist.push_front(stage[pos + 1..].to_vec());
            }
            worklist.push_front(vec![gi]);
            break;
        }

        // Emit the stage: batched moves, then the surviving gates at
        // their post-move sites.
        let ops = batch_picks(grid, &stage_start_occupancy, &planner.picks_in_stage);
        let mut gates = Vec::with_capacity(kept);
        for &gi in &stage[..kept] {
            let layout = &planner.layout;
            let gate = planner.decomposed.gates()[gi].map_qubits(|v| layout.phys_of(v));
            planner
                .phys
                .push(gate)
                .expect("physical operands are within the device register");
            gates.push(gate);
        }
        if !ops.is_empty() || !gates.is_empty() {
            stages_out.push(MoveStage { ops, gates });
        }
    }

    let Planner {
        layout,
        phys,
        swaps,
        score_evals,
        ..
    } = planner;
    Ok(MovePlan {
        routed: RoutedCircuit {
            circuit: phys,
            initial,
            final_layout: layout,
            swaps_inserted: swaps,
            score_evals,
        },
        schedule: MoveSchedule { stages: stages_out },
    })
}

impl Planner<'_> {
    /// Relocates one atom: records the pick, emits the SWAP stand-in,
    /// and updates layout and occupancy.
    fn relocate(&mut self, src: usize, dst: usize) {
        debug_assert!(self.occupied[src] && !self.occupied[dst]);
        self.picks_in_stage.push(MovePick { src, dst });
        self.phys
            .push(Gate::Swap(src, dst))
            .expect("relocation sites are within the device register");
        self.layout.swap_physical(src, dst);
        self.occupied[src] = false;
        self.occupied[dst] = true;
        self.swaps += 1;
    }

    /// The nearest vacant in-service site to `from`, if any.
    fn nearest_vacant(&mut self, from: usize) -> Option<usize> {
        let mut best: Option<(usize, usize)> = None;
        for site in 0..self.device.qubit_count() {
            self.score_evals += 1;
            if self.occupied[site] || !self.device.is_qubit_active(site) {
                continue;
            }
            let cost = self.grid.dist2(from, site);
            if best.is_none_or(|(_, c)| cost < c) {
                best = Some((site, cost));
            }
        }
        best.map(|(site, _)| site)
    }

    /// Brings the atoms of virtual qubits `va`/`vb` within interaction
    /// radius, emitting relocations as needed. Returns false when
    /// blocked (the caller splits the stage or gives up). Never makes a
    /// partial plan: on false, no move was emitted for this gate.
    fn ensure_adjacent(&mut self, va: usize, vb: usize, pinned: &[bool]) -> bool {
        let pa = self.layout.phys_of(va);
        let pb = self.layout.phys_of(vb);
        if self.device.are_adjacent(pa, pb) {
            return true;
        }

        // 1. Move in: one operand onto a vacant neighbour of the other.
        let mut best: Option<(usize, usize, usize)> = None;
        for (mover, anchor) in [(pa, pb), (pb, pa)] {
            for &site in self.device.neighbors(anchor) {
                self.score_evals += 1;
                if self.occupied[site] {
                    continue;
                }
                let cost = self.grid.dist2(mover, site);
                if best.is_none_or(|(_, _, c)| cost < c) {
                    best = Some((mover, site, cost));
                }
            }
        }
        if let Some((src, dst, _)) = best {
            self.relocate(src, dst);
            return true;
        }

        // 2. Displace: park an unpinned spectator out of a neighbour
        // site, then move the operand in.
        for (mover, anchor) in [(pa, pb), (pb, pa)] {
            for i in 0..self.device.neighbors(anchor).len() {
                let site = self.device.neighbors(anchor)[i];
                self.score_evals += 1;
                let Some(v) = self.layout.virt_at(site) else {
                    continue;
                };
                if pinned[v] {
                    continue;
                }
                let Some(park) = self.nearest_vacant(site) else {
                    // Fully occupied array: no strategy can help.
                    return false;
                };
                self.relocate(site, park);
                self.relocate(mover, site);
                return true;
            }
        }

        // 3. Rebuild: both operands onto a fresh vacant adjacent pair.
        let mut best: Option<(usize, usize, usize)> = None;
        for s1 in 0..self.device.qubit_count() {
            if self.occupied[s1] || !self.device.is_qubit_active(s1) {
                continue;
            }
            for i in 0..self.device.neighbors(s1).len() {
                let s2 = self.device.neighbors(s1)[i];
                self.score_evals += 1;
                if self.occupied[s2] {
                    continue;
                }
                let cost = self.grid.dist2(pa, s1) + self.grid.dist2(pb, s2);
                if best.is_none_or(|(_, _, c)| cost < c) {
                    best = Some((s1, s2, cost));
                }
            }
        }
        if let Some((s1, s2, _)) = best {
            self.relocate(pa, s1);
            self.relocate(pb, s2);
            return true;
        }
        false
    }
}

/// Greedily batches a stage's picks into legal AOD move ops: each pick
/// joins the open op unless the combination breaks a legality rule
/// (crossing, occupancy), in which case the op closes and a new one
/// opens. Single picks are always legal against live occupancy, so
/// batching cannot fail — only fragment.
fn batch_picks(grid: &DpqaGrid, start_occupancy: &[bool], picks: &[MovePick]) -> Vec<MoveOp> {
    let mut ops: Vec<MoveOp> = Vec::new();
    let mut occupancy = start_occupancy.to_vec();
    let mut current: Vec<MovePick> = Vec::new();
    for &pick in picks {
        let mut trial = current.clone();
        trial.push(pick);
        let trial_op = MoveOp { picks: trial };
        if check_move_op(grid, &occupancy, &trial_op).is_ok() {
            current = trial_op.picks;
        } else {
            let done = MoveOp {
                picks: std::mem::take(&mut current),
            };
            apply_move_op(&mut occupancy, &done);
            ops.push(done);
            let single = MoveOp { picks: vec![pick] };
            debug_assert_eq!(check_move_op(grid, &occupancy, &single), Ok(()));
            current = single.picks;
        }
    }
    if !current.is_empty() {
        ops.push(MoveOp { picks: current });
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcs_circuit::decompose::decompose_circuit;
    use qcs_core::place::{Placer, TrivialPlacer};

    fn plan(circuit: &Circuit, rows: usize, cols: usize) -> Result<MovePlan, MapError> {
        let grid = DpqaGrid::new(rows, cols);
        let device = grid.device().unwrap();
        let decomposed = decompose_circuit(circuit, device.gate_set()).unwrap();
        let initial = TrivialPlacer.place(&decomposed, &device).unwrap();
        plan_moves(&decomposed, &device, &grid, initial)
    }

    #[test]
    fn adjacent_pairs_need_no_moves() {
        let mut c = Circuit::new(4);
        c.cnot(0, 1).unwrap().cnot(2, 3).unwrap();
        let plan = plan(&c, 2, 2).unwrap();
        assert_eq!(plan.routed.swaps_inserted, 0);
        assert_eq!(plan.schedule.move_count(), 0);
    }

    #[test]
    fn distant_pair_is_moved_within_radius() {
        // Qubits 0 and 3 start at opposite ends of a 1x4 row: out of
        // radius, one relocation (to the vacant 5th+ sites' row) needed.
        let mut c = Circuit::new(4);
        c.cnot(0, 3).unwrap();
        let plan = plan(&c, 2, 4).unwrap();
        assert!(plan.routed.swaps_inserted >= 1);
        assert_eq!(plan.routed.swaps_inserted, plan.schedule.move_count());
    }

    #[test]
    fn every_two_qubit_gate_lands_within_radius() {
        let qft = qcs_workloads::qft::qft(9).unwrap();
        let grid = DpqaGrid::new(4, 4);
        let device = grid.device().unwrap();
        let decomposed = decompose_circuit(&qft, device.gate_set()).unwrap();
        let initial = TrivialPlacer.place(&decomposed, &device).unwrap();
        let plan = plan_moves(&decomposed, &device, &grid, initial).unwrap();
        for gate in plan.routed.circuit.gates() {
            let qs = gate.qubits();
            if qs.len() == 2 && gate.kind() != qcs_circuit::gate::GateKind::Swap {
                assert!(device.are_adjacent(qs[0], qs[1]), "{gate:?}");
            }
        }
    }

    #[test]
    fn move_schedule_replays_legally() {
        // Audit the whole schedule through the independent legality
        // checker: every op legal against evolving occupancy, every
        // stand-in matched by a pick.
        let qft = qcs_workloads::qft::qft(10).unwrap();
        let grid = DpqaGrid::new(4, 4);
        let device = grid.device().unwrap();
        let decomposed = decompose_circuit(&qft, device.gate_set()).unwrap();
        let initial = TrivialPlacer.place(&decomposed, &device).unwrap();
        let plan = plan_moves(&decomposed, &device, &grid, initial.clone()).unwrap();
        let mut occupancy: Vec<bool> = (0..device.qubit_count())
            .map(|p| initial.virt_at(p).is_some())
            .collect();
        let mut total_picks = 0;
        for stage in &plan.schedule.stages {
            for op in &stage.ops {
                check_move_op(&grid, &occupancy, op).unwrap();
                apply_move_op(&mut occupancy, op);
                total_picks += op.picks.len();
            }
        }
        assert_eq!(total_picks, plan.routed.swaps_inserted);
        assert!(plan.schedule.stage_count() > 0);
    }

    #[test]
    fn full_grid_with_distant_pair_is_unsatisfiable() {
        // 8 atoms fill a 2x4 grid completely; qubits 0 and 3 sit at
        // opposite row ends with nowhere to move anything.
        let mut c = Circuit::new(8);
        c.cnot(0, 3).unwrap();
        let err = plan(&c, 2, 4).unwrap_err();
        assert!(matches!(err, MapError::Unsatisfiable(_)), "{err:?}");
    }

    #[test]
    fn planning_is_deterministic() {
        let qft = qcs_workloads::qft::qft(8).unwrap();
        let a = plan(&qft, 3, 4).unwrap();
        let b = plan(&qft, 3, 4).unwrap();
        assert_eq!(a, b);
    }
}
