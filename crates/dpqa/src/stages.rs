//! Gate staging by commuting-set recomputation.
//!
//! DPQA hardware alternates *move phases* (AOD shuttles reconfigure the
//! array) with *gate phases* (all gates of one stage fire in parallel).
//! A stage is therefore a set of gates with pairwise-disjoint operands.
//! [`recalculate_stages`] computes the ASAP staging of a circuit: each
//! gate lands in the earliest stage where all its operands are free —
//! the `recalculate_stages` idiom of movement compilers. Gates that
//! share a qubit keep their program order across stages; gates within a
//! stage are operand-disjoint and hence commute, so replaying stages in
//! order (any order within a stage) preserves circuit semantics.

use qcs_circuit::circuit::Circuit;

/// ASAP staging: returns stages of gate *indices* into
/// `circuit.gates()`, each stage's gates having pairwise-disjoint
/// operands, every gate in the earliest stage its dependencies allow.
pub fn recalculate_stages(circuit: &Circuit) -> Vec<Vec<usize>> {
    let mut next_free = vec![0usize; circuit.qubit_count()];
    let mut stages: Vec<Vec<usize>> = Vec::new();
    for (index, gate) in circuit.gates().iter().enumerate() {
        let qubits = gate.qubits();
        let stage = qubits.iter().map(|&q| next_free[q]).max().unwrap_or(0);
        if stage == stages.len() {
            stages.push(Vec::new());
        }
        stages[stage].push(index);
        for &q in &qubits {
            next_free[q] = stage + 1;
        }
    }
    stages
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcs_circuit::gate::Gate;

    #[test]
    fn disjoint_gates_share_a_stage() {
        let mut c = Circuit::new(4);
        c.push(Gate::Cz(0, 1)).unwrap();
        c.push(Gate::Cz(2, 3)).unwrap();
        assert_eq!(recalculate_stages(&c), vec![vec![0, 1]]);
    }

    #[test]
    fn dependent_gates_split_stages() {
        let mut c = Circuit::new(3);
        c.push(Gate::Cz(0, 1)).unwrap();
        c.push(Gate::Cz(1, 2)).unwrap();
        c.push(Gate::H(0)).unwrap();
        // H(0) is free as soon as CZ(0,1) is done: stage 1, next to CZ(1,2).
        assert_eq!(recalculate_stages(&c), vec![vec![0], vec![1, 2]]);
    }

    #[test]
    fn stages_have_disjoint_operands() {
        let qft = qcs_workloads::qft::qft(7).unwrap();
        for stage in recalculate_stages(&qft) {
            let mut seen = Vec::new();
            for &gi in &stage {
                for q in qft.gates()[gi].qubits() {
                    assert!(!seen.contains(&q), "qubit {q} twice in one stage");
                    seen.push(q);
                }
            }
        }
    }

    #[test]
    fn every_gate_is_staged_exactly_once() {
        let qft = qcs_workloads::qft::qft(6).unwrap();
        let stages = recalculate_stages(&qft);
        let mut indices: Vec<usize> = stages.into_iter().flatten().collect();
        indices.sort_unstable();
        assert_eq!(indices, (0..qft.gate_count()).collect::<Vec<_>>());
    }
}
