//! Deterministic failpoint registry for chaos testing.
//!
//! Production code is instrumented with named *sites* — cheap calls to
//! [`hit`] at interesting points (before compiling a job, inside the
//! router, around a connection handler). When nothing is armed a site is
//! a single relaxed atomic load. Tests and the chaos harness *arm* sites
//! with a [`FaultAction`] (panic, delay, injected error, or an abstract
//! trigger the caller interprets) governed by a firing [`Policy`].
//!
//! Everything is deterministic: the probabilistic policy derives its
//! decisions from a [`SplitMix64`] stream over the per-site hit counter,
//! so the same seed and the same sequence of hits reproduce the same
//! faults byte-for-byte — the property the chaos suite's replay tests
//! rely on.
//!
//! Sites can also be armed from a compact spec string (the `QCS_FAULTS`
//! environment variable understood by `qcs-served`):
//!
//! ```text
//! site=action[:arg][@policy][;site=action...]
//!
//! actions   panic · delay:MS · error:MESSAGE · trigger:TAG
//! policies  @always (default) · @once · @nth:N · @prob:P:SEED
//! ```
//!
//! For example `serve.worker.job=panic@nth:3;mapper.route=delay:20`
//! panics the third compiled job and slows every routing pass by 20 ms.
//!
//! # Examples
//!
//! ```
//! use qcs_faults::{arm, hit, reset, FaultAction, Hit, Policy};
//!
//! reset();
//! arm("demo.site", FaultAction::Error("injected".into()), Policy::Once);
//! assert_eq!(hit("demo.site"), Hit::Error("injected".into()));
//! assert_eq!(hit("demo.site"), Hit::Pass); // Once only fires once
//! reset();
//! ```

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use qcs_rng::{RngCore, SplitMix64};

/// What an armed failpoint does when its policy fires.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultAction {
    /// Panic with a recognizable message (`"failpoint panic: <site>"`).
    Panic,
    /// Sleep for the given number of milliseconds, then pass.
    Delay(u64),
    /// Return [`Hit::Error`] with the given message for the caller to
    /// surface as an injected I/O or compile error.
    Error(String),
    /// Return [`Hit::Triggered`] with the given tag; the call site gives
    /// it meaning (e.g. "degrade the device before resolving this job").
    Trigger(String),
}

/// When an armed failpoint fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Policy {
    /// Fire on every hit.
    Always,
    /// Fire on the first hit only.
    Once,
    /// Fire on the `n`-th hit (1-based) only.
    Nth(u64),
    /// Fire on each hit independently with probability `probability`,
    /// decided by a deterministic stream derived from `seed` and the
    /// per-site hit counter.
    Seeded {
        /// Firing probability in `[0, 1]`.
        probability: f64,
        /// Stream seed; same seed + same hit sequence = same decisions.
        seed: u64,
    },
}

/// Result of passing a failpoint site.
#[derive(Debug, Clone, PartialEq)]
pub enum Hit {
    /// Nothing armed (or the policy did not fire): carry on.
    Pass,
    /// An [`FaultAction::Error`] fired; the message to propagate.
    Error(String),
    /// A [`FaultAction::Trigger`] fired; the tag to interpret.
    Triggered(String),
}

#[derive(Debug)]
struct SiteState {
    action: FaultAction,
    policy: Policy,
    hits: u64,
    fired: u64,
}

static ARMED: AtomicBool = AtomicBool::new(false);

fn registry() -> MutexGuard<'static, BTreeMap<String, SiteState>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<String, SiteState>>> = OnceLock::new();
    REGISTRY
        .get_or_init(|| Mutex::new(BTreeMap::new()))
        .lock()
        // A panic injected *by* a failpoint may poison the lock; the map
        // itself is always left consistent, so recover and continue.
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl Policy {
    /// Decides whether the `hits`-th hit (1-based) fires, given how many
    /// times the site has already `fired`.
    fn fires(&self, hits: u64, fired: u64) -> bool {
        match *self {
            Policy::Always => true,
            Policy::Once => fired == 0,
            Policy::Nth(n) => hits == n,
            Policy::Seeded { probability, seed } => {
                // One SplitMix64 step keyed by (seed, hit index): cheap,
                // stateless, and independent of interleaving with other
                // sites.
                let mut rng = SplitMix64::new(seed ^ hits.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                unit < probability
            }
        }
    }
}

/// Arms `site` with `action` under `policy`, resetting its counters.
pub fn arm(site: &str, action: FaultAction, policy: Policy) {
    let mut map = registry();
    map.insert(
        site.to_string(),
        SiteState {
            action,
            policy,
            hits: 0,
            fired: 0,
        },
    );
    ARMED.store(true, Ordering::Release);
}

/// Disarms `site` (no-op if it was not armed).
pub fn disarm(site: &str) {
    let mut map = registry();
    map.remove(site);
    if map.is_empty() {
        ARMED.store(false, Ordering::Release);
    }
}

/// Disarms every site and clears all counters.
pub fn reset() {
    let mut map = registry();
    map.clear();
    ARMED.store(false, Ordering::Release);
}

/// How many times `site` has been passed since it was armed.
pub fn hits(site: &str) -> u64 {
    registry().get(site).map_or(0, |s| s.hits)
}

/// How many times `site` has fired since it was armed.
pub fn fired(site: &str) -> u64 {
    registry().get(site).map_or(0, |s| s.fired)
}

/// Whether *any* site is currently armed — one relaxed atomic load.
///
/// Call sites whose names are built dynamically (e.g. per-strategy
/// suffixes) use this to skip the `format!` entirely in the common,
/// unarmed case.
pub fn any_armed() -> bool {
    ARMED.load(Ordering::Acquire)
}

/// Names of all currently armed sites.
pub fn armed_sites() -> Vec<String> {
    registry().keys().cloned().collect()
}

/// Passes through the failpoint named `site`.
///
/// When the site is unarmed this is one relaxed atomic load. When armed
/// and the policy fires, the action happens *here*: `Panic` panics (with
/// the registry lock released, so other threads keep working), `Delay`
/// sleeps, and `Error`/`Trigger` are returned for the caller to handle.
pub fn hit(site: &str) -> Hit {
    if !ARMED.load(Ordering::Acquire) {
        return Hit::Pass;
    }
    let outcome = {
        let mut map = registry();
        let Some(state) = map.get_mut(site) else {
            return Hit::Pass;
        };
        state.hits += 1;
        if !state.policy.fires(state.hits, state.fired) {
            return Hit::Pass;
        }
        state.fired += 1;
        state.action.clone()
        // Lock drops here — before any panic or sleep.
    };
    match outcome {
        FaultAction::Panic => panic!("failpoint panic: {site}"),
        FaultAction::Delay(ms) => {
            std::thread::sleep(Duration::from_millis(ms));
            Hit::Pass
        }
        FaultAction::Error(msg) => Hit::Error(msg),
        FaultAction::Trigger(tag) => Hit::Triggered(tag),
    }
}

/// A network-transport fault, parsed from a [`FaultAction::Trigger`] tag
/// at the `serve.transport.read` / `serve.transport.write` sites.
///
/// Tags use the same `name[:arg]` shape as actions:
///
/// ```text
/// slow-read:MS      stall the event loop MS milliseconds before reading
/// partial-write:N   flush at most N bytes, leaving the rest queued
/// conn-reset        kill the connection as if the peer reset it
/// black-hole        accept bytes forever, never respond
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportFault {
    /// Delay the read path by this many milliseconds.
    SlowRead(u64),
    /// Cap one flush at this many bytes.
    PartialWrite(usize),
    /// Tear the connection down immediately.
    ConnReset,
    /// Swallow all traffic on the connection without ever replying.
    BlackHole,
}

/// Parses a trigger tag into a [`TransportFault`], or `None` for tags
/// that belong to other subsystems (e.g. `degrade:`).
pub fn parse_transport_tag(tag: &str) -> Option<TransportFault> {
    let (name, arg) = match tag.split_once(':') {
        Some((n, a)) => (n, Some(a)),
        None => (tag, None),
    };
    match (name, arg) {
        ("slow-read", Some(ms)) => ms.parse().ok().map(TransportFault::SlowRead),
        ("partial-write", Some(n)) => n.parse().ok().map(TransportFault::PartialWrite),
        ("conn-reset", None) => Some(TransportFault::ConnReset),
        ("black-hole", None) => Some(TransportFault::BlackHole),
        _ => None,
    }
}

/// Passes through `site` and interprets the outcome as a transport
/// fault. `Trigger` tags are parsed with [`parse_transport_tag`];
/// injected `Error`s map to [`TransportFault::ConnReset`] (the closest
/// thing to "the read/write failed"). `Delay` sleeps inside [`hit`] as
/// usual and then passes, like an un-tagged slow-read.
pub fn transport_fault(site: &str) -> Option<TransportFault> {
    match hit(site) {
        Hit::Pass => None,
        Hit::Error(_) => Some(TransportFault::ConnReset),
        Hit::Triggered(tag) => parse_transport_tag(&tag),
    }
}

/// An error from parsing a failpoint spec string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// The clause that failed to parse.
    pub clause: String,
    /// What was wrong with it.
    pub message: String,
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad fault spec {:?}: {}", self.clause, self.message)
    }
}

impl std::error::Error for SpecError {}

fn spec_error(clause: &str, message: impl Into<String>) -> SpecError {
    SpecError {
        clause: clause.to_string(),
        message: message.into(),
    }
}

fn parse_action(clause: &str, text: &str) -> Result<FaultAction, SpecError> {
    let (name, arg) = match text.split_once(':') {
        Some((n, a)) => (n, Some(a)),
        None => (text, None),
    };
    match (name, arg) {
        ("panic", None) => Ok(FaultAction::Panic),
        ("panic", Some(_)) => Err(spec_error(clause, "panic takes no argument")),
        ("delay", Some(ms)) => ms
            .parse::<u64>()
            .map(FaultAction::Delay)
            .map_err(|_| spec_error(clause, format!("bad delay milliseconds {ms:?}"))),
        ("delay", None) => Err(spec_error(clause, "delay needs milliseconds: delay:MS")),
        ("error", Some(msg)) => Ok(FaultAction::Error(msg.to_string())),
        ("error", None) => Err(spec_error(clause, "error needs a message: error:MESSAGE")),
        ("trigger", Some(tag)) => Ok(FaultAction::Trigger(tag.to_string())),
        ("trigger", None) => Err(spec_error(clause, "trigger needs a tag: trigger:TAG")),
        _ => Err(spec_error(
            clause,
            format!("unknown action {name:?} (expected panic, delay, error or trigger)"),
        )),
    }
}

fn parse_policy(clause: &str, text: &str) -> Result<Policy, SpecError> {
    let mut parts = text.split(':');
    match parts.next() {
        Some("always") => Ok(Policy::Always),
        Some("once") => Ok(Policy::Once),
        Some("nth") => {
            let n = parts
                .next()
                .ok_or_else(|| spec_error(clause, "nth needs a count: @nth:N"))?;
            let n: u64 = n
                .parse()
                .map_err(|_| spec_error(clause, format!("bad nth count {n:?}")))?;
            if n == 0 {
                return Err(spec_error(clause, "nth is 1-based; @nth:0 never fires"));
            }
            Ok(Policy::Nth(n))
        }
        Some("prob") => {
            let p = parts.next().ok_or_else(|| {
                spec_error(clause, "prob needs probability and seed: @prob:P:SEED")
            })?;
            let seed = parts
                .next()
                .ok_or_else(|| spec_error(clause, "prob needs a seed: @prob:P:SEED"))?;
            let probability: f64 = p
                .parse()
                .map_err(|_| spec_error(clause, format!("bad probability {p:?}")))?;
            if !(0.0..=1.0).contains(&probability) {
                return Err(spec_error(clause, "probability must be in [0, 1]"));
            }
            let seed: u64 = seed
                .parse()
                .map_err(|_| spec_error(clause, format!("bad seed {seed:?}")))?;
            Ok(Policy::Seeded { probability, seed })
        }
        other => Err(spec_error(
            clause,
            format!("unknown policy {other:?} (expected always, once, nth or prob)"),
        )),
    }
}

/// Parses one `site=action[:arg][@policy]` clause.
///
/// The policy separator is the *last* `@`, so `error` messages may
/// contain `@` as long as the suffix is not a valid policy shape; they
/// may never contain `;` (the clause separator).
pub fn parse_clause(clause: &str) -> Result<(String, FaultAction, Policy), SpecError> {
    let clause = clause.trim();
    let (site, rest) = clause
        .split_once('=')
        .ok_or_else(|| spec_error(clause, "expected site=action"))?;
    let site = site.trim();
    if site.is_empty() {
        return Err(spec_error(clause, "empty site name"));
    }
    let (action_text, policy) = match rest.rsplit_once('@') {
        Some((before, after)) if parse_policy(clause, after).is_ok() => {
            (before, parse_policy(clause, after)?)
        }
        _ => (rest, Policy::Always),
    };
    let action = parse_action(clause, action_text)?;
    Ok((site.to_string(), action, policy))
}

/// Arms every clause in a `;`-separated spec string. Returns how many
/// sites were armed. Empty clauses (trailing `;`) are skipped.
pub fn arm_from_spec(spec: &str) -> Result<usize, SpecError> {
    let mut parsed = Vec::new();
    for clause in spec.split(';') {
        if clause.trim().is_empty() {
            continue;
        }
        parsed.push(parse_clause(clause)?);
    }
    // All-or-nothing: only arm once the whole spec parsed.
    let count = parsed.len();
    for (site, action, policy) in parsed {
        arm(&site, action, policy);
    }
    Ok(count)
}

/// Arms from the `QCS_FAULTS` environment variable, if set. Returns how
/// many sites were armed (0 when the variable is unset or empty).
pub fn arm_from_env() -> Result<usize, SpecError> {
    match std::env::var("QCS_FAULTS") {
        Ok(spec) if !spec.trim().is_empty() => arm_from_spec(&spec),
        _ => Ok(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry is process-global, so tests serialize themselves on a
    /// dedicated lock to stay independent of the test harness's threading.
    fn serial() -> MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn unarmed_site_passes() {
        let _g = serial();
        reset();
        assert_eq!(hit("nope"), Hit::Pass);
        assert_eq!(hits("nope"), 0);
    }

    #[test]
    fn once_fires_exactly_once() {
        let _g = serial();
        reset();
        arm("t.once", FaultAction::Error("boom".into()), Policy::Once);
        assert_eq!(hit("t.once"), Hit::Error("boom".into()));
        assert_eq!(hit("t.once"), Hit::Pass);
        assert_eq!(hit("t.once"), Hit::Pass);
        assert_eq!(hits("t.once"), 3);
        assert_eq!(fired("t.once"), 1);
        reset();
    }

    #[test]
    fn nth_fires_on_exactly_the_nth_hit() {
        let _g = serial();
        reset();
        arm("t.nth", FaultAction::Trigger("go".into()), Policy::Nth(3));
        assert_eq!(hit("t.nth"), Hit::Pass);
        assert_eq!(hit("t.nth"), Hit::Pass);
        assert_eq!(hit("t.nth"), Hit::Triggered("go".into()));
        assert_eq!(hit("t.nth"), Hit::Pass);
        reset();
    }

    #[test]
    fn panic_action_panics_and_releases_the_lock() {
        let _g = serial();
        reset();
        arm("t.panic", FaultAction::Panic, Policy::Once);
        let r = std::panic::catch_unwind(|| hit("t.panic"));
        assert!(r.is_err(), "armed panic site must panic");
        // The registry must still be usable after the injected panic.
        assert_eq!(fired("t.panic"), 1);
        assert_eq!(hit("t.panic"), Hit::Pass);
        reset();
    }

    #[test]
    fn seeded_policy_is_deterministic_and_calibrated() {
        let _g = serial();
        reset();
        let policy = Policy::Seeded {
            probability: 0.3,
            seed: 42,
        };
        let run = || {
            arm("t.seeded", FaultAction::Error("e".into()), policy);
            let fires: Vec<bool> = (0..200).map(|_| hit("t.seeded") != Hit::Pass).collect();
            disarm("t.seeded");
            fires
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed, same hit sequence, same decisions");
        let count = a.iter().filter(|&&f| f).count();
        assert!(
            (30..=90).contains(&count),
            "~30% of 200 hits should fire, got {count}"
        );
        reset();
    }

    #[test]
    fn delay_action_sleeps_then_passes() {
        let _g = serial();
        reset();
        arm("t.delay", FaultAction::Delay(10), Policy::Once);
        let start = std::time::Instant::now();
        assert_eq!(hit("t.delay"), Hit::Pass);
        assert!(start.elapsed() >= Duration::from_millis(10));
        reset();
    }

    #[test]
    fn disarm_clears_the_fast_path() {
        let _g = serial();
        reset();
        arm("t.a", FaultAction::Panic, Policy::Always);
        arm("t.b", FaultAction::Panic, Policy::Always);
        assert_eq!(armed_sites(), vec!["t.a".to_string(), "t.b".to_string()]);
        disarm("t.a");
        disarm("t.b");
        assert!(armed_sites().is_empty());
        assert_eq!(hit("t.a"), Hit::Pass);
        reset();
    }

    #[test]
    fn spec_round_trips_every_action_and_policy() {
        let _g = serial();
        assert_eq!(
            parse_clause("a=panic").unwrap(),
            ("a".into(), FaultAction::Panic, Policy::Always)
        );
        assert_eq!(
            parse_clause("a.b=delay:50@once").unwrap(),
            ("a.b".into(), FaultAction::Delay(50), Policy::Once)
        );
        assert_eq!(
            parse_clause("x=error:disk on fire@nth:7").unwrap(),
            (
                "x".into(),
                FaultAction::Error("disk on fire".into()),
                Policy::Nth(7)
            )
        );
        assert_eq!(
            parse_clause("y=trigger:degrade:0.1:0.1:7@prob:0.25:99").unwrap(),
            (
                "y".into(),
                FaultAction::Trigger("degrade:0.1:0.1:7".into()),
                Policy::Seeded {
                    probability: 0.25,
                    seed: 99
                }
            )
        );
    }

    #[test]
    fn error_message_may_contain_at_sign() {
        let (_, action, policy) = parse_clause("s=error:user@host unreachable").unwrap();
        assert_eq!(action, FaultAction::Error("user@host unreachable".into()));
        assert_eq!(policy, Policy::Always);
    }

    #[test]
    fn bad_specs_are_rejected() {
        for bad in [
            "noequals",
            "=panic",
            "s=explode",
            "s=panic:now",
            "s=delay",
            "s=delay:soon",
            "s=error",
            "s=panic@nth:0",
            "s=panic@prob:1.5:3",
            "s=panic@prob:0.5",
        ] {
            assert!(parse_clause(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn transport_tags_parse_and_reject() {
        assert_eq!(
            parse_transport_tag("slow-read:250"),
            Some(TransportFault::SlowRead(250))
        );
        assert_eq!(
            parse_transport_tag("partial-write:3"),
            Some(TransportFault::PartialWrite(3))
        );
        assert_eq!(
            parse_transport_tag("conn-reset"),
            Some(TransportFault::ConnReset)
        );
        assert_eq!(
            parse_transport_tag("black-hole"),
            Some(TransportFault::BlackHole)
        );
        for bad in [
            "slow-read",
            "slow-read:fast",
            "partial-write",
            "conn-reset:now",
            "black-hole:9",
            "degrade:0.1:0.1:7",
            "unknown",
        ] {
            assert_eq!(parse_transport_tag(bad), None, "{bad:?} should not parse");
        }
    }

    #[test]
    fn transport_fault_site_interprets_triggers_and_errors() {
        let _g = serial();
        reset();
        assert_eq!(transport_fault("t.transport"), None);
        arm(
            "t.transport",
            FaultAction::Trigger("black-hole".into()),
            Policy::Once,
        );
        assert_eq!(
            transport_fault("t.transport"),
            Some(TransportFault::BlackHole)
        );
        assert_eq!(transport_fault("t.transport"), None, "once only fires once");
        arm(
            "t.transport",
            FaultAction::Error("injected".into()),
            Policy::Once,
        );
        assert_eq!(
            transport_fault("t.transport"),
            Some(TransportFault::ConnReset),
            "injected errors read as connection resets"
        );
        reset();
    }

    #[test]
    fn arm_from_spec_is_all_or_nothing() {
        let _g = serial();
        reset();
        let err = arm_from_spec("ok=panic;broken=whatever").unwrap_err();
        assert!(err.message.contains("unknown action"));
        assert!(armed_sites().is_empty(), "nothing armed on a bad spec");
        assert_eq!(arm_from_spec("a=panic;b=delay:1@once;").unwrap(), 2);
        assert_eq!(armed_sites().len(), 2);
        reset();
    }
}
