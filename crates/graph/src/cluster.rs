//! K-means clustering of metric vectors.
//!
//! Section IV: "Using this new metrics and the common circuit parameters,
//! algorithms can be clustered based on their similarities. Ideally,
//! quantum algorithms with similar properties are ought to show similar
//! performance when run on specific chips using a given mapping strategy."
//!
//! Features are z-score normalized before clustering so metrics on very
//! different scales (gate counts vs coefficients in `[0, 1]`) contribute
//! comparably.

use qcs_rng::Rng;

use crate::stats;

/// Outcome of a k-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct Clustering {
    /// Cluster index (in `0..k`) assigned to each input sample.
    pub assignments: Vec<usize>,
    /// Final centroids in the *normalized* feature space.
    pub centroids: Vec<Vec<f64>>,
    /// Sum of squared distances of samples to their centroid (inertia).
    pub inertia: f64,
    /// Number of Lloyd iterations executed.
    pub iterations: usize,
}

impl Clustering {
    /// Number of samples in each cluster.
    pub fn sizes(&self) -> Vec<usize> {
        let k = self.centroids.len();
        let mut sizes = vec![0usize; k];
        for &a in &self.assignments {
            sizes[a] += 1;
        }
        sizes
    }
}

/// Z-score normalizes feature columns in place; constant columns become 0.
pub fn normalize_columns(samples: &mut [Vec<f64>]) {
    let k = samples.first().map_or(0, Vec::len);
    for j in 0..k {
        let col: Vec<f64> = samples.iter().map(|r| r[j]).collect();
        let m = stats::mean(&col);
        let s = stats::std_dev(&col);
        for row in samples.iter_mut() {
            row[j] = if s > 0.0 { (row[j] - m) / s } else { 0.0 };
        }
    }
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Lloyd's k-means with k-means++-style seeding from `rng`.
///
/// Samples are z-score normalized internally; assignments refer to input
/// order. The run is deterministic for a fixed RNG seed.
///
/// # Panics
///
/// Panics if `k == 0`, `samples` is empty, `k > samples.len()`, or the
/// sample matrix is ragged.
pub fn kmeans<R: Rng>(samples: &[Vec<f64>], k: usize, max_iter: usize, rng: &mut R) -> Clustering {
    assert!(k > 0, "k must be positive");
    assert!(!samples.is_empty(), "no samples to cluster");
    assert!(k <= samples.len(), "more clusters than samples");
    let dim = samples[0].len();
    for s in samples {
        assert_eq!(s.len(), dim, "ragged sample matrix");
    }

    let mut data = samples.to_vec();
    normalize_columns(&mut data);

    // k-means++ seeding.
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(data[rng.gen_range(0..data.len())].clone());
    while centroids.len() < k {
        let d2: Vec<f64> = data
            .iter()
            .map(|p| {
                centroids
                    .iter()
                    .map(|c| sq_dist(p, c))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let total: f64 = d2.iter().sum();
        let next = if total == 0.0 {
            rng.gen_range(0..data.len())
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut idx = data.len() - 1;
            for (i, &d) in d2.iter().enumerate() {
                if target <= d {
                    idx = i;
                    break;
                }
                target -= d;
            }
            idx
        };
        centroids.push(data[next].clone());
    }

    let mut assignments = vec![0usize; data.len()];
    let mut iterations = 0;
    for it in 0..max_iter {
        iterations = it + 1;
        // Assignment step.
        let mut changed = false;
        for (i, p) in data.iter().enumerate() {
            let best = (0..k)
                .min_by(|&a, &b| {
                    sq_dist(p, &centroids[a])
                        .partial_cmp(&sq_dist(p, &centroids[b]))
                        .expect("distances are finite")
                })
                .expect("k > 0");
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
        }
        // Update step.
        let mut sums = vec![vec![0.0; dim]; k];
        let mut counts = vec![0usize; k];
        for (i, p) in data.iter().enumerate() {
            counts[assignments[i]] += 1;
            for (j, &x) in p.iter().enumerate() {
                sums[assignments[i]][j] += x;
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                for j in 0..dim {
                    centroids[c][j] = sums[c][j] / counts[c] as f64;
                }
            }
            // Empty clusters keep their previous centroid.
        }
        if !changed && it > 0 {
            break;
        }
    }

    let inertia = data
        .iter()
        .enumerate()
        .map(|(i, p)| sq_dist(p, &centroids[assignments[i]]))
        .sum();

    Clustering {
        assignments,
        centroids,
        inertia,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcs_rng::ChaCha8Rng;
    use qcs_rng::SeedableRng;

    fn two_blobs() -> Vec<Vec<f64>> {
        let mut v = Vec::new();
        for i in 0..10 {
            v.push(vec![0.0 + 0.01 * i as f64, 0.0]);
            v.push(vec![10.0 + 0.01 * i as f64, 10.0]);
        }
        v
    }

    #[test]
    fn separates_two_blobs() {
        let samples = two_blobs();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let c = kmeans(&samples, 2, 100, &mut rng);
        // Even-index samples are one blob, odd-index the other.
        let a0 = c.assignments[0];
        let a1 = c.assignments[1];
        assert_ne!(a0, a1);
        for i in (0..20).step_by(2) {
            assert_eq!(c.assignments[i], a0);
            assert_eq!(c.assignments[i + 1], a1);
        }
        assert_eq!(c.sizes(), vec![10, 10]);
        assert!(c.inertia < 1.0);
    }

    #[test]
    fn k_equals_one_groups_everything() {
        let samples = two_blobs();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let c = kmeans(&samples, 1, 50, &mut rng);
        assert!(c.assignments.iter().all(|&a| a == 0));
        assert_eq!(c.sizes(), vec![20]);
    }

    #[test]
    fn deterministic_per_seed() {
        let samples = two_blobs();
        let a = kmeans(&samples, 2, 100, &mut ChaCha8Rng::seed_from_u64(9));
        let b = kmeans(&samples, 2, 100, &mut ChaCha8Rng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn normalize_zeroes_constant_columns() {
        let mut samples = vec![vec![5.0, 1.0], vec![5.0, 3.0]];
        normalize_columns(&mut samples);
        assert_eq!(samples[0][0], 0.0);
        assert_eq!(samples[1][0], 0.0);
        assert!(samples[0][1] < 0.0 && samples[1][1] > 0.0);
    }

    #[test]
    #[should_panic(expected = "more clusters than samples")]
    fn rejects_k_too_large() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let _ = kmeans(&[vec![1.0]], 2, 10, &mut rng);
    }

    #[test]
    fn identical_points_any_k() {
        let samples = vec![vec![1.0, 1.0]; 5];
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let c = kmeans(&samples, 2, 10, &mut rng);
        assert_eq!(c.assignments.len(), 5);
        assert_eq!(c.inertia, 0.0);
    }
}
