//! Deterministic graph generators for tests, devices and workloads.

use qcs_rng::Rng;

use crate::graph::Graph;

/// Path graph `0 - 1 - … - (n-1)`.
pub fn path_graph(n: usize) -> Graph {
    let mut g = Graph::with_nodes(n);
    for i in 1..n {
        g.add_edge(i - 1, i).expect("path edge is valid");
    }
    g
}

/// Ring (cycle) graph on `n` nodes; for `n < 3` this degenerates to a path.
pub fn ring_graph(n: usize) -> Graph {
    let mut g = path_graph(n);
    if n >= 3 {
        g.add_edge(n - 1, 0).expect("ring closure edge is valid");
    }
    g
}

/// Star graph: node 0 is the hub connected to `1..n`.
pub fn star_graph(n: usize) -> Graph {
    let mut g = Graph::with_nodes(n);
    for i in 1..n {
        g.add_edge(0, i).expect("star edge is valid");
    }
    g
}

/// Complete graph on `n` nodes.
pub fn complete_graph(n: usize) -> Graph {
    let mut g = Graph::with_nodes(n);
    for u in 0..n {
        for v in (u + 1)..n {
            g.add_edge(u, v).expect("complete edge is valid");
        }
    }
    g
}

/// Rectangular grid with `rows × cols` nodes; node `(r, c)` has id
/// `r * cols + c` and connects to its 4-neighbourhood.
pub fn grid_graph(rows: usize, cols: usize) -> Graph {
    let mut g = Graph::with_nodes(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let id = r * cols + c;
            if c + 1 < cols {
                g.add_edge(id, id + 1).expect("grid edge is valid");
            }
            if r + 1 < rows {
                g.add_edge(id, id + cols).expect("grid edge is valid");
            }
        }
    }
    g
}

/// Erdős–Rényi `G(n, p)` random graph drawn from `rng`.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]`.
pub fn erdos_renyi<R: Rng>(n: usize, p: f64, rng: &mut R) -> Graph {
    assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
    let mut g = Graph::with_nodes(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p) {
                g.add_edge(u, v).expect("sampled edge is valid");
            }
        }
    }
    g
}

/// Connected Erdős–Rényi-style graph: samples `G(n, p)` then joins
/// components along a random spanning chain so the result is connected.
pub fn connected_random<R: Rng>(n: usize, p: f64, rng: &mut R) -> Graph {
    let mut g = erdos_renyi(n, p, rng);
    if n == 0 {
        return g;
    }
    // Join components: shuffle node order, walk it, and link each node whose
    // component is new to a random earlier node.
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    let mut comp = crate::paths::all_pairs_hopcount(&g);
    let reachable =
        |comp: &Vec<Vec<usize>>, a: usize, b: usize| comp[a][b] != crate::paths::UNREACHABLE;
    for i in 1..n {
        let u = order[i];
        let v = order[rng.gen_range(0..i)];
        if !reachable(&comp, u, v) {
            g.add_edge(u, v).expect("joining edge is valid");
            comp = crate::paths::all_pairs_hopcount(&g);
        }
    }
    g
}

/// Random `d`-regular-ish graph: a ring plus random chords until every node
/// has degree at least `d` or no more chords can be added.
///
/// Used to synthesize QAOA problem instances (regular MaxCut graphs).
pub fn regularish_graph<R: Rng>(n: usize, d: usize, rng: &mut R) -> Graph {
    let mut g = if n >= 3 { ring_graph(n) } else { path_graph(n) };
    if n < 2 {
        return g;
    }
    let mut attempts = 0;
    let max_attempts = n * n * 4;
    while attempts < max_attempts {
        attempts += 1;
        let deficient: Vec<usize> = (0..n).filter(|&u| g.degree(u) < d).collect();
        if deficient.is_empty() {
            break;
        }
        let u = deficient[rng.gen_range(0..deficient.len())];
        let v = rng.gen_range(0..n);
        if u != v && !g.has_edge(u, v) {
            g.add_edge(u, v).expect("chord is valid");
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths;
    use qcs_rng::ChaCha8Rng;
    use qcs_rng::SeedableRng;

    #[test]
    fn path_shape() {
        let g = path_graph(5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
    }

    #[test]
    fn ring_shape() {
        let g = ring_graph(5);
        assert_eq!(g.edge_count(), 5);
        assert!((0..5).all(|u| g.degree(u) == 2));
        // Degenerate rings.
        assert_eq!(ring_graph(2).edge_count(), 1);
        assert_eq!(ring_graph(1).edge_count(), 0);
    }

    #[test]
    fn star_shape() {
        let g = star_graph(6);
        assert_eq!(g.degree(0), 5);
        assert!((1..6).all(|u| g.degree(u) == 1));
    }

    #[test]
    fn complete_shape() {
        let g = complete_graph(6);
        assert_eq!(g.edge_count(), 15);
        assert_eq!(g.density(), 1.0);
    }

    #[test]
    fn grid_shape() {
        let g = grid_graph(3, 4);
        assert_eq!(g.node_count(), 12);
        // Edges: 3*3 horizontal + 2*4 vertical = 17.
        assert_eq!(g.edge_count(), 17);
        assert_eq!(g.degree(0), 2); // corner
        assert_eq!(g.degree(5), 4); // interior
        assert!(paths::is_connected(&g));
    }

    #[test]
    fn erdos_renyi_extremes() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        assert_eq!(erdos_renyi(6, 0.0, &mut rng).edge_count(), 0);
        assert_eq!(erdos_renyi(6, 1.0, &mut rng).edge_count(), 15);
    }

    #[test]
    fn erdos_renyi_deterministic_per_seed() {
        let a = erdos_renyi(10, 0.4, &mut ChaCha8Rng::seed_from_u64(42));
        let b = erdos_renyi(10, 0.4, &mut ChaCha8Rng::seed_from_u64(42));
        assert_eq!(a, b);
    }

    #[test]
    fn connected_random_is_connected() {
        for seed in 0..5 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let g = connected_random(12, 0.05, &mut rng);
            assert!(paths::is_connected(&g), "seed {seed} not connected");
        }
    }

    #[test]
    fn regularish_reaches_degree() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = regularish_graph(10, 3, &mut rng);
        assert!((0..10).all(|u| g.degree(u) >= 3));
        assert!(paths::is_connected(&g));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn erdos_renyi_rejects_bad_p() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let _ = erdos_renyi(3, 1.5, &mut rng);
    }
}
