//! Undirected weighted graph with dense `usize` node ids.
//!
//! The representation is an adjacency list mirrored by an edge map, tuned
//! for the two access patterns the stack needs: neighbour scans during
//! routing, and whole-matrix statistics during profiling.

use std::collections::BTreeMap;
use std::fmt;

use qcs_json::{FromJson, Json, JsonError, ToJson};

/// Identifier of a graph node (a virtual or physical qubit).
pub type NodeId = usize;

/// Error type for graph construction and queries.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// A node id was at least the node count.
    NodeOutOfRange {
        /// The offending node id.
        node: NodeId,
        /// The number of nodes in the graph.
        len: usize,
    },
    /// An edge connected a node to itself, which interaction and coupling
    /// graphs never contain.
    SelfLoop(NodeId),
    /// An edge weight was not a finite positive number.
    BadWeight(f64),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, len } => {
                write!(f, "node {node} out of range for graph with {len} nodes")
            }
            GraphError::SelfLoop(n) => write!(f, "self-loop on node {n} is not allowed"),
            GraphError::BadWeight(w) => write!(f, "edge weight {w} is not finite and positive"),
        }
    }
}

impl std::error::Error for GraphError {}

/// An undirected weighted graph.
///
/// Nodes are the integers `0..node_count()`. Parallel edges are merged by
/// *accumulating* weights, matching how interaction graphs count repeated
/// two-qubit gates between the same pair of qubits.
///
/// # Examples
///
/// ```
/// use qcs_graph::Graph;
///
/// let mut g = Graph::with_nodes(3);
/// g.add_edge(0, 1)?;
/// g.add_edge(0, 1)?; // accumulates: weight is now 2
/// assert_eq!(g.weight(0, 1), Some(2.0));
/// assert_eq!(g.edge_count(), 1);
/// # Ok::<(), qcs_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Graph {
    nodes: usize,
    /// Canonical edge store: key is `(min(u, v), max(u, v))`.
    edges: BTreeMap<(NodeId, NodeId), f64>,
    /// Adjacency mirror for fast neighbour scans.
    adjacency: Vec<Vec<NodeId>>,
}

impl ToJson for Graph {
    /// Edge-list wire format (JSON-friendly: no tuple map keys).
    fn to_json(&self) -> Json {
        Json::object([
            ("nodes", Json::from(self.nodes as f64)),
            (
                "edges",
                Json::Array(
                    self.edges()
                        .map(|(u, v, w)| {
                            Json::Array(vec![
                                Json::from(u as f64),
                                Json::from(v as f64),
                                Json::from(w),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

impl FromJson for Graph {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let nodes: usize = qcs_json::field(json, "nodes")?;
        let mut g = Graph::with_nodes(nodes);
        let edges: Vec<Vec<Json>> = json
            .field("edges")?
            .as_array()
            .ok_or(JsonError::Type { expected: "array" })?
            .iter()
            .map(|e| e.as_array().map(<[Json]>::to_vec))
            .collect::<Option<_>>()
            .ok_or(JsonError::Type {
                expected: "[u, v, w] edge triple",
            })?;
        for triple in &edges {
            if triple.len() != 3 {
                return Err(JsonError::Type {
                    expected: "[u, v, w] edge triple",
                });
            }
            let u = usize::from_json(&triple[0])?;
            let v = usize::from_json(&triple[1])?;
            let w = f64::from_json(&triple[2])?;
            g.add_edge_weighted(u, v, w).map_err(|_| JsonError::Type {
                expected: "valid graph edge",
            })?;
        }
        Ok(g)
    }
}

impl Graph {
    /// Creates an empty graph with zero nodes.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a graph with `n` isolated nodes.
    pub fn with_nodes(n: usize) -> Self {
        Graph {
            nodes: n,
            edges: BTreeMap::new(),
            adjacency: vec![Vec::new(); n],
        }
    }

    /// Builds a graph from an edge list, creating nodes as needed.
    ///
    /// Node count becomes `max id + 1`. Duplicate pairs accumulate weight.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::SelfLoop`] or [`GraphError::BadWeight`] on
    /// invalid input edges.
    pub fn from_edges<I>(edges: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = (NodeId, NodeId, f64)>,
    {
        let mut g = Graph::new();
        for (u, v, w) in edges {
            let need = u.max(v) + 1;
            if need > g.nodes {
                g.grow_to(need);
            }
            g.add_edge_weighted(u, v, w)?;
        }
        Ok(g)
    }

    /// Adds a new isolated node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        self.nodes += 1;
        self.adjacency.push(Vec::new());
        self.nodes - 1
    }

    /// Ensures the graph has at least `n` nodes.
    pub fn grow_to(&mut self, n: usize) {
        if n > self.nodes {
            self.nodes = n;
            self.adjacency.resize(n, Vec::new());
        }
    }

    /// Adds weight `1.0` to the edge `{u, v}` (creating it if absent).
    ///
    /// # Errors
    ///
    /// Returns an error if either endpoint is out of range or `u == v`.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<(), GraphError> {
        self.add_edge_weighted(u, v, 1.0)
    }

    /// Adds weight `w` to the edge `{u, v}` (creating it if absent).
    ///
    /// # Errors
    ///
    /// Returns an error if either endpoint is out of range, `u == v`, or
    /// `w` is not finite and positive.
    pub fn add_edge_weighted(&mut self, u: NodeId, v: NodeId, w: f64) -> Result<(), GraphError> {
        self.check_node(u)?;
        self.check_node(v)?;
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        if !w.is_finite() || w <= 0.0 {
            return Err(GraphError::BadWeight(w));
        }
        let key = (u.min(v), u.max(v));
        let entry = self.edges.entry(key).or_insert(0.0);
        if *entry == 0.0 {
            self.adjacency[u].push(v);
            self.adjacency[v].push(u);
        }
        *entry += w;
        Ok(())
    }

    /// Sets the weight of edge `{u, v}` exactly, replacing any prior value.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Graph::add_edge_weighted`].
    pub fn set_weight(&mut self, u: NodeId, v: NodeId, w: f64) -> Result<(), GraphError> {
        self.check_node(u)?;
        self.check_node(v)?;
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        if !w.is_finite() || w <= 0.0 {
            return Err(GraphError::BadWeight(w));
        }
        let key = (u.min(v), u.max(v));
        if self.edges.insert(key, w).is_none() {
            self.adjacency[u].push(v);
            self.adjacency[v].push(u);
        }
        Ok(())
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// Number of distinct edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Whether the edge `{u, v}` exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if u == v || u >= self.nodes || v >= self.nodes {
            return false;
        }
        self.edges.contains_key(&(u.min(v), u.max(v)))
    }

    /// Weight of edge `{u, v}`, or `None` if absent.
    pub fn weight(&self, u: NodeId, v: NodeId) -> Option<f64> {
        if u == v || u >= self.nodes || v >= self.nodes {
            return None;
        }
        self.edges.get(&(u.min(v), u.max(v))).copied()
    }

    /// Neighbours of `u` in insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        &self.adjacency[u]
    }

    /// Unweighted degree (number of incident edges) of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn degree(&self, u: NodeId) -> usize {
        self.adjacency[u].len()
    }

    /// Weighted degree (sum of incident edge weights) of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn weighted_degree(&self, u: NodeId) -> f64 {
        self.adjacency[u]
            .iter()
            .map(|&v| self.weight(u, v).unwrap_or(0.0))
            .sum()
    }

    /// Iterates over `(u, v, weight)` with `u < v`, ordered by `(u, v)`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, f64)> + '_ {
        self.edges.iter().map(|(&(u, v), &w)| (u, v, w))
    }

    /// Total of all edge weights.
    pub fn total_weight(&self) -> f64 {
        self.edges.values().sum()
    }

    /// Dense symmetric adjacency matrix; entry `[u][v]` is the edge weight
    /// (0 where no edge exists, including the diagonal).
    pub fn adjacency_matrix(&self) -> Vec<Vec<f64>> {
        let mut m = vec![vec![0.0; self.nodes]; self.nodes];
        for (u, v, w) in self.edges() {
            m[u][v] = w;
            m[v][u] = w;
        }
        m
    }

    /// Returns the graph with every weight replaced by `1.0` (the
    /// *unweighted skeleton* used by hop-count based metrics).
    pub fn to_unweighted(&self) -> Graph {
        let mut g = Graph::with_nodes(self.nodes);
        for (u, v, _) in self.edges() {
            g.add_edge(u, v).expect("skeleton edge must be valid");
        }
        g
    }

    /// Relabels nodes by `perm` (new id of node `i` is `perm[i]`).
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..node_count()`.
    pub fn relabel(&self, perm: &[NodeId]) -> Graph {
        assert_eq!(perm.len(), self.nodes, "permutation length mismatch");
        let mut seen = vec![false; self.nodes];
        for &p in perm {
            assert!(p < self.nodes && !seen[p], "not a permutation");
            seen[p] = true;
        }
        let mut g = Graph::with_nodes(self.nodes);
        for (u, v, w) in self.edges() {
            g.add_edge_weighted(perm[u], perm[v], w)
                .expect("relabelled edge must be valid");
        }
        g
    }

    /// Density: edges divided by the maximum possible `n(n-1)/2`.
    ///
    /// Returns 0 for graphs with fewer than two nodes.
    pub fn density(&self) -> f64 {
        if self.nodes < 2 {
            return 0.0;
        }
        let max = self.nodes * (self.nodes - 1) / 2;
        self.edges.len() as f64 / max as f64
    }

    /// Renders the graph in Graphviz DOT format (undirected), with edge
    /// weights as labels — handy for visualizing interaction and coupling
    /// graphs (`dot -Tpng`).
    ///
    /// # Examples
    ///
    /// ```
    /// use qcs_graph::Graph;
    ///
    /// let g = Graph::from_edges([(0, 1, 2.0)])?;
    /// let dot = g.to_dot("ig");
    /// assert!(dot.contains("graph ig {"));
    /// assert!(dot.contains("0 -- 1 [label=\"2\"];"));
    /// # Ok::<(), qcs_graph::GraphError>(())
    /// ```
    pub fn to_dot(&self, name: &str) -> String {
        let mut out = format!("graph {name} {{\n");
        for u in 0..self.nodes {
            out.push_str(&format!("  {u};\n"));
        }
        for (u, v, w) in self.edges() {
            out.push_str(&format!("  {u} -- {v} [label=\"{w}\"];\n"));
        }
        out.push_str("}\n");
        out
    }

    fn check_node(&self, u: NodeId) -> Result<(), GraphError> {
        if u >= self.nodes {
            Err(GraphError::NodeOutOfRange {
                node: u,
                len: self.nodes,
            })
        } else {
            Ok(())
        }
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "graph with {} nodes, {} edges",
            self.nodes,
            self.edges.len()
        )?;
        for (u, v, w) in self.edges() {
            writeln!(f, "  {u} -- {v} [weight {w}]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = Graph::new();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.density(), 0.0);
    }

    #[test]
    fn add_nodes_and_edges() {
        let mut g = Graph::with_nodes(2);
        let c = g.add_node();
        assert_eq!(c, 2);
        g.add_edge(0, 1).unwrap();
        g.add_edge(1, 2).unwrap();
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn weights_accumulate() {
        let mut g = Graph::with_nodes(2);
        g.add_edge_weighted(0, 1, 1.5).unwrap();
        g.add_edge_weighted(1, 0, 2.5).unwrap();
        assert_eq!(g.weight(0, 1), Some(4.0));
        assert_eq!(g.weight(1, 0), Some(4.0));
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.total_weight(), 4.0);
    }

    #[test]
    fn set_weight_replaces() {
        let mut g = Graph::with_nodes(2);
        g.add_edge_weighted(0, 1, 3.0).unwrap();
        g.set_weight(0, 1, 1.0).unwrap();
        assert_eq!(g.weight(0, 1), Some(1.0));
        // Setting on a fresh pair also creates the edge.
        let mut h = Graph::with_nodes(2);
        h.set_weight(0, 1, 2.0).unwrap();
        assert_eq!(h.weight(0, 1), Some(2.0));
        assert_eq!(h.degree(0), 1);
    }

    #[test]
    fn rejects_self_loop() {
        let mut g = Graph::with_nodes(2);
        assert_eq!(g.add_edge(1, 1), Err(GraphError::SelfLoop(1)));
    }

    #[test]
    fn rejects_out_of_range() {
        let mut g = Graph::with_nodes(2);
        assert!(matches!(
            g.add_edge(0, 5),
            Err(GraphError::NodeOutOfRange { node: 5, len: 2 })
        ));
    }

    #[test]
    fn rejects_bad_weight() {
        let mut g = Graph::with_nodes(2);
        assert!(matches!(
            g.add_edge_weighted(0, 1, 0.0),
            Err(GraphError::BadWeight(_))
        ));
        assert!(matches!(
            g.add_edge_weighted(0, 1, -1.0),
            Err(GraphError::BadWeight(_))
        ));
        assert!(matches!(
            g.add_edge_weighted(0, 1, f64::NAN),
            Err(GraphError::BadWeight(_))
        ));
    }

    #[test]
    fn from_edges_grows() {
        let g = Graph::from_edges([(0, 3, 1.0), (1, 2, 2.0)]).unwrap();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.weight(1, 2), Some(2.0));
    }

    #[test]
    fn adjacency_matrix_symmetric() {
        let g = Graph::from_edges([(0, 1, 2.0), (1, 2, 3.0)]).unwrap();
        let m = g.adjacency_matrix();
        assert_eq!(m[0][1], 2.0);
        assert_eq!(m[1][0], 2.0);
        assert_eq!(m[2][1], 3.0);
        assert_eq!(m[0][2], 0.0);
        assert_eq!(m[0][0], 0.0);
    }

    #[test]
    fn weighted_degree_sums() {
        let g = Graph::from_edges([(0, 1, 2.0), (0, 2, 3.0)]).unwrap();
        assert_eq!(g.weighted_degree(0), 5.0);
        assert_eq!(g.weighted_degree(1), 2.0);
    }

    #[test]
    fn unweighted_skeleton() {
        let g = Graph::from_edges([(0, 1, 7.0)]).unwrap();
        let s = g.to_unweighted();
        assert_eq!(s.weight(0, 1), Some(1.0));
    }

    #[test]
    fn relabel_permutes() {
        let g = Graph::from_edges([(0, 1, 2.0), (1, 2, 3.0)]).unwrap();
        let h = g.relabel(&[2, 0, 1]);
        assert_eq!(h.weight(2, 0), Some(2.0));
        assert_eq!(h.weight(0, 1), Some(3.0));
        assert_eq!(h.weight(1, 2), None);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn relabel_rejects_non_permutation() {
        let g = Graph::with_nodes(2);
        let _ = g.relabel(&[0, 0]);
    }

    #[test]
    fn density_of_triangle() {
        let g = Graph::from_edges([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)]).unwrap();
        assert_eq!(g.density(), 1.0);
    }

    #[test]
    fn dot_output() {
        let g = Graph::from_edges([(0, 1, 1.0), (1, 2, 2.5)]).unwrap();
        let dot = g.to_dot("test");
        assert!(dot.starts_with("graph test {"));
        assert!(dot.contains("  2;"));
        assert!(dot.contains("0 -- 1 [label=\"1\"];"));
        assert!(dot.contains("1 -- 2 [label=\"2.5\"];"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn display_lists_edges() {
        let g = Graph::from_edges([(0, 1, 1.0)]).unwrap();
        let s = g.to_string();
        assert!(s.contains("2 nodes"));
        assert!(s.contains("0 -- 1"));
    }
}
