//! Weighted-graph substrate for the NISQ full-stack reproduction.
//!
//! This crate provides the graph-theory toolbox that the paper's co-design
//! example rests on:
//!
//! * [`Graph`] — a simple undirected weighted graph used both for *qubit
//!   interaction graphs* (nodes are virtual qubits, edge weights count
//!   two-qubit gates) and for *device coupling graphs* (nodes are physical
//!   qubits, edges are couplers).
//! * [`paths`] — shortest-path machinery (BFS hopcount, Dijkstra,
//!   all-pairs) that the routers and the closeness/hopcount metrics use.
//! * [`metrics`] — the Table I metric set: degree statistics,
//!   hopcount/closeness, clustering coefficient, connectivity and
//!   adjacency-matrix weight statistics.
//! * [`stats`] — descriptive statistics and the Pearson correlation matrix
//!   used in Section IV to prune codependent metrics.
//! * [`cluster`] — k-means clustering of metric vectors ("algorithms with
//!   similar properties ought to show similar performance").
//! * [`generate`] — deterministic graph generators (path, ring, star, grid,
//!   complete, Erdős–Rényi) used by tests and workload generators.
//!
//! # Examples
//!
//! ```
//! use qcs_graph::Graph;
//! use qcs_graph::metrics::GraphMetrics;
//!
//! // The 4-qubit interaction graph of Fig. 2 (weights = CNOT multiplicities).
//! let mut g = Graph::with_nodes(4);
//! g.add_edge_weighted(0, 1, 1.0)?;
//! g.add_edge_weighted(1, 2, 2.0)?;
//! g.add_edge_weighted(2, 3, 1.0)?;
//! g.add_edge_weighted(0, 2, 1.0)?;
//!
//! let m = GraphMetrics::compute(&g);
//! assert_eq!(m.max_degree, 3.0);
//! # Ok::<(), qcs_graph::GraphError>(())
//! ```

#![warn(missing_docs)]

pub mod cluster;
pub mod generate;
pub mod graph;
pub mod metrics;
pub mod paths;
pub mod stats;

pub use graph::{Graph, GraphError, NodeId};
