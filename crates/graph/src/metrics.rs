//! Table I metric set: graph-theory characterization of interaction graphs.
//!
//! The paper characterizes quantum algorithms by graph metrics of their
//! qubit interaction graphs (Hernández & Van Mieghem's classification,
//! ref. \[47\]), with a focus on the metrics related to mapping:
//!
//! * **hopcount / closeness** — average shortest path between node pairs;
//!   large average hopcount → less connected graph → easier to map;
//! * **maximal / minimal degree** — lower extremes → qubits interact less →
//!   simpler to map;
//! * **adjacency-matrix / weight-distribution statistics** — the trade-off
//!   metric: bigger variance → a few pairs dominate the interactions →
//!   less qubit movement, but also less parallelism.
//!
//! [`GraphMetrics::compute`] evaluates the full set in one pass so the
//! profiler can build metric vectors for correlation pruning (Section IV)
//! and clustering.

use crate::graph::Graph;
use crate::paths::{all_pairs_hopcount, component_count, diameter, UNREACHABLE};
use crate::stats;

/// The complete metric vector of Table I (plus the auxiliary metrics the
/// paper's correlation analysis starts from).
///
/// All fields are `f64` so the vector can feed directly into the Pearson
/// correlation matrix and k-means clustering.
///
/// # Examples
///
/// ```
/// use qcs_graph::{generate, metrics::GraphMetrics};
///
/// let star = generate::star_graph(5);
/// let m = GraphMetrics::compute(&star);
/// assert_eq!(m.max_degree, 4.0);
/// assert_eq!(m.min_degree, 1.0);
/// assert_eq!(m.clustering_coefficient, 0.0); // no triangles in a star
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphMetrics {
    /// Number of nodes (qubits participating in two-qubit gates).
    pub nodes: f64,
    /// Number of distinct edges (interacting qubit pairs).
    pub edges: f64,
    /// Average shortest-path hopcount over connected node pairs
    /// (Table I "hopcount"); 0 when fewer than two nodes are connected.
    pub avg_shortest_path: f64,
    /// Closeness: reciprocal of `avg_shortest_path` (0 when undefined).
    pub closeness: f64,
    /// Longest shortest path over the graph (per component).
    pub diameter: f64,
    /// Maximum unweighted degree.
    pub max_degree: f64,
    /// Minimum unweighted degree.
    pub min_degree: f64,
    /// Mean unweighted degree.
    pub avg_degree: f64,
    /// Standard deviation of the degree distribution.
    pub degree_std: f64,
    /// Global clustering coefficient (average of local coefficients).
    pub clustering_coefficient: f64,
    /// Edge density in `[0, 1]`.
    pub density: f64,
    /// Number of connected components.
    pub components: f64,
    /// Largest edge weight (most-repeated qubit pair).
    pub max_weight: f64,
    /// Smallest edge weight.
    pub min_weight: f64,
    /// Mean edge weight.
    pub mean_weight: f64,
    /// Standard deviation of the edge-weight distribution
    /// (Table I "weight distribution std. dev.").
    pub weight_std: f64,
    /// Variance of the edge-weight distribution.
    pub weight_variance: f64,
    /// Standard deviation over all off-diagonal adjacency-matrix entries
    /// (zeros included), Table I "adjacency matrix std. dev."; this couples
    /// sparsity and weight dispersion in a single number.
    pub adjacency_std: f64,
    /// Largest betweenness centrality over nodes (normalized by the
    /// number of ordered pairs): how strongly the busiest qubit sits on
    /// everyone else's shortest paths — a routing-hotspot indicator from
    /// the same metric catalogue (ref \[47\]).
    pub max_betweenness: f64,
}

qcs_json::impl_json_object!(GraphMetrics {
    nodes,
    edges,
    avg_shortest_path,
    closeness,
    diameter,
    max_degree,
    min_degree,
    avg_degree,
    degree_std,
    clustering_coefficient,
    density,
    components,
    max_weight,
    min_weight,
    mean_weight,
    weight_std,
    weight_variance,
    adjacency_std,
    max_betweenness,
});

impl GraphMetrics {
    /// Computes every metric for `g`.
    ///
    /// Hopcount-family metrics are evaluated on the unweighted skeleton
    /// (edge multiplicity does not shorten routing distance); weight-family
    /// metrics use the weighted edges.
    pub fn compute(g: &Graph) -> Self {
        let n = g.node_count();
        let degrees: Vec<f64> = (0..n).map(|u| g.degree(u) as f64).collect();
        let weights: Vec<f64> = g.edges().map(|(_, _, w)| w).collect();

        let hop = all_pairs_hopcount(g);
        let mut hop_sum = 0usize;
        let mut hop_pairs = 0usize;
        for (i, row) in hop.iter().enumerate() {
            for (j, &d) in row.iter().enumerate() {
                if j > i && d != UNREACHABLE {
                    hop_sum += d;
                    hop_pairs += 1;
                }
            }
        }
        let avg_sp = if hop_pairs > 0 {
            hop_sum as f64 / hop_pairs as f64
        } else {
            0.0
        };

        // Off-diagonal adjacency entries, zeros included. Each unordered
        // pair appears twice in the matrix but that does not change mean or
        // std, so iterate unordered pairs once.
        let mut adj_entries = Vec::with_capacity(n.saturating_sub(1) * n / 2);
        for u in 0..n {
            for v in (u + 1)..n {
                adj_entries.push(g.weight(u, v).unwrap_or(0.0));
            }
        }

        GraphMetrics {
            nodes: n as f64,
            edges: g.edge_count() as f64,
            avg_shortest_path: avg_sp,
            closeness: if avg_sp > 0.0 { 1.0 / avg_sp } else { 0.0 },
            diameter: diameter(g).unwrap_or(0) as f64,
            max_degree: degrees.iter().copied().fold(0.0, f64::max),
            min_degree: if n == 0 {
                0.0
            } else {
                degrees.iter().copied().fold(f64::INFINITY, f64::min)
            },
            avg_degree: stats::mean(&degrees),
            degree_std: stats::std_dev(&degrees),
            clustering_coefficient: clustering_coefficient(g),
            density: g.density(),
            components: component_count(g) as f64,
            max_weight: weights.iter().copied().fold(0.0, f64::max),
            min_weight: if weights.is_empty() {
                0.0
            } else {
                weights.iter().copied().fold(f64::INFINITY, f64::min)
            },
            mean_weight: stats::mean(&weights),
            weight_std: stats::std_dev(&weights),
            weight_variance: stats::variance(&weights),
            adjacency_std: stats::std_dev(&adj_entries),
            max_betweenness: betweenness_centrality(g).into_iter().fold(0.0, f64::max),
        }
    }

    /// The metric names, in the order produced by [`GraphMetrics::to_vec`].
    pub fn names() -> &'static [&'static str] {
        &[
            "nodes",
            "edges",
            "avg_shortest_path",
            "closeness",
            "diameter",
            "max_degree",
            "min_degree",
            "avg_degree",
            "degree_std",
            "clustering_coefficient",
            "density",
            "components",
            "max_weight",
            "min_weight",
            "mean_weight",
            "weight_std",
            "weight_variance",
            "adjacency_std",
            "max_betweenness",
        ]
    }

    /// Flattens the metrics into a vector aligned with
    /// [`GraphMetrics::names`], ready for correlation or clustering.
    pub fn to_vec(&self) -> Vec<f64> {
        vec![
            self.nodes,
            self.edges,
            self.avg_shortest_path,
            self.closeness,
            self.diameter,
            self.max_degree,
            self.min_degree,
            self.avg_degree,
            self.degree_std,
            self.clustering_coefficient,
            self.density,
            self.components,
            self.max_weight,
            self.min_weight,
            self.mean_weight,
            self.weight_std,
            self.weight_variance,
            self.adjacency_std,
            self.max_betweenness,
        ]
    }

    /// The pruned metric subset that survives the paper's Pearson
    /// correlation analysis: average shortest path (hopcount/closeness),
    /// maximal and minimal degree, and adjacency-matrix standard deviation.
    pub fn selected_names() -> &'static [&'static str] {
        &[
            "avg_shortest_path",
            "max_degree",
            "min_degree",
            "adjacency_std",
        ]
    }

    /// The values of [`GraphMetrics::selected_names`], in order.
    pub fn selected_vec(&self) -> Vec<f64> {
        vec![
            self.avg_shortest_path,
            self.max_degree,
            self.min_degree,
            self.adjacency_std,
        ]
    }
}

/// Betweenness centrality of every node (Brandes' algorithm, unweighted),
/// normalized by the number of ordered node pairs `(n−1)(n−2)` so values
/// lie in `[0, 1]`; zeros for graphs with fewer than 3 nodes.
///
/// # Examples
///
/// ```
/// use qcs_graph::{generate, metrics::betweenness_centrality};
///
/// // The hub of a star lies on every pairwise shortest path.
/// let bc = betweenness_centrality(&generate::star_graph(5));
/// assert_eq!(bc[0], 1.0);
/// assert_eq!(bc[1], 0.0);
/// ```
pub fn betweenness_centrality(g: &Graph) -> Vec<f64> {
    let n = g.node_count();
    let mut centrality = vec![0.0f64; n];
    if n < 3 {
        return centrality;
    }
    for s in 0..n {
        // Brandes: single-source shortest-path counts + dependency
        // accumulation.
        let mut stack: Vec<usize> = Vec::with_capacity(n);
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut sigma = vec![0.0f64; n];
        let mut dist = vec![usize::MAX; n];
        sigma[s] = 1.0;
        dist[s] = 0;
        let mut queue = std::collections::VecDeque::from([s]);
        while let Some(v) = queue.pop_front() {
            stack.push(v);
            for &w in g.neighbors(v) {
                if dist[w] == usize::MAX {
                    dist[w] = dist[v] + 1;
                    queue.push_back(w);
                }
                if dist[w] == dist[v] + 1 {
                    sigma[w] += sigma[v];
                    preds[w].push(v);
                }
            }
        }
        let mut delta = vec![0.0f64; n];
        while let Some(w) = stack.pop() {
            for &v in &preds[w] {
                delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w]);
            }
            if w != s {
                centrality[w] += delta[w];
            }
        }
    }
    let norm = ((n - 1) * (n - 2)) as f64;
    for c in &mut centrality {
        *c /= norm;
    }
    centrality
}

/// Local clustering coefficient of node `u`: fraction of neighbour pairs
/// that are themselves connected. Nodes with degree < 2 have coefficient 0.
pub fn local_clustering(g: &Graph, u: usize) -> f64 {
    let nbrs = g.neighbors(u);
    let k = nbrs.len();
    if k < 2 {
        return 0.0;
    }
    let mut links = 0usize;
    for i in 0..k {
        for j in (i + 1)..k {
            if g.has_edge(nbrs[i], nbrs[j]) {
                links += 1;
            }
        }
    }
    2.0 * links as f64 / (k as f64 * (k as f64 - 1.0))
}

/// Global clustering coefficient: mean local coefficient over all nodes
/// (0 for the empty graph).
pub fn clustering_coefficient(g: &Graph) -> f64 {
    let n = g.node_count();
    if n == 0 {
        return 0.0;
    }
    (0..n).map(|u| local_clustering(g, u)).sum::<f64>() / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn metrics_on_empty_graph() {
        let m = GraphMetrics::compute(&Graph::new());
        assert_eq!(m.nodes, 0.0);
        assert_eq!(m.avg_shortest_path, 0.0);
        assert_eq!(m.closeness, 0.0);
        assert_eq!(m.max_weight, 0.0);
        assert_eq!(m.min_weight, 0.0);
    }

    #[test]
    fn metrics_on_path() {
        let g = generate::path_graph(4);
        let m = GraphMetrics::compute(&g);
        // Pairs: (0,1)=1 (0,2)=2 (0,3)=3 (1,2)=1 (1,3)=2 (2,3)=1 → avg 10/6.
        assert!((m.avg_shortest_path - 10.0 / 6.0).abs() < 1e-12);
        assert!((m.closeness - 6.0 / 10.0).abs() < 1e-12);
        assert_eq!(m.diameter, 3.0);
        assert_eq!(m.max_degree, 2.0);
        assert_eq!(m.min_degree, 1.0);
        assert_eq!(m.components, 1.0);
        assert_eq!(m.clustering_coefficient, 0.0);
    }

    #[test]
    fn metrics_on_complete() {
        let g = generate::complete_graph(5);
        let m = GraphMetrics::compute(&g);
        assert_eq!(m.avg_shortest_path, 1.0);
        assert_eq!(m.closeness, 1.0);
        assert_eq!(m.clustering_coefficient, 1.0);
        assert_eq!(m.density, 1.0);
        assert_eq!(m.max_degree, 4.0);
        assert_eq!(m.min_degree, 4.0);
    }

    #[test]
    fn clustering_on_triangle_plus_tail() {
        // Triangle 0-1-2 plus tail 2-3.
        let g = Graph::from_edges([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0), (2, 3, 1.0)]).unwrap();
        assert_eq!(local_clustering(&g, 0), 1.0);
        assert_eq!(local_clustering(&g, 3), 0.0);
        // Node 2 has neighbours {0, 1, 3}: one of three pairs linked.
        assert!((local_clustering(&g, 2) - 1.0 / 3.0).abs() < 1e-12);
        let expected = (1.0 + 1.0 + 1.0 / 3.0 + 0.0) / 4.0;
        assert!((clustering_coefficient(&g) - expected).abs() < 1e-12);
    }

    #[test]
    fn weight_stats() {
        let g = Graph::from_edges([(0, 1, 2.0), (1, 2, 4.0)]).unwrap();
        let m = GraphMetrics::compute(&g);
        assert_eq!(m.max_weight, 4.0);
        assert_eq!(m.min_weight, 2.0);
        assert_eq!(m.mean_weight, 3.0);
        assert_eq!(m.weight_variance, 1.0);
        assert_eq!(m.weight_std, 1.0);
    }

    #[test]
    fn adjacency_std_includes_zeros() {
        // Triangle missing: 3 nodes, one edge of weight 3 → entries [3, 0, 0].
        let g = Graph::from_edges([(0, 1, 3.0)]).unwrap();
        let mut g3 = Graph::with_nodes(3);
        g3.add_edge_weighted(0, 1, 3.0).unwrap();
        let m = GraphMetrics::compute(&g3);
        // mean = 1, variance = ((3-1)^2 + 1 + 1)/3 = 2 → std = sqrt(2).
        assert!((m.adjacency_std - 2.0_f64.sqrt()).abs() < 1e-12);
        drop(g);
    }

    #[test]
    fn vector_round_trip_alignment() {
        let g = generate::grid_graph(2, 3);
        let m = GraphMetrics::compute(&g);
        let v = m.to_vec();
        assert_eq!(v.len(), GraphMetrics::names().len());
        let idx = GraphMetrics::names()
            .iter()
            .position(|&n| n == "max_degree")
            .unwrap();
        assert_eq!(v[idx], m.max_degree);
        assert_eq!(m.selected_vec().len(), GraphMetrics::selected_names().len());
    }

    #[test]
    fn disconnected_components_counted() {
        let mut g = generate::path_graph(3);
        g.add_node();
        let m = GraphMetrics::compute(&g);
        assert_eq!(m.components, 2.0);
        // Average shortest path only counts connected pairs.
        assert!((m.avg_shortest_path - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn betweenness_of_path() {
        // Path 0-1-2-3: node 1 lies on paths (0,2), (0,3); node 2 on
        // (0,3), (1,3) → each 2 of the 6 ordered... per direction Brandes
        // counts unordered-pair contributions twice; with (n−1)(n−2) = 6
        // normalization each middle node gets 4/6.
        let bc = betweenness_centrality(&generate::path_graph(4));
        assert!(bc[0].abs() < 1e-12);
        assert!((bc[1] - 4.0 / 6.0).abs() < 1e-12);
        assert!((bc[2] - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn betweenness_of_complete_graph_is_zero() {
        let bc = betweenness_centrality(&generate::complete_graph(5));
        assert!(bc.iter().all(|&b| b.abs() < 1e-12));
    }

    #[test]
    fn betweenness_in_metrics_vector() {
        let m = GraphMetrics::compute(&generate::star_graph(6));
        assert_eq!(m.max_betweenness, 1.0);
        let m = GraphMetrics::compute(&generate::complete_graph(4));
        assert_eq!(m.max_betweenness, 0.0);
        // Tiny graphs defined as zero.
        assert_eq!(
            GraphMetrics::compute(&generate::path_graph(2)).max_betweenness,
            0.0
        );
    }

    #[test]
    fn star_vs_path_hopcount_ordering() {
        // Star is "more connected" (shorter paths) than a path of equal size:
        // the paper's Table I reads large hopcount as easier to map.
        let star = GraphMetrics::compute(&generate::star_graph(8));
        let path = GraphMetrics::compute(&generate::path_graph(8));
        assert!(star.avg_shortest_path < path.avg_shortest_path);
        assert!(star.max_degree > path.max_degree);
    }
}
