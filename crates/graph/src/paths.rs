//! Shortest-path algorithms: BFS hopcounts, Dijkstra, all-pairs matrices.
//!
//! Routers use hop distances on the *device coupling graph* to steer SWAP
//! chains; profiling uses all-pairs hopcounts on *interaction graphs* for
//! the average-shortest-path (closeness) metric of Table I.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use crate::graph::{Graph, NodeId};

/// Distance value meaning "unreachable".
pub const UNREACHABLE: usize = usize::MAX;

/// Hop distances from `src` to every node (BFS). Unreachable nodes get
/// [`UNREACHABLE`].
///
/// # Panics
///
/// Panics if `src` is out of range.
pub fn bfs_distances(g: &Graph, src: NodeId) -> Vec<usize> {
    assert!(src < g.node_count(), "source out of range");
    let mut dist = vec![UNREACHABLE; g.node_count()];
    dist[src] = 0;
    let mut queue = VecDeque::from([src]);
    while let Some(u) = queue.pop_front() {
        for &v in g.neighbors(u) {
            if dist[v] == UNREACHABLE {
                dist[v] = dist[u] + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// All-pairs hop-distance matrix (one BFS per node, `O(n·(n+m))`).
pub fn all_pairs_hopcount(g: &Graph) -> Vec<Vec<usize>> {
    (0..g.node_count()).map(|s| bfs_distances(g, s)).collect()
}

/// One shortest path (as a node sequence, inclusive of endpoints) between
/// `src` and `dst` by hop count, or `None` if disconnected.
///
/// Ties are broken deterministically by neighbour insertion order.
///
/// # Panics
///
/// Panics if either endpoint is out of range.
pub fn shortest_path(g: &Graph, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
    assert!(
        src < g.node_count() && dst < g.node_count(),
        "endpoint out of range"
    );
    if src == dst {
        return Some(vec![src]);
    }
    let mut prev = vec![UNREACHABLE; g.node_count()];
    let mut dist = vec![UNREACHABLE; g.node_count()];
    dist[src] = 0;
    let mut queue = VecDeque::from([src]);
    while let Some(u) = queue.pop_front() {
        if u == dst {
            break;
        }
        for &v in g.neighbors(u) {
            if dist[v] == UNREACHABLE {
                dist[v] = dist[u] + 1;
                prev[v] = u;
                queue.push_back(v);
            }
        }
    }
    if dist[dst] == UNREACHABLE {
        return None;
    }
    let mut path = vec![dst];
    let mut cur = dst;
    while cur != src {
        cur = prev[cur];
        path.push(cur);
    }
    path.reverse();
    Some(path)
}

/// Enumerates *all* hop-shortest paths between `src` and `dst`.
///
/// Used by routers that score alternative SWAP chains (e.g. by fidelity).
/// The number of shortest paths can grow combinatorially on lattices, so
/// `cap` bounds the number returned (deterministically, in lexicographic
/// order of the node sequences).
///
/// # Panics
///
/// Panics if either endpoint is out of range.
pub fn all_shortest_paths(g: &Graph, src: NodeId, dst: NodeId, cap: usize) -> Vec<Vec<NodeId>> {
    assert!(
        src < g.node_count() && dst < g.node_count(),
        "endpoint out of range"
    );
    if src == dst {
        return vec![vec![src]];
    }
    let dist = bfs_distances(g, src);
    if dist[dst] == UNREACHABLE {
        return Vec::new();
    }
    // Walk backwards from dst along strictly-decreasing distance.
    let mut out = Vec::new();
    let mut stack: Vec<Vec<NodeId>> = vec![vec![dst]];
    while let Some(partial) = stack.pop() {
        if out.len() >= cap {
            break;
        }
        let head = *partial.last().expect("partial path is non-empty");
        if head == src {
            let mut p = partial.clone();
            p.reverse();
            out.push(p);
            continue;
        }
        // Deterministic order: sort predecessor candidates descending so the
        // stack pops them ascending.
        let mut preds: Vec<NodeId> = g
            .neighbors(head)
            .iter()
            .copied()
            .filter(|&v| dist[v] + 1 == dist[head])
            .collect();
        preds.sort_unstable_by(|a, b| b.cmp(a));
        for v in preds {
            let mut p = partial.clone();
            p.push(v);
            stack.push(p);
        }
    }
    out
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapItem {
    cost: f64,
    node: NodeId,
}

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by cost; ties by node id for determinism.
        other
            .cost
            .partial_cmp(&self.cost)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Dijkstra distances from `src` using a per-edge cost function.
///
/// Edge cost is produced by `cost(u, v, weight)` and must be non-negative;
/// this lets noise-aware routing price an edge by `-ln(fidelity)` instead
/// of hops. Unreachable nodes get `f64::INFINITY`.
///
/// # Panics
///
/// Panics if `src` is out of range or a produced cost is negative or NaN.
pub fn dijkstra<F>(g: &Graph, src: NodeId, mut cost: F) -> Vec<f64>
where
    F: FnMut(NodeId, NodeId, f64) -> f64,
{
    assert!(src < g.node_count(), "source out of range");
    let mut dist = vec![f64::INFINITY; g.node_count()];
    dist[src] = 0.0;
    let mut heap = BinaryHeap::from([HeapItem {
        cost: 0.0,
        node: src,
    }]);
    while let Some(HeapItem { cost: d, node: u }) = heap.pop() {
        if d > dist[u] {
            continue;
        }
        for &v in g.neighbors(u) {
            let w = g.weight(u, v).expect("adjacency implies edge");
            let c = cost(u, v, w);
            assert!(c >= 0.0, "edge cost must be non-negative, got {c}");
            let nd = d + c;
            if nd < dist[v] {
                dist[v] = nd;
                heap.push(HeapItem { cost: nd, node: v });
            }
        }
    }
    dist
}

/// Whether the graph is connected (true for the empty graph).
pub fn is_connected(g: &Graph) -> bool {
    if g.node_count() == 0 {
        return true;
    }
    bfs_distances(g, 0).iter().all(|&d| d != UNREACHABLE)
}

/// Number of connected components.
pub fn component_count(g: &Graph) -> usize {
    let n = g.node_count();
    let mut comp = vec![UNREACHABLE; n];
    let mut count = 0;
    for s in 0..n {
        if comp[s] != UNREACHABLE {
            continue;
        }
        count += 1;
        comp[s] = count;
        let mut queue = VecDeque::from([s]);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if comp[v] == UNREACHABLE {
                    comp[v] = count;
                    queue.push_back(v);
                }
            }
        }
    }
    count
}

/// Graph diameter (longest shortest path) over the largest component;
/// `None` for graphs with no nodes.
pub fn diameter(g: &Graph) -> Option<usize> {
    if g.node_count() == 0 {
        return None;
    }
    let mut best = 0;
    for s in 0..g.node_count() {
        for d in bfs_distances(g, s) {
            if d != UNREACHABLE && d > best {
                best = d;
            }
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    fn path4() -> Graph {
        generate::path_graph(4)
    }

    #[test]
    fn bfs_on_path() {
        let g = path4();
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3]);
        assert_eq!(bfs_distances(&g, 2), vec![2, 1, 0, 1]);
    }

    #[test]
    fn bfs_unreachable() {
        let g = Graph::with_nodes(3);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, UNREACHABLE, UNREACHABLE]);
    }

    #[test]
    fn shortest_path_endpoints() {
        let g = path4();
        assert_eq!(shortest_path(&g, 0, 3), Some(vec![0, 1, 2, 3]));
        assert_eq!(shortest_path(&g, 2, 2), Some(vec![2]));
    }

    #[test]
    fn shortest_path_disconnected() {
        let g = Graph::with_nodes(2);
        assert_eq!(shortest_path(&g, 0, 1), None);
    }

    #[test]
    fn all_shortest_paths_on_square() {
        // 0-1, 0-2, 1-3, 2-3: two shortest paths from 0 to 3.
        let g = Graph::from_edges([(0, 1, 1.0), (0, 2, 1.0), (1, 3, 1.0), (2, 3, 1.0)]).unwrap();
        let paths = all_shortest_paths(&g, 0, 3, 10);
        assert_eq!(paths.len(), 2);
        assert!(paths.contains(&vec![0, 1, 3]));
        assert!(paths.contains(&vec![0, 2, 3]));
    }

    #[test]
    fn all_shortest_paths_capped() {
        let g = Graph::from_edges([(0, 1, 1.0), (0, 2, 1.0), (1, 3, 1.0), (2, 3, 1.0)]).unwrap();
        assert_eq!(all_shortest_paths(&g, 0, 3, 1).len(), 1);
    }

    #[test]
    fn all_shortest_paths_trivial_and_disconnected() {
        let g = Graph::with_nodes(2);
        assert_eq!(all_shortest_paths(&g, 0, 0, 5), vec![vec![0]]);
        assert!(all_shortest_paths(&g, 0, 1, 5).is_empty());
    }

    #[test]
    fn dijkstra_unit_costs_match_bfs() {
        let g = generate::grid_graph(3, 3);
        let d1 = dijkstra(&g, 0, |_, _, _| 1.0);
        let d2 = bfs_distances(&g, 0);
        for (a, b) in d1.iter().zip(d2.iter()) {
            assert_eq!(*a as usize, *b);
        }
    }

    #[test]
    fn dijkstra_respects_costs() {
        // 0-1 cheap-cheap via 2, expensive direct.
        let mut g = Graph::with_nodes(3);
        g.add_edge_weighted(0, 1, 10.0).unwrap();
        g.add_edge_weighted(0, 2, 1.0).unwrap();
        g.add_edge_weighted(2, 1, 1.0).unwrap();
        let d = dijkstra(&g, 0, |_, _, w| w);
        assert_eq!(d[1], 2.0);
    }

    #[test]
    fn connectivity_checks() {
        assert!(is_connected(&path4()));
        assert!(is_connected(&Graph::new()));
        let mut g = path4();
        g.add_node();
        assert!(!is_connected(&g));
        assert_eq!(component_count(&g), 2);
        assert_eq!(component_count(&path4()), 1);
    }

    #[test]
    fn diameter_values() {
        assert_eq!(diameter(&path4()), Some(3));
        assert_eq!(diameter(&generate::complete_graph(5)), Some(1));
        assert_eq!(diameter(&Graph::new()), None);
        assert_eq!(diameter(&Graph::with_nodes(1)), Some(0));
    }

    #[test]
    fn all_pairs_symmetric() {
        let g = generate::grid_graph(2, 3);
        let m = all_pairs_hopcount(&g);
        for (i, row) in m.iter().enumerate() {
            assert_eq!(row[i], 0);
            for (j, &d) in row.iter().enumerate() {
                assert_eq!(d, m[j][i]);
            }
        }
    }
}
