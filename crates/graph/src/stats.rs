//! Descriptive statistics, Pearson correlation and linear regression.
//!
//! Section IV of the paper builds a Pearson correlation matrix over the
//! metric set "in order to reduce the parameter space and select only
//! features that are necessary". [`correlation_matrix`] and
//! [`select_uncorrelated`] implement that workflow.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population variance; 0 for slices with fewer than two elements.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Minimum of a slice; `None` when empty.
pub fn min(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().reduce(f64::min)
}

/// Maximum of a slice; `None` when empty.
pub fn max(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().reduce(f64::max)
}

/// Median (average of the middle two for even lengths); `None` when empty.
pub fn median(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in median input"));
    let n = v.len();
    Some(if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    })
}

/// Pearson correlation coefficient between two equally-long series.
///
/// Returns 0 when either series is constant (the coefficient is undefined;
/// 0 is the conservative "no linear relation" answer the metric-pruning
/// workflow wants).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "series length mismatch");
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for i in 0..n {
        let dx = xs[i] - mx;
        let dy = ys[i] - my;
        cov += dx * dy;
        vx += dx * dx;
        vy += dy * dy;
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Symmetric Pearson correlation matrix over feature columns.
///
/// `samples` is row-major: `samples[i][k]` is feature `k` of sample `i`.
///
/// # Panics
///
/// Panics if rows have inconsistent lengths.
pub fn correlation_matrix(samples: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let k = samples.first().map_or(0, Vec::len);
    for row in samples {
        assert_eq!(row.len(), k, "ragged sample matrix");
    }
    let columns: Vec<Vec<f64>> = (0..k)
        .map(|j| samples.iter().map(|row| row[j]).collect())
        .collect();
    let mut m = vec![vec![0.0; k]; k];
    for a in 0..k {
        m[a][a] = 1.0;
        for b in (a + 1)..k {
            let r = pearson(&columns[a], &columns[b]);
            m[a][b] = r;
            m[b][a] = r;
        }
    }
    m
}

/// Greedy feature selection by correlation threshold.
///
/// Walks features in the given order and keeps a feature only if its
/// absolute Pearson correlation with every already-kept feature is below
/// `threshold`. This reproduces the paper's pruning of codependent metrics
/// ("large number of handpicked, mapping-related metrics is codependent").
///
/// Returns indices of the retained features.
pub fn select_uncorrelated(corr: &[Vec<f64>], threshold: f64) -> Vec<usize> {
    let mut kept: Vec<usize> = Vec::new();
    for (f, row) in corr.iter().enumerate() {
        if kept.iter().all(|&g| row[g].abs() < threshold) {
            kept.push(f);
        }
    }
    kept
}

/// Result of a simple least-squares line fit `y ≈ slope · x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Slope of the fitted line.
    pub slope: f64,
    /// Intercept of the fitted line.
    pub intercept: f64,
    /// Coefficient of determination `r²`.
    pub r_squared: f64,
}

/// Least-squares linear regression of `ys` on `xs`.
///
/// Returns `None` if fewer than two points or `xs` is constant.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> Option<LinearFit> {
    assert_eq!(xs.len(), ys.len(), "series length mismatch");
    let n = xs.len();
    if n < 2 {
        return None;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    for i in 0..n {
        sxx += (xs[i] - mx) * (xs[i] - mx);
        sxy += (xs[i] - mx) * (ys[i] - my);
    }
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r = pearson(xs, ys);
    Some(LinearFit {
        slope,
        intercept,
        r_squared: r * r,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert_eq!(variance(&xs), 4.0);
        assert_eq!(std_dev(&xs), 2.0);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
    }

    #[test]
    fn min_max_median() {
        let xs = [3.0, 1.0, 2.0];
        assert_eq!(min(&xs), Some(1.0));
        assert_eq!(max(&xs), Some(3.0));
        assert_eq!(median(&xs), Some(2.0));
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), Some(2.5));
        assert_eq!(median(&[]), None);
    }

    #[test]
    fn pearson_perfect_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = ys.iter().map(|y| -y).collect();
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_series_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
    }

    #[test]
    fn pearson_uncorrelated() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [1.0, -1.0, -1.0, 1.0];
        assert!(pearson(&xs, &ys).abs() < 1e-12);
    }

    #[test]
    fn correlation_matrix_shape_and_symmetry() {
        let samples = vec![
            vec![1.0, 2.0, 10.0],
            vec![2.0, 4.0, 9.0],
            vec![3.0, 6.0, 8.0],
            vec![4.0, 8.0, 7.0],
        ];
        let m = correlation_matrix(&samples);
        assert_eq!(m.len(), 3);
        assert_eq!(m[0][0], 1.0);
        assert!((m[0][1] - 1.0).abs() < 1e-12); // col1 = 2·col0
        assert!((m[0][2] + 1.0).abs() < 1e-12); // col2 descends
        assert_eq!(m[1][2], m[2][1]);
    }

    #[test]
    fn select_uncorrelated_prunes_duplicates() {
        let samples = vec![
            vec![1.0, 2.0, 5.0],
            vec![2.0, 4.0, 3.0],
            vec![3.0, 6.0, 8.0],
            vec![4.0, 8.0, 1.0],
        ];
        let m = correlation_matrix(&samples);
        let kept = select_uncorrelated(&m, 0.95);
        assert_eq!(kept, vec![0, 2]); // feature 1 is 2× feature 0
    }

    #[test]
    fn linear_fit_recovers_line() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [1.0, 3.0, 5.0, 7.0];
        let f = linear_fit(&xs, &ys).unwrap();
        assert!((f.slope - 2.0).abs() < 1e-12);
        assert!((f.intercept - 1.0).abs() < 1e-12);
        assert!((f.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_degenerate() {
        assert!(linear_fit(&[1.0], &[1.0]).is_none());
        assert!(linear_fit(&[2.0, 2.0], &[1.0, 3.0]).is_none());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn pearson_length_mismatch_panics() {
        let _ = pearson(&[1.0], &[1.0, 2.0]);
    }
}
