//! Minimal, std-only JSON for the workspace's export and report paths.
//!
//! Replaces the external `serde`/`serde_json` dependency with exactly
//! what the experiment harnesses need: an order-preserving [`Json`]
//! value, a compact/pretty writer, a strict reader, and the
//! [`ToJson`]/[`FromJson`] conversion traits the data-record types
//! implement by hand.
//!
//! Numbers are stored as `f64`; every integer the workspace serializes
//! (gate counts, qubit indices) is far below 2⁵³, so round-trips are
//! exact. Non-finite floats serialize as `null`, mirroring `serde_json`.
//!
//! # Examples
//!
//! ```
//! use qcs_json::Json;
//!
//! let v = Json::object([
//!     ("name", Json::from("qft-004")),
//!     ("swaps", Json::from(17usize)),
//! ]);
//! let text = v.to_string_pretty();
//! let back = qcs_json::parse(&text)?;
//! assert_eq!(back.get("swaps").and_then(Json::as_usize), Some(17));
//! # Ok::<(), qcs_json::JsonError>(())
//! ```

use std::fmt::Write as _;

/// Errors raised while parsing or converting JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonError {
    /// Malformed input text at a byte offset.
    Parse {
        /// Byte offset of the error.
        offset: usize,
        /// What went wrong.
        message: String,
    },
    /// A conversion found the wrong shape (e.g. string where a number was
    /// expected).
    Type {
        /// What the converter wanted.
        expected: &'static str,
    },
    /// A required object field was absent.
    MissingField {
        /// The absent key.
        field: String,
    },
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JsonError::Parse { offset, message } => {
                write!(f, "JSON parse error at byte {offset}: {message}")
            }
            JsonError::Type { expected } => write!(f, "JSON type error: expected {expected}"),
            JsonError::MissingField { field } => write!(f, "missing JSON field '{field}'"),
        }
    }
}

impl std::error::Error for JsonError {}

/// A JSON document: object member order is preserved.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers are written without a fractional part).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, in insertion order.
    Object(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Self {
        Json::Number(n)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Self {
        Json::Number(n as f64)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Self {
        Json::Number(n as f64)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::String(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::String(s)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Self {
        Json::Array(v.into_iter().map(Into::into).collect())
    }
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn object<K: Into<String>, V: Into<Json>>(
        members: impl IntoIterator<Item = (K, V)>,
    ) -> Self {
        Json::Object(
            members
                .into_iter()
                .map(|(k, v)| (k.into(), v.into()))
                .collect(),
        )
    }

    /// Object member lookup (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a `usize`, if it is a non-negative integer.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as usize)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The member list, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(members) => Some(members),
            _ => None,
        }
    }

    /// Replaces the value of `key` in an object (or appends the member
    /// when absent). No-op on non-objects. Member order is preserved, so
    /// rewriting a member keeps the serialization stable everywhere else
    /// — the property the router's deadline-budget rewrite relies on.
    pub fn set(&mut self, key: &str, value: impl Into<Json>) {
        if let Json::Object(members) = self {
            let value = value.into();
            match members.iter_mut().find(|(k, _)| k == key) {
                Some((_, v)) => *v = value,
                None => members.push((key.to_string(), value)),
            }
        }
    }

    /// Required-field lookup for manual deserializers.
    ///
    /// # Errors
    ///
    /// [`JsonError::MissingField`] when `key` is absent (or `self` is not
    /// an object).
    pub fn field(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key).ok_or_else(|| JsonError::MissingField {
            field: key.to_string(),
        })
    }

    /// Serializes compactly (no whitespace).
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Number(n) => write_number(out, *n),
            Json::String(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Object(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        // `{}` on f64 prints the shortest string that round-trips.
        let _ = write!(out, "{n}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document; trailing whitespace is allowed, trailing
/// content is not.
///
/// # Errors
///
/// [`JsonError::Parse`] with a byte offset on malformed input.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing content after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> JsonError {
        JsonError::Parse {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: require a paired \uXXXX.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.error("invalid surrogate pair"))?
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| self.error("invalid unicode escape"))?
                            };
                            out.push(c);
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                // RFC 8259 §7: control characters must arrive escaped; a
                // raw one in the byte stream is malformed input, not data.
                Some(c) if c < 0x20 => return Err(self.error("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so slices
                    // at char boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.error("invalid \\u escape"))?;
        let cp = u32::from_str_radix(digits, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.error("invalid number"))
    }
}

/// Conversion into a [`Json`] value.
pub trait ToJson {
    /// Converts `self` into a JSON value.
    fn to_json(&self) -> Json;
}

/// Conversion out of a [`Json`] value.
pub trait FromJson: Sized {
    /// Converts a JSON value into `Self`.
    ///
    /// # Errors
    ///
    /// [`JsonError::Type`] / [`JsonError::MissingField`] on shape
    /// mismatches.
    fn from_json(value: &Json) -> Result<Self, JsonError>;
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Number(*self)
    }
}

impl FromJson for f64 {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        // `null` reads back as NaN, mirroring the writer's treatment of
        // non-finite floats.
        if matches!(value, Json::Null) {
            return Ok(f64::NAN);
        }
        value.as_f64().ok_or(JsonError::Type { expected: "number" })
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::Number(*self as f64)
    }
}

impl FromJson for usize {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value.as_usize().ok_or(JsonError::Type {
            expected: "non-negative integer",
        })
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value.as_bool().ok_or(JsonError::Type {
            expected: "boolean",
        })
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::String(self.clone())
    }
}

impl FromJson for String {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or(JsonError::Type { expected: "string" })
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value
            .as_array()
            .ok_or(JsonError::Type { expected: "array" })?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

/// Reads one typed field out of a JSON object (deserializer helper).
///
/// # Errors
///
/// Missing-field and type errors from the lookup and conversion.
pub fn field<T: FromJson>(object: &Json, key: &str) -> Result<T, JsonError> {
    T::from_json(object.field(key)?)
}

/// Implements [`ToJson`] and [`FromJson`] for a struct with named public
/// fields, mapping each field to an identically-named object member.
///
/// ```
/// #[derive(Debug, PartialEq)]
/// struct Point { x: f64, y: f64 }
/// qcs_json::impl_json_object!(Point { x, y });
///
/// use qcs_json::{FromJson, ToJson};
/// let p = Point { x: 1.0, y: 2.0 };
/// let back = Point::from_json(&p.to_json()).unwrap();
/// assert_eq!(back, p);
/// ```
#[macro_export]
macro_rules! impl_json_object {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                $crate::Json::Object(vec![
                    $((
                        stringify!($field).to_string(),
                        $crate::ToJson::to_json(&self.$field),
                    ),)+
                ])
            }
        }

        impl $crate::FromJson for $ty {
            fn from_json(value: &$crate::Json) -> Result<Self, $crate::JsonError> {
                Ok(Self {
                    $($field: $crate::field(value, stringify!($field))?,)+
                })
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_replaces_in_place_and_appends_when_absent() {
        let mut v = parse(r#"{"a":1,"deadline_ms":500,"z":"end"}"#).unwrap();
        v.set("deadline_ms", 123u64);
        assert_eq!(
            v.to_compact_string(),
            r#"{"a":1,"deadline_ms":123,"z":"end"}"#,
            "member order must be preserved"
        );
        v.set("new", "x");
        assert_eq!(v.get("new").and_then(Json::as_str), Some("x"));
        // No-op on non-objects.
        let mut n = Json::from(7u64);
        n.set("k", 1u64);
        assert_eq!(n, Json::from(7u64));
    }

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-17", "3.5", "1e-3"] {
            let v = parse(text).unwrap();
            let back = parse(&v.to_compact_string()).unwrap();
            assert_eq!(v, back, "{text}");
        }
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::Number(42.0).to_compact_string(), "42");
        assert_eq!(Json::Number(-3.0).to_compact_string(), "-3");
        assert_eq!(Json::Number(2.5).to_compact_string(), "2.5");
    }

    #[test]
    fn f64_round_trips_exactly() {
        for v in [0.1, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300, -2.5e-7] {
            let text = Json::Number(v).to_compact_string();
            let back = parse(&text).unwrap();
            assert_eq!(back.as_f64(), Some(v), "{text}");
        }
    }

    #[test]
    fn non_finite_serializes_as_null() {
        assert_eq!(Json::Number(f64::NAN).to_compact_string(), "null");
        assert_eq!(Json::Number(f64::INFINITY).to_compact_string(), "null");
    }

    #[test]
    fn strings_escape_and_round_trip() {
        let tricky = "he said \"hi\"\n\tunicode: λ→\u{1F600}\\ done";
        let v = Json::from(tricky);
        let back = parse(&v.to_compact_string()).unwrap();
        assert_eq!(back.as_str(), Some(tricky));
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(parse(r#""é""#).unwrap().as_str(), Some("é"));
        // Surrogate pair for 😀 (U+1F600).
        assert_eq!(parse(r#""😀""#).unwrap().as_str(), Some("😀"));
    }

    #[test]
    fn object_preserves_order() {
        let v = Json::object([("z", 1usize), ("a", 2usize), ("m", 3usize)]);
        let text = v.to_compact_string();
        assert_eq!(text, r#"{"z":1,"a":2,"m":3}"#);
        let back = parse(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_format_shape() {
        let v = Json::object([("k", Json::Array(vec![Json::Number(1.0)]))]);
        assert_eq!(v.to_string_pretty(), "{\n  \"k\": [\n    1\n  ]\n}");
    }

    #[test]
    fn nested_round_trip() {
        let v = Json::object([
            (
                "records",
                Json::Array(vec![
                    Json::object([("name", Json::from("a")), ("ok", Json::from(true))]),
                    Json::object([("name", Json::from("b")), ("ok", Json::from(false))]),
                ]),
            ),
            ("mean", Json::from(0.25)),
        ]);
        for text in [v.to_compact_string(), v.to_string_pretty()] {
            assert_eq!(parse(&text).unwrap(), v);
        }
    }

    #[test]
    fn parse_errors_are_located() {
        for bad in ["", "{", "[1,", "\"open", "{\"a\" 1}", "tru", "1 2", "[1,]"] {
            assert!(matches!(parse(bad), Err(JsonError::Parse { .. })), "{bad}");
        }
    }

    #[test]
    fn field_helpers() {
        let v = Json::object([("n", 5usize)]);
        assert_eq!(field::<usize>(&v, "n").unwrap(), 5);
        assert!(matches!(
            field::<usize>(&v, "missing"),
            Err(JsonError::MissingField { .. })
        ));
        assert!(matches!(
            field::<String>(&v, "n"),
            Err(JsonError::Type { .. })
        ));
    }

    #[test]
    fn vec_conversions() {
        let xs = vec![1.5f64, -2.0, 0.0];
        let v = xs.to_json();
        assert_eq!(Vec::<f64>::from_json(&v).unwrap(), xs);
    }

    #[test]
    fn whitespace_tolerated() {
        let v = parse("  {\r\n \"a\" :\t[ 1 , 2 ] }  ").unwrap();
        assert_eq!(v.get("a").and_then(Json::as_array).unwrap().len(), 2);
    }

    #[test]
    fn every_control_character_round_trips() {
        // Exhaustive: all of C0, plus DEL and the JS-hostile separators.
        let mut exotic: Vec<char> = (0u32..0x20).map(|c| char::from_u32(c).unwrap()).collect();
        exotic.extend(['\u{7f}', '\u{2028}', '\u{2029}', '\u{1F600}']);
        for c in exotic {
            let original = Json::String(format!("a{c}z"));
            let text = original.to_compact_string();
            assert_eq!(parse(&text).unwrap(), original, "char U+{:04X}", c as u32);
        }
    }

    #[test]
    fn control_characters_use_short_escapes() {
        let s = Json::String("\u{8}\u{c}\n\r\t\u{1}".to_string());
        assert_eq!(s.to_compact_string(), "\"\\b\\f\\n\\r\\t\\u0001\"");
    }

    #[test]
    fn raw_control_characters_in_strings_are_rejected() {
        for c in (0u8..0x20).map(char::from) {
            let text = format!("\"a{c}z\"");
            assert!(
                matches!(parse(&text), Err(JsonError::Parse { .. })),
                "raw U+{:04X} must be rejected",
                c as u32
            );
        }
        // Escaped forms of the same characters stay legal.
        assert_eq!(
            parse("\"\\u0000\\b\\f\\n\\r\\t\"").unwrap(),
            Json::String("\0\u{8}\u{c}\n\r\t".to_string())
        );
        // Raw DEL and beyond are not control characters for RFC 8259.
        assert_eq!(
            parse("\"\u{7f}\"").unwrap(),
            Json::String("\u{7f}".to_string())
        );
    }
}
