//! Hermetic, std-only deterministic random number generation.
//!
//! This crate replaces the external `rand` + `rand_chacha` dependencies
//! with the narrow API the workspace actually uses, so the whole
//! workspace builds offline. Three generators are provided:
//!
//! * [`SplitMix64`] — the classic 64-bit mixer; seeds the others and is
//!   good enough for seed-stream derivation.
//! * [`Xoshiro256StarStar`] — fast general-purpose generator for
//!   throughput-sensitive call sites (property harnesses, benches).
//! * [`ChaCha8Rng`] — a genuine 8-round ChaCha stream cipher keyed from a
//!   `u64` seed, the drop-in for every former `qcs_rng::ChaCha8Rng`
//!   call site. Statistical quality is cryptographic; determinism is
//!   guaranteed across platforms (all arithmetic is explicit-width).
//!
//! The trait surface mirrors `rand` 0.8 where the workspace touched it:
//! [`RngCore`] (raw words), [`Rng`] ([`Rng::gen`], [`Rng::gen_range`],
//! [`Rng::gen_bool`]) and [`SeedableRng`] ([`SeedableRng::seed_from_u64`]),
//! so a dependency swap is an import swap.
//!
//! # Examples
//!
//! ```
//! use qcs_rng::{ChaCha8Rng, Rng, SeedableRng};
//!
//! let mut rng = ChaCha8Rng::seed_from_u64(42);
//! let x: f64 = rng.gen();
//! assert!((0.0..1.0).contains(&x));
//! let k = rng.gen_range(0..10);
//! assert!(k < 10);
//! // Same seed, same stream:
//! let mut again = ChaCha8Rng::seed_from_u64(42);
//! let y: f64 = again.gen();
//! assert_eq!(x, y);
//! ```

use std::ops::{Range, RangeInclusive};

/// Raw word-level generator interface.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed (the only constructor the workspace
/// uses).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from a generator's raw bits.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (the standard
    /// `bits >> 11 × 2⁻⁵³` construction).
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Integer types usable as `gen_range` bounds.
pub trait UniformInt: Copy + PartialOrd {
    /// Widens to u64 for unbiased span sampling (offset from `lo`).
    fn steps_between(lo: Self, hi: Self) -> u64;
    /// `lo + offset`, where `offset < steps_between(lo, hi)`.
    fn forward(lo: Self, offset: u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn steps_between(lo: Self, hi: Self) -> u64 {
                debug_assert!(lo <= hi);
                hi.wrapping_sub(lo) as u64
            }
            fn forward(lo: Self, offset: u64) -> Self {
                lo.wrapping_add(offset as $t)
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Unbiased uniform draw in `[0, span)` via rejection sampling.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    // Reject the tail so every residue is equally likely.
    let limit = u64::MAX - u64::MAX % span;
    loop {
        let v = rng.next_u64();
        if v < limit {
            return v % span;
        }
    }
}

/// Range shapes accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformInt> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        let span = T::steps_between(self.start, self.end);
        T::forward(self.start, uniform_below(rng, span))
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        let span = T::steps_between(lo, hi);
        if span == u64::MAX {
            return T::forward(lo, rng.next_u64());
        }
        T::forward(lo, uniform_below(rng, span + 1))
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// High-level sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from `range` (`lo..hi` or `lo..=hi`, integer or
    /// `f64` bounds).
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// SplitMix64 (Steele, Lea & Flood): one 64-bit multiply-xor-shift mixer
/// per output. Used to expand `u64` seeds into full generator state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the mixer with the given state.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

impl SeedableRng for SplitMix64 {
    fn seed_from_u64(seed: u64) -> Self {
        SplitMix64::new(seed)
    }
}

impl RngCore for SplitMix64 {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256** (Blackman & Vigna): fast, high-quality general-purpose
/// generator; state seeded via SplitMix64 as its authors recommend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl SeedableRng for Xoshiro256StarStar {
    fn seed_from_u64(seed: u64) -> Self {
        let mut mix = SplitMix64::new(seed);
        Xoshiro256StarStar {
            s: [
                mix.next_u64(),
                mix.next_u64(),
                mix.next_u64(),
                mix.next_u64(),
            ],
        }
    }
}

impl RngCore for Xoshiro256StarStar {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }
}

/// ChaCha quarter round on four state words.
#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// An 8-round ChaCha stream generator (the `qcs_rng::ChaCha8Rng`
/// stand-in): a 256-bit key derived from the `u64` seed via SplitMix64,
/// a 64-bit block counter and a 64-bit stream id of zero.
///
/// The keystream is deterministic across platforms and of cryptographic
/// quality; it is *not* byte-compatible with the external `rand_chacha`
/// crate (seed-derived expectations in tests were re-pinned when the
/// workspace went hermetic).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    /// Key + counter state words 4..14 of the initial block matrix.
    key: [u32; 8],
    /// 64-bit block counter (words 12–13).
    counter: u64,
    /// Decoded current block.
    block: [u32; 16],
    /// Next unconsumed word in `block`; 16 means "exhausted".
    cursor: usize,
}

const CHACHA_SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646E, 0x7962_2D32, 0x6B20_6574];
const CHACHA_ROUNDS: usize = 8;

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0; // stream id lo
        state[15] = 0; // stream id hi
        let input = state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, (s, i)) in self.block.iter_mut().zip(state.iter().zip(input.iter())) {
            *out = s.wrapping_add(*i);
        }
        self.counter = self.counter.wrapping_add(1);
        self.cursor = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut mix = SplitMix64::new(seed);
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let word = mix.next_u64();
            pair[0] = word as u32;
            pair[1] = (word >> 32) as u32;
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            cursor: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let word = self.block[self.cursor];
        self.cursor += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_known_values() {
        // Reference values from the SplitMix64 reference implementation
        // with seed 1234567.
        let mut rng = SplitMix64::new(1234567);
        assert_eq!(rng.next_u64(), 6_457_827_717_110_365_317);
        assert_eq!(rng.next_u64(), 3_203_168_211_198_807_973);
    }

    #[test]
    fn chacha_deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn chacha_blocks_differ() {
        // Consecutive 16-word blocks must not repeat (counter advances).
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }

    #[test]
    fn xoshiro_deterministic_and_nonconstant() {
        let mut a = Xoshiro256StarStar::seed_from_u64(99);
        let mut b = Xoshiro256StarStar::seed_from_u64(99);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_exclusive_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut seen = [false; 10];
        for _ in 0..500 {
            let k: usize = rng.gen_range(0..10);
            assert!(k < 10);
            seen[k] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }

    #[test]
    fn gen_range_inclusive_hits_endpoints() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..500 {
            match rng.gen_range(0..=3u32) {
                0 => lo_seen = true,
                3 => hi_seen = true,
                _ => {}
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn gen_range_float() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        for _ in 0..200 {
            let x = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&x));
            let y = rng.gen_range(-2.0..=2.0);
            assert!((-2.0..=2.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_single_value() {
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.gen_range(5..=5), 5);
        assert_eq!(rng.gen_range(7..8), 7);
    }

    #[test]
    fn gen_bool_extremes_and_balance() {
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let heads = (0..2000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((800..1200).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn uniform_below_unbiased_smoke() {
        // span 3 over many draws: counts within 10% of each other.
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[uniform_below(&mut rng, 3) as usize] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn signed_ranges() {
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        for _ in 0..200 {
            let v: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn works_through_generic_bound() {
        fn draw<R: Rng>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
