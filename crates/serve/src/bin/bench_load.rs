//! Serving-tier load generator and regression gate.
//!
//! Boots the sharded serving tier **in-process** (N shard daemons behind
//! one `qcs-router`, all on loopback) and measures it two ways:
//!
//! - **Locality run** — 3 shards; a deterministic warm pass compiles
//!   every distinct job once, then 8 open-loop clients replay the warm
//!   set under a seeded arrival schedule. Per-shard forwarded/hit/miss
//!   counts are pure functions of the consistent-hash ring and the
//!   workload, so they are gated **exactly**; latency percentiles and
//!   throughput are wall-clock and get the relative budget.
//! - **Saturation sweep** — closed-loop hammer at fixed shard counts
//!   (1, 2, 3): 8 clients drain a shared pool of all-hit requests as
//!   fast as the tier will go. Request/error counts are exact;
//!   `throughput_rps` is budgeted (higher is better).
//! - **Semantic run** — the 200-circuit suite warms one daemon with
//!   canonical keying and one exact-only, then replays a seeded mix
//!   (`--near-dup-frac`, default 0.5) of renamed + relabeled +
//!   commuting-reordered near-duplicates and exact repeats against
//!   both. Hit counters gate exactly and the run itself asserts
//!   canonical keying lifts the mix hit count >= 1.5x with zero
//!   verifier rejections.
//!
//! Numbers land in `BENCH_serve.json` with the same record/check split
//! as `bench_baseline`: integers and counter arrays must match the
//! committed baseline exactly; keys ending `_ms`/`_micros` may grow up
//! to `QCS_BENCH_WALL_BUDGET`× (default 4.0, `0` disables) plus a small
//! absolute floor so microsecond-scale percentiles don't flake on
//! scheduler noise; keys ending `_rps` may shrink to 1/budget.
//!
//! The locality run also snapshots the router's **resilience counters**
//! (hedges fired/won, admission sheds, deadline rejections, per-shard
//! breaker opens). Under the bench's pinned hedge delay and healthy
//! loopback fleet every one of them is deterministically zero, so they
//! gate exactly: a hedge that fires or a breaker that opens during the
//! bench is a regression, not noise.
//!
//! ```text
//! bench_load                   # re-record BENCH_serve.json in CWD
//! bench_load --check           # fresh run, compare against the committed file
//! bench_load --sustained ADDR    # warm + open-loop phase against an already
//!                                # running daemon/router; prints JSON to stdout
//! bench_load --interactive ADDR  # warm + 16 closed-loop clients with think
//!                                # time on persistent connections; prints JSON
//! bench_load --chaos ADDR        # fault-tolerant closed-loop hammer against a
//!     [--seconds N] [--seed S]   # (possibly faulty) fleet: reconnects through
//!                                # resets, retries `retry_after_ms` hints, and
//!                                # exits nonzero if any request finally fails
//! ```
//!
//! The external modes exist for apples-to-apples A/B runs against
//! separately started servers (e.g. an old binary), so architecture
//! changes can be quantified with the identical load schedule.
//! `--interactive` models a fleet of interactive clients — each waits
//! for its response, thinks, and sends the next request on the same
//! connection. A server that parks a thread per connection can only
//! make progress on `workers` such clients at a time; an event-driven
//! tier interleaves all of them, which is where the sustained
//! requests/sec multiple comes from.

use std::io::Write as _;
use std::net::{SocketAddr, TcpStream};
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use qcs_circuit::canon::{commuting_shuffle, permute_qubits};
use qcs_circuit::qasm;
use qcs_json::Json;
use qcs_rng::{Rng, SeedableRng, Xoshiro256StarStar};
use qcs_serve::protocol::{read_frame, write_frame};
use qcs_serve::router::{Router, RouterConfig, RouterHandle};
use qcs_serve::server::{Server, ServerConfig, ServerHandle};
use qcs_workloads::suite::{generate_suite, SuiteConfig};

const FILE: &str = "BENCH_serve.json";
const SCHEMA: &str = "qcs-bench-serve/1";

/// Open-loop clients (and closed-loop hammer threads).
const CLIENTS: usize = 8;
/// Sustained-phase copies of each distinct job per client.
const COPIES: usize = 3;
/// Mean open-loop inter-arrival gap per client, milliseconds.
const MEAN_GAP_MS: f64 = 2.0;
/// Shard counts for the saturation sweep.
const SWEEP: [usize; 3] = [1, 2, 3];
/// Base seed for the per-client arrival schedules.
const SEED: u64 = 0xC0FFEE;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--sustained") {
        let Some(addr) = args.get(i + 1) else {
            eprintln!("usage: bench_load --sustained HOST:PORT");
            return ExitCode::FAILURE;
        };
        let addr: SocketAddr = addr.parse().expect("--sustained takes HOST:PORT");
        run_sustained_external(addr);
        return ExitCode::SUCCESS;
    }
    if let Some(i) = args.iter().position(|a| a == "--interactive") {
        let Some(addr) = args.get(i + 1) else {
            eprintln!("usage: bench_load --interactive HOST:PORT");
            return ExitCode::FAILURE;
        };
        let addr: SocketAddr = addr.parse().expect("--interactive takes HOST:PORT");
        run_interactive_external(addr);
        return ExitCode::SUCCESS;
    }
    if let Some(i) = args.iter().position(|a| a == "--chaos") {
        let Some(addr) = args.get(i + 1) else {
            eprintln!("usage: bench_load --chaos HOST:PORT [--seconds N] [--seed S]");
            return ExitCode::FAILURE;
        };
        let addr: SocketAddr = addr.parse().expect("--chaos takes HOST:PORT");
        let seconds = flag_u64(&args, "--seconds").unwrap_or(10);
        let seed = flag_u64(&args, "--seed").unwrap_or(SEED);
        return run_chaos_external(addr, Duration::from_secs(seconds), seed);
    }
    let check = args.iter().any(|a| a == "--check");
    let near_dup_frac = flag_f64(&args, "--near-dup-frac").unwrap_or(NEAR_DUP_FRAC);
    assert!(
        (0.0..=1.0).contains(&near_dup_frac),
        "--near-dup-frac takes a fraction in [0, 1]"
    );
    let locality = run_locality();
    let saturation: Vec<SweepRow> = SWEEP.iter().map(|&n| run_sweep_point(n)).collect();
    let semantic = run_semantic(near_dup_frac);
    let doc = doc(&locality, &saturation, &semantic);

    if check {
        if check_file(FILE, &doc, wall_budget()) {
            println!("serve bench gate OK ({FILE})");
            ExitCode::SUCCESS
        } else {
            eprintln!("serve bench gate FAILED");
            ExitCode::FAILURE
        }
    } else {
        std::fs::write(FILE, doc.to_string_pretty() + "\n").expect("write baseline");
        println!("wrote {FILE}");
        ExitCode::SUCCESS
    }
}

fn flag_f64(args: &[String], flag: &str) -> Option<f64> {
    let i = args.iter().position(|a| a == flag)?;
    let value = args.get(i + 1)?;
    Some(
        value
            .parse()
            .unwrap_or_else(|_| panic!("{flag} takes a number, got '{value}'")),
    )
}

fn flag_u64(args: &[String], flag: &str) -> Option<u64> {
    let i = args.iter().position(|a| a == flag)?;
    let value = args.get(i + 1)?;
    Some(
        value
            .parse()
            .unwrap_or_else(|_| panic!("{flag} takes an integer, got '{value}'")),
    )
}

fn wall_budget() -> f64 {
    std::env::var("QCS_BENCH_WALL_BUDGET")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(4.0)
}

// ---------------------------------------------------------------------
// Fleet plumbing
// ---------------------------------------------------------------------

/// The distinct compile jobs: 16 small workloads spanning three
/// families. Every phase draws from this fixed set so cache hit/miss
/// counts are exact.
fn specs() -> Vec<String> {
    let mut out = Vec::new();
    out.extend((4..=9).map(|n| format!("ghz:{n}")));
    out.extend((3..=6).map(|n| format!("qft:{n}")));
    out.extend((4..=9).map(|n| format!("wstate:{n}")));
    out
}

fn compile_request(spec: &str) -> String {
    format!(r#"{{"type":"compile","workload":"{spec}"}}"#)
}

/// Shard resources are pinned (never CPU-count defaults) so the tier
/// does identical work on every host.
fn start_shards(count: usize) -> Vec<ServerHandle> {
    (0..count)
        .map(|_| {
            Server::start(ServerConfig {
                addr: "127.0.0.1:0".to_string(),
                workers: 2,
                event_loops: 1,
                max_connections: 64,
                cache_bytes: 32 << 20,
                frame_deadline: Duration::from_secs(30),
                persist_dir: None,
                semantic_cache: true,
                bucket_angles: false,
            })
            .expect("shard starts")
        })
        .collect()
}

fn start_router(shards: &[ServerHandle]) -> RouterHandle {
    Router::start(RouterConfig {
        addr: "127.0.0.1:0".to_string(),
        shards: shards.iter().map(|s| s.local_addr().to_string()).collect(),
        replicas: 64,
        health_interval: Duration::from_millis(250),
        connect_timeout: Duration::from_secs(1),
        io_timeout: Duration::from_secs(60),
        // Pin the hedge delay far above any bench latency so the
        // resilience counters in BENCH_serve.json stay deterministic.
        hedge_after: Some(Duration::from_secs(5)),
        ..RouterConfig::default()
    })
    .expect("router starts")
}

fn connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("tier accepts connections");
    stream.set_nodelay(true).expect("nodelay");
    stream
}

fn exchange_json(stream: &mut TcpStream, request: &str) -> Json {
    write_frame(stream, request.as_bytes()).expect("request written");
    let payload = read_frame(stream)
        .expect("response read")
        .expect("peer replied");
    qcs_json::parse(std::str::from_utf8(&payload).expect("utf8 response")).expect("JSON response")
}

fn response_type(value: &Json) -> &str {
    value.get("type").and_then(Json::as_str).unwrap_or("?")
}

/// Per-shard `forwarded` counters from the router's stats endpoint.
fn forwarded_counts(control: &mut TcpStream) -> Vec<u64> {
    let stats = exchange_json(control, r#"{"type":"stats"}"#);
    let Some(Json::Array(shards)) = stats.get("shards") else {
        panic!("router stats carry a shards array: {stats:?}");
    };
    shards
        .iter()
        .map(|s| s.get("forwarded").and_then(Json::as_usize).unwrap() as u64)
        .collect()
}

fn router_counter(control: &mut TcpStream, key: &str) -> u64 {
    let stats = exchange_json(control, r#"{"type":"stats"}"#);
    stats
        .get(key)
        .and_then(Json::as_usize)
        .unwrap_or_else(|| panic!("router stats carry {key}")) as u64
}

/// Router resilience counters: fleet-wide hedge/shed/deadline tallies
/// plus per-shard breaker open counts, all from one stats exchange.
struct ResilienceSnapshot {
    hedges_fired: u64,
    hedges_won: u64,
    admission_shed: u64,
    deadline_rejected: u64,
    breaker_opens: Vec<u64>,
}

fn resilience_snapshot(control: &mut TcpStream) -> ResilienceSnapshot {
    let stats = exchange_json(control, r#"{"type":"stats"}"#);
    let r = stats
        .get("resilience")
        .expect("router stats carry resilience");
    let counter = |key: &str| {
        r.get(key)
            .and_then(Json::as_usize)
            .unwrap_or_else(|| panic!("resilience stats carry {key}")) as u64
    };
    let Some(Json::Array(shards)) = stats.get("shards") else {
        panic!("router stats carry a shards array: {stats:?}");
    };
    ResilienceSnapshot {
        hedges_fired: counter("hedges_fired"),
        hedges_won: counter("hedges_won"),
        admission_shed: counter("admission_shed"),
        deadline_rejected: counter("deadline_rejected"),
        breaker_opens: shards
            .iter()
            .map(|s| s.get("breaker_opens").and_then(Json::as_usize).unwrap() as u64)
            .collect(),
    }
}

/// Per-shard (hits, misses) straight from each shard's own stats.
fn shard_cache_counts(shards: &[ServerHandle]) -> (Vec<u64>, Vec<u64>) {
    let mut hits = Vec::new();
    let mut misses = Vec::new();
    for shard in shards {
        let mut direct = connect(shard.local_addr());
        let stats = exchange_json(&mut direct, r#"{"type":"stats"}"#);
        let cache = stats.get("cache").expect("shard stats carry cache");
        hits.push(cache.get("hits").and_then(Json::as_usize).unwrap() as u64);
        misses.push(cache.get("misses").and_then(Json::as_usize).unwrap() as u64);
    }
    (hits, misses)
}

fn shutdown_fleet(router: RouterHandle, shards: Vec<ServerHandle>) {
    router.shutdown();
    for shard in shards {
        shard.shutdown();
    }
}

// ---------------------------------------------------------------------
// Locality run: warm pass + open-loop sustained phase
// ---------------------------------------------------------------------

struct LocalityRun {
    shards: usize,
    distinct_jobs: usize,
    warm_forwarded: Vec<u64>,
    sustained_requests: u64,
    sustained_errors: u64,
    forwarded: Vec<u64>,
    hits: Vec<u64>,
    misses: Vec<u64>,
    reroutes: u64,
    forward_errors: u64,
    resilience: ResilienceSnapshot,
    wall_ms: f64,
    achieved_rps: f64,
    p50_micros: f64,
    p95_micros: f64,
    p99_micros: f64,
}

/// Seeded Fisher–Yates.
fn shuffle<T>(items: &mut [T], rng: &mut Xoshiro256StarStar) {
    for i in (1..items.len()).rev() {
        items.swap(i, rng.gen_range(0..=i));
    }
}

/// Exponential inter-arrival gap with the given mean, in milliseconds.
fn exp_gap_ms(rng: &mut Xoshiro256StarStar, mean_ms: f64) -> f64 {
    let u: f64 = rng.gen_range(0.0..1.0);
    -mean_ms * (1.0 - u).ln()
}

/// The open-loop sustained phase against any already-listening server:
/// sorted latencies (micros), non-`result` responses, and wall time.
struct OpenLoop {
    lats: Vec<u64>,
    errors: u64,
    wall_ms: f64,
}

/// Each client fires its requests on a pre-computed seeded schedule
/// regardless of response arrival (writer half), while a reader half
/// records latency against the *scheduled* send time — so queueing
/// delay counts, as open-loop measurement demands.
fn open_loop(addr: SocketAddr, specs: &[String]) -> OpenLoop {
    let errors = AtomicU64::new(0);
    let latencies: Mutex<Vec<u64>> = Mutex::new(Vec::new());
    let start = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let errors = &errors;
            let latencies = &latencies;
            scope.spawn(move || {
                let mut rng = Xoshiro256StarStar::seed_from_u64(SEED + client as u64);
                let mut order: Vec<usize> =
                    (0..specs.len() * COPIES).map(|i| i % specs.len()).collect();
                shuffle(&mut order, &mut rng);
                let mut offsets = Vec::with_capacity(order.len());
                let mut at = 0.0f64;
                for _ in &order {
                    at += exp_gap_ms(&mut rng, MEAN_GAP_MS);
                    offsets.push(Duration::from_secs_f64(at / 1e3));
                }

                let mut tx = connect(addr);
                let mut rx = tx.try_clone().expect("split connection");
                let base = Instant::now();
                let reader = {
                    let offsets = offsets.clone();
                    std::thread::spawn(move || {
                        let mut lats = Vec::with_capacity(offsets.len());
                        let mut errs = 0u64;
                        for offset in offsets {
                            let payload = read_frame(&mut rx)
                                .expect("response read")
                                .expect("tier replied");
                            let sent = base + offset;
                            lats.push(sent.elapsed().as_micros() as u64);
                            let text = std::str::from_utf8(&payload).expect("utf8");
                            let value = qcs_json::parse(text).expect("JSON");
                            if response_type(&value) != "result" {
                                errs += 1;
                            }
                        }
                        (lats, errs)
                    })
                };
                for (i, &spec_idx) in order.iter().enumerate() {
                    let due = base + offsets[i];
                    let now = Instant::now();
                    if due > now {
                        std::thread::sleep(due - now);
                    }
                    write_frame(&mut tx, compile_request(&specs[spec_idx]).as_bytes())
                        .expect("request written");
                    tx.flush().expect("flush");
                }
                let (lats, errs) = reader.join().expect("reader joins");
                errors.fetch_add(errs, Ordering::Relaxed);
                latencies.lock().unwrap().extend(lats);
            });
        }
    });
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let mut lats = latencies.into_inner().unwrap();
    lats.sort_unstable();
    OpenLoop {
        lats,
        errors: errors.load(Ordering::Relaxed),
        wall_ms,
    }
}

fn run_locality() -> LocalityRun {
    let specs = specs();
    let shards = start_shards(3);
    let router = start_router(&shards);
    let addr = router.local_addr();
    let mut control = connect(addr);

    // Warm pass: every distinct job exactly once, sequentially, so each
    // shard's miss count is exactly the keyspace slice it owns.
    for spec in &specs {
        let reply = exchange_json(&mut control, &compile_request(spec));
        assert_eq!(
            response_type(&reply),
            "result",
            "warm compile failed: {reply:?}"
        );
    }
    let warm_forwarded = forwarded_counts(&mut control);

    let sustained = open_loop(addr, &specs);

    let forwarded = forwarded_counts(&mut control);
    let reroutes = router_counter(&mut control, "reroutes");
    let forward_errors = router_counter(&mut control, "forward_errors");
    let resilience = resilience_snapshot(&mut control);
    let (hits, misses) = shard_cache_counts(&shards);

    let run = LocalityRun {
        shards: shards.len(),
        distinct_jobs: specs.len(),
        warm_forwarded,
        sustained_requests: sustained.lats.len() as u64,
        sustained_errors: sustained.errors,
        forwarded,
        hits,
        misses,
        reroutes,
        forward_errors,
        resilience,
        wall_ms: sustained.wall_ms,
        achieved_rps: sustained.lats.len() as f64 / (sustained.wall_ms / 1e3),
        p50_micros: percentile(&sustained.lats, 50.0),
        p95_micros: percentile(&sustained.lats, 95.0),
        p99_micros: percentile(&sustained.lats, 99.0),
    };
    shutdown_fleet(router, shards);
    run
}

/// `--sustained ADDR`: the identical warm + open-loop schedule against
/// an externally started server, result as JSON on stdout. The warm
/// connection is dropped before the phase starts so servers that pin a
/// thread per connection aren't handicapped by the control channel.
fn run_sustained_external(addr: SocketAddr) {
    let specs = specs();
    {
        let mut control = connect(addr);
        for spec in &specs {
            let reply = exchange_json(&mut control, &compile_request(spec));
            assert_eq!(
                response_type(&reply),
                "result",
                "warm compile failed: {reply:?}"
            );
        }
    }
    let run = open_loop(addr, &specs);
    let doc = Json::object([
        ("requests", Json::from(run.lats.len())),
        ("errors", Json::from(run.errors)),
        ("wall_ms", Json::Number(round3(run.wall_ms))),
        (
            "achieved_rps",
            Json::Number(round3(run.lats.len() as f64 / (run.wall_ms / 1e3))),
        ),
        (
            "latency_p50_micros",
            Json::Number(percentile(&run.lats, 50.0)),
        ),
        (
            "latency_p95_micros",
            Json::Number(percentile(&run.lats, 95.0)),
        ),
        (
            "latency_p99_micros",
            Json::Number(percentile(&run.lats, 99.0)),
        ),
    ]);
    println!("{}", doc.to_string_pretty());
}

/// Closed-loop interactive clients for `--interactive ADDR`.
const INTERACTIVE_CLIENTS: usize = 16;
/// Mean think time between a response and the next request. Must
/// dominate per-request compute so the measurement isolates connection
/// interleaving rather than raw CPU.
const INTERACTIVE_THINK_MS: f64 = 5.0;

/// `--interactive ADDR`: 16 closed-loop clients, each on one persistent
/// connection, each waiting for its response and then thinking (seeded
/// ~2 ms) before the next request. Sustained requests/sec over the
/// whole fleet is the headline: think time dominates per-request cost,
/// so the number measures how many concurrent clients the server can
/// interleave, not raw CPU.
fn run_interactive_external(addr: SocketAddr) {
    let specs = specs();
    {
        let mut control = connect(addr);
        for spec in &specs {
            let reply = exchange_json(&mut control, &compile_request(spec));
            assert_eq!(
                response_type(&reply),
                "result",
                "warm compile failed: {reply:?}"
            );
        }
    }

    let errors = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..INTERACTIVE_CLIENTS {
            let specs = &specs;
            let errors = &errors;
            scope.spawn(move || {
                let mut rng = Xoshiro256StarStar::seed_from_u64(SEED ^ client as u64);
                let mut stream = connect(addr);
                for r in 0..specs.len() * COPIES {
                    std::thread::sleep(Duration::from_secs_f64(
                        exp_gap_ms(&mut rng, INTERACTIVE_THINK_MS) / 1e3,
                    ));
                    let reply =
                        exchange_json(&mut stream, &compile_request(&specs[r % specs.len()]));
                    if response_type(&reply) != "result" {
                        errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let requests = INTERACTIVE_CLIENTS * specs.len() * COPIES;

    let doc = Json::object([
        ("clients", Json::from(INTERACTIVE_CLIENTS)),
        ("requests", Json::from(requests)),
        ("errors", Json::from(errors.load(Ordering::Relaxed))),
        ("wall_ms", Json::Number(round3(wall_ms))),
        (
            "sustained_rps",
            Json::Number(round3(requests as f64 / (wall_ms / 1e3))),
        ),
    ]);
    println!("{}", doc.to_string_pretty());
}

// ---------------------------------------------------------------------
// Chaos hammer: fault-tolerant closed loop for the fleet chaos gate
// ---------------------------------------------------------------------

/// Attempts per logical request before declaring it failed. Under the
/// chaos schedule a request can land while a shard is mid-restart, so a
/// single transport error is expected; eight attempts with hint/backoff
/// sleeps ride out any bounded outage.
const CHAOS_ATTEMPTS: usize = 8;
/// Read timeout per attempt — a black-holed or stalled path surfaces as
/// a timeout, the connection is torn down, and the request retries on a
/// fresh one.
const CHAOS_READ_TIMEOUT: Duration = Duration::from_secs(5);
/// Cap on honored `retry_after_ms` hints so a pessimistic server can't
/// stall the hammer.
const CHAOS_HINT_CAP_MS: u64 = 250;

#[derive(Default)]
struct ChaosTally {
    requests: u64,
    ok: u64,
    failed: u64,
    transport_retries: u64,
    hint_retries: u64,
    lats: Vec<u64>,
}

/// One logical request against a possibly faulty fleet: reconnect
/// through resets and timeouts, honor `retry_after_ms` hints (capped),
/// and give up only after [`CHAOS_ATTEMPTS`] tries. Returns whether the
/// request finally produced a `result`.
fn chaos_request(
    addr: SocketAddr,
    stream: &mut Option<TcpStream>,
    request: &str,
    tally: &mut ChaosTally,
) -> bool {
    for _ in 0..CHAOS_ATTEMPTS {
        if stream.is_none() {
            match TcpStream::connect(addr) {
                Ok(s) => {
                    let _ = s.set_nodelay(true);
                    let _ = s.set_read_timeout(Some(CHAOS_READ_TIMEOUT));
                    *stream = Some(s);
                }
                Err(_) => {
                    tally.transport_retries += 1;
                    std::thread::sleep(Duration::from_millis(20));
                    continue;
                }
            }
        }
        let s = stream.as_mut().expect("connection present");
        let sent = write_frame(s, request.as_bytes()).is_ok();
        let payload = if sent {
            read_frame(s).ok().flatten()
        } else {
            None
        };
        let Some(payload) = payload else {
            // Torn write, reset, or timeout: the framing on this
            // connection can no longer be trusted — drop it.
            *stream = None;
            tally.transport_retries += 1;
            continue;
        };
        let Ok(reply) = std::str::from_utf8(&payload).map(qcs_json::parse) else {
            *stream = None;
            tally.transport_retries += 1;
            continue;
        };
        let Ok(reply) = reply else {
            *stream = None;
            tally.transport_retries += 1;
            continue;
        };
        if response_type(&reply) == "result" {
            return true;
        }
        // Structured error. A retry hint means "try again shortly"
        // (shard draining, admission shed, breaker open); anything
        // else is final.
        let Some(hint) = reply.get("retry_after_ms").and_then(Json::as_usize) else {
            return false;
        };
        tally.hint_retries += 1;
        std::thread::sleep(Duration::from_millis((hint as u64).min(CHAOS_HINT_CAP_MS)));
    }
    false
}

/// `--chaos ADDR`: warm every distinct job, then hammer the warm set
/// closed-loop from [`CLIENTS`] seeded clients for `--seconds`. The
/// fleet under test is *expected* to be taking faults, so transport
/// errors are retried, not fatal — but a request that exhausts its
/// attempts (or draws a final error) counts as failed, and any failure
/// makes the exit code nonzero. That is the chaos gate: the fleet may
/// hurt, it may not lose requests.
fn run_chaos_external(addr: SocketAddr, duration: Duration, seed: u64) -> ExitCode {
    let specs = specs();
    let mut warm_failures = 0u64;
    {
        let mut warm = ChaosTally::default();
        let mut control = None;
        for spec in &specs {
            if !chaos_request(addr, &mut control, &compile_request(spec), &mut warm) {
                warm_failures += 1;
            }
        }
    }

    let tallies: Mutex<Vec<ChaosTally>> = Mutex::new(Vec::new());
    let start = Instant::now();
    let until = start + duration;
    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let specs = &specs;
            let tallies = &tallies;
            scope.spawn(move || {
                let mut rng = Xoshiro256StarStar::seed_from_u64(seed ^ (client as u64) << 32);
                let mut stream = None;
                let mut tally = ChaosTally::default();
                while Instant::now() < until {
                    let spec = &specs[rng.gen_range(0..specs.len())];
                    let begun = Instant::now();
                    tally.requests += 1;
                    if chaos_request(addr, &mut stream, &compile_request(spec), &mut tally) {
                        tally.ok += 1;
                        tally.lats.push(begun.elapsed().as_micros() as u64);
                    } else {
                        tally.failed += 1;
                    }
                }
                tallies.lock().unwrap().push(tally);
            });
        }
    });
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;

    let mut total = ChaosTally::default();
    for tally in tallies.into_inner().unwrap() {
        total.requests += tally.requests;
        total.ok += tally.ok;
        total.failed += tally.failed;
        total.transport_retries += tally.transport_retries;
        total.hint_retries += tally.hint_retries;
        total.lats.extend(tally.lats);
    }
    total.lats.sort_unstable();

    let doc = Json::object([
        ("clients", Json::from(CLIENTS)),
        ("seed", Json::from(seed)),
        ("warm_failures", Json::from(warm_failures)),
        ("requests", Json::from(total.requests)),
        ("ok", Json::from(total.ok)),
        ("failed", Json::from(total.failed)),
        ("transport_retries", Json::from(total.transport_retries)),
        ("hint_retries", Json::from(total.hint_retries)),
        ("wall_ms", Json::Number(round3(wall_ms))),
        (
            "achieved_rps",
            Json::Number(round3(total.ok as f64 / (wall_ms / 1e3))),
        ),
        (
            "latency_p50_micros",
            Json::Number(percentile(&total.lats, 50.0)),
        ),
        (
            "latency_p95_micros",
            Json::Number(percentile(&total.lats, 95.0)),
        ),
        (
            "latency_p99_micros",
            Json::Number(percentile(&total.lats, 99.0)),
        ),
    ]);
    println!("{}", doc.to_string_pretty());
    if total.failed > 0 || warm_failures > 0 || total.requests == 0 {
        eprintln!(
            "chaos hammer: {} warm failures, {} of {} requests failed",
            warm_failures, total.failed, total.requests
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn percentile(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx] as f64
}

// ---------------------------------------------------------------------
// Saturation sweep: closed-loop hammer at fixed shard counts
// ---------------------------------------------------------------------

struct SweepRow {
    shards: usize,
    requests: u64,
    errors: u64,
    wall_ms: f64,
    throughput_rps: f64,
}

fn run_sweep_point(shard_count: usize) -> SweepRow {
    let specs = specs();
    let shards = start_shards(shard_count);
    let router = start_router(&shards);
    let addr = router.local_addr();
    let mut control = connect(addr);
    for spec in &specs {
        let reply = exchange_json(&mut control, &compile_request(spec));
        assert_eq!(
            response_type(&reply),
            "result",
            "warm compile failed: {reply:?}"
        );
    }

    // Closed loop: clients drain a shared pool of all-hit requests as
    // fast as the tier answers — the sustained ceiling at this width.
    let total = specs.len() * COPIES * CLIENTS;
    let next = AtomicUsize::new(0);
    let errors = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..CLIENTS {
            let specs = &specs;
            let next = &next;
            let errors = &errors;
            scope.spawn(move || {
                let mut stream = connect(addr);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    let reply =
                        exchange_json(&mut stream, &compile_request(&specs[i % specs.len()]));
                    if response_type(&reply) != "result" {
                        errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;

    let row = SweepRow {
        shards: shard_count,
        requests: total as u64,
        errors: errors.load(Ordering::Relaxed),
        wall_ms,
        throughput_rps: total as f64 / (wall_ms / 1e3),
    };
    shutdown_fleet(router, shards);
    row
}

// ---------------------------------------------------------------------
// Semantic-cache run: canonical vs exact keying on a near-dup mix
// ---------------------------------------------------------------------

/// Circuits in the semantic suite (the paper's benchmark count).
const SEMANTIC_SUITE: usize = 200;
/// Default fraction of the second pass that is a renamed + relabeled +
/// commuting-reordered *near-duplicate* rather than an exact repeat.
const NEAR_DUP_FRAC: f64 = 0.5;
/// Minimum canonical-over-exact hit-count lift the gate demands.
const SEMANTIC_LIFT_FLOOR: f64 = 1.5;
/// Semantic device: 12 qubits, inside the server's statevector
/// re-verification bound, so every canonical hit is oracle-checked.
const SEMANTIC_DEVICE: &str = "grid:3x4";

struct SemanticRun {
    suite: usize,
    near_dup_frac: f64,
    near_dups: u64,
    exact_repeats: u64,
    on_mix_exact_hits: u64,
    on_mix_canonical_hits: u64,
    on_mix_misses: u64,
    on_canonical_rejected: u64,
    on_warm_wall_ms: f64,
    on_mix_wall_ms: f64,
    off_mix_hits: u64,
    off_mix_misses: u64,
    off_mix_wall_ms: f64,
    hit_lift: f64,
}

fn qasm_request(source: &str) -> String {
    let escaped = source
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n");
    format!(
        r#"{{"type":"compile","qasm":"{escaped}","device":"{SEMANTIC_DEVICE}","placer":"trivial","router":"lookahead"}}"#
    )
}

/// The suite in QASM form, plus the seeded second-pass mix: for each
/// circuit either its near-duplicate twin (renamed, qubits relabeled,
/// commuting-adjacent gates reordered) or the exact same text again.
/// Returns (originals, mix, near_dup_count).
fn semantic_workload(near_dup_frac: f64) -> (Vec<String>, Vec<String>, u64) {
    // Over-generate and keep the first SEMANTIC_SUITE circuits that fit
    // the 12-qubit device — some families add ancillas past max_qubits.
    let suite: Vec<_> = generate_suite(&SuiteConfig {
        count: SEMANTIC_SUITE * 2,
        max_qubits: 12,
        max_gates: 300,
        seed: 0xE16,
    })
    .into_iter()
    .filter(|b| b.circuit.qubit_count() <= 12)
    .take(SEMANTIC_SUITE)
    .collect();
    assert_eq!(suite.len(), SEMANTIC_SUITE, "suite fills the target count");
    let mut rng = Xoshiro256StarStar::seed_from_u64(SEED ^ 0x5EAC);
    let mut originals = Vec::with_capacity(suite.len());
    let mut mix = Vec::with_capacity(suite.len());
    let mut near_dups = 0u64;
    for bench in &suite {
        let source = qasm::print(&bench.circuit);
        let roll: f64 = rng.gen_range(0.0..1.0);
        if roll < near_dup_frac {
            near_dups += 1;
            let n = bench.circuit.qubit_count();
            let mut relabel: Vec<usize> = (0..n).collect();
            shuffle(&mut relabel, &mut rng);
            let twin = commuting_shuffle(
                &permute_qubits(&bench.circuit, &relabel),
                rng.gen::<u64>(),
                128,
            );
            mix.push(qasm_request(&qasm::print(&twin)));
        } else {
            mix.push(qasm_request(&source));
        }
        originals.push(qasm_request(&source));
    }
    (originals, mix, near_dups)
}

/// Fires every request sequentially on one connection; every response
/// must be a `result`. Returns wall milliseconds.
fn drive(addr: SocketAddr, requests: &[String]) -> f64 {
    let mut stream = connect(addr);
    let start = Instant::now();
    for request in requests {
        let reply = exchange_json(&mut stream, request);
        assert_eq!(
            response_type(&reply),
            "result",
            "semantic bench compile failed: {}",
            reply.to_compact_string()
        );
    }
    start.elapsed().as_secs_f64() * 1e3
}

fn semantic_stats(addr: SocketAddr) -> (u64, u64, u64, u64) {
    let mut control = connect(addr);
    let stats = exchange_json(&mut control, r#"{"type":"stats"}"#);
    let s = stats.get("semantic").expect("stats carry semantic block");
    let counter = |key: &str| {
        s.get(key)
            .and_then(Json::as_usize)
            .unwrap_or_else(|| panic!("semantic stats carry {key}")) as u64
    };
    (
        counter("exact_hits"),
        counter("canonical_hits"),
        counter("misses"),
        counter("canonical_rejected"),
    )
}

fn start_semantic_shard(semantic: bool) -> ServerHandle {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        event_loops: 1,
        max_connections: 16,
        cache_bytes: 64 << 20,
        frame_deadline: Duration::from_secs(30),
        persist_dir: None,
        semantic_cache: semantic,
        bucket_angles: false,
    })
    .expect("shard starts")
}

/// A/B measurement of canonical vs exact keying: warm the suite, then
/// replay the seeded near-dup mix against a semantic daemon and an
/// exact-only daemon. Counters are pure functions of the seeded
/// workload, so they gate exactly; the lift and rejection floors are
/// additionally asserted here so a regression fails even a re-record.
fn run_semantic(near_dup_frac: f64) -> SemanticRun {
    let (originals, mix, near_dups) = semantic_workload(near_dup_frac);

    let on = start_semantic_shard(true);
    let on_warm_wall_ms = drive(on.local_addr(), &originals);
    let warm_stats = semantic_stats(on.local_addr());
    let on_mix_wall_ms = drive(on.local_addr(), &mix);
    let (exact_hits, canonical_hits, misses, rejected) = semantic_stats(on.local_addr());
    on.shutdown();
    // Mix-phase deltas: the warm pass can itself hit canonically when
    // two suite members are structurally equivalent.
    let on_mix_exact_hits = exact_hits - warm_stats.0;
    let on_mix_canonical_hits = canonical_hits - warm_stats.1;
    let on_mix_misses = misses - warm_stats.2;

    let off = start_semantic_shard(false);
    drive(off.local_addr(), &originals);
    let off_warm = semantic_stats(off.local_addr());
    let off_mix_wall_ms = drive(off.local_addr(), &mix);
    let (off_hits, _, off_misses, _) = semantic_stats(off.local_addr());
    off.shutdown();
    let off_mix_hits = off_hits - off_warm.0;
    let off_mix_misses = off_misses - off_warm.2;

    let on_hits = on_mix_exact_hits + on_mix_canonical_hits;
    let hit_lift = on_hits as f64 / (off_mix_hits.max(1)) as f64;
    assert!(
        hit_lift >= SEMANTIC_LIFT_FLOOR,
        "canonical keying must lift the near-dup hit count >= \
         {SEMANTIC_LIFT_FLOOR}x over exact keying (got {hit_lift:.3}: \
         {on_hits} vs {off_mix_hits})"
    );
    assert_eq!(
        rejected, 0,
        "the statevector verifier must never reject a canonical replay"
    );

    SemanticRun {
        suite: SEMANTIC_SUITE,
        near_dup_frac,
        near_dups,
        exact_repeats: SEMANTIC_SUITE as u64 - near_dups,
        on_mix_exact_hits,
        on_mix_canonical_hits,
        on_mix_misses,
        on_canonical_rejected: rejected,
        on_warm_wall_ms,
        on_mix_wall_ms,
        off_mix_hits,
        off_mix_misses,
        off_mix_wall_ms,
        hit_lift,
    }
}

// ---------------------------------------------------------------------
// Document
// ---------------------------------------------------------------------

fn u64_array(values: &[u64]) -> Json {
    Json::Array(values.iter().map(|&v| Json::from(v)).collect())
}

fn doc(locality: &LocalityRun, saturation: &[SweepRow], semantic: &SemanticRun) -> Json {
    Json::object([
        ("schema", Json::from(SCHEMA)),
        (
            "config",
            Json::object([
                ("clients", Json::from(CLIENTS)),
                ("copies_per_client", Json::from(COPIES)),
                ("workers_per_shard", Json::from(2u64)),
                ("event_loops_per_shard", Json::from(1u64)),
                ("ring_replicas", Json::from(64u64)),
                ("mean_gap_ms", Json::Number(MEAN_GAP_MS)),
            ]),
        ),
        (
            "locality",
            Json::object([
                ("shards", Json::from(locality.shards)),
                ("distinct_jobs", Json::from(locality.distinct_jobs)),
                ("warm_forwarded", u64_array(&locality.warm_forwarded)),
                (
                    "sustained",
                    Json::object([
                        ("requests", Json::from(locality.sustained_requests)),
                        ("errors", Json::from(locality.sustained_errors)),
                        ("forwarded", u64_array(&locality.forwarded)),
                        ("hits", u64_array(&locality.hits)),
                        ("misses", u64_array(&locality.misses)),
                        ("reroutes", Json::from(locality.reroutes)),
                        ("forward_errors", Json::from(locality.forward_errors)),
                        ("wall_ms", Json::Number(round3(locality.wall_ms))),
                        ("achieved_rps", Json::Number(round3(locality.achieved_rps))),
                        ("latency_p50_micros", Json::Number(locality.p50_micros)),
                        ("latency_p95_micros", Json::Number(locality.p95_micros)),
                        ("latency_p99_micros", Json::Number(locality.p99_micros)),
                    ]),
                ),
                // Exact-gated: on a healthy loopback fleet with the
                // pinned hedge delay, every counter here must be zero.
                (
                    "resilience",
                    Json::object([
                        ("hedges_fired", Json::from(locality.resilience.hedges_fired)),
                        ("hedges_won", Json::from(locality.resilience.hedges_won)),
                        (
                            "admission_shed",
                            Json::from(locality.resilience.admission_shed),
                        ),
                        (
                            "deadline_rejected",
                            Json::from(locality.resilience.deadline_rejected),
                        ),
                        (
                            "breaker_opens",
                            u64_array(&locality.resilience.breaker_opens),
                        ),
                    ]),
                ),
            ]),
        ),
        (
            "saturation",
            Json::Array(
                saturation
                    .iter()
                    .map(|r| {
                        Json::object([
                            ("shards", Json::from(r.shards)),
                            ("requests", Json::from(r.requests)),
                            ("errors", Json::from(r.errors)),
                            ("wall_ms", Json::Number(round3(r.wall_ms))),
                            ("throughput_rps", Json::Number(round3(r.throughput_rps))),
                        ])
                    })
                    .collect(),
            ),
        ),
        // Counters are pure functions of the seeded workload and gate
        // exactly; `hit_lift` is a deterministic counter ratio.
        (
            "semantic",
            Json::object([
                ("suite", Json::from(semantic.suite)),
                ("near_dup_frac", Json::Number(semantic.near_dup_frac)),
                ("near_dups", Json::from(semantic.near_dups)),
                ("exact_repeats", Json::from(semantic.exact_repeats)),
                (
                    "canonical_keying",
                    Json::object([
                        ("mix_exact_hits", Json::from(semantic.on_mix_exact_hits)),
                        (
                            "mix_canonical_hits",
                            Json::from(semantic.on_mix_canonical_hits),
                        ),
                        ("mix_misses", Json::from(semantic.on_mix_misses)),
                        (
                            "canonical_rejected",
                            Json::from(semantic.on_canonical_rejected),
                        ),
                        (
                            "warm_wall_ms",
                            Json::Number(round3(semantic.on_warm_wall_ms)),
                        ),
                        ("mix_wall_ms", Json::Number(round3(semantic.on_mix_wall_ms))),
                    ]),
                ),
                (
                    "exact_keying",
                    Json::object([
                        ("mix_hits", Json::from(semantic.off_mix_hits)),
                        ("mix_misses", Json::from(semantic.off_mix_misses)),
                        (
                            "mix_wall_ms",
                            Json::Number(round3(semantic.off_mix_wall_ms)),
                        ),
                    ]),
                ),
                ("hit_lift", Json::Number(round3(semantic.hit_lift))),
            ]),
        ),
    ])
}

fn round3(v: f64) -> f64 {
    (v * 1e3).round() / 1e3
}

// ---------------------------------------------------------------------
// Regression check
// ---------------------------------------------------------------------

/// Absolute grace added on top of the relative budget for `_ms` keys —
/// microsecond-to-millisecond measurements on a loaded CI host can eat
/// a whole scheduler quantum without meaning anything.
const GRACE_MS: f64 = 25.0;
const GRACE_MICROS: f64 = 25_000.0;

fn check_file(path: &str, fresh: &Json, budget: f64) -> bool {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{path}: cannot read baseline: {e} (run bench_load to record it)");
            return false;
        }
    };
    let baseline = match qcs_json::parse(&text) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("{path}: malformed baseline: {e}");
            return false;
        }
    };
    let mut ok = true;
    compare(path, &baseline, fresh, budget, &mut ok);
    ok
}

/// Structural comparison with the serving-tier budget conventions:
/// `_ms`/`_micros` keys are lower-is-better wall measurements (budget×
/// the baseline, plus an absolute grace floor), `_rps` keys are
/// higher-is-better throughputs (may shrink to 1/budget), everything
/// else must match exactly.
fn compare(path: &str, baseline: &Json, fresh: &Json, budget: f64, ok: &mut bool) {
    match (baseline, fresh) {
        (Json::Object(b), Json::Object(f)) => {
            if b.len() != f.len() || b.iter().zip(f).any(|((bk, _), (fk, _))| bk != fk) {
                eprintln!("{path}: object shape changed");
                *ok = false;
                return;
            }
            for ((key, bv), (_, fv)) in b.iter().zip(f) {
                compare(&format!("{path}.{key}"), bv, fv, budget, ok);
            }
        }
        (Json::Array(b), Json::Array(f)) => {
            if b.len() != f.len() {
                eprintln!("{path}: array length {} -> {}", b.len(), f.len());
                *ok = false;
                return;
            }
            for (i, (bv, fv)) in b.iter().zip(f).enumerate() {
                compare(&format!("{path}[{i}]"), bv, fv, budget, ok);
            }
        }
        (Json::Number(b), Json::Number(f))
            if path.ends_with("_ms") || path.ends_with("_micros") =>
        {
            let grace = if path.ends_with("_micros") {
                GRACE_MICROS
            } else {
                GRACE_MS
            };
            if budget > 0.0 && *f > *b * budget + grace {
                eprintln!("{path}: wall measurement regressed {b:.3} -> {f:.3} (budget {budget}x)");
                *ok = false;
            }
        }
        (Json::Number(b), Json::Number(f)) if path.ends_with("_rps") => {
            if budget > 0.0 && *f < *b / budget {
                eprintln!("{path}: throughput regressed {b:.3} -> {f:.3} rps (budget {budget}x)");
                *ok = false;
            }
        }
        _ => {
            if baseline != fresh {
                eprintln!("{path}: counter drift {baseline:?} -> {fresh:?}");
                *ok = false;
            }
        }
    }
}
