//! `qcs-client` — command-line client for the compilation daemon.
//!
//! ```text
//! qcs-client --addr HOST:PORT compile FILE.qasm [options]
//! qcs-client --addr HOST:PORT workload SPEC [options]
//! qcs-client --addr HOST:PORT suite [--count N] [--max-qubits N]
//!                                   [--max-gates N] [--seed N] [options]
//! qcs-client --addr HOST:PORT stats | ping | shutdown | probe
//! qcs-client --list-devices
//! qcs-client --canonical-digest FILE.qasm|SPEC
//!
//! options: --device SPEC  --placer NAME  --router NAME
//!          --strategy auto|trivial|lookahead|sabre  --race
//!          --deadline-ms N  --request-id ID  --retries N
//!          --timeout-ms N  --json
//! ```
//!
//! `--strategy auto` asks the daemon's metric-driven portfolio to pick
//! the cheapest adequate mapper lane (racing the lanes when the pick is
//! unconfident); `--race` races every lane and serves the best verified
//! result. Both degrade gracefully inside `--deadline-ms` instead of
//! being rejected against it.
//!
//! ```text
//! ```
//!
//! `--list-devices` prints the accepted device-spec grammar — one line
//! per family, straight from the daemon's own catalog table — and
//! exits without contacting a server.
//!
//! `--canonical-digest` takes a QASM file (or a workload spec like
//! `qft:5`) and prints its exact and canonical circuit digests without
//! compiling or contacting a server. Two circuits that differ only by
//! qubit labels, commuting gate reorderings or circuit name share the
//! canonical digest — the identity the daemon's semantic cache serves
//! by — while their exact digests differ.
//!
//! `compile`/`workload` print a one-line summary of the mapped circuit;
//! `suite` prints a fixed-width table, one row per benchmark. `--json`
//! dumps the raw response instead.
//!
//! Transient failures — connection refused, timeouts, and load-shed
//! `error` responses carrying a `retry_after_ms` hint — are retried up
//! to `--retries` times (default 2) with bounded exponential backoff and
//! deterministic jitter. Hard failures exit nonzero with a one-line
//! diagnostic, never a panic or backtrace.
//!
//! Every `compile`/`workload` request carries a client-generated
//! `request_id` (override with `--request-id`), built once and reused
//! verbatim across retries. The daemon echoes it in the response and
//! counts repeated ids as `requests_retried` in `stats`, so a flaky
//! network's retries are distinguishable from organic traffic on the
//! server side.
//!
//! `probe` is the chaos harness's hostile-input check: it fires garbage
//! bytes, a truncated frame and an oversized length prefix at the
//! daemon, then verifies it still answers `ping`.

use std::io::{self, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::process::ExitCode;
use std::time::Duration;

use qcs_json::Json;
use qcs_rng::{Rng, SeedableRng};
use qcs_serve::protocol::{read_frame, write_json};

const USAGE: &str = "usage: qcs-client --addr HOST:PORT <command> [options]\n\
       qcs-client --list-devices\n\
       qcs-client --canonical-digest FILE.qasm|SPEC\n\
  commands: compile FILE | workload SPEC | suite | stats | ping | shutdown | probe\n\
  options:  --device SPEC --placer NAME --router NAME --deadline-ms N\n\
            --strategy auto|trivial|lookahead|sabre --race\n\
            --request-id ID --count N --max-qubits N --max-gates N\n\
            --seed N --retries N --timeout-ms N --json";

struct Options {
    addr: String,
    list_devices: bool,
    canonical_digest: Option<String>,
    device: Option<String>,
    placer: Option<String>,
    router: Option<String>,
    strategy: Option<String>,
    race: bool,
    deadline_ms: Option<u64>,
    request_id: Option<String>,
    count: Option<usize>,
    max_qubits: Option<usize>,
    max_gates: Option<usize>,
    seed: Option<u64>,
    retries: u32,
    timeout_ms: u64,
    json: bool,
    command: Vec<String>,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        addr: String::new(),
        list_devices: false,
        canonical_digest: None,
        device: None,
        placer: None,
        router: None,
        strategy: None,
        race: false,
        deadline_ms: None,
        request_id: None,
        count: None,
        max_qubits: None,
        max_gates: None,
        seed: None,
        retries: 2,
        timeout_ms: 30_000,
        json: false,
        command: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--help" || arg == "-h" {
            return Err(USAGE.to_string());
        }
        if arg == "--json" {
            opts.json = true;
            continue;
        }
        if arg == "--list-devices" {
            opts.list_devices = true;
            continue;
        }
        if arg == "--race" {
            opts.race = true;
            continue;
        }
        if !arg.starts_with("--") {
            opts.command.push(arg.clone());
            continue;
        }
        let value = it
            .next()
            .ok_or_else(|| format!("{arg} needs a value\n{USAGE}"))?;
        let bad = |what: &str| format!("bad {what} '{value}' for {arg}");
        match arg.as_str() {
            "--addr" => opts.addr = value.clone(),
            "--canonical-digest" => opts.canonical_digest = Some(value.clone()),
            "--device" => opts.device = Some(value.clone()),
            "--placer" => opts.placer = Some(value.clone()),
            "--router" => opts.router = Some(value.clone()),
            "--strategy" => opts.strategy = Some(value.clone()),
            "--deadline-ms" => {
                opts.deadline_ms = Some(value.parse().map_err(|_| bad("deadline"))?);
            }
            "--request-id" => opts.request_id = Some(value.clone()),
            "--count" => opts.count = Some(value.parse().map_err(|_| bad("count"))?),
            "--max-qubits" => {
                opts.max_qubits = Some(value.parse().map_err(|_| bad("qubit bound"))?);
            }
            "--max-gates" => opts.max_gates = Some(value.parse().map_err(|_| bad("gate bound"))?),
            "--seed" => opts.seed = Some(value.parse().map_err(|_| bad("seed"))?),
            "--retries" => opts.retries = value.parse().map_err(|_| bad("retry count"))?,
            "--timeout-ms" => {
                opts.timeout_ms = value.parse().map_err(|_| bad("timeout"))?;
                if opts.timeout_ms == 0 {
                    return Err("--timeout-ms must be at least 1".to_string());
                }
            }
            _ => return Err(format!("unknown flag '{arg}'\n{USAGE}")),
        }
    }
    // `--list-devices` and `--canonical-digest` are answered locally —
    // no daemon, so no address or command needed.
    if opts.list_devices || opts.canonical_digest.is_some() {
        return Ok(opts);
    }
    if opts.addr.is_empty() {
        return Err(format!("--addr is required\n{USAGE}"));
    }
    if opts.command.is_empty() {
        return Err(format!("no command given\n{USAGE}"));
    }
    Ok(opts)
}

/// Prints the device-spec grammar, one line per family. The table is
/// the same one the daemon resolves against, so this listing can never
/// drift from what the server accepts.
fn print_device_families() {
    let width = qcs_serve::catalog::DEVICE_FAMILIES
        .iter()
        .map(|(grammar, _)| grammar.len())
        .max()
        .unwrap_or(0);
    for (grammar, description) in qcs_serve::catalog::DEVICE_FAMILIES {
        println!("{grammar:<width$}  {description}");
    }
}

/// Prints a circuit's exact and canonical digests, locally. `target` is
/// a QASM file path when such a file exists, otherwise a workload spec
/// resolved through the daemon's own catalog.
fn print_canonical_digest(target: &str) -> Result<(), String> {
    let circuit = if std::path::Path::new(target).is_file() {
        let text =
            std::fs::read_to_string(target).map_err(|e| format!("cannot read {target}: {e}"))?;
        qcs_circuit::qasm::parse(&text).map_err(|e| format!("qasm rejected: {e}"))?
    } else {
        qcs_serve::catalog::resolve_workload(target)
            .map_err(|e| format!("{target} is neither a readable file nor a workload spec: {e}"))?
    };
    let exact = qcs_circuit::hash::circuit_digest(&circuit);
    let form =
        qcs_circuit::canon::canonicalize(&circuit, &qcs_circuit::canon::CanonConfig::default());
    let canonical = qcs_circuit::canon::canonical_digest(&form.circuit);
    println!("exact      {exact:016x}");
    println!("canonical  {canonical:016x}");
    Ok(())
}

/// The `(placer, router)` pipeline a `--strategy` name stands for:
/// `auto` asks the daemon's metric-driven selector, the portfolio lane
/// names ask for that lane's pipeline directly.
fn strategy_pipeline(name: &str) -> Result<(String, String), String> {
    if name == "auto" {
        return Ok(("auto".to_string(), "auto".to_string()));
    }
    match qcs_core::portfolio::lane_config(name) {
        Some(config) => Ok((config.placer, config.router)),
        None => Err(format!(
            "unknown strategy '{name}' (want auto, trivial, lookahead or sabre)"
        )),
    }
}

/// Members shared by `compile` and `compile_suite` requests.
fn push_common(members: &mut Vec<(String, Json)>, opts: &Options) -> Result<(), String> {
    if let Some(device) = &opts.device {
        members.push(("device".to_string(), Json::from(device.clone())));
    }
    if let Some(strategy) = &opts.strategy {
        if opts.placer.is_some() || opts.router.is_some() {
            return Err("--strategy conflicts with --placer/--router".to_string());
        }
        let (placer, router) = strategy_pipeline(strategy)?;
        members.push(("placer".to_string(), Json::from(placer)));
        members.push(("router".to_string(), Json::from(router)));
        return Ok(());
    }
    if let Some(placer) = &opts.placer {
        members.push(("placer".to_string(), Json::from(placer.clone())));
    }
    if let Some(router) = &opts.router {
        members.push(("router".to_string(), Json::from(router.clone())));
    }
    Ok(())
}

fn build_request(opts: &Options) -> Result<Json, String> {
    let command = opts.command[0].as_str();
    let operand = opts.command.get(1);
    if opts.command.len() > 2 {
        return Err(format!("too many arguments\n{USAGE}"));
    }
    let mut members: Vec<(String, Json)> = Vec::new();
    match command {
        "compile" => {
            let path = operand.ok_or_else(|| format!("compile needs a QASM file\n{USAGE}"))?;
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            members.push(("type".to_string(), Json::from("compile")));
            members.push(("qasm".to_string(), Json::from(text)));
        }
        "workload" => {
            let spec = operand.ok_or_else(|| format!("workload needs a spec\n{USAGE}"))?;
            members.push(("type".to_string(), Json::from("compile")));
            members.push(("workload".to_string(), Json::from(spec.clone())));
        }
        "suite" => {
            members.push(("type".to_string(), Json::from("compile_suite")));
            if let Some(count) = opts.count {
                members.push(("count".to_string(), Json::from(count)));
            }
            if let Some(max_qubits) = opts.max_qubits {
                members.push(("max_qubits".to_string(), Json::from(max_qubits)));
            }
            if let Some(max_gates) = opts.max_gates {
                members.push(("max_gates".to_string(), Json::from(max_gates)));
            }
            if let Some(seed) = opts.seed {
                members.push(("seed".to_string(), Json::from(seed)));
            }
        }
        "stats" | "ping" | "shutdown" => {
            if operand.is_some() {
                return Err(format!("{command} takes no argument\n{USAGE}"));
            }
            return Ok(Json::object([("type", command)]));
        }
        other => return Err(format!("unknown command '{other}'\n{USAGE}")),
    }
    match command {
        "compile" | "workload" => {
            push_common(&mut members, opts)?;
            if opts.race {
                members.push(("race".to_string(), Json::Bool(true)));
            }
            if let Some(deadline) = opts.deadline_ms {
                members.push(("deadline_ms".to_string(), Json::from(deadline)));
            }
            // Built once here, so every retry of this request reuses the
            // same id and the daemon can tell the retries apart from new
            // traffic.
            let id = opts.request_id.clone().unwrap_or_else(generate_request_id);
            members.push(("request_id".to_string(), Json::from(id)));
        }
        _ => {
            if opts.race {
                return Err("--race applies to compile/workload requests only".to_string());
            }
            push_common(&mut members, opts)?;
        }
    }
    Ok(Json::object(members))
}

/// A process-unique request id: pid + monotonic-enough wall-clock nanos.
/// Uniqueness only needs to hold within the daemon's bounded retry
/// window, not globally.
fn generate_request_id() -> String {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos())
        .unwrap_or(0);
    format!("cli-{:x}-{nanos:x}", std::process::id())
}

fn connect(addr: &str, timeout: Duration) -> io::Result<TcpStream> {
    let sock_addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
    })?;
    let stream = TcpStream::connect_timeout(&sock_addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    Ok(stream)
}

fn roundtrip(addr: &str, request: &Json, timeout: Duration) -> io::Result<Json> {
    let mut stream = connect(addr, timeout)?;
    write_json(&mut stream, request)?;
    let payload = read_frame(&mut stream)?.ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "daemon closed without replying",
        )
    })?;
    let text = String::from_utf8(payload)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    qcs_json::parse(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

/// Transport errors worth a retry: the daemon may be restarting, the
/// machine briefly out of sockets, or a read stalled.
fn retryable(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::ConnectionRefused
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::TimedOut
            | io::ErrorKind::WouldBlock
    )
}

/// Bounded exponential backoff with deterministic jitter: attempt `i`
/// sleeps `50·2^i` ms (capped at 2 s) plus up to 50% jitter drawn from a
/// [`qcs_rng::ChaCha8Rng`] seeded by the attempt index, so retry timing
/// is reproducible run to run.
fn backoff_ms(attempt: u32) -> u64 {
    let base = 50u64.saturating_mul(1 << attempt.min(10)).min(2_000);
    let mut rng = qcs_rng::ChaCha8Rng::seed_from_u64(0xC11E_47AB + u64::from(attempt));
    base + rng.gen_range(0..=base / 2)
}

/// One-line, kind-specific diagnostic for a transport error.
fn describe_io_error(addr: &str, timeout: Duration, e: &io::Error) -> String {
    match e.kind() {
        io::ErrorKind::ConnectionRefused => {
            format!("cannot connect to {addr}: connection refused (is the daemon running?)")
        }
        io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock => {
            format!(
                "no response from {addr} within {} ms (daemon overloaded or unreachable)",
                timeout.as_millis()
            )
        }
        io::ErrorKind::UnexpectedEof => {
            format!("connection to {addr} closed before a full reply arrived")
        }
        io::ErrorKind::InvalidData => format!("malformed response from {addr}: {e}"),
        _ => format!("cannot talk to {addr}: {e}"),
    }
}

/// The load-shed back-off hint, when the response carries one.
fn retry_after_hint(response: &Json) -> Option<u64> {
    if response.get("type").and_then(Json::as_str) != Some("error") {
        return None;
    }
    response
        .get("retry_after_ms")
        .and_then(Json::as_usize)
        .map(|ms| ms as u64)
}

/// Round trip with retries: transient transport errors and load-shed
/// responses back off and try again; anything else is final. A declared
/// `--deadline-ms` bounds the whole retry schedule — the client never
/// sleeps into a budget the server would reject anyway, and
/// `deadline_exceeded` responses are final by construction (they carry
/// no `retry_after_ms`).
fn roundtrip_with_retries(opts: &Options, request: &Json) -> Result<Json, String> {
    let timeout = Duration::from_millis(opts.timeout_ms);
    let started = std::time::Instant::now();
    let mut attempt = 0u32;
    loop {
        let outcome = roundtrip(&opts.addr, request, timeout);
        let delay_ms = match &outcome {
            Ok(response) => match retry_after_hint(response) {
                Some(hint) => hint.max(backoff_ms(attempt)),
                None => return Ok(response.clone()),
            },
            Err(e) if retryable(e) => backoff_ms(attempt),
            Err(e) => return Err(describe_io_error(&opts.addr, timeout, e)),
        };
        let budget_left = opts
            .deadline_ms
            .map(|budget| Duration::from_millis(budget).saturating_sub(started.elapsed()));
        let over_budget = budget_left.is_some_and(|left| Duration::from_millis(delay_ms) >= left);
        if attempt >= opts.retries || over_budget {
            return match outcome {
                Ok(response) => Ok(response), // surface the final shed error
                Err(e) => Err(format!(
                    "{} ({})",
                    describe_io_error(&opts.addr, timeout, &e),
                    if over_budget {
                        format!("deadline budget exhausted after {} attempts", attempt + 1)
                    } else {
                        format!("gave up after {} attempts", attempt + 1)
                    }
                )),
            };
        }
        std::thread::sleep(Duration::from_millis(delay_ms));
        attempt += 1;
    }
}

fn field(report: &Json, key: &str) -> String {
    match report.get(key) {
        Some(Json::Number(n)) if n.fract() == 0.0 => format!("{}", *n as i64),
        Some(Json::Number(n)) => format!("{n:.4}"),
        Some(Json::String(s)) => s.clone(),
        _ => "-".to_string(),
    }
}

fn print_report_row(name: &str, report: &Json, widths: &[usize]) {
    let cells = [
        name.to_string(),
        field(report, "routed_gates"),
        field(report, "swaps_inserted"),
        field(report, "gate_overhead_pct"),
        field(report, "depth_after"),
        field(report, "fidelity_after"),
    ];
    let row: Vec<String> = cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = *w))
        .collect();
    println!("{}", row.join("  "));
}

const TABLE_WIDTHS: [usize; 6] = [24, 8, 6, 10, 8, 10];
const TABLE_TITLES: [&str; 6] = ["name", "gates", "swaps", "ovh %", "depth", "fidelity"];

fn print_table_header() {
    let row: Vec<String> = TABLE_TITLES
        .iter()
        .zip(&TABLE_WIDTHS)
        .map(|(t, w)| format!("{t:>w$}", w = *w))
        .collect();
    let line = row.join("  ");
    println!("{line}");
    println!("{}", "-".repeat(line.len()));
}

/// Renders a response for humans. Returns false for `error` responses.
fn present(response: &Json) -> bool {
    match response.get("type").and_then(Json::as_str) {
        Some("error") => {
            eprintln!(
                "error: {}",
                response
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or("?")
            );
            false
        }
        Some("result") => {
            let report = response.get("report").cloned().unwrap_or(Json::Null);
            let name = report
                .get("circuit_name")
                .and_then(Json::as_str)
                .unwrap_or("circuit")
                .to_string();
            println!("digest  {}", field(response, "digest"));
            print_table_header();
            print_report_row(&name, &report, &TABLE_WIDTHS);
            true
        }
        Some("suite_result") => {
            let Some(Json::Array(results)) = response.get("results") else {
                eprintln!("error: malformed suite_result");
                return false;
            };
            print_table_header();
            let mut failures = 0;
            for item in results {
                let name = item.get("name").and_then(Json::as_str).unwrap_or("?");
                let result = item.get("result").cloned().unwrap_or(Json::Null);
                match result.get("type").and_then(Json::as_str) {
                    Some("result") => {
                        let report = result.get("report").cloned().unwrap_or(Json::Null);
                        print_report_row(name, &report, &TABLE_WIDTHS);
                    }
                    _ => {
                        failures += 1;
                        let message = result.get("message").and_then(Json::as_str).unwrap_or("?");
                        println!("{name:>24}  FAILED: {message}");
                    }
                }
            }
            println!("{} circuits, {} failed", results.len(), failures);
            true
        }
        Some("stats") => {
            println!("{}", response.to_string_pretty());
            print_resilience_summary(response);
            true
        }
        _ => {
            // pong / ok and future kinds: pretty JSON is the most
            // honest rendering.
            println!("{}", response.to_string_pretty());
            true
        }
    }
}

/// Operator-friendly footer for `stats` responses: pulls the resilience
/// counters (hedges, breakers, deadlines) out of the JSON so a human
/// doesn't have to. Routers and shards carry different subsets; only
/// the sections present are printed.
fn print_resilience_summary(response: &Json) {
    let count = |v: &Json, key: &str| v.get(key).and_then(Json::as_usize).unwrap_or(0);
    if let Some(resilience) = response.get("resilience") {
        println!(
            "resilience: hedges {} fired / {} won, admission shed {}, deadline rejected {}",
            count(resilience, "hedges_fired"),
            count(resilience, "hedges_won"),
            count(resilience, "admission_shed"),
            count(resilience, "deadline_rejected"),
        );
    }
    if let Some(Json::Array(shards)) = response.get("shards") {
        let opens: usize = shards.iter().map(|s| count(s, "breaker_opens")).sum();
        let open_now = shards
            .iter()
            .filter(|s| s.get("breaker").and_then(Json::as_str) == Some("open"))
            .count();
        if shards.iter().any(|s| s.get("breaker").is_some()) {
            println!(
                "breakers:   {open_now} of {} open now, {opens} opens total",
                shards.len()
            );
        }
    }
    if let Some(deadline) = response.get("deadline") {
        println!(
            "deadlines:  {} rejected ({} before compile started)",
            count(deadline, "rejected"),
            count(deadline, "rejected_precompile"),
        );
    }
    if let Some(semantic) = response.get("semantic") {
        let enabled = semantic.get("enabled").and_then(Json::as_bool) == Some(true);
        println!(
            "semantic:   {}, {} canonical hits / {} exact hits / {} misses, {} rejected",
            if enabled { "on" } else { "off" },
            count(semantic, "canonical_hits"),
            count(semantic, "exact_hits"),
            count(semantic, "misses"),
            count(semantic, "canonical_rejected"),
        );
    }
}

/// Fires hostile input at the daemon (unframed garbage, a truncated
/// frame, an oversized length prefix), then checks it still answers
/// `ping`. Exit status: did the daemon survive?
fn probe(opts: &Options) -> Result<(), String> {
    let timeout = Duration::from_millis(opts.timeout_ms);
    let attacks: [(&str, Vec<u8>); 3] = [
        (
            "unframed garbage",
            b"\xff\xfenot a frame at all\x00\x01".to_vec(),
        ),
        // Length prefix promises 1024 bytes, delivers 3, hangs up.
        ("truncated frame", {
            let mut b = 1024u32.to_be_bytes().to_vec();
            b.extend_from_slice(b"abc");
            b
        }),
        // A prefix past MAX_FRAME_BYTES must be rejected before any
        // buffering happens.
        ("oversized length prefix", u32::MAX.to_be_bytes().to_vec()),
    ];
    for (name, bytes) in &attacks {
        let mut stream =
            connect(&opts.addr, timeout).map_err(|e| describe_io_error(&opts.addr, timeout, &e))?;
        // The daemon may reply (an error frame) or just close; either
        // way the write itself succeeding is all the attack needs.
        stream
            .write_all(bytes)
            .map_err(|e| format!("sending {name}: {e}"))?;
        drop(stream);
        println!("sent {name} ({} bytes)", bytes.len());
    }
    let ping = Json::object([("type", "ping")]);
    let response = roundtrip_with_retries(opts, &ping)?;
    if response.get("type").and_then(Json::as_str) == Some("pong") {
        println!("daemon survived {} hostile frames", attacks.len());
        Ok(())
    } else {
        Err(format!(
            "daemon answered ping with {} after hostile input",
            response.to_compact_string()
        ))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_options(&args) {
        Ok(opts) => opts,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    if opts.list_devices {
        print_device_families();
        return ExitCode::SUCCESS;
    }
    if let Some(target) = &opts.canonical_digest {
        return match print_canonical_digest(target) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("qcs-client: {message}");
                ExitCode::FAILURE
            }
        };
    }
    if opts.command[0] == "probe" {
        return match probe(&opts) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("qcs-client: {message}");
                ExitCode::FAILURE
            }
        };
    }
    let request = match build_request(&opts) {
        Ok(request) => request,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let response = match roundtrip_with_retries(&opts, &request) {
        Ok(response) => response,
        Err(message) => {
            eprintln!("qcs-client: {message}");
            return ExitCode::FAILURE;
        }
    };
    if opts.json {
        println!("{}", response.to_string_pretty());
        let failed = response.get("type").and_then(Json::as_str) == Some("error");
        return if failed {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }
    if present(&response) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
