//! `qcs-router` — the sharding front-end binary.
//!
//! ```text
//! qcs-router --shard HOST:PORT [--shard HOST:PORT ...]
//!            [--addr HOST:PORT] [--replicas N]
//!            [--health-interval-ms N] [--io-timeout-ms N]
//!            [--probe-backoff-max-ms N]
//!            [--breaker-threshold N] [--breaker-cooldown-ms N]
//!            [--hedge-after-ms N] [--max-in-flight N]
//!            [--port-file PATH]
//! ```
//!
//! Speaks the same length-prefixed frame protocol as `qcs-serve`:
//! clients point at the router instead of a daemon and `compile` /
//! `compile_suite` requests are consistent-hashed across the `--shard`
//! fleet (same job → same shard → warm shard cache), with automatic
//! rerouting around shards that die. `ping`, `stats` and `shutdown` are
//! answered by the router itself.
//!
//! The resilience knobs map straight onto [`RouterConfig`]: per-shard
//! circuit breakers (`--breaker-*`), hedged retries for cache-hit-class
//! requests (`--hedge-after-ms`, 0 = derive from the observed p99),
//! bounded per-shard admission windows (`--max-in-flight`) and the
//! unhealthy-probe backoff cap (`--probe-backoff-max-ms`).
//!
//! Binds (port 0 = ephemeral), prints the bound address on stdout, and
//! routes until a protocol `shutdown` request arrives. `--port-file`
//! writes the bound port to a file once listening, for scripts.

use std::process::ExitCode;
use std::time::Duration;

use qcs_serve::router::{Router, RouterConfig};

fn usage() -> String {
    "usage: qcs-router --shard HOST:PORT [--shard HOST:PORT ...] \
     [--addr HOST:PORT] [--replicas N] [--health-interval-ms N] \
     [--io-timeout-ms N] [--probe-backoff-max-ms N] \
     [--breaker-threshold N] [--breaker-cooldown-ms N] \
     [--hedge-after-ms N] [--max-in-flight N] [--port-file PATH]"
        .to_string()
}

fn parse_args(args: &[String]) -> Result<(RouterConfig, Option<String>), String> {
    let mut config = RouterConfig::default();
    let mut port_file = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            return Err(usage());
        }
        let value = it
            .next()
            .ok_or_else(|| format!("{flag} needs a value\n{}", usage()))?;
        let bad = |what: &str| format!("bad {what} '{value}' for {flag}");
        match flag.as_str() {
            "--addr" => config.addr = value.clone(),
            "--shard" => config.shards.push(value.clone()),
            "--replicas" => {
                config.replicas = value.parse().map_err(|_| bad("replica count"))?;
                if config.replicas == 0 {
                    return Err("--replicas must be at least 1".to_string());
                }
            }
            "--health-interval-ms" => {
                let ms: u64 = value.parse().map_err(|_| bad("interval"))?;
                config.health_interval = Duration::from_millis(ms);
            }
            "--io-timeout-ms" => {
                let ms: u64 = value.parse().map_err(|_| bad("timeout"))?;
                config.io_timeout = Duration::from_millis(ms);
            }
            "--probe-backoff-max-ms" => {
                let ms: u64 = value.parse().map_err(|_| bad("backoff"))?;
                config.probe_backoff_max = Duration::from_millis(ms);
            }
            "--breaker-threshold" => {
                config.breaker_threshold = value.parse().map_err(|_| bad("threshold"))?;
                if config.breaker_threshold == 0 {
                    return Err("--breaker-threshold must be at least 1".to_string());
                }
            }
            "--breaker-cooldown-ms" => {
                let ms: u64 = value.parse().map_err(|_| bad("cooldown"))?;
                config.breaker_cooldown = Duration::from_millis(ms);
            }
            "--hedge-after-ms" => {
                let ms: u64 = value.parse().map_err(|_| bad("delay"))?;
                // 0 keeps the default behavior: derive from observed p99.
                config.hedge_after = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "--max-in-flight" => {
                config.max_in_flight = value.parse().map_err(|_| bad("window"))?;
                if config.max_in_flight == 0 {
                    return Err("--max-in-flight must be at least 1".to_string());
                }
            }
            "--port-file" => port_file = Some(value.clone()),
            _ => return Err(format!("unknown flag '{flag}'\n{}", usage())),
        }
    }
    if config.shards.is_empty() {
        return Err(format!("at least one --shard is required\n{}", usage()));
    }
    Ok((config, port_file))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (config, port_file) = match parse_args(&args) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    let shard_count = config.shards.len();
    let handle = match Router::start(config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("qcs-router: failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = handle.local_addr();
    println!("qcs-router listening on {addr}, routing {shard_count} shard(s)");
    if let Some(path) = port_file {
        if let Err(e) = std::fs::write(&path, addr.port().to_string()) {
            eprintln!("qcs-router: cannot write port file {path}: {e}");
            handle.shutdown();
            return ExitCode::FAILURE;
        }
    }
    handle.wait();
    println!("qcs-router: shut down cleanly");
    ExitCode::SUCCESS
}
