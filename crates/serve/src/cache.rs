//! Content-addressed result cache with an LRU byte-size budget.
//!
//! The daemon keys each finished compilation by a stable digest of its
//! inputs (circuit content + device + mapper config, see
//! [`crate::compile::job_digest`]) and stores the *canonical response
//! payload bytes*. A repeated submission is served straight from memory
//! with byte-identical output — compilation is deterministic, so a cache
//! hit is observationally indistinguishable from a recompile, just
//! thousands of times faster.
//!
//! Eviction is least-recently-used under a byte budget: recency is a
//! monotonic sequence number per entry, and a `BTreeMap` from sequence
//! number to key makes "oldest entry" an `O(log n)` lookup without
//! unsafe linked-list plumbing.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Counters describing cache effectiveness, reported by `stats`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CacheStats {
    /// Lookups served from memory.
    pub hits: u64,
    /// Lookups that required a compile.
    pub misses: u64,
    /// Entries evicted to stay within budget.
    pub evictions: u64,
    /// Live entries.
    pub entries: usize,
    /// Bytes held by live entries.
    pub bytes: usize,
}

impl CacheStats {
    /// Hits over lookups, 0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    seq: u64,
    payload: Arc<Vec<u8>>,
}

/// An LRU map from result digest to canonical response bytes, bounded by
/// total payload size.
pub struct ResultCache {
    budget_bytes: usize,
    map: HashMap<u64, Entry>,
    recency: BTreeMap<u64, u64>,
    next_seq: u64,
    bytes: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl ResultCache {
    /// An empty cache allowed to hold up to `budget_bytes` of payload.
    pub fn new(budget_bytes: usize) -> Self {
        ResultCache {
            budget_bytes,
            map: HashMap::new(),
            recency: BTreeMap::new(),
            next_seq: 0,
            bytes: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Looks up a digest, bumping its recency; counts a hit or miss.
    pub fn get(&mut self, digest: u64) -> Option<Arc<Vec<u8>>> {
        let next_seq = &mut self.next_seq;
        match self.map.get_mut(&digest) {
            Some(entry) => {
                self.hits += 1;
                self.recency.remove(&entry.seq);
                entry.seq = *next_seq;
                self.recency.insert(entry.seq, digest);
                *next_seq += 1;
                Some(Arc::clone(&entry.payload))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Stores a payload under a digest, evicting least-recently-used
    /// entries until the budget holds. Payloads larger than the whole
    /// budget are not cached at all.
    pub fn insert(&mut self, digest: u64, payload: Vec<u8>) {
        if payload.len() > self.budget_bytes {
            return;
        }
        if let Some(old) = self.map.remove(&digest) {
            self.recency.remove(&old.seq);
            self.bytes -= old.payload.len();
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.bytes += payload.len();
        self.map.insert(
            digest,
            Entry {
                seq,
                payload: Arc::new(payload),
            },
        );
        self.recency.insert(seq, digest);
        while self.bytes > self.budget_bytes {
            let (&oldest_seq, &oldest_key) = self
                .recency
                .iter()
                .next()
                .expect("over budget implies entries");
            self.recency.remove(&oldest_seq);
            let evicted = self.map.remove(&oldest_key).expect("recency tracks map");
            self.bytes -= evicted.payload.len();
            self.evictions += 1;
        }
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            entries: self.map.len(),
            bytes: self.bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(n: usize) -> Vec<u8> {
        vec![0xAB; n]
    }

    #[test]
    fn hit_after_insert() {
        let mut c = ResultCache::new(1024);
        assert!(c.get(1).is_none());
        c.insert(1, b"result".to_vec());
        assert_eq!(c.get(1).unwrap().as_slice(), b"result");
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries, s.bytes), (1, 1, 1, 6));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn evicts_least_recently_used_first() {
        let mut c = ResultCache::new(100);
        c.insert(1, payload(40));
        c.insert(2, payload(40));
        // Touch 1 so 2 becomes the LRU entry.
        assert!(c.get(1).is_some());
        c.insert(3, payload(40)); // 120 bytes > 100: evict key 2.
        assert!(c.get(2).is_none());
        assert!(c.get(1).is_some());
        assert!(c.get(3).is_some());
        assert_eq!(c.stats().evictions, 1);
        assert!(c.stats().bytes <= 100);
    }

    #[test]
    fn replacing_a_key_updates_bytes() {
        let mut c = ResultCache::new(100);
        c.insert(1, payload(60));
        c.insert(1, payload(10));
        let s = c.stats();
        assert_eq!((s.entries, s.bytes, s.evictions), (1, 10, 0));
    }

    #[test]
    fn oversized_payload_not_cached() {
        let mut c = ResultCache::new(8);
        c.insert(1, payload(9));
        assert_eq!(c.stats().entries, 0);
        assert!(c.get(1).is_none());
    }

    #[test]
    fn many_inserts_stay_within_budget() {
        let mut c = ResultCache::new(1000);
        for k in 0..100u64 {
            c.insert(k, payload(64));
            assert!(c.stats().bytes <= 1000);
        }
        // 1000 / 64 = 15 entries fit.
        assert_eq!(c.stats().entries, 15);
        assert_eq!(c.stats().evictions, 85);
        // The newest keys survive.
        assert!(c.get(99).is_some());
        assert!(c.get(0).is_none());
    }
}
