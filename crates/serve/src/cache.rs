//! Content-addressed result cache with an LRU byte-size budget.
//!
//! The daemon keys each finished compilation by a stable digest of its
//! inputs (circuit content + device + mapper config, see
//! [`crate::compile::job_digest`]) and stores the *canonical response
//! payload bytes*. A repeated submission is served straight from memory
//! with byte-identical output — compilation is deterministic, so a cache
//! hit is observationally indistinguishable from a recompile, just
//! thousands of times faster.
//!
//! Eviction is least-recently-used under a byte budget: recency is a
//! monotonic sequence number per entry, and a `BTreeMap` from sequence
//! number to key makes "oldest entry" an `O(log n)` lookup without
//! unsafe linked-list plumbing.
//!
//! Every entry also stores the job's *full key* (the canonical job
//! description the digest was computed from, see
//! [`crate::compile::Job::full_key`]). A lookup must present that key and
//! it is compared byte-for-byte before the payload is served: a 64-bit
//! digest collision between two distinct jobs therefore degrades to a
//! counted miss (`hash_conflicts`) and a recompile, never a silently
//! wrong result.
//!
//! # Semantic (canonical) lookups
//!
//! Entries may additionally carry their job's *canonical* identity
//! ([`CanonicalInfo`]): the canonical-form digest and full key from
//! [`crate::compile::Job::canonicalize`], the qubit relabeling that
//! produced the canonical form, and the mapping's initial/final
//! layouts. A side index from canonical digest to exact digest lets
//! [`ResultCache::get_canonical`] serve a *structurally equivalent*
//! job — same circuit up to qubit renaming and commuting-gate order —
//! from an entry inserted under a different exact key. The same
//! collision discipline applies: the canonical full key is byte-compared
//! (`canonical_conflicts`), and the server replays + re-verifies the
//! mapping through the relabeling before anything reaches a client.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// The canonical identity riding along with a cache entry, everything a
/// canonical hit needs to replay the cached mapping for a twin job.
#[derive(Debug, Clone, PartialEq)]
pub struct CanonicalInfo {
    /// Canonical job digest (the semantic index key).
    pub digest: u64,
    /// Canonical full key, byte-compared on every canonical lookup.
    pub key: Arc<Vec<u8>>,
    /// The inserting job's relabeling: `relabel[original] = canonical`.
    pub relabel: Arc<Vec<usize>>,
    /// The cached mapping's virtual→physical assignment before the
    /// first gate (indexed by the inserting job's virtual qubits).
    pub initial_layout: Arc<Vec<usize>>,
    /// The assignment after the last gate.
    pub final_layout: Arc<Vec<usize>>,
}

/// One live cache entry — the exchange format between the in-memory
/// cache and the persistence layer (snapshot compaction, warm-restart
/// replay).
#[derive(Debug, Clone)]
pub struct EntryRef {
    /// Exact job digest.
    pub digest: u64,
    /// Exact full key.
    pub key: Arc<Vec<u8>>,
    /// Canonical response payload bytes.
    pub payload: Arc<Vec<u8>>,
    /// The entry's canonical identity, when known.
    pub canonical: Option<CanonicalInfo>,
}

/// A successful canonical lookup: the twin entry's payload plus the
/// geometry needed to re-aim it at the requesting job.
#[derive(Debug, Clone)]
pub struct CanonicalHit {
    /// Exact digest of the entry that served.
    pub exact_digest: u64,
    /// The cached payload bytes (still keyed to the *inserting* job).
    pub payload: Arc<Vec<u8>>,
    /// The inserting job's relabeling (original → canonical).
    pub relabel: Arc<Vec<usize>>,
    /// The cached mapping's initial layout (inserting job's virtuals).
    pub initial_layout: Arc<Vec<usize>>,
    /// The cached mapping's final layout.
    pub final_layout: Arc<Vec<usize>>,
}

/// Counters describing cache effectiveness, reported by `stats`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CacheStats {
    /// Lookups served from memory by exact key.
    pub hits: u64,
    /// Lookups that required a compile.
    pub misses: u64,
    /// Entries evicted to stay within budget.
    pub evictions: u64,
    /// Digest hits whose stored full key did not match the request —
    /// served as misses instead of wrong results.
    pub hash_conflicts: u64,
    /// Canonical-index lookups served (exact key differed, canonical
    /// form matched byte-for-byte).
    pub canonical_hits: u64,
    /// Canonical-digest hits whose stored canonical key did not match —
    /// refused, exactly like `hash_conflicts`.
    pub canonical_conflicts: u64,
    /// Live entries carrying a canonical identity.
    pub canonical_entries: usize,
    /// Live entries.
    pub entries: usize,
    /// Bytes held by live entries.
    pub bytes: usize,
}

impl CacheStats {
    /// Hits over lookups, 0 when no lookups happened. Canonical hits
    /// count as hits: the lookup was served from memory.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.canonical_hits + self.misses;
        if total == 0 {
            0.0
        } else {
            (self.hits + self.canonical_hits) as f64 / total as f64
        }
    }
}

struct Entry {
    seq: u64,
    key: Arc<Vec<u8>>,
    payload: Arc<Vec<u8>>,
    canonical: Option<CanonicalInfo>,
}

/// An LRU map from result digest to canonical response bytes, bounded by
/// total payload size (full keys and canonical metadata ride along but
/// the budget is over payloads — a small fixed overhead per entry).
pub struct ResultCache {
    budget_bytes: usize,
    map: HashMap<u64, Entry>,
    /// Canonical digest → exact digest of the entry serving that form.
    canon_index: HashMap<u64, u64>,
    recency: BTreeMap<u64, u64>,
    next_seq: u64,
    bytes: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
    hash_conflicts: u64,
    canonical_hits: u64,
    canonical_conflicts: u64,
}

impl ResultCache {
    /// An empty cache allowed to hold up to `budget_bytes` of payload.
    pub fn new(budget_bytes: usize) -> Self {
        ResultCache {
            budget_bytes,
            map: HashMap::new(),
            canon_index: HashMap::new(),
            recency: BTreeMap::new(),
            next_seq: 0,
            bytes: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            hash_conflicts: 0,
            canonical_hits: 0,
            canonical_conflicts: 0,
        }
    }

    /// Looks up a digest, bumping its recency; counts a hit or miss.
    ///
    /// The caller's full `key` is compared against the stored one: a
    /// digest collision (different key, same digest) is counted in
    /// `hash_conflicts` and served as a miss.
    pub fn get(&mut self, digest: u64, key: &[u8]) -> Option<Arc<Vec<u8>>> {
        let next_seq = &mut self.next_seq;
        match self.map.get_mut(&digest) {
            Some(entry) if entry.key.as_slice() == key => {
                self.hits += 1;
                self.recency.remove(&entry.seq);
                entry.seq = *next_seq;
                self.recency.insert(entry.seq, digest);
                *next_seq += 1;
                Some(Arc::clone(&entry.payload))
            }
            Some(_) => {
                self.hash_conflicts += 1;
                self.misses += 1;
                None
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Looks up a *canonical* digest after an exact miss. Does not
    /// touch the hit/miss counters (the exact lookup already counted
    /// the miss); a success counts `canonical_hits`, a canonical-key
    /// mismatch counts `canonical_conflicts`.
    pub fn get_canonical(&mut self, canon_digest: u64, canon_key: &[u8]) -> Option<CanonicalHit> {
        let &exact_digest = self.canon_index.get(&canon_digest)?;
        let Some(entry) = self.map.get_mut(&exact_digest) else {
            // Stale index entry (should be unreachable: eviction prunes
            // the index) — self-heal rather than serve nothing forever.
            self.canon_index.remove(&canon_digest);
            return None;
        };
        let Some(info) = entry.canonical.as_ref() else {
            self.canon_index.remove(&canon_digest);
            return None;
        };
        if info.key.as_slice() != canon_key {
            self.canonical_conflicts += 1;
            return None;
        }
        self.canonical_hits += 1;
        self.recency.remove(&entry.seq);
        entry.seq = self.next_seq;
        self.recency.insert(entry.seq, exact_digest);
        self.next_seq += 1;
        Some(CanonicalHit {
            exact_digest,
            payload: Arc::clone(&entry.payload),
            relabel: Arc::clone(&info.relabel),
            initial_layout: Arc::clone(&info.initial_layout),
            final_layout: Arc::clone(&info.final_layout),
        })
    }

    /// Stores a payload under a digest + full key, evicting
    /// least-recently-used entries until the budget holds. Payloads
    /// larger than the whole budget are not cached at all.
    pub fn insert(&mut self, digest: u64, key: Vec<u8>, payload: Vec<u8>) {
        self.insert_with_canonical(digest, key, payload, None);
    }

    /// [`insert`](Self::insert) plus the entry's canonical identity;
    /// the canonical index points at whichever entry registered the
    /// form most recently.
    pub fn insert_with_canonical(
        &mut self,
        digest: u64,
        key: Vec<u8>,
        payload: Vec<u8>,
        canonical: Option<CanonicalInfo>,
    ) {
        if payload.len() > self.budget_bytes {
            return;
        }
        if let Some(old) = self.map.remove(&digest) {
            self.recency.remove(&old.seq);
            self.bytes -= old.payload.len();
            self.unlink_canonical(digest, &old);
            if old.key.as_slice() != key {
                // Colliding jobs fight over one slot; last writer wins,
                // and the guard in `get` keeps both of them correct.
                self.hash_conflicts += 1;
            }
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.bytes += payload.len();
        if let Some(info) = &canonical {
            self.canon_index.insert(info.digest, digest);
        }
        self.map.insert(
            digest,
            Entry {
                seq,
                key: Arc::new(key),
                payload: Arc::new(payload),
                canonical,
            },
        );
        self.recency.insert(seq, digest);
        while self.bytes > self.budget_bytes {
            let (&oldest_seq, &oldest_key) = self
                .recency
                .iter()
                .next()
                .expect("over budget implies entries");
            self.recency.remove(&oldest_seq);
            let evicted = self.map.remove(&oldest_key).expect("recency tracks map");
            self.bytes -= evicted.payload.len();
            self.unlink_canonical(oldest_key, &evicted);
            self.evictions += 1;
        }
    }

    /// Removes the canonical-index link iff it still points at this
    /// entry (a later twin may have re-aimed the form elsewhere).
    fn unlink_canonical(&mut self, exact_digest: u64, entry: &Entry) {
        if let Some(info) = &entry.canonical {
            if self.canon_index.get(&info.digest) == Some(&exact_digest) {
                self.canon_index.remove(&info.digest);
            }
        }
    }

    /// Every live entry, least recently used first — replaying the list
    /// through [`insert_with_canonical`](Self::insert_with_canonical)
    /// reproduces contents, LRU order and the canonical index, which is
    /// exactly what snapshot compaction and warm restart need.
    pub fn entries_by_recency(&self) -> Vec<EntryRef> {
        self.recency
            .values()
            .map(|digest| {
                let entry = &self.map[digest];
                EntryRef {
                    digest: *digest,
                    key: Arc::clone(&entry.key),
                    payload: Arc::clone(&entry.payload),
                    canonical: entry.canonical.clone(),
                }
            })
            .collect()
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            hash_conflicts: self.hash_conflicts,
            canonical_hits: self.canonical_hits,
            canonical_conflicts: self.canonical_conflicts,
            canonical_entries: self.canon_index.len(),
            entries: self.map.len(),
            bytes: self.bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(n: usize) -> Vec<u8> {
        vec![0xAB; n]
    }

    /// The full key used by tests that don't care about collisions: just
    /// the digest rendered as text.
    fn key(digest: u64) -> Vec<u8> {
        format!("key:{digest}").into_bytes()
    }

    fn canon(digest: u64, width: usize) -> CanonicalInfo {
        CanonicalInfo {
            digest,
            key: Arc::new(format!("canon:{digest}").into_bytes()),
            relabel: Arc::new((0..width).collect()),
            initial_layout: Arc::new((0..width).collect()),
            final_layout: Arc::new((0..width).collect()),
        }
    }

    #[test]
    fn hit_after_insert() {
        let mut c = ResultCache::new(1024);
        assert!(c.get(1, &key(1)).is_none());
        c.insert(1, key(1), b"result".to_vec());
        assert_eq!(c.get(1, &key(1)).unwrap().as_slice(), b"result");
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries, s.bytes), (1, 1, 1, 6));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn evicts_least_recently_used_first() {
        let mut c = ResultCache::new(100);
        c.insert(1, key(1), payload(40));
        c.insert(2, key(2), payload(40));
        // Touch 1 so 2 becomes the LRU entry.
        assert!(c.get(1, &key(1)).is_some());
        c.insert(3, key(3), payload(40)); // 120 bytes > 100: evict key 2.
        assert!(c.get(2, &key(2)).is_none());
        assert!(c.get(1, &key(1)).is_some());
        assert!(c.get(3, &key(3)).is_some());
        assert_eq!(c.stats().evictions, 1);
        assert!(c.stats().bytes <= 100);
    }

    #[test]
    fn replacing_a_key_updates_bytes() {
        let mut c = ResultCache::new(100);
        c.insert(1, key(1), payload(60));
        c.insert(1, key(1), payload(10));
        let s = c.stats();
        assert_eq!(
            (s.entries, s.bytes, s.evictions, s.hash_conflicts),
            (1, 10, 0, 0)
        );
    }

    #[test]
    fn oversized_payload_not_cached() {
        let mut c = ResultCache::new(8);
        c.insert(1, key(1), payload(9));
        assert_eq!(c.stats().entries, 0);
        assert!(c.get(1, &key(1)).is_none());
    }

    #[test]
    fn many_inserts_stay_within_budget() {
        let mut c = ResultCache::new(1000);
        for k in 0..100u64 {
            c.insert(k, key(k), payload(64));
            assert!(c.stats().bytes <= 1000);
        }
        // 1000 / 64 = 15 entries fit.
        assert_eq!(c.stats().entries, 15);
        assert_eq!(c.stats().evictions, 85);
        // The newest keys survive.
        assert!(c.get(99, &key(99)).is_some());
        assert!(c.get(0, &key(0)).is_none());
    }

    #[test]
    fn digest_collision_is_a_counted_miss_never_a_wrong_result() {
        let mut c = ResultCache::new(1024);
        c.insert(7, b"job A".to_vec(), b"result A".to_vec());
        // Same digest, different job: the guard refuses to serve A's
        // bytes for B.
        assert!(c.get(7, b"job B").is_none());
        let s = c.stats();
        assert_eq!((s.hash_conflicts, s.misses, s.hits), (1, 1, 0));
        // A is still served correctly.
        assert_eq!(c.get(7, b"job A").unwrap().as_slice(), b"result A");
        // A colliding insert takes over the slot, counted too.
        c.insert(7, b"job B".to_vec(), b"result B".to_vec());
        assert_eq!(c.stats().hash_conflicts, 2);
        assert_eq!(c.get(7, b"job B").unwrap().as_slice(), b"result B");
        assert!(c.get(7, b"job A").is_none());
    }

    #[test]
    fn canonical_hit_serves_a_twin_without_an_exact_key() {
        let mut c = ResultCache::new(1024);
        c.insert_with_canonical(1, key(1), b"mapped".to_vec(), Some(canon(100, 3)));
        // A twin job with a different exact key but the same canonical
        // identity is served through the index.
        let hit = c.get_canonical(100, b"canon:100").expect("canonical hit");
        assert_eq!(hit.exact_digest, 1);
        assert_eq!(hit.payload.as_slice(), b"mapped");
        assert_eq!(hit.relabel.as_slice(), &[0, 1, 2]);
        let s = c.stats();
        assert_eq!((s.canonical_hits, s.canonical_conflicts), (1, 0));
        assert_eq!(s.canonical_entries, 1);
    }

    #[test]
    fn canonical_key_mismatch_is_refused_and_counted() {
        let mut c = ResultCache::new(1024);
        c.insert_with_canonical(1, key(1), b"mapped".to_vec(), Some(canon(100, 2)));
        assert!(c.get_canonical(100, b"some other job").is_none());
        assert_eq!(c.stats().canonical_conflicts, 1);
        assert_eq!(c.stats().canonical_hits, 0);
    }

    #[test]
    fn eviction_prunes_the_canonical_index() {
        let mut c = ResultCache::new(100);
        c.insert_with_canonical(1, key(1), payload(60), Some(canon(100, 2)));
        c.insert_with_canonical(2, key(2), payload(60), Some(canon(200, 2)));
        // Entry 1 was evicted; its canonical form must not resolve.
        assert!(c.get_canonical(100, b"canon:100").is_none());
        assert!(c.get_canonical(200, b"canon:200").is_some());
        assert_eq!(c.stats().canonical_entries, 1);
    }

    #[test]
    fn canonical_hit_bumps_recency() {
        let mut c = ResultCache::new(100);
        c.insert_with_canonical(1, key(1), payload(40), Some(canon(100, 2)));
        c.insert(2, key(2), payload(40));
        // Canonical touch of entry 1 makes 2 the LRU victim.
        assert!(c.get_canonical(100, b"canon:100").is_some());
        c.insert(3, key(3), payload(40));
        assert!(c.get(2, &key(2)).is_none());
        assert!(c.get(1, &key(1)).is_some());
    }

    #[test]
    fn a_later_twin_takes_over_the_canonical_form() {
        let mut c = ResultCache::new(1024);
        c.insert_with_canonical(1, key(1), b"from A".to_vec(), Some(canon(100, 2)));
        c.insert_with_canonical(2, key(2), b"from B".to_vec(), Some(canon(100, 2)));
        let hit = c.get_canonical(100, b"canon:100").unwrap();
        assert_eq!(hit.exact_digest, 2);
        // Evicting the *old* owner must not break the new link.
        c.insert(1, key(1), b"replaced".to_vec());
        assert!(c.get_canonical(100, b"canon:100").is_some());
    }

    #[test]
    fn entries_by_recency_replays_in_lru_order() {
        let mut c = ResultCache::new(1024);
        c.insert(1, key(1), b"one".to_vec());
        c.insert(2, key(2), b"two".to_vec());
        c.insert_with_canonical(3, key(3), b"three".to_vec(), Some(canon(300, 2)));
        assert!(c.get(1, &key(1)).is_some()); // 1 becomes most recent
        let order: Vec<u64> = c.entries_by_recency().iter().map(|e| e.digest).collect();
        assert_eq!(order, vec![2, 3, 1]);
        // Replaying into a fresh cache reproduces contents, order and
        // the canonical index.
        let mut replay = ResultCache::new(1024);
        for e in c.entries_by_recency() {
            replay.insert_with_canonical(
                e.digest,
                e.key.as_ref().clone(),
                e.payload.as_ref().clone(),
                e.canonical.clone(),
            );
        }
        let replayed: Vec<u64> = replay
            .entries_by_recency()
            .iter()
            .map(|e| e.digest)
            .collect();
        assert_eq!(replayed, order);
        assert_eq!(replay.get(3, &key(3)).unwrap().as_slice(), b"three");
        assert!(replay.get_canonical(300, b"canon:300").is_some());
    }
}
