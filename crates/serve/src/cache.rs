//! Content-addressed result cache with an LRU byte-size budget.
//!
//! The daemon keys each finished compilation by a stable digest of its
//! inputs (circuit content + device + mapper config, see
//! [`crate::compile::job_digest`]) and stores the *canonical response
//! payload bytes*. A repeated submission is served straight from memory
//! with byte-identical output — compilation is deterministic, so a cache
//! hit is observationally indistinguishable from a recompile, just
//! thousands of times faster.
//!
//! Eviction is least-recently-used under a byte budget: recency is a
//! monotonic sequence number per entry, and a `BTreeMap` from sequence
//! number to key makes "oldest entry" an `O(log n)` lookup without
//! unsafe linked-list plumbing.
//!
//! Every entry also stores the job's *full key* (the canonical job
//! description the digest was computed from, see
//! [`crate::compile::Job::full_key`]). A lookup must present that key and
//! it is compared byte-for-byte before the payload is served: a 64-bit
//! digest collision between two distinct jobs therefore degrades to a
//! counted miss (`hash_conflicts`) and a recompile, never a silently
//! wrong result.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// One live cache entry as `(digest, full key, canonical payload)` —
/// the exchange format between the in-memory cache and the persistence
/// layer (snapshot compaction, warm-restart replay).
pub type EntryRef = (u64, Arc<Vec<u8>>, Arc<Vec<u8>>);

/// Counters describing cache effectiveness, reported by `stats`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CacheStats {
    /// Lookups served from memory.
    pub hits: u64,
    /// Lookups that required a compile.
    pub misses: u64,
    /// Entries evicted to stay within budget.
    pub evictions: u64,
    /// Digest hits whose stored full key did not match the request —
    /// served as misses instead of wrong results.
    pub hash_conflicts: u64,
    /// Live entries.
    pub entries: usize,
    /// Bytes held by live entries.
    pub bytes: usize,
}

impl CacheStats {
    /// Hits over lookups, 0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    seq: u64,
    key: Arc<Vec<u8>>,
    payload: Arc<Vec<u8>>,
}

/// An LRU map from result digest to canonical response bytes, bounded by
/// total payload size (full keys ride along but the budget is over
/// payloads — keys are a small fixed overhead per entry).
pub struct ResultCache {
    budget_bytes: usize,
    map: HashMap<u64, Entry>,
    recency: BTreeMap<u64, u64>,
    next_seq: u64,
    bytes: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
    hash_conflicts: u64,
}

impl ResultCache {
    /// An empty cache allowed to hold up to `budget_bytes` of payload.
    pub fn new(budget_bytes: usize) -> Self {
        ResultCache {
            budget_bytes,
            map: HashMap::new(),
            recency: BTreeMap::new(),
            next_seq: 0,
            bytes: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            hash_conflicts: 0,
        }
    }

    /// Looks up a digest, bumping its recency; counts a hit or miss.
    ///
    /// The caller's full `key` is compared against the stored one: a
    /// digest collision (different key, same digest) is counted in
    /// `hash_conflicts` and served as a miss.
    pub fn get(&mut self, digest: u64, key: &[u8]) -> Option<Arc<Vec<u8>>> {
        let next_seq = &mut self.next_seq;
        match self.map.get_mut(&digest) {
            Some(entry) if entry.key.as_slice() == key => {
                self.hits += 1;
                self.recency.remove(&entry.seq);
                entry.seq = *next_seq;
                self.recency.insert(entry.seq, digest);
                *next_seq += 1;
                Some(Arc::clone(&entry.payload))
            }
            Some(_) => {
                self.hash_conflicts += 1;
                self.misses += 1;
                None
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Stores a payload under a digest + full key, evicting
    /// least-recently-used entries until the budget holds. Payloads
    /// larger than the whole budget are not cached at all.
    pub fn insert(&mut self, digest: u64, key: Vec<u8>, payload: Vec<u8>) {
        if payload.len() > self.budget_bytes {
            return;
        }
        if let Some(old) = self.map.remove(&digest) {
            self.recency.remove(&old.seq);
            self.bytes -= old.payload.len();
            if old.key.as_slice() != key {
                // Colliding jobs fight over one slot; last writer wins,
                // and the guard in `get` keeps both of them correct.
                self.hash_conflicts += 1;
            }
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.bytes += payload.len();
        self.map.insert(
            digest,
            Entry {
                seq,
                key: Arc::new(key),
                payload: Arc::new(payload),
            },
        );
        self.recency.insert(seq, digest);
        while self.bytes > self.budget_bytes {
            let (&oldest_seq, &oldest_key) = self
                .recency
                .iter()
                .next()
                .expect("over budget implies entries");
            self.recency.remove(&oldest_seq);
            let evicted = self.map.remove(&oldest_key).expect("recency tracks map");
            self.bytes -= evicted.payload.len();
            self.evictions += 1;
        }
    }

    /// Every live entry as `(digest, key, payload)`, least recently used
    /// first — replaying the list through [`insert`](Self::insert)
    /// reproduces both contents and LRU order, which is exactly what
    /// snapshot compaction and warm restart need.
    pub fn entries_by_recency(&self) -> Vec<EntryRef> {
        self.recency
            .values()
            .map(|digest| {
                let entry = &self.map[digest];
                (*digest, Arc::clone(&entry.key), Arc::clone(&entry.payload))
            })
            .collect()
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            hash_conflicts: self.hash_conflicts,
            entries: self.map.len(),
            bytes: self.bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(n: usize) -> Vec<u8> {
        vec![0xAB; n]
    }

    /// The full key used by tests that don't care about collisions: just
    /// the digest rendered as text.
    fn key(digest: u64) -> Vec<u8> {
        format!("key:{digest}").into_bytes()
    }

    #[test]
    fn hit_after_insert() {
        let mut c = ResultCache::new(1024);
        assert!(c.get(1, &key(1)).is_none());
        c.insert(1, key(1), b"result".to_vec());
        assert_eq!(c.get(1, &key(1)).unwrap().as_slice(), b"result");
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries, s.bytes), (1, 1, 1, 6));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn evicts_least_recently_used_first() {
        let mut c = ResultCache::new(100);
        c.insert(1, key(1), payload(40));
        c.insert(2, key(2), payload(40));
        // Touch 1 so 2 becomes the LRU entry.
        assert!(c.get(1, &key(1)).is_some());
        c.insert(3, key(3), payload(40)); // 120 bytes > 100: evict key 2.
        assert!(c.get(2, &key(2)).is_none());
        assert!(c.get(1, &key(1)).is_some());
        assert!(c.get(3, &key(3)).is_some());
        assert_eq!(c.stats().evictions, 1);
        assert!(c.stats().bytes <= 100);
    }

    #[test]
    fn replacing_a_key_updates_bytes() {
        let mut c = ResultCache::new(100);
        c.insert(1, key(1), payload(60));
        c.insert(1, key(1), payload(10));
        let s = c.stats();
        assert_eq!(
            (s.entries, s.bytes, s.evictions, s.hash_conflicts),
            (1, 10, 0, 0)
        );
    }

    #[test]
    fn oversized_payload_not_cached() {
        let mut c = ResultCache::new(8);
        c.insert(1, key(1), payload(9));
        assert_eq!(c.stats().entries, 0);
        assert!(c.get(1, &key(1)).is_none());
    }

    #[test]
    fn many_inserts_stay_within_budget() {
        let mut c = ResultCache::new(1000);
        for k in 0..100u64 {
            c.insert(k, key(k), payload(64));
            assert!(c.stats().bytes <= 1000);
        }
        // 1000 / 64 = 15 entries fit.
        assert_eq!(c.stats().entries, 15);
        assert_eq!(c.stats().evictions, 85);
        // The newest keys survive.
        assert!(c.get(99, &key(99)).is_some());
        assert!(c.get(0, &key(0)).is_none());
    }

    #[test]
    fn digest_collision_is_a_counted_miss_never_a_wrong_result() {
        let mut c = ResultCache::new(1024);
        c.insert(7, b"job A".to_vec(), b"result A".to_vec());
        // Same digest, different job: the guard refuses to serve A's
        // bytes for B.
        assert!(c.get(7, b"job B").is_none());
        let s = c.stats();
        assert_eq!((s.hash_conflicts, s.misses, s.hits), (1, 1, 0));
        // A is still served correctly.
        assert_eq!(c.get(7, b"job A").unwrap().as_slice(), b"result A");
        // A colliding insert takes over the slot, counted too.
        c.insert(7, b"job B".to_vec(), b"result B".to_vec());
        assert_eq!(c.stats().hash_conflicts, 2);
        assert_eq!(c.get(7, b"job B").unwrap().as_slice(), b"result B");
        assert!(c.get(7, b"job A").is_none());
    }

    #[test]
    fn entries_by_recency_replays_in_lru_order() {
        let mut c = ResultCache::new(1024);
        c.insert(1, key(1), b"one".to_vec());
        c.insert(2, key(2), b"two".to_vec());
        c.insert(3, key(3), b"three".to_vec());
        assert!(c.get(1, &key(1)).is_some()); // 1 becomes most recent
        let order: Vec<u64> = c.entries_by_recency().iter().map(|(d, _, _)| *d).collect();
        assert_eq!(order, vec![2, 3, 1]);
        // Replaying into a fresh cache reproduces contents and order.
        let mut replay = ResultCache::new(1024);
        for (digest, k, p) in c.entries_by_recency() {
            replay.insert(digest, k.as_ref().clone(), p.as_ref().clone());
        }
        let replayed: Vec<u64> = replay
            .entries_by_recency()
            .iter()
            .map(|(d, _, _)| *d)
            .collect();
        assert_eq!(replayed, order);
        assert_eq!(replay.get(3, &key(3)).unwrap().as_slice(), b"three");
    }
}
