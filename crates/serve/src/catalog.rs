//! Name-to-object resolution for protocol requests.
//!
//! Clients name devices and workloads as compact text specs
//! (`surface17`, `grid:4x5`, `ghz:8`, `random:10:200:0.4:42`); this
//! module turns those specs into [`Device`]s and [`Circuit`]s. Every
//! spec is deterministic: the same string always resolves to the same
//! object, which is what makes specs valid cache-key material.

use std::sync::Arc;

use qcs_circuit::circuit::Circuit;
use qcs_core::backend::{Backend, CoupledBackend};
use qcs_dpqa::{DpqaBackend, DpqaGrid};
use qcs_topology::device::Device;
use qcs_topology::lattice::{full_device, grid_device, heavy_hex_device, line_device, ring_device};
use qcs_topology::surface::{surface17, surface7, surface_extended};
use qcs_topology::DeviceHealth;

/// Every accepted device-spec family: `(grammar, description)`.
///
/// This table is the single source of truth for what the catalog
/// accepts — the unknown-spec error lists it, and `qcs-client
/// --list-devices` prints it — so a new family lands in the error
/// message and the client help the moment it lands in the resolver.
pub const DEVICE_FAMILIES: &[(&str, &str)] = &[
    ("surface7", "7-qubit surface-code lattice (paper Fig. 2)"),
    ("surface17", "17-qubit distance-3 surface-code lattice"),
    ("surface97", "97-qubit distance-7 extended surface lattice"),
    ("line:N", "N qubits on an open chain"),
    ("ring:N", "N qubits on a closed ring"),
    ("full:N", "N all-to-all coupled qubits"),
    ("grid:RxC", "rows x cols square lattice"),
    ("heavy-hex:RxC", "rows x cols heavy-hex lattice"),
    (
        "dpqa:RxC",
        "rows x cols neutral-atom site array; movement-based compilation",
    ),
    (
        "degraded:QFRAC:CFRAC:SEED:BASE",
        "seeded random qubit/coupler outage over any base spec",
    ),
];

/// The comma-joined family grammars, for unknown-spec errors.
fn family_grammar_list() -> String {
    let grammars: Vec<&str> = DEVICE_FAMILIES.iter().map(|(g, _)| *g).collect();
    grammars.join(", ")
}

/// Error raised for an unknown or malformed spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(pub String);

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for SpecError {}

fn parse_num<T: std::str::FromStr>(spec: &str, part: &str, what: &str) -> Result<T, SpecError> {
    part.parse()
        .map_err(|_| SpecError(format!("bad {what} '{part}' in spec '{spec}'")))
}

fn split_args(spec: &str) -> (&str, Vec<&str>) {
    let mut parts = spec.split(':');
    let head = parts.next().unwrap_or_default();
    (head, parts.collect())
}

fn parse_dims(spec: &str, arg: &str) -> Result<(usize, usize), SpecError> {
    let (r, c) = arg
        .split_once('x')
        .ok_or_else(|| SpecError(format!("expected ROWSxCOLS in spec '{spec}'")))?;
    Ok((
        parse_num(spec, r, "row count")?,
        parse_num(spec, c, "column count")?,
    ))
}

/// Parses the tail of a `degraded:` spec into fractions, seed and the
/// base spec. `BASE` may itself contain `:`, so exactly three leading
/// arguments are split off.
fn parse_degraded<'a>(spec: &str, rest: &'a str) -> Result<(f64, f64, u64, &'a str), SpecError> {
    let parts: Vec<&str> = rest.splitn(4, ':').collect();
    let [qubit_frac, coupler_frac, seed, base] = parts.as_slice() else {
        return Err(SpecError(format!(
            "degraded spec needs QFRAC:CFRAC:SEED:BASE, got '{spec}'"
        )));
    };
    let qubit_frac: f64 = parse_num(spec, qubit_frac, "disabled-qubit fraction")?;
    let coupler_frac: f64 = parse_num(spec, coupler_frac, "disabled-coupler fraction")?;
    let seed: u64 = parse_num(spec, seed, "seed")?;
    if !(0.0..=1.0).contains(&qubit_frac) || !(0.0..=1.0).contains(&coupler_frac) {
        return Err(SpecError(format!(
            "degraded fractions must be in [0, 1] in spec '{spec}'"
        )));
    }
    Ok((qubit_frac, coupler_frac, seed, base))
}

/// Parses `dpqa:RxC` dimensions, rejecting zero-sized arrays with a
/// client-presentable message.
fn parse_dpqa_dims(spec: &str, dims: &str) -> Result<(usize, usize), SpecError> {
    let (rows, cols) = parse_dims(spec, dims)?;
    if rows == 0 || cols == 0 {
        return Err(SpecError(format!(
            "dpqa dimensions must be positive in spec '{spec}'"
        )));
    }
    Ok((rows, cols))
}

/// Resolves a device spec.
///
/// Accepted families are listed in [`DEVICE_FAMILIES`]; `BASE` in a
/// `degraded:QFRAC:CFRAC:SEED:BASE` wrapper is any device spec
/// (including another `degraded:` one) and the fractions pick a seeded
/// random outage of its qubits and couplers. Degradation is
/// deterministic — same spec, same device, same `@digest` name — so
/// degraded specs remain valid cache-key material. A `dpqa:RxC` spec
/// resolves to the array's interaction-radius *device view*; use
/// [`resolve_backend`] to get the movement-based compilation pipeline.
///
/// # Errors
///
/// [`SpecError`] with a client-presentable message.
pub fn resolve_device(spec: &str) -> Result<Device, SpecError> {
    if let Some(rest) = spec.strip_prefix("degraded:") {
        let (qubit_frac, coupler_frac, seed, base) = parse_degraded(spec, rest)?;
        let device = resolve_device(base)?;
        let health = DeviceHealth::random(device.coupling(), qubit_frac, coupler_frac, seed);
        return device
            .degrade(&health)
            .map_err(|e| SpecError(format!("degraded spec '{spec}' rejected: {e}")));
    }
    let (head, args) = split_args(spec);
    let arity_err = || SpecError(format!("wrong argument count in device spec '{spec}'"));
    match (head, args.as_slice()) {
        ("surface7", []) => Ok(surface7()),
        ("surface17", []) => Ok(surface17()),
        // Distance-7 extended surface lattice: 97 qubits, the Fig. 3
        // stand-in for the paper's 100-qubit device.
        ("surface97", []) => Ok(surface_extended(7)),
        ("line", [n]) => Ok(line_device(parse_num(spec, n, "qubit count")?)),
        ("ring", [n]) => Ok(ring_device(parse_num(spec, n, "qubit count")?)),
        ("full", [n]) => Ok(full_device(parse_num(spec, n, "qubit count")?)),
        ("grid", [dims]) => {
            let (r, c) = parse_dims(spec, dims)?;
            Ok(grid_device(r, c))
        }
        ("heavy-hex", [dims]) => {
            let (r, c) = parse_dims(spec, dims)?;
            Ok(heavy_hex_device(r, c))
        }
        ("dpqa", [dims]) => {
            let (rows, cols) = parse_dpqa_dims(spec, dims)?;
            DpqaGrid::new(rows, cols)
                .device()
                .map_err(|e| SpecError(format!("dpqa spec '{spec}' rejected: {e}")))
        }
        (
            "surface7" | "surface17" | "surface97" | "line" | "ring" | "full" | "grid"
            | "heavy-hex" | "dpqa",
            _,
        ) => Err(arity_err()),
        _ => Err(SpecError(format!(
            "unknown device '{spec}' (accepted families: {})",
            family_grammar_list()
        ))),
    }
}

/// Resolves a device spec into a compilation [`Backend`].
///
/// This is the serving tier's entry point: `dpqa:RxC` yields the
/// movement-based [`DpqaBackend`], every fixed-coupler spec is wrapped
/// in a [`CoupledBackend`] over [`resolve_device`]'s result, and the
/// `degraded:` wrapper recurses through [`Backend::degrade`] so an
/// outage over a movement array stays a movement array. Resolution is
/// deterministic — the same spec always yields a backend with the same
/// [`Backend::id`] and the same inner device — which is what keeps
/// specs valid cache-key material.
///
/// # Errors
///
/// [`SpecError`] with a client-presentable message.
pub fn resolve_backend(spec: &str) -> Result<Arc<dyn Backend>, SpecError> {
    if let Some(rest) = spec.strip_prefix("degraded:") {
        let (qubit_frac, coupler_frac, seed, base) = parse_degraded(spec, rest)?;
        let backend = resolve_backend(base)?;
        let health =
            DeviceHealth::random(backend.device().coupling(), qubit_frac, coupler_frac, seed);
        return backend
            .degrade(&health)
            .map_err(|e| SpecError(format!("degraded spec '{spec}' rejected: {e}")));
    }
    let (head, args) = split_args(spec);
    if head == "dpqa" {
        let [dims] = args.as_slice() else {
            return Err(SpecError(format!(
                "wrong argument count in device spec '{spec}'"
            )));
        };
        let (rows, cols) = parse_dpqa_dims(spec, dims)?;
        let backend = DpqaBackend::new(rows, cols)
            .map_err(|e| SpecError(format!("dpqa spec '{spec}' rejected: {e}")))?;
        return Ok(Arc::new(backend));
    }
    resolve_device(spec).map(|device| Arc::new(CoupledBackend::new(device)) as Arc<dyn Backend>)
}

/// Resolves a workload spec into a circuit.
///
/// Accepted: `ghz:N`, `qft:N`, `wstate:N`, `grover:N` (marked element
/// 0), `qaoa:N` (seeded ring MaxCut) and `random:QUBITS:GATES:FRAC:SEED`.
///
/// # Errors
///
/// [`SpecError`] on unknown names, malformed arguments, or generator
/// failures (e.g. zero qubits).
pub fn resolve_workload(spec: &str) -> Result<Circuit, SpecError> {
    let (head, args) = split_args(spec);
    let gen_err =
        |e: &dyn std::fmt::Display| SpecError(format!("workload '{spec}' failed to generate: {e}"));
    match (head, args.as_slice()) {
        ("ghz", [n]) => qcs_workloads::ghz::ghz_chain(parse_num(spec, n, "qubit count")?)
            .map_err(|e| gen_err(&e)),
        ("qft", [n]) => {
            qcs_workloads::qft::qft(parse_num(spec, n, "qubit count")?).map_err(|e| gen_err(&e))
        }
        ("wstate", [n]) => qcs_workloads::wstate::w_state(parse_num(spec, n, "qubit count")?)
            .map_err(|e| gen_err(&e)),
        ("grover", [n]) => {
            let n: usize = parse_num(spec, n, "qubit count")?;
            if n == 0 || n > 60 {
                return Err(SpecError(format!(
                    "grover width must be in 1..=60, got {n} in '{spec}'"
                )));
            }
            qcs_workloads::grover::grover(n, 0).map_err(|e| gen_err(&e))
        }
        ("random", [q, g, frac, seed]) => {
            let spec_q: usize = parse_num(spec, q, "qubit count")?;
            let frac: f64 = parse_num(spec, frac, "two-qubit fraction")?;
            if spec_q == 0 || !(0.0..=1.0).contains(&frac) {
                return Err(SpecError(format!(
                    "random spec needs qubits ≥ 1 and fraction in [0, 1]: '{spec}'"
                )));
            }
            let random = qcs_workloads::random::RandomSpec {
                qubits: spec_q,
                gates: parse_num(spec, g, "gate count")?,
                two_qubit_fraction: if spec_q < 2 { 0.0 } else { frac },
                seed: parse_num(spec, seed, "seed")?,
            };
            qcs_workloads::random::random_circuit(&random).map_err(|e| gen_err(&e))
        }
        _ => Err(SpecError(format!(
            "unknown workload '{spec}' (try ghz:N, qft:N, wstate:N, grover:N, \
             random:QUBITS:GATES:FRAC:SEED)"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_specs_resolve() {
        assert_eq!(resolve_device("surface7").unwrap().qubit_count(), 7);
        assert_eq!(resolve_device("surface17").unwrap().qubit_count(), 17);
        assert_eq!(resolve_device("surface97").unwrap().qubit_count(), 97);
        assert_eq!(resolve_device("line:5").unwrap().qubit_count(), 5);
        assert_eq!(resolve_device("ring:6").unwrap().qubit_count(), 6);
        assert_eq!(resolve_device("full:4").unwrap().qubit_count(), 4);
        assert_eq!(resolve_device("grid:3x4").unwrap().qubit_count(), 12);
        assert!(resolve_device("heavy-hex:2x2").unwrap().qubit_count() > 4);
    }

    #[test]
    fn degraded_specs_resolve_deterministically_and_recursively() {
        let a = resolve_device("degraded:0.1:0.1:7:surface17").unwrap();
        let b = resolve_device("degraded:0.1:0.1:7:surface17").unwrap();
        assert_eq!(a.name(), b.name(), "same spec, same degraded device");
        assert!(a.name().starts_with("surface-17@"));
        assert!(a.active_qubit_count() < 17);

        // BASE may itself be parameterized — or degraded again.
        let grid = resolve_device("degraded:0:0.2:3:grid:4x5").unwrap();
        assert_eq!(grid.qubit_count(), 20);
        let twice = resolve_device("degraded:0:0.1:9:degraded:0:0.1:3:ring:12").unwrap();
        assert!(twice.name().starts_with("ring-12@"));
    }

    #[test]
    fn degraded_spec_errors() {
        for bad in [
            "degraded:0.1:0.1:7",           // missing base
            "degraded:2.0:0.1:7:surface17", // fraction out of range
            "degraded:0.1:x:7:surface17",   // malformed fraction
            "degraded:0.1:0.1:7:warp-core", // bad base
            "degraded:1:0:7:surface17",     // overlay disables everything
        ] {
            assert!(resolve_device(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn device_spec_errors_are_descriptive() {
        for bad in ["warp-core", "grid:3", "grid:3y4", "line:x", "surface17:9"] {
            let e = resolve_device(bad).unwrap_err();
            assert!(
                e.0.contains(bad.split(':').next().unwrap()) || e.0.contains(bad),
                "{e}"
            );
        }
    }

    #[test]
    fn unknown_spec_error_lists_every_family() {
        for resolver_err in [
            resolve_device("warp-core").unwrap_err(),
            resolve_backend("warp-core").err().expect("unknown spec"),
        ] {
            for (grammar, _) in DEVICE_FAMILIES {
                assert!(
                    resolver_err.0.contains(grammar),
                    "error should list '{grammar}': {resolver_err}"
                );
            }
        }
    }

    #[test]
    fn dpqa_specs_resolve_as_devices_and_backends() {
        let device = resolve_device("dpqa:3x4").unwrap();
        assert_eq!(device.name(), "dpqa-3x4");
        assert_eq!(device.qubit_count(), 12);

        let backend = resolve_backend("dpqa:3x4").unwrap();
        assert_eq!(backend.id(), "dpqa-3x4");
        assert_eq!(backend.qubit_count(), 12);
        // The backend's verification view is exactly the device spec's
        // resolution: one radius graph, two entry points.
        assert_eq!(*backend.device(), device);
    }

    #[test]
    fn malformed_dpqa_dims_are_client_presentable() {
        for bad in [
            "dpqa:0x3", "dpqa:4x", "dpqa:x4", "dpqa:4x0", "dpqa", "dpqa:3:4",
        ] {
            let via_device = resolve_device(bad).unwrap_err();
            let via_backend = resolve_backend(bad).err().expect("malformed spec");
            for e in [&via_device, &via_backend] {
                assert!(
                    e.0.contains(bad),
                    "'{bad}' error should quote the spec: {e}"
                );
            }
        }
    }

    /// The headline catalog property: any accepted spec resolves twice
    /// to byte-identical backends — same id, same inner device (the
    /// `Device` comparison covers name, coupling, calibration and
    /// health), same job digest for a fixed circuit. This is the fact
    /// that makes a spec string usable as cache-key material.
    #[test]
    fn accepted_specs_resolve_deterministically_as_backends() {
        let circuit = qcs_workloads::ghz::ghz_chain(5).unwrap();
        let config = qcs_core::config::MapperConfig::default();
        for spec in [
            "surface7",
            "surface17",
            "surface97",
            "line:9",
            "ring:8",
            "full:5",
            "grid:4x5",
            "heavy-hex:2x2",
            "dpqa:4x4",
            "degraded:0.1:0.1:7:surface17",
            "degraded:0.1:0.1:7:dpqa:4x4",
            "degraded:0:0.1:9:degraded:0:0.1:3:dpqa:5x5",
        ] {
            let a = resolve_backend(spec).unwrap();
            let b = resolve_backend(spec).unwrap();
            assert_eq!(a.id(), b.id(), "{spec}");
            assert_eq!(a.qubit_count(), b.qubit_count(), "{spec}");
            assert_eq!(*a.device(), *b.device(), "{spec}");
            assert_eq!(
                crate::compile::job_digest(&circuit, a.as_ref(), &config),
                crate::compile::job_digest(&circuit, b.as_ref(), &config),
                "{spec}"
            );
        }
    }

    #[test]
    fn degraded_dpqa_backend_keeps_the_movement_physics() {
        let backend = resolve_backend("degraded:0:0.15:7:dpqa:4x4").unwrap();
        assert!(backend.id().starts_with("dpqa-4x4@"), "{}", backend.id());
        assert_eq!(backend.qubit_count(), 16);
        // The degraded array still compiles through the movement
        // pipeline (or its internal SWAP demotion) and verifies.
        let circuit = qcs_workloads::ghz::ghz_chain(6).unwrap();
        let outcome = backend
            .map(&circuit, &qcs_core::config::MapperConfig::default())
            .unwrap();
        assert!(outcome.report.verified);
    }

    #[test]
    fn workload_specs_resolve_deterministically() {
        for spec in [
            "ghz:6",
            "qft:5",
            "wstate:4",
            "grover:3",
            "random:8:120:0.35:9",
        ] {
            let a = resolve_workload(spec).unwrap();
            let b = resolve_workload(spec).unwrap();
            assert_eq!(a.gates(), b.gates(), "{spec}");
            assert!(a.gate_count() > 0, "{spec}");
        }
    }

    #[test]
    fn workload_spec_errors() {
        for bad in [
            "ghz",
            "ghz:x",
            "teleport:3",
            "random:8:120:1.5:9",
            "random:0:10:0.5:1",
            "grover:0",
        ] {
            assert!(resolve_workload(bad).is_err(), "{bad}");
        }
    }
}
