//! Job execution: from request to canonical, cacheable response bytes.
//!
//! A *job* is (circuit, backend, mapper config). Its digest — the cache
//! key — folds together the circuit's content digest, the backend id
//! and width, and the strategy names, all via the stable FNV-1a hasher
//! from `qcs_circuit::hash`. For fixed-coupler backends the id is the
//! device name, so pre-backend cache keys are unchanged.
//!
//! The *canonical result* is deliberately a pure function of the job:
//! the full `MapReport` with wall-clock timing normalized to zero, plus
//! the routed native circuit as QASM. That purity is what the service's
//! headline guarantee rests on: a cache hit, a recompile on another
//! worker thread, and an in-process `Mapper::map` all produce
//! byte-identical payloads. The *measured* timing is returned alongside
//! (never inside) the canonical bytes, and feeds the per-stage latency
//! histograms.

use std::sync::Arc;

use qcs_circuit::canon::{self, CanonConfig, CanonicalForm};
use qcs_circuit::circuit::Circuit;
use qcs_circuit::hash::{circuit_digest, Fnv64};
use qcs_circuit::qasm;
use qcs_core::backend::Backend;
use qcs_core::config::MapperConfig;
use qcs_core::mapper::StageTiming;
use qcs_core::portfolio::{is_auto, Portfolio, PortfolioReport};
use qcs_json::{Json, ToJson};
use qcs_topology::DeviceHealth;

use crate::catalog;
use crate::protocol::{CompileRequest, Source};

/// Why a job could not produce a result.
#[derive(Debug, Clone, PartialEq)]
pub struct JobError(pub String);

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for JobError {}

/// A fully-resolved compilation job.
#[derive(Clone)]
pub struct Job {
    /// The circuit to map.
    pub circuit: Circuit,
    /// The compilation target (fixed-coupler or movement-based).
    pub backend: Arc<dyn Backend>,
    /// The pipeline description.
    pub config: MapperConfig,
    /// Race every portfolio lane instead of selecting (the request's
    /// `"race": true`). Part of job identity: a forced race and a
    /// selector pick can legitimately serve different (both correct)
    /// results, so they must not share a cache entry.
    pub race: bool,
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job")
            .field("circuit", &self.circuit.name())
            .field("backend", &self.backend.id())
            .field("config", &self.config)
            .finish()
    }
}

impl Job {
    /// Resolves a protocol request into a job (parses QASM / generates
    /// the workload, resolves the backend, keeps the config).
    ///
    /// # Errors
    ///
    /// [`JobError`] with a client-presentable message.
    pub fn resolve(request: &CompileRequest) -> Result<Job, JobError> {
        let circuit = match &request.source {
            Source::Qasm(text) => {
                let mut c =
                    qasm::parse(text).map_err(|e| JobError(format!("qasm rejected: {e}")))?;
                if c.name().is_empty() {
                    c.set_name("qasm");
                }
                Ok(c)
            }
            Source::Workload(spec) => {
                catalog::resolve_workload(spec).map_err(|e| JobError(e.to_string()))
            }
        }?;
        let backend =
            catalog::resolve_backend(&request.device).map_err(|e| JobError(e.to_string()))?;
        Ok(Job {
            circuit,
            backend,
            config: request.config.clone(),
            race: request.race,
        })
    }

    /// True when this job runs through the mapper portfolio (an `auto`
    /// strategy or an explicit race) rather than a fixed pipeline.
    /// Portfolio jobs degrade inside their deadline instead of being
    /// rejected against it.
    pub fn portfolio(&self) -> bool {
        self.race || is_auto(&self.config)
    }

    /// The job's content digest — the cache key.
    pub fn digest(&self) -> u64 {
        let base = job_digest(&self.circuit, self.backend.as_ref(), &self.config);
        if !self.race {
            return base;
        }
        // Forced races are a distinct job identity; fold a marker so
        // pre-portfolio digests (race = false) are unchanged.
        let mut h = Fnv64::new();
        h.write_u64(base);
        h.write_str("race");
        h.finish()
    }

    /// The job's *full* key: the complete canonical description the
    /// digest summarizes (QASM text + backend identity + strategy names).
    /// The cache compares this byte-for-byte on every digest hit, so a
    /// 64-bit collision between distinct jobs can never serve the wrong
    /// result — see `cache::CacheStats::hash_conflicts`.
    pub fn full_key(&self) -> Vec<u8> {
        let mut key = Vec::new();
        key.extend_from_slice(qasm::print(&self.circuit).as_bytes());
        key.push(0);
        key.extend_from_slice(self.backend.id().as_bytes());
        key.push(0);
        key.extend_from_slice(self.backend.qubit_count().to_string().as_bytes());
        key.push(0);
        key.extend_from_slice(self.config.placer.as_bytes());
        key.push(0);
        key.extend_from_slice(self.config.router.as_bytes());
        if self.race {
            key.push(0);
            key.extend_from_slice(b"race");
        }
        key
    }

    /// Reduces the job's circuit to canonical form and derives the
    /// job-level canonical digest and full key. The non-circuit job
    /// dimensions (backend identity, strategy, race) fold in exactly as
    /// they do for the exact digest/key, so two jobs share a canonical
    /// identity iff their circuits are structurally equivalent *and*
    /// they target the same backend + pipeline.
    pub fn canonicalize(&self, config: &CanonConfig) -> CanonicalJob {
        let form = canon::canonicalize(&self.circuit, config);
        let mut h = Fnv64::new();
        h.write_u64(canon::canonical_digest(&form.circuit));
        h.write_str(self.backend.id());
        h.write_usize(self.backend.qubit_count());
        h.write_str(&self.config.placer);
        h.write_str(&self.config.router);
        if self.race {
            h.write_str("race");
        }
        let digest = h.finish();

        // Same layout as `full_key`, in a distinct domain ("canon\0"
        // prefix) and with the *canonical* QASM — which carries no
        // circuit name, so a rename cannot split the key.
        let mut key = Vec::new();
        key.extend_from_slice(b"canon");
        key.push(0);
        key.extend_from_slice(qasm::print(&form.circuit).as_bytes());
        key.push(0);
        key.extend_from_slice(self.backend.id().as_bytes());
        key.push(0);
        key.extend_from_slice(self.backend.qubit_count().to_string().as_bytes());
        key.push(0);
        key.extend_from_slice(self.config.placer.as_bytes());
        key.push(0);
        key.extend_from_slice(self.config.router.as_bytes());
        if self.race {
            key.push(0);
            key.extend_from_slice(b"race");
        }
        CanonicalJob { form, digest, key }
    }

    /// Applies a `qcs-faults` trigger tag to this job.
    ///
    /// The only tag currently understood is
    /// `degrade:QFRAC:CFRAC:SEED` — a mid-flight calibration outage that
    /// swaps the job's backend for a seeded random degradation of itself
    /// (see [`DeviceHealth::random`] and [`Backend::degrade`]). Because
    /// degrading renames the backend, the job's digest changes with it
    /// and cached fault-free results stay untouched.
    ///
    /// # Errors
    ///
    /// [`JobError`] on an unknown tag, a malformed spec, or an overlay
    /// the device rejects.
    pub fn apply_trigger(&mut self, tag: &str) -> Result<(), JobError> {
        let Some(spec) = tag.strip_prefix("degrade:") else {
            return Err(JobError(format!("unknown fault trigger '{tag}'")));
        };
        let bad = || {
            JobError(format!(
                "bad degrade trigger '{tag}' (want degrade:QFRAC:CFRAC:SEED)"
            ))
        };
        let mut parts = spec.split(':');
        let qubit_frac: f64 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let coupler_frac: f64 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let seed: u64 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        if parts.next().is_some() {
            return Err(bad());
        }
        let health = DeviceHealth::random(
            self.backend.device().coupling(),
            qubit_frac,
            coupler_frac,
            seed,
        );
        self.backend = self
            .backend
            .degrade(&health)
            .map_err(|e| JobError(format!("degrade trigger rejected: {e}")))?;
        Ok(())
    }
}

/// Stable digest of everything that determines a compilation result.
pub fn job_digest(circuit: &Circuit, backend: &dyn Backend, config: &MapperConfig) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(circuit_digest(circuit));
    h.write_str(backend.id());
    h.write_usize(backend.qubit_count());
    h.write_str(&config.placer);
    h.write_str(&config.router);
    h.finish()
}

/// A job's canonical identity: the reduced circuit plus the digest and
/// full key the semantic cache layers share.
#[derive(Debug, Clone)]
pub struct CanonicalJob {
    /// The canonical form (relabeling, reduced circuit, stage costs).
    pub form: CanonicalForm,
    /// Canonical job digest: canonical circuit digest + backend +
    /// strategy + race, under the `canon/1` domain tag.
    pub digest: u64,
    /// Canonical full key, byte-compared on every canonical-digest hit
    /// so a 64-bit collision can never serve across distinct jobs.
    pub key: Vec<u8>,
}

/// A finished compilation: canonical payload plus measurement.
#[derive(Debug, Clone)]
pub struct CompileOutput {
    /// The job digest (also embedded in the payload).
    pub digest: u64,
    /// Canonical `result` response, compact-serialized — the bytes that
    /// get cached and sent.
    pub payload: Vec<u8>,
    /// Measured per-stage wall-clock timing of this compile.
    pub timing: StageTiming,
    /// The `placer/router` pipeline that actually served (for a
    /// portfolio job, the winning lane's pipeline; for a fixed job,
    /// the rung that served). Keys the per-strategy latency
    /// histograms and the strategy-aware cold-compile predictor.
    pub strategy: String,
    /// False when the result is correct and verified but *not* a pure
    /// function of the job — a portfolio run whose path was altered by
    /// the remaining deadline budget. Such results must be served but
    /// never cached.
    pub cacheable: bool,
    /// Portfolio accounting when the job ran through the portfolio
    /// (delivery metadata — never part of the canonical payload).
    pub portfolio: Option<PortfolioReport>,
    /// Virtual→physical assignment before the first gate. Stored with
    /// the cache entry so a canonical hit can compose this mapping
    /// through the relabeling and re-verify it for the new circuit.
    pub initial_layout: Vec<usize>,
    /// Virtual→physical assignment after the last gate.
    pub final_layout: Vec<usize>,
}

/// Runs the backend's mapping pipeline — the requested config at the
/// top of its fallback ladder, verification on — and builds the
/// canonical `result` payload. The embedded report records which rung
/// served (`fallback_rung`, 0 = the requested pipeline; for a movement
/// backend the SWAP-demotion rungs sit below the movement rungs) and
/// that the result was verified, so a degraded answer is always visibly
/// degraded.
///
/// # Errors
///
/// [`JobError`] when every rung of the backend's ladder rejects the job
/// (unknown strategy, circuit wider than the target, routing failure…)
/// or the job is unsatisfiable on the target.
pub fn run_job(job: &Job) -> Result<CompileOutput, JobError> {
    run_job_with_deadline(job, None)
}

/// [`run_job`] with the request's *remaining* deadline budget.
///
/// Fixed-pipeline jobs ignore the budget (the server rejects them
/// against the predictor before compiling). Portfolio jobs hand it to
/// [`Portfolio::map`], which degrades *inside* the budget — a tight
/// deadline yields a verified cheapest-lane result, never an error.
///
/// # Errors
///
/// As for [`run_job`].
pub fn run_job_with_deadline(
    job: &Job,
    deadline: Option<std::time::Duration>,
) -> Result<CompileOutput, JobError> {
    let digest = job.digest();
    let (outcome, portfolio) = if job.portfolio() {
        let engine = Portfolio::default();
        let raced = if job.race {
            engine.map_racing(&job.circuit, &job.backend, deadline)
        } else {
            engine.map(&job.circuit, &job.backend, deadline)
        };
        let (outcome, report) = raced.map_err(|e| JobError(format!("mapping failed: {e}")))?;
        (outcome, Some(report))
    } else {
        let outcome = job
            .backend
            .map(&job.circuit, &job.config)
            .map_err(|e| JobError(format!("mapping failed: {e}")))?;
        (outcome, None)
    };
    let timing = outcome.report.timing;
    let initial_layout = outcome.routed.initial.as_assignment().to_vec();
    let final_layout = outcome.routed.final_layout.as_assignment().to_vec();

    let mut report = outcome.report;
    report.timing = StageTiming::ZERO; // measurement out of canonical content
    let strategy = format!("{}/{}", report.placer, report.router);
    let cacheable = portfolio.as_ref().is_none_or(|p| !p.budget_limited);
    let value = Json::object([
        ("type", Json::from("result")),
        ("digest", Json::from(format!("{digest:016x}"))),
        ("report", report.to_json()),
        ("qasm", Json::from(qasm::print(&outcome.native))),
    ]);
    Ok(CompileOutput {
        digest,
        payload: value.to_compact_string().into_bytes(),
        timing,
        strategy,
        cacheable,
        portfolio,
        initial_layout,
        final_layout,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(workload: &str) -> CompileRequest {
        CompileRequest {
            source: Source::Workload(workload.to_string()),
            device: "surface17".to_string(),
            config: MapperConfig::new("trivial", "lookahead"),
            deadline_ms: None,
            request_id: None,
            race: false,
        }
    }

    #[test]
    fn identical_jobs_have_identical_digests_and_payloads() {
        let a = Job::resolve(&request("ghz:6")).unwrap();
        let b = Job::resolve(&request("ghz:6")).unwrap();
        assert_eq!(a.digest(), b.digest());
        let ra = run_job(&a).unwrap();
        let rb = run_job(&b).unwrap();
        assert_eq!(
            ra.payload, rb.payload,
            "canonical payloads must be byte-identical"
        );
    }

    #[test]
    fn digest_separates_every_input_dimension() {
        let base = Job::resolve(&request("ghz:6")).unwrap();
        let other_circuit = Job::resolve(&request("ghz:7")).unwrap();
        assert_ne!(base.digest(), other_circuit.digest());

        let mut req = request("ghz:6");
        req.device = "grid:5x4".to_string();
        assert_ne!(base.digest(), Job::resolve(&req).unwrap().digest());

        let mut req = request("ghz:6");
        req.config = MapperConfig::new("trivial", "trivial");
        assert_ne!(base.digest(), Job::resolve(&req).unwrap().digest());
    }

    #[test]
    fn payload_matches_in_process_mapper() {
        let job = Job::resolve(&request("qft:5")).unwrap();
        let out = run_job(&job).unwrap();
        let text = String::from_utf8(out.payload).unwrap();
        let value = qcs_json::parse(&text).unwrap();
        assert_eq!(value.get("type").and_then(Json::as_str), Some("result"));

        // The embedded report equals a direct in-process ladder run
        // against the same device (timing zeroed).
        let device = catalog::resolve_device("surface17").unwrap();
        let ladder = qcs_core::ladder::FallbackLadder::standard(job.config.clone());
        let outcome = ladder.map(&job.circuit, &device).unwrap();
        assert_eq!(outcome.report.fallback_rung, 0);
        assert!(outcome.report.verified);
        let mut report = outcome.report;
        report.timing = StageTiming::ZERO;
        assert_eq!(
            value.get("report").unwrap().to_compact_string(),
            report.to_json().to_compact_string()
        );
        // And the measured timing is real.
        assert!(out.timing.total_micros() > 0.0);
    }

    #[test]
    fn dpqa_jobs_run_through_the_movement_backend() {
        let mut req = request("qft:8");
        req.device = "dpqa:3x4".to_string();
        req.config = MapperConfig::default();
        let job = Job::resolve(&req).unwrap();
        assert_eq!(job.backend.id(), "dpqa-3x4");
        let out = run_job(&job).unwrap();
        let text = String::from_utf8(out.payload).unwrap();
        let value = qcs_json::parse(&text).unwrap();
        let report = value.get("report").unwrap();
        assert_eq!(
            report.get("router").and_then(Json::as_str),
            Some(qcs_dpqa::MOVE_ROUTER)
        );
        assert_eq!(report.get("verified").and_then(Json::as_bool), Some(true));
        assert!(
            report
                .get("moves_inserted")
                .and_then(Json::as_usize)
                .unwrap()
                > 0
        );
    }

    #[test]
    fn qasm_source_jobs_resolve() {
        let req = CompileRequest {
            source: Source::Qasm("qreg q[3]; h q[0]; cx q[0],q[1]; cx q[1],q[2];".to_string()),
            device: "line:3".to_string(),
            config: MapperConfig::new("trivial", "trivial"),
            deadline_ms: None,
            request_id: None,
            race: false,
        };
        let job = Job::resolve(&req).unwrap();
        assert_eq!(job.circuit.gate_count(), 3);
        assert!(run_job(&job).is_ok());
    }

    #[test]
    fn resolve_errors_are_presentable() {
        let mut req = request("ghz:6");
        req.device = "warp-core".to_string();
        let e = Job::resolve(&req).unwrap_err();
        assert!(e.0.contains("warp-core"));

        let req = CompileRequest {
            source: Source::Qasm("frobnicate q[0];".to_string()),
            device: "surface17".to_string(),
            config: MapperConfig::default(),
            deadline_ms: None,
            request_id: None,
            race: false,
        };
        assert!(Job::resolve(&req).unwrap_err().0.contains("qasm rejected"));
    }

    #[test]
    fn too_wide_job_errors_gracefully() {
        let mut req = request("ghz:30");
        req.device = "line:5".to_string();
        let job = Job::resolve(&req).unwrap();
        assert!(run_job(&job).unwrap_err().0.contains("mapping failed"));
    }

    #[test]
    fn fixed_jobs_report_their_strategy_and_stay_cacheable() {
        let job = Job::resolve(&request("ghz:6")).unwrap();
        let out = run_job(&job).unwrap();
        assert_eq!(out.strategy, "trivial/lookahead");
        assert!(out.cacheable);
        assert!(out.portfolio.is_none());
    }

    #[test]
    fn auto_jobs_run_the_portfolio_and_are_deterministic() {
        let mut req = request("qft:6");
        req.config = MapperConfig::new("auto", "auto");
        let job = Job::resolve(&req).unwrap();
        assert!(job.portfolio());
        let a = run_job(&job).unwrap();
        let b = run_job(&job).unwrap();
        assert_eq!(a.payload, b.payload, "unbounded auto runs are pure");
        assert_eq!(a.strategy, b.strategy);
        assert!(a.cacheable);
        let report = a.portfolio.expect("auto jobs carry portfolio accounting");
        assert!(report.race_complete);
        assert!(!report.budget_limited);
    }

    #[test]
    fn race_flag_is_part_of_job_identity() {
        let mut req = request("qft:6");
        req.config = MapperConfig::new("auto", "auto");
        let auto = Job::resolve(&req).unwrap();
        req.race = true;
        let raced = Job::resolve(&req).unwrap();
        assert!(raced.portfolio());
        assert_ne!(auto.digest(), raced.digest());
        assert_ne!(auto.full_key(), raced.full_key());
        // A raced fixed-pipeline job is also distinct from the plain one.
        let mut fixed = request("qft:6");
        fixed.race = true;
        assert_ne!(
            Job::resolve(&request("qft:6")).unwrap().digest(),
            Job::resolve(&fixed).unwrap().digest()
        );
    }

    #[test]
    fn canonical_identity_collapses_renames_and_reorders_only() {
        let base = Job::resolve(&request("qft:5")).unwrap();
        let config = CanonConfig::default();
        let canon_base = base.canonicalize(&config);

        // A renamed + relabeled + reordered twin shares the canonical
        // identity while its exact identity differs.
        let mut twin = base.clone();
        let perm: Vec<usize> = (0..twin.circuit.qubit_count()).rev().collect();
        twin.circuit =
            canon::commuting_shuffle(&canon::permute_qubits(&twin.circuit, &perm), 7, 100);
        twin.circuit.set_name("renamed");
        assert_ne!(base.digest(), twin.digest());
        let canon_twin = twin.canonicalize(&config);
        assert_eq!(canon_base.digest, canon_twin.digest);
        assert_eq!(canon_base.key, canon_twin.key);

        // Every non-circuit job dimension still separates.
        let mut req = request("qft:5");
        req.device = "grid:5x4".to_string();
        let other_device = Job::resolve(&req).unwrap().canonicalize(&config);
        assert_ne!(canon_base.digest, other_device.digest);

        let mut req = request("qft:5");
        req.config = MapperConfig::new("trivial", "trivial");
        let other_config = Job::resolve(&req).unwrap().canonicalize(&config);
        assert_ne!(canon_base.digest, other_config.digest);

        let mut req = request("qft:5");
        req.race = true;
        let raced = Job::resolve(&req).unwrap().canonicalize(&config);
        assert_ne!(canon_base.digest, raced.digest);
        assert_ne!(canon_base.key, raced.key);
    }

    #[test]
    fn outputs_carry_the_layouts() {
        let job = Job::resolve(&request("ghz:6")).unwrap();
        let out = run_job(&job).unwrap();
        assert_eq!(out.initial_layout.len(), job.circuit.qubit_count());
        assert_eq!(out.final_layout.len(), job.circuit.qubit_count());
    }

    #[test]
    fn tight_deadline_portfolio_jobs_degrade_and_are_uncacheable() {
        let mut req = request("qft:6");
        req.config = MapperConfig::new("auto", "auto");
        let job = Job::resolve(&req).unwrap();
        let out = run_job_with_deadline(&job, Some(std::time::Duration::from_millis(1))).unwrap();
        assert_eq!(out.strategy, "trivial/trivial");
        assert!(!out.cacheable, "budget-limited results must not be cached");
        let report = out.portfolio.unwrap();
        assert!(report.budget_limited);
        // The payload still embeds a verified report.
        let value = qcs_json::parse(std::str::from_utf8(&out.payload).unwrap()).unwrap();
        let embedded = value.get("report").unwrap();
        assert_eq!(embedded.get("verified").and_then(Json::as_bool), Some(true));
    }
}
