//! The readiness loops: non-blocking connection I/O over `poll(2)`.
//!
//! A small fixed pool of *event-loop threads* owns every accepted
//! socket. Each loop multiplexes its connections through
//! [`qcs_sys::poll_fds`]: reads land in a per-connection
//! [`FrameDecoder`] (partial frames accumulate across wakeups), complete
//! requests are answered inline when cheap (`ping`, `stats`,
//! `shutdown`) or handed to the compute worker pool (`compile`,
//! `compile_suite`), and responses drain through a per-connection write
//! buffer with backpressure — a peer that stops reading costs memory on
//! its own connection, never a thread.
//!
//! **Ordering.** Each connection processes its requests strictly in
//! arrival order, one compute job in flight at a time; pipelined
//! requests queue behind it. Responses are therefore byte-for-byte and
//! order-identical to the old thread-per-connection blocking server —
//! the property `tests/nonblocking_fuzz.rs` hammers.
//!
//! **Waking.** Worker completions and newly accepted sockets arrive
//! from other threads while the loop is parked in `poll`. Each loop owns
//! a loopback socket pair; producers push work onto a mutex-protected
//! queue and write one byte to the pair's far end, which makes the
//! loop's own end readable and the `poll` return. The byte count is
//! meaningless (a full pipe means a wakeup is already pending) — the
//! queues are the truth, the pair is just an interrupt.
//!
//! **Lifecycle.** A connection dies when: the peer closes and all its
//! queued work is answered; a write fails; its mid-frame read deadline
//! fires (it gets an `error` frame first); the decoder loses framing
//! sync (oversized prefix — `error` frame, then close); or the server
//! shuts down.
//!
//! **Fault injection.** Two failpoint sites model network misbehavior
//! (see [`qcs_faults::TransportFault`]): `serve.transport.read` fires
//! before each read sweep (slow-read stalls the loop, conn-reset kills
//! the connection, black-hole makes it swallow traffic silently), and
//! `serve.transport.write` fires inside [`Conn::flush`] (partial-write
//! caps one flush, conn-reset kills). The chaos harness arms them with
//! seeded probabilistic policies to prove the fleet above survives.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use qcs_sys::{poll_fds, PollFd, POLLIN, POLLOUT};

use crate::frame::FrameDecoder;
use crate::protocol::{error_response, Request};
use crate::server::{stats_json, Shared, WorkItem};
use qcs_json::Json;

/// Read-chunk size: large enough to drain a pipelined burst in one
/// syscall, small enough to keep per-loop memory trivial.
const READ_CHUNK: usize = 64 * 1024;

/// Wakes one event loop from another thread by making its loopback
/// socket readable.
pub(crate) struct Waker {
    tx: TcpStream,
}

impl Waker {
    /// Signals the loop. Never blocks: the socket is non-blocking and a
    /// full buffer means a wakeup is already pending.
    pub(crate) fn wake(&self) {
        let _ = (&self.tx).write(&[1]);
    }
}

/// The cross-thread face of one event loop: producers push here and
/// wake; the loop drains on its next iteration.
pub(crate) struct LoopShared {
    injected: Mutex<Vec<TcpStream>>,
    completions: Mutex<Vec<(u64, Vec<u8>)>>,
    waker: Waker,
}

impl LoopShared {
    /// Hands a freshly accepted socket to this loop (from the accept
    /// thread).
    pub(crate) fn inject(&self, stream: TcpStream) {
        self.injected
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .push(stream);
        self.waker.wake();
    }

    /// Delivers a finished job's response bytes (from a worker).
    pub(crate) fn complete(&self, token: u64, bytes: Vec<u8>) {
        self.completions
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .push((token, bytes));
        self.waker.wake();
    }

    /// Wakes the loop with no work attached (shutdown broadcast).
    pub(crate) fn wake(&self) {
        self.waker.wake();
    }
}

/// A connected loopback pair: `(wake_rx, wake_tx)`, both non-blocking.
/// Std-only stand-in for `pipe(2)` so the sys shim stays poll-only.
fn wake_pair() -> io::Result<(TcpStream, TcpStream)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let tx = TcpStream::connect(listener.local_addr()?)?;
    let (rx, _) = listener.accept()?;
    rx.set_nonblocking(true)?;
    tx.set_nonblocking(true)?;
    tx.set_nodelay(true)?;
    Ok((rx, tx))
}

/// What [`spawn_loops`] hands back: each loop's cross-thread face plus
/// its thread handle, in loop-index order.
pub(crate) type SpawnedLoops = (Vec<Arc<LoopShared>>, Vec<JoinHandle<()>>);

/// Spawns `count` event-loop threads bound to `shared`.
pub(crate) fn spawn_loops(shared: &Arc<Shared>, count: usize) -> io::Result<SpawnedLoops> {
    let mut loops = Vec::with_capacity(count);
    let mut threads = Vec::with_capacity(count);
    for i in 0..count {
        let (wake_rx, wake_tx) = wake_pair()?;
        let ls = Arc::new(LoopShared {
            injected: Mutex::new(Vec::new()),
            completions: Mutex::new(Vec::new()),
            waker: Waker { tx: wake_tx },
        });
        loops.push(Arc::clone(&ls));
        let shared = Arc::clone(shared);
        threads.push(
            std::thread::Builder::new()
                .name(format!("qcs-serve-loop-{i}"))
                .spawn(move || run_loop(i, &shared, &ls, wake_rx))
                .expect("spawning an event-loop thread"),
        );
    }
    Ok((loops, threads))
}

/// One queued per-connection action, processed strictly in order.
enum Pending {
    /// Bytes already decided (error frames, inline responses computed at
    /// dequeue time would break ordering — these were queued in arrival
    /// position).
    Respond(Vec<u8>),
    /// A parsed request still to execute.
    Work(Request),
}

/// Per-connection state machine.
struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    /// When the currently-accumulating frame's first byte arrived.
    frame_started: Option<Instant>,
    /// Unsent response bytes (`out[out_pos..]` is the unwritten tail).
    out: Vec<u8>,
    out_pos: usize,
    /// Requests (and pre-rendered responses) awaiting their turn.
    pending: VecDeque<Pending>,
    /// A compute job for this connection is at the workers.
    in_flight: bool,
    /// No further reads: drain `pending`/`out`, then close.
    closing: bool,
    /// Peer sent EOF (reads are over; queued work still completes).
    peer_closed: bool,
    /// Unrecoverable I/O error: reap immediately.
    dead: bool,
    /// Injected black-hole fault: swallow reads, never write. The
    /// connection lingers (holding peer-side state hostage, as a real
    /// black hole would) until the peer gives up and closes.
    black_holed: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            decoder: FrameDecoder::new(),
            frame_started: None,
            out: Vec::new(),
            out_pos: 0,
            pending: VecDeque::new(),
            in_flight: false,
            closing: false,
            peer_closed: false,
            dead: false,
            black_holed: false,
        }
    }

    fn has_output(&self) -> bool {
        self.out_pos < self.out.len()
    }

    /// Appends one already-framed response to the write buffer.
    fn queue_bytes(&mut self, bytes: &[u8]) {
        if self.out_pos == self.out.len() {
            self.out.clear();
            self.out_pos = 0;
        }
        self.out.extend_from_slice(bytes);
    }

    /// Frames and appends a payload (length prefix + payload bytes).
    fn queue_payload(&mut self, payload: &[u8]) {
        let len = u32::try_from(payload.len()).expect("responses fit the protocol");
        self.queue_bytes(&len.to_be_bytes());
        self.queue_bytes(payload);
    }

    fn queue_json(&mut self, value: &Json) {
        self.queue_payload(value.to_compact_string().as_bytes());
    }

    /// Writes as much buffered output as the socket accepts right now.
    fn flush(&mut self) {
        if self.black_holed {
            // Responses vanish into the hole; discarding keeps the write
            // buffer from pinning the connection past peer close.
            self.out.clear();
            self.out_pos = 0;
            return;
        }
        let mut write_cap = usize::MAX;
        if qcs_faults::any_armed() {
            match qcs_faults::transport_fault("serve.transport.write") {
                None => {}
                Some(qcs_faults::TransportFault::PartialWrite(n)) => write_cap = n,
                Some(qcs_faults::TransportFault::ConnReset) => {
                    self.dead = true;
                    return;
                }
                // Read-shaped faults are meaningless on the write path.
                Some(_) => {}
            }
        }
        while self.has_output() {
            if write_cap == 0 {
                return; // injected partial write: rest stays queued
            }
            let tail = &self.out[self.out_pos..];
            let tail = &tail[..tail.len().min(write_cap)];
            match self.stream.write(tail) {
                Ok(0) => {
                    self.dead = true;
                    return;
                }
                Ok(n) => {
                    self.out_pos += n;
                    write_cap -= n;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
        self.out.clear();
        self.out_pos = 0;
    }

    /// Best-effort synchronous drain with a short budget — used for the
    /// `shutdown` acknowledgement, where the loop is about to exit and
    /// would otherwise drop the buffered `ok` frame.
    fn flush_blocking(&mut self, budget: Duration) {
        let deadline = Instant::now() + budget;
        while self.has_output() && !self.dead {
            self.flush();
            if !self.has_output() {
                break;
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                break;
            }
            let mut fds = [PollFd::new(self.stream.as_raw_fd(), POLLOUT)];
            if poll_fds(&mut fds, Some(remaining.min(Duration::from_millis(50)))).is_err() {
                break;
            }
        }
    }

    /// True when nothing more can or will happen on this connection.
    fn reapable(&self) -> bool {
        self.dead
            || ((self.closing || self.peer_closed)
                && !self.in_flight
                && self.pending.is_empty()
                && !self.has_output())
    }
}

/// Drains a mutex-protected vector without holding the lock during
/// processing.
fn take_all<T>(queue: &Mutex<Vec<T>>) -> Vec<T> {
    std::mem::take(
        &mut *queue
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner()),
    )
}

fn run_loop(loop_idx: usize, shared: &Shared, ls: &LoopShared, wake_rx: TcpStream) {
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token: u64 = 0;
    let mut read_buf = vec![0u8; READ_CHUNK];
    let mut fds: Vec<PollFd> = Vec::new();
    let mut fd_tokens: Vec<u64> = Vec::new();
    let mut reap: Vec<u64> = Vec::new();
    let mut wake_rx = wake_rx;

    loop {
        // New connections from the accept thread.
        for stream in take_all(&ls.injected) {
            // Chaos failpoint: lets the harness kill a connection at
            // admission to prove the loop (and its other connections)
            // survive. A panic costs this connection only.
            let armed = std::panic::catch_unwind(AssertUnwindSafe(|| {
                let _ = qcs_faults::hit("serve.connection");
            }));
            if armed.is_err() {
                shared.connections_panicked.fetch_add(1, Ordering::SeqCst);
                shared.active.fetch_sub(1, Ordering::SeqCst);
                continue; // stream drops: closed without a frame
            }
            if stream.set_nonblocking(true).is_err() {
                shared.active.fetch_sub(1, Ordering::SeqCst);
                continue;
            }
            let _ = stream.set_nodelay(true);
            let token = next_token;
            next_token += 1;
            conns.insert(token, Conn::new(stream));
        }

        // Finished jobs from the workers.
        for (token, bytes) in take_all(&ls.completions) {
            if let Some(conn) = conns.get_mut(&token) {
                conn.queue_payload(&bytes);
                shared.frames_out.fetch_add(1, Ordering::SeqCst);
                conn.in_flight = false;
                advance(loop_idx, token, conn, shared);
            }
        }

        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }

        // Reap everything that finished during queue draining.
        reap.clear();
        reap.extend(conns.iter().filter(|(_, c)| c.reapable()).map(|(&t, _)| t));
        for token in reap.drain(..) {
            conns.remove(&token);
            shared.active.fetch_sub(1, Ordering::SeqCst);
        }

        // Build the poll set: the waker first, then every connection.
        fds.clear();
        fd_tokens.clear();
        fds.push(PollFd::new(wake_rx.as_raw_fd(), POLLIN));
        let mut timeout: Option<Duration> = None;
        let now = Instant::now();
        for (&token, conn) in &conns {
            let mut events = 0i16;
            if !conn.closing && !conn.peer_closed {
                events |= POLLIN;
            }
            if conn.has_output() {
                events |= POLLOUT;
            }
            fds.push(PollFd::new(conn.stream.as_raw_fd(), events));
            fd_tokens.push(token);
            if let Some(started) = conn.frame_started {
                let remaining = shared
                    .config
                    .frame_deadline
                    .saturating_sub(now.duration_since(started));
                timeout = Some(timeout.map_or(remaining, |t: Duration| t.min(remaining)));
            }
        }

        if poll_fds(&mut fds, timeout).is_err() {
            // A transient poll failure (resource pressure): fall through
            // and retry — the queues and deadline sweep keep us honest.
            std::thread::sleep(Duration::from_millis(1));
        }

        // Drain the waker.
        if fds[0].readable() {
            shared.wakeups.fetch_add(1, Ordering::SeqCst);
            loop {
                match wake_rx.read(&mut read_buf) {
                    Ok(0) => break, // peer end dropped: shutdown imminent
                    Ok(_) => {}
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => break,
                }
            }
        }

        // Service ready connections.
        for (slot, &token) in fd_tokens.iter().enumerate() {
            let entry = fds[slot + 1];
            if entry.revents() == 0 {
                continue;
            }
            let Some(conn) = conns.get_mut(&token) else {
                continue;
            };
            if entry.writable() && conn.has_output() {
                conn.flush();
            }
            if entry.readable() && !conn.closing && !conn.peer_closed {
                read_ready(loop_idx, token, conn, shared, &mut read_buf);
            }
        }

        // Mid-frame read deadlines: answer with an error frame, stop
        // reading, and let the normal drain-then-reap path close.
        let now = Instant::now();
        let expired: Vec<u64> = conns
            .iter()
            .filter(|(_, c)| !c.closing && !c.dead)
            .filter(|(_, c)| {
                c.frame_started.is_some_and(|started| {
                    now.duration_since(started) > shared.config.frame_deadline
                })
            })
            .map(|(&t, _)| t)
            .collect();
        for token in expired {
            let Some(conn) = conns.get_mut(&token) else {
                continue;
            };
            let message = format!(
                "read deadline exceeded: frame incomplete after {} ms",
                shared.config.frame_deadline.as_millis()
            );
            conn.pending
                .push_back(Pending::Respond(render(&error_response(message))));
            conn.closing = true;
            conn.frame_started = None;
            advance(loop_idx, token, conn, shared);
        }

        // Reap: dead, deadline-closed-and-drained, or peer-closed-and-done.
        reap.clear();
        reap.extend(conns.iter().filter(|(_, c)| c.reapable()).map(|(&t, _)| t));
        for token in reap.drain(..) {
            conns.remove(&token);
            shared.active.fetch_sub(1, Ordering::SeqCst);
        }
    }

    // Shutdown: close every connection this loop owns.
    let remaining = conns.len();
    for _ in 0..remaining {
        shared.active.fetch_sub(1, Ordering::SeqCst);
    }
    drop(conns);
    // Streams injected after the final drain are closed by Drop too.
    let stragglers = take_all(&ls.injected);
    for _ in &stragglers {
        shared.active.fetch_sub(1, Ordering::SeqCst);
    }
}

fn render(value: &Json) -> Vec<u8> {
    value.to_compact_string().into_bytes()
}

/// Reads until the socket would block, feeding the decoder and queueing
/// parsed requests.
fn read_ready(loop_idx: usize, token: u64, conn: &mut Conn, shared: &Shared, buf: &mut [u8]) {
    if qcs_faults::any_armed() {
        match qcs_faults::transport_fault("serve.transport.read") {
            None => {}
            Some(qcs_faults::TransportFault::SlowRead(ms)) => {
                // A stalled NIC stalls the whole loop, not one socket —
                // sleeping here models exactly that.
                shared.transport_faults.fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(ms));
            }
            Some(qcs_faults::TransportFault::ConnReset) => {
                shared.transport_faults.fetch_add(1, Ordering::SeqCst);
                conn.dead = true;
                return;
            }
            Some(qcs_faults::TransportFault::BlackHole) => {
                shared.transport_faults.fetch_add(1, Ordering::SeqCst);
                conn.black_holed = true;
            }
            // Write-shaped faults are meaningless on the read path.
            Some(qcs_faults::TransportFault::PartialWrite(_)) => {}
        }
    }
    if conn.black_holed {
        // Swallow whatever arrived; only a peer EOF ends the charade.
        loop {
            match conn.stream.read(buf) {
                Ok(0) => {
                    conn.dead = true;
                    return;
                }
                Ok(_) => {}
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    conn.dead = true;
                    return;
                }
            }
        }
    }
    let mut frames: Vec<Vec<u8>> = Vec::new();
    loop {
        match conn.stream.read(buf) {
            Ok(0) => {
                conn.peer_closed = true;
                break;
            }
            Ok(n) => {
                if let Err(e) = conn.decoder.feed(&buf[..n], &mut frames) {
                    // Framing lost (oversized prefix): answer, then close.
                    conn.pending
                        .push_back(Pending::Respond(render(&error_response(e.0))));
                    conn.closing = true;
                    conn.frame_started = None;
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                conn.dead = true;
                break;
            }
        }
    }
    if !conn.closing {
        if conn.decoder.mid_frame() {
            if conn.frame_started.is_none() {
                conn.frame_started = Some(Instant::now());
                shared.partial_reads.fetch_add(1, Ordering::SeqCst);
            }
        } else {
            conn.frame_started = None;
        }
    }
    if !frames.is_empty() {
        shared
            .frames_in
            .fetch_add(frames.len() as u64, Ordering::SeqCst);
        for payload in frames {
            match Request::parse(&payload) {
                Ok(request) => conn.pending.push_back(Pending::Work(request)),
                // Malformed request: answer in order and keep the
                // connection — framing is intact, the stream is in sync.
                Err(e) => conn
                    .pending
                    .push_back(Pending::Respond(render(&error_response(e.to_string())))),
            }
        }
    }
    advance(loop_idx, token, conn, shared);
}

/// Processes the pending queue in strict arrival order: pre-rendered
/// responses and cheap control requests drain inline; the first compute
/// request dispatches to the workers and blocks the queue until its
/// completion returns.
fn advance(loop_idx: usize, token: u64, conn: &mut Conn, shared: &Shared) {
    while !conn.in_flight && !conn.dead {
        match conn.pending.pop_front() {
            None => break,
            Some(Pending::Respond(bytes)) => {
                conn.queue_payload(&bytes);
                shared.frames_out.fetch_add(1, Ordering::SeqCst);
            }
            Some(Pending::Work(request)) => match request {
                Request::Ping => {
                    conn.queue_json(&Json::object([("type", "pong")]));
                    shared.frames_out.fetch_add(1, Ordering::SeqCst);
                }
                Request::Stats => {
                    conn.queue_json(&stats_json(shared));
                    shared.frames_out.fetch_add(1, Ordering::SeqCst);
                }
                Request::Shutdown => {
                    conn.queue_json(&Json::object([("type", "ok")]));
                    shared.frames_out.fetch_add(1, Ordering::SeqCst);
                    // The loop exits before another flush chance: drain
                    // the acknowledgement synchronously, best effort.
                    conn.flush_blocking(Duration::from_secs(1));
                    shared.initiate_shutdown();
                    return;
                }
                request @ (Request::Compile(_) | Request::CompileSuite(_)) => {
                    conn.in_flight = true;
                    shared.enqueue_job(WorkItem {
                        loop_idx,
                        token,
                        request,
                    });
                    break;
                }
            },
        }
    }
    conn.flush();
}
