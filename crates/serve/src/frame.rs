//! Incremental decoder for length-prefixed frames — the per-connection
//! read-side state machine of the event-driven server.
//!
//! The blocking server could call `read_exact` and let the kernel block
//! until a frame was complete; a readiness loop cannot. [`FrameDecoder`]
//! accepts *whatever bytes the socket had* — one byte, half a length
//! prefix, three frames back to back — and emits complete frames as they
//! materialize. It is a pure state machine (no I/O), so every torn-frame
//! split point and pipelining interleaving is unit-testable without a
//! socket in sight; `tests/nonblocking_fuzz.rs` then replays the same
//! shapes through real sockets.
//!
//! The decoder enforces the same [`MAX_FRAME_BYTES`] ceiling as the
//! blocking reader, *before* buffering any payload: an oversized length
//! prefix poisons the decoder (the stream can no longer be trusted to be
//! in sync) and reports a client-presentable error.

use crate::protocol::MAX_FRAME_BYTES;

/// Why the decoder refused the stream. The connection must be closed
/// after sending the contained message: framing sync is lost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DecodeError {}

enum State {
    /// Accumulating the 4-byte big-endian length prefix.
    Len { buf: [u8; 4], filled: usize },
    /// Accumulating `buf.len()` payload bytes.
    Payload { buf: Vec<u8>, filled: usize },
    /// An oversized prefix arrived; every further byte is rejected.
    Poisoned,
}

/// Incremental frame decoder: feed it byte chunks, collect whole frames.
pub struct FrameDecoder {
    state: State,
    frames_decoded: u64,
    max_frame_bytes: usize,
}

impl Default for FrameDecoder {
    fn default() -> Self {
        FrameDecoder::new()
    }
}

impl FrameDecoder {
    /// A decoder at a frame boundary, enforcing the protocol-wide
    /// [`MAX_FRAME_BYTES`] ceiling.
    pub fn new() -> FrameDecoder {
        FrameDecoder::with_limit(MAX_FRAME_BYTES)
    }

    /// A decoder enforcing a custom frame-length ceiling (clamped to the
    /// protocol-wide [`MAX_FRAME_BYTES`]). The limit is checked against
    /// the length *prefix*, before any payload is buffered, so an absurd
    /// prefix costs four bytes of state — never an allocation.
    pub fn with_limit(max_frame_bytes: usize) -> FrameDecoder {
        FrameDecoder {
            state: State::Len {
                buf: [0; 4],
                filled: 0,
            },
            frames_decoded: 0,
            max_frame_bytes: max_frame_bytes.min(MAX_FRAME_BYTES),
        }
    }

    /// The frame-length ceiling this decoder enforces.
    pub fn limit(&self) -> usize {
        self.max_frame_bytes
    }

    /// True when a frame is partially accumulated — the condition that
    /// starts the server's mid-frame read deadline. A decoder at a frame
    /// boundary (or poisoned) is not mid-frame.
    pub fn mid_frame(&self) -> bool {
        match &self.state {
            State::Len { filled, .. } => *filled > 0,
            State::Payload { .. } => true,
            State::Poisoned => false,
        }
    }

    /// Total complete frames this decoder has emitted.
    pub fn frames_decoded(&self) -> u64 {
        self.frames_decoded
    }

    /// Consumes a chunk of stream bytes, appending every completed frame
    /// payload to `out` in arrival order.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on a length prefix beyond [`MAX_FRAME_BYTES`].
    /// Frames completed earlier in the same chunk are already in `out`
    /// and remain valid; the decoder itself is poisoned and every later
    /// call fails the same way.
    pub fn feed(&mut self, mut bytes: &[u8], out: &mut Vec<Vec<u8>>) -> Result<(), DecodeError> {
        while !bytes.is_empty() {
            match &mut self.state {
                State::Poisoned => {
                    return Err(DecodeError("frame stream out of sync".to_string()));
                }
                State::Len { buf, filled } => {
                    let take = (4 - *filled).min(bytes.len());
                    buf[*filled..*filled + take].copy_from_slice(&bytes[..take]);
                    *filled += take;
                    bytes = &bytes[take..];
                    if *filled < 4 {
                        continue;
                    }
                    let len = u32::from_be_bytes(*buf) as usize;
                    if len > self.max_frame_bytes {
                        let limit = self.max_frame_bytes;
                        self.state = State::Poisoned;
                        return Err(DecodeError(format!(
                            "frame length {len} exceeds protocol maximum of {limit} bytes"
                        )));
                    }
                    if len == 0 {
                        self.frames_decoded += 1;
                        out.push(Vec::new());
                        self.state = State::Len {
                            buf: [0; 4],
                            filled: 0,
                        };
                    } else {
                        self.state = State::Payload {
                            buf: vec![0; len],
                            filled: 0,
                        };
                    }
                }
                State::Payload { buf, filled } => {
                    let take = (buf.len() - *filled).min(bytes.len());
                    buf[*filled..*filled + take].copy_from_slice(&bytes[..take]);
                    *filled += take;
                    bytes = &bytes[take..];
                    if *filled == buf.len() {
                        let frame = std::mem::take(buf);
                        self.frames_decoded += 1;
                        out.push(frame);
                        self.state = State::Len {
                            buf: [0; 4],
                            filled: 0,
                        };
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::write_frame;

    /// Encodes `payloads` as a contiguous frame byte stream.
    fn encode(payloads: &[&[u8]]) -> Vec<u8> {
        let mut bytes = Vec::new();
        for p in payloads {
            write_frame(&mut bytes, p).unwrap();
        }
        bytes
    }

    fn decode_in_chunks(bytes: &[u8], chunk: usize) -> Vec<Vec<u8>> {
        let mut d = FrameDecoder::new();
        let mut out = Vec::new();
        for piece in bytes.chunks(chunk.max(1)) {
            d.feed(piece, &mut out).unwrap();
        }
        assert!(!d.mid_frame(), "stream ended at a frame boundary");
        out
    }

    #[test]
    fn whole_stream_in_one_chunk() {
        let bytes = encode(&[b"alpha", b"", b"gamma"]);
        let frames = decode_in_chunks(&bytes, bytes.len());
        assert_eq!(
            frames,
            vec![b"alpha".to_vec(), Vec::new(), b"gamma".to_vec()]
        );
    }

    #[test]
    fn one_byte_dribble_reproduces_every_frame() {
        let bytes = encode(&[b"hello", b"world!", b""]);
        let frames = decode_in_chunks(&bytes, 1);
        assert_eq!(
            frames,
            vec![b"hello".to_vec(), b"world!".to_vec(), Vec::new()]
        );
    }

    #[test]
    fn every_split_point_of_a_frame_decodes_identically() {
        let bytes = encode(&[b"the quick brown fox"]);
        for split in 0..=bytes.len() {
            let mut d = FrameDecoder::new();
            let mut out = Vec::new();
            d.feed(&bytes[..split], &mut out).unwrap();
            d.feed(&bytes[split..], &mut out).unwrap();
            assert_eq!(out, vec![b"the quick brown fox".to_vec()], "split {split}");
            assert!(!d.mid_frame());
        }
    }

    #[test]
    fn mid_frame_tracks_partial_progress() {
        let bytes = encode(&[b"abcd"]);
        let mut d = FrameDecoder::new();
        let mut out = Vec::new();
        assert!(!d.mid_frame(), "fresh decoder is at a boundary");
        d.feed(&bytes[..2], &mut out).unwrap(); // half the prefix
        assert!(d.mid_frame());
        d.feed(&bytes[2..6], &mut out).unwrap(); // prefix + 2 payload bytes
        assert!(d.mid_frame());
        d.feed(&bytes[6..], &mut out).unwrap();
        assert!(!d.mid_frame());
        assert_eq!(out, vec![b"abcd".to_vec()]);
        assert_eq!(d.frames_decoded(), 1);
    }

    #[test]
    fn pipelined_frames_split_mid_prefix_of_the_second() {
        let bytes = encode(&[b"first", b"second"]);
        // Split inside the second frame's length prefix.
        let cut = 4 + 5 + 2;
        let mut d = FrameDecoder::new();
        let mut out = Vec::new();
        d.feed(&bytes[..cut], &mut out).unwrap();
        assert_eq!(out, vec![b"first".to_vec()]);
        assert!(d.mid_frame());
        d.feed(&bytes[cut..], &mut out).unwrap();
        assert_eq!(out, vec![b"first".to_vec(), b"second".to_vec()]);
    }

    #[test]
    fn oversized_prefix_poisons_without_buffering() {
        let mut bytes = ((MAX_FRAME_BYTES + 1) as u32).to_be_bytes().to_vec();
        bytes.extend_from_slice(b"garbage that must not be buffered");
        let mut d = FrameDecoder::new();
        let mut out = Vec::new();
        let err = d.feed(&bytes, &mut out).unwrap_err();
        assert!(err.0.contains("exceeds protocol maximum"), "{err}");
        assert!(out.is_empty());
        assert!(!d.mid_frame());
        // Poisoned: any further byte is rejected too.
        assert!(d.feed(b"x", &mut out).is_err());
    }

    #[test]
    fn frames_before_an_oversized_one_survive() {
        let mut bytes = encode(&[b"good"]);
        bytes.extend_from_slice(&u32::MAX.to_be_bytes());
        let mut d = FrameDecoder::new();
        let mut out = Vec::new();
        assert!(d.feed(&bytes, &mut out).is_err());
        assert_eq!(out, vec![b"good".to_vec()], "prior frame already emitted");
    }

    #[test]
    fn max_sized_frame_is_accepted() {
        // Exactly MAX_FRAME_BYTES is legal (the reject is strictly over).
        let payload = vec![7u8; MAX_FRAME_BYTES];
        let mut bytes = (MAX_FRAME_BYTES as u32).to_be_bytes().to_vec();
        bytes.extend_from_slice(&payload);
        let mut d = FrameDecoder::new();
        let mut out = Vec::new();
        d.feed(&bytes, &mut out).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].len(), MAX_FRAME_BYTES);
    }

    #[test]
    fn custom_limit_boundary_exact_accepted_one_over_poisoned() {
        const LIMIT: usize = 64;
        // Exactly the limit: accepted.
        let payload = vec![3u8; LIMIT];
        let mut bytes = (LIMIT as u32).to_be_bytes().to_vec();
        bytes.extend_from_slice(&payload);
        let mut d = FrameDecoder::with_limit(LIMIT);
        assert_eq!(d.limit(), LIMIT);
        let mut out = Vec::new();
        d.feed(&bytes, &mut out).unwrap();
        assert_eq!(out, vec![payload]);

        // One byte over: poisoned before buffering anything.
        let mut d = FrameDecoder::with_limit(LIMIT);
        let prefix = ((LIMIT + 1) as u32).to_be_bytes();
        let mut out = Vec::new();
        let err = d.feed(&prefix, &mut out).unwrap_err();
        assert!(err.0.contains("exceeds protocol maximum of 64"), "{err}");
        assert!(out.is_empty());
        assert!(!d.mid_frame());
    }

    #[test]
    fn custom_limit_is_clamped_to_protocol_maximum() {
        let d = FrameDecoder::with_limit(usize::MAX);
        assert_eq!(d.limit(), MAX_FRAME_BYTES);
        assert_eq!(FrameDecoder::new().limit(), MAX_FRAME_BYTES);
    }

    #[test]
    fn seeded_random_chunking_matches_reference() {
        use qcs_rng::{Rng, SeedableRng};
        let payloads: Vec<Vec<u8>> = (0..12u8)
            .map(|i| (0..=i).map(|b| b.wrapping_mul(17)).collect())
            .collect();
        let refs: Vec<&[u8]> = payloads.iter().map(Vec::as_slice).collect();
        let bytes = encode(&refs);
        for seed in 0..20u64 {
            let mut rng = qcs_rng::Xoshiro256StarStar::seed_from_u64(seed);
            let mut d = FrameDecoder::new();
            let mut out = Vec::new();
            let mut pos = 0;
            while pos < bytes.len() {
                let take = rng.gen_range(1..=9usize).min(bytes.len() - pos);
                d.feed(&bytes[pos..pos + take], &mut out).unwrap();
                pos += take;
            }
            assert_eq!(out, payloads, "seed {seed}");
        }
    }
}
