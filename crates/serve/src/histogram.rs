//! Fixed-bucket latency histograms for the `stats` endpoint.
//!
//! Latencies land in power-of-two microsecond buckets (bucket *i* covers
//! `[2^i, 2^(i+1))` µs), so recording is two instructions and constant
//! memory regardless of traffic, and quantile estimates are exact to
//! within one octave — plenty for distinguishing "cache hit in
//! microseconds" from "cold compile in milliseconds".
//!
//! Quantiles report the *upper bound* of the bucket containing the
//! requested rank: a conservative (never under-reported) estimate.

use qcs_json::Json;

/// Number of power-of-two buckets: covers up to 2^32 µs ≈ 71 minutes,
/// far beyond any compile this daemon will serve.
const BUCKETS: usize = 32;

/// A fixed-bucket histogram of microsecond latencies.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: [u64; BUCKETS],
    total: u64,
    sum_micros: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: [0; BUCKETS],
            total: 0,
            sum_micros: 0,
        }
    }
}

fn bucket_of(micros: u64) -> usize {
    (micros.max(1).ilog2() as usize).min(BUCKETS - 1)
}

impl LatencyHistogram {
    /// Records one latency observation.
    pub fn record(&mut self, micros: u64) {
        self.counts[bucket_of(micros)] += 1;
        self.total += 1;
        self.sum_micros = self.sum_micros.saturating_add(micros);
    }

    /// Observation count.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_micros(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum_micros as f64 / self.total as f64
        }
    }

    /// Upper bound (µs) of the bucket holding the `q`-quantile
    /// observation, for `q` in `[0, 1]`; 0 when empty.
    pub fn quantile_upper_micros(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return 1u64 << (i + 1).min(63);
            }
        }
        1u64 << 63
    }

    /// The `stats`-endpoint JSON summary: count, mean, p50, p99.
    pub fn to_json(&self) -> Json {
        Json::object([
            ("count", Json::from(self.total)),
            ("mean_micros", Json::from(self.mean_micros())),
            ("p50_micros", Json::from(self.quantile_upper_micros(0.50))),
            ("p99_micros", Json::from(self.quantile_upper_micros(0.99))),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_micros(), 0.0);
        assert_eq!(h.quantile_upper_micros(0.5), 0);
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn quantiles_are_conservative_upper_bounds() {
        let mut h = LatencyHistogram::default();
        for _ in 0..99 {
            h.record(10); // bucket [8, 16)
        }
        h.record(5000); // bucket [4096, 8192)
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile_upper_micros(0.50), 16);
        // The single slow sample is exactly the 100th rank: p99 stays in
        // the fast bucket, p100 reaches the slow one.
        assert_eq!(h.quantile_upper_micros(0.99), 16);
        assert_eq!(h.quantile_upper_micros(1.0), 8192);
        assert!((h.mean_micros() - (99.0 * 10.0 + 5000.0) / 100.0).abs() < 1e-9);
    }

    #[test]
    fn json_summary_has_expected_members() {
        let mut h = LatencyHistogram::default();
        h.record(100);
        let j = h.to_json();
        assert_eq!(j.get("count").and_then(Json::as_usize), Some(1));
        assert!(j.get("p50_micros").and_then(Json::as_usize).unwrap() >= 100);
        assert!(j.get("p99_micros").is_some() && j.get("mean_micros").is_some());
    }
}
