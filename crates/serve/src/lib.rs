//! `qcs-serve` — a concurrent compilation service for the mapping stack.
//!
//! The paper frames compilation as a *full-stack* concern: algorithms
//! arrive at one end, pulse-level hardware sits at the other, and the
//! mapping passes in between are expensive enough to be worth sharing.
//! This crate wraps the whole `qcs-core` pipeline in a long-lived daemon
//! so that many clients (experiment drivers, CI, notebooks) can submit
//! circuits over TCP and share one warm, content-addressed result cache.
//!
//! The stack, bottom to top:
//!
//! * [`protocol`] — length-prefixed JSON frames and the request grammar.
//! * [`catalog`] — text specs (`surface17`, `ghz:8`, …) to devices and
//!   workload circuits.
//! * [`compile`] — request → [`compile::Job`] → canonical, byte-stable
//!   result payload, plus the [`compile::job_digest`] cache key.
//! * [`cache`] — the LRU byte-budget store for those payloads, with a
//!   full-key integrity guard against digest collisions.
//! * [`persist`] — the crash-safe on-disk form of the cache: checksummed
//!   write-ahead log plus atomic snapshot compaction, so a restarted
//!   daemon (even after `kill -9`) comes back warm and byte-identical.
//! * [`frame`] — the incremental frame decoder behind the daemon's
//!   non-blocking read path.
//! * [`histogram`] — constant-memory latency histograms for `stats`.
//! * [`server`] — the daemon: accept thread, event-loop pool (readiness
//!   multiplexing over `qcs-sys`'s `poll(2)` shim), compute workers.
//! * [`router`] — the sharding front-end: consistent-hash request
//!   routing across a fleet of daemon shards, with health checks and
//!   rerouting around dead shards.
//!
//! See DESIGN.md ("Compilation service") for the protocol reference and
//! the determinism argument, and `tests/e2e.rs` for the headline
//! guarantee exercised end to end: daemon responses are byte-identical
//! to in-process [`qcs_core::mapper::Mapper`] output, cached or not.
//!
//! The daemon also degrades gracefully: panicking compiles are isolated
//! to their connection (never the worker pool), over-capacity clients
//! are shed with a `retry_after_ms` hint, and `qcs-faults` failpoints
//! (`serve.connection`, `serve.worker.job`) let the chaos suite and
//! `ci_chaos.sh` inject those failures deterministically — see
//! `tests/chaos.rs` and DESIGN.md §6.

#![warn(missing_docs)]

pub mod cache;
pub mod catalog;
pub mod compile;
mod event;
pub mod frame;
pub mod histogram;
pub mod persist;
pub mod protocol;
pub mod router;
pub mod server;

pub use cache::{CacheStats, ResultCache};
pub use compile::{job_digest, run_job, CompileOutput, Job};
pub use frame::{DecodeError, FrameDecoder};
pub use persist::{PersistStats, Store};
pub use protocol::{read_frame, write_frame, CompileRequest, Request, Source};
pub use router::{Router, RouterConfig, RouterHandle};
pub use server::{Server, ServerConfig, ServerHandle, ShutdownStats};
