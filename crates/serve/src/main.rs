//! `qcs-serve` — the compilation daemon binary.
//!
//! ```text
//! qcs-serve [--addr HOST:PORT] [--workers N] [--event-loops N]
//!           [--max-conns N] [--cache-mb N] [--frame-deadline-ms N]
//!           [--port-file PATH] [--persist-dir PATH] [--faults SPEC]
//!           [--no-semantic-cache] [--bucket-angles]
//! ```
//!
//! `--no-semantic-cache` turns off canonical-form (semantic) cache
//! lookups, reverting to a pure exact-key cache. `--bucket-angles`
//! opts into approximate serving: rotation angles are snapped to a
//! fixed grid before canonicalization, so near-identical parameterized
//! circuits share cache entries (bucketed hits skip the statevector
//! re-check — see the server docs).
//!
//! `--persist-dir` makes the result cache crash-safe: every compiled
//! result is durably appended to a write-ahead log in that directory
//! before the response goes out, and a restarted daemon — clean exit or
//! `kill -9` — replays it and starts warm.
//!
//! Binds (port 0 = ephemeral), prints the bound address on stdout, and
//! serves until a protocol `shutdown` request arrives. `--port-file`
//! writes the bound port to a file once listening — scripts (e.g. the CI
//! smoke test) poll that file instead of parsing stdout.
//!
//! `--faults` (or the `QCS_FAULTS` environment variable) arms
//! deterministic `qcs-faults` failpoints for chaos testing, e.g.
//! `--faults 'serve.worker.job=panic@prob:0.1:42'`; see the `qcs-faults`
//! crate for the spec grammar.

use std::process::ExitCode;
use std::time::Duration;

use qcs_serve::server::{Server, ServerConfig};

fn usage() -> String {
    "usage: qcs-serve [--addr HOST:PORT] [--workers N] [--event-loops N] \
     [--max-conns N] [--cache-mb N] [--frame-deadline-ms N] \
     [--port-file PATH] [--persist-dir PATH] [--faults SPEC] \
     [--no-semantic-cache] [--bucket-angles]"
        .to_string()
}

fn parse_args(args: &[String]) -> Result<(ServerConfig, Option<String>, Option<String>), String> {
    let mut config = ServerConfig::default();
    let mut port_file = None;
    let mut faults = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            return Err(usage());
        }
        // Boolean flags take no value.
        match flag.as_str() {
            "--no-semantic-cache" => {
                config.semantic_cache = false;
                continue;
            }
            "--bucket-angles" => {
                config.bucket_angles = true;
                continue;
            }
            _ => {}
        }
        let value = it
            .next()
            .ok_or_else(|| format!("{flag} needs a value\n{}", usage()))?;
        let bad = |what: &str| format!("bad {what} '{value}' for {flag}");
        match flag.as_str() {
            "--addr" => config.addr = value.clone(),
            "--workers" => {
                config.workers = value.parse().map_err(|_| bad("worker count"))?;
                if config.workers == 0 {
                    return Err("--workers must be at least 1".to_string());
                }
            }
            "--event-loops" => {
                config.event_loops = value.parse().map_err(|_| bad("event-loop count"))?;
                if config.event_loops == 0 {
                    return Err("--event-loops must be at least 1".to_string());
                }
            }
            "--max-conns" => {
                config.max_connections = value.parse().map_err(|_| bad("connection limit"))?;
            }
            "--cache-mb" => {
                let mb: usize = value.parse().map_err(|_| bad("cache size"))?;
                config.cache_bytes = mb << 20;
            }
            "--frame-deadline-ms" => {
                let ms: u64 = value.parse().map_err(|_| bad("deadline"))?;
                config.frame_deadline = Duration::from_millis(ms);
            }
            "--port-file" => port_file = Some(value.clone()),
            "--persist-dir" => config.persist_dir = Some(value.clone()),
            "--faults" => faults = Some(value.clone()),
            _ => return Err(format!("unknown flag '{flag}'\n{}", usage())),
        }
    }
    Ok((config, port_file, faults))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (config, port_file, faults) = match parse_args(&args) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    // Chaos harness hooks: --faults wins over the QCS_FAULTS variable.
    let armed = match faults {
        Some(spec) => qcs_faults::arm_from_spec(&spec),
        None => qcs_faults::arm_from_env(),
    };
    match armed {
        Ok(0) => {}
        Ok(n) => eprintln!("qcs-serve: {n} failpoint(s) armed: {:?}", {
            qcs_faults::armed_sites()
        }),
        Err(e) => {
            eprintln!("qcs-serve: {e}");
            return ExitCode::FAILURE;
        }
    }

    let handle = match Server::start(config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("qcs-serve: failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = handle.local_addr();
    println!("qcs-serve listening on {addr}");
    if let Some(path) = port_file {
        if let Err(e) = std::fs::write(&path, addr.port().to_string()) {
            eprintln!("qcs-serve: cannot write port file {path}: {e}");
            handle.shutdown();
            return ExitCode::FAILURE;
        }
    }
    let stats = handle.wait();
    if stats.threads_panicked > 0 {
        eprintln!(
            "qcs-serve: shut down with {} panicked thread(s)",
            stats.threads_panicked
        );
        return ExitCode::FAILURE;
    }
    println!("qcs-serve: shut down cleanly");
    ExitCode::SUCCESS
}
