//! `qcs-serve` — the compilation daemon binary.
//!
//! ```text
//! qcs-serve [--addr HOST:PORT] [--workers N] [--max-conns N]
//!           [--cache-mb N] [--frame-deadline-ms N] [--port-file PATH]
//! ```
//!
//! Binds (port 0 = ephemeral), prints the bound address on stdout, and
//! serves until a protocol `shutdown` request arrives. `--port-file`
//! writes the bound port to a file once listening — scripts (e.g. the CI
//! smoke test) poll that file instead of parsing stdout.

use std::process::ExitCode;
use std::time::Duration;

use qcs_serve::server::{Server, ServerConfig};

fn usage() -> String {
    "usage: qcs-serve [--addr HOST:PORT] [--workers N] [--max-conns N] \
     [--cache-mb N] [--frame-deadline-ms N] [--port-file PATH]"
        .to_string()
}

fn parse_args(args: &[String]) -> Result<(ServerConfig, Option<String>), String> {
    let mut config = ServerConfig::default();
    let mut port_file = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            return Err(usage());
        }
        let value = it
            .next()
            .ok_or_else(|| format!("{flag} needs a value\n{}", usage()))?;
        let bad = |what: &str| format!("bad {what} '{value}' for {flag}");
        match flag.as_str() {
            "--addr" => config.addr = value.clone(),
            "--workers" => {
                config.workers = value.parse().map_err(|_| bad("worker count"))?;
                if config.workers == 0 {
                    return Err("--workers must be at least 1".to_string());
                }
            }
            "--max-conns" => {
                config.max_connections = value.parse().map_err(|_| bad("connection limit"))?;
            }
            "--cache-mb" => {
                let mb: usize = value.parse().map_err(|_| bad("cache size"))?;
                config.cache_bytes = mb << 20;
            }
            "--frame-deadline-ms" => {
                let ms: u64 = value.parse().map_err(|_| bad("deadline"))?;
                config.frame_deadline = Duration::from_millis(ms);
            }
            "--port-file" => port_file = Some(value.clone()),
            _ => return Err(format!("unknown flag '{flag}'\n{}", usage())),
        }
    }
    Ok((config, port_file))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (config, port_file) = match parse_args(&args) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    let handle = match Server::start(config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("qcs-serve: failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = handle.local_addr();
    println!("qcs-serve listening on {addr}");
    if let Some(path) = port_file {
        if let Err(e) = std::fs::write(&path, addr.port().to_string()) {
            eprintln!("qcs-serve: cannot write port file {path}: {e}");
            handle.shutdown();
            return ExitCode::FAILURE;
        }
    }
    handle.wait();
    println!("qcs-serve: shut down cleanly");
    ExitCode::SUCCESS
}
